//! Phase-noise budgeting with aliasing folding.
//!
//! Propagates reference and VCO phase-noise PSDs through the
//! time-varying loop model, showing the folded contribution the LTI
//! analysis misses, and cross-checks the shape against a jittery
//! reference in the behavioral simulator.
//!
//! Run with `cargo run --release --example noise_budget`.

use htmpll::core::{NoiseModel, PllDesign, PllModel};
use htmpll::sim::{PllSim, SimConfig, SimParams};
use htmpll::spectral::{welch, Window};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = PllDesign::reference_design(0.2)?;
    let model = PllModel::builder(design.clone()).build()?;
    let noise = NoiseModel::new(&model, 8);
    let w0 = design.omega_ref();

    // Source models (one-sided, rad²/Hz, normalized units):
    // flat reference-path noise and a 1/f² free-running VCO.
    let s_ref = |_: f64| 1e-10;
    let s_vco = |f: f64| 1e-10 / (f * f).max(1e-6);

    println!("offset ω   S_out (HTM, folded)   S_out (LTI, no folding)   ratio");
    for &w in &[0.01, 0.05, 0.2, 0.8, 2.0] {
        let tv = noise.output_psd(w, &s_ref, &s_vco);
        let lti = noise.output_psd_lti(w, &s_ref, &s_vco);
        println!("{w:8.3}   {tv:18.3e}   {lti:21.3e}   {:6.2}×", tv / lti);
    }

    let j_tv = noise.integrated_phase_noise(1e-3, 0.45 * w0, &s_ref, &s_vco);
    println!(
        "\nintegrated output phase noise 1e-3..0.45·ω₀: {:.3e} rad² (rms {:.3e} rad)",
        j_tv,
        j_tv.sqrt()
    );

    // Time-domain cross-check: drive the simulator with white reference
    // edge jitter and estimate the output phase PSD.
    let jitter_rms = 1e-4 * (1.0 / design.f_ref()); // seconds
    let cfg = SimConfig {
        ref_jitter_rms: jitter_rms,
        ..SimConfig::default()
    };
    let mut sim = PllSim::new(SimParams::from_design(&design), cfg);
    let t_ref = sim.params().t_ref;
    let _ = sim.run(200.0 * t_ref, &|_| 0.0); // settle
    let trace = sim.run(4000.0 * t_ref, &|_| 0.0);
    let fs = 1.0 / trace.dt;
    let psd = welch(&trace.theta_vco, fs, 2048, Window::Hann).expect("psd");

    // White edge jitter of variance σ² sampled once per T has one-sided
    // PSD 2σ²T in the first Nyquist band; the loop shapes it by |H00|².
    let s_in = 2.0 * jitter_rms * jitter_rms * t_ref;
    println!("\nsimulated output-phase PSD vs HTM |H00|²-shaped reference jitter:");
    println!("  f (Hz)      sim PSD       HTM prediction   ");
    for &f_hz in &[0.02, 0.05, 0.1, 0.2, 0.4] {
        let w = 2.0 * std::f64::consts::PI * f_hz;
        let idx = psd
            .iter()
            .enumerate()
            .min_by(|a, b| {
                (a.1 .0 - f_hz)
                    .abs()
                    .partial_cmp(&(b.1 .0 - f_hz).abs())
                    .unwrap()
            })
            .map(|(i, _)| i)
            .unwrap();
        // Average a few bins to tame estimator variance.
        let lo = idx.saturating_sub(3);
        let hi = (idx + 4).min(psd.len());
        let meas: f64 = psd[lo..hi].iter().map(|&(_, p)| p).sum::<f64>() / (hi - lo) as f64;
        let pred = model.h00(w).norm_sqr() * s_in;
        println!("  {f_hz:7.3}   {meas:11.3e}   {pred:11.3e}");
    }
    Ok(())
}
