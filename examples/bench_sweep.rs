//! Wall-clock benchmark for the parallel sweep engine, used by
//! `scripts/bench_parallel.sh` to produce `BENCH_parallel_sweep.json`.
//!
//! Three legs, each timed at every requested thread count:
//!
//! 1. `lambda` — λ(jω) over a dense log grid (exact lattice sums;
//!    scalar work per point).
//! 2. `dense_cold` — closed-loop HTM grid at truncation K, fresh
//!    [`SweepCache`]: every point assembles `I + G̃` and runs an LU
//!    factorization of a `(2K+1)²` complex matrix.
//! 3. `dense_warm` — the same grid through the already-populated cache:
//!    all hits, no factorizations.
//!
//! Prints one JSON object to stdout. Usage:
//!
//! ```sh
//! cargo run --release --example bench_sweep -- [threads...] [--points N] [--trunc K] [--reps R]
//! ```

use std::time::Instant;

use htmpll::core::{PllDesign, PllModel, SweepCache, SweepSpec};
use htmpll::htm::Truncation;

fn main() {
    let mut threads: Vec<usize> = Vec::new();
    let mut points = 192usize;
    let mut trunc = 24usize;
    let mut reps = 3usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut grab = |what: &str| {
            args.next()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or_else(|| panic!("{what} needs an integer"))
        };
        match a.as_str() {
            "--points" => points = grab("--points"),
            "--trunc" => trunc = grab("--trunc"),
            "--reps" => reps = grab("--reps"),
            other => threads.push(
                other
                    .parse()
                    .unwrap_or_else(|_| panic!("bad thread count {other:?}")),
            ),
        }
    }
    if threads.is_empty() {
        threads = vec![1, 4];
    }

    let design = PllDesign::reference_design(0.1).expect("reference design");
    let w0 = design.omega_ref();
    let model = PllModel::builder(design).build().expect("model");

    // Best-of-R wall time for one closure, milliseconds.
    let best_ms = |f: &mut dyn FnMut()| {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t = Instant::now();
            f();
            best = best.min(t.elapsed().as_secs_f64() * 1e3);
        }
        best
    };

    let mut legs = String::new();
    for (i, &n) in threads.iter().enumerate() {
        let lam_spec = SweepSpec::log(1e-3 * w0, 0.49 * w0, 16 * points)
            .expect("grid")
            .with_threads(n);
        let lambda_ms = best_ms(&mut || {
            model.lambda().eval_grid(&lam_spec);
        });

        let dense_spec = SweepSpec::log(1e-2 * w0, 0.49 * w0, points)
            .expect("grid")
            .with_truncation(Truncation::new(trunc))
            .with_threads(n);
        let mut cache = SweepCache::new();
        let dense_cold_ms = best_ms(&mut || {
            cache = SweepCache::new();
            model
                .closed_loop_htm_grid_cached(&dense_spec, &cache)
                .expect("dense sweep");
        });
        let dense_warm_ms = best_ms(&mut || {
            model
                .closed_loop_htm_grid_cached(&dense_spec, &cache)
                .expect("dense sweep");
        });

        if i > 0 {
            legs.push_str(",\n");
        }
        legs.push_str(&format!(
            "    {{\"threads\": {n}, \"lambda_ms\": {lambda_ms:.3}, \
             \"dense_cold_ms\": {dense_cold_ms:.3}, \"dense_warm_ms\": {dense_warm_ms:.3}}}"
        ));
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("{{");
    println!("  \"workload\": {{\"lambda_points\": {}, \"dense_points\": {points}, \"truncation\": {trunc}, \"reps\": {reps}, \"timing\": \"best-of-reps, ms\"}},", 16 * points);
    println!("  \"host_cores\": {cores},");
    println!("  \"runs\": [\n{legs}\n  ]");
    println!("}}");
}
