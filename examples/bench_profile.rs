//! Tracing-overhead benchmark, used by `scripts/bench_profile.sh` to
//! produce `BENCH_profile_overhead.json`.
//!
//! Measures the same structured-kernel closed-loop sweep (K = 24, 96-pt
//! grid by default) in four configurations:
//!
//! 1. **disabled** — obs filter off: every instrumentation site is one
//!    relaxed atomic load and a branch; this is the shipping default.
//! 2. **debug** — debug filter, no session: counters, per-sweep spans,
//!    and quantile reservoirs record; per-point sites stay off.
//! 3. **enabled** — debug filter plus an active trace session: what
//!    `plltool trace <cmd>` runs by default.
//! 4. **trace** — the deepest tier (`--obs trace` + session): per-point
//!    latency spans and per-point attribution instants also record.
//!
//! The reported `overhead_pct` is the enabled-over-disabled wall-time
//! increase (best-of-reps on both sides); `trace_overhead_pct` is the
//! same for the deepest tier, which deliberately trades overhead for
//! per-point detail. A final microbenchmark hammers one disabled counter
//! site to report the per-hit cost of instrumented code when collection
//! is off.
//!
//! Prints one JSON object to stdout. Usage:
//!
//! ```sh
//! cargo run --release --example bench_profile -- [--points N] [--trunc K] [--reps R]
//! ```

use htmpll::core::{PllDesign, PllModel, SweepCache, SweepSpec};
use htmpll::htm::Truncation;
use htmpll::obs;
use htmpll::par::ThreadBudget;
use std::time::Instant;

fn main() {
    let mut points = 96usize;
    let mut trunc = 24usize;
    let mut reps = 5usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut grab = |what: &str| {
            args.next()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or_else(|| panic!("{what} needs an integer"))
        };
        match a.as_str() {
            "--points" => points = grab("--points"),
            "--trunc" => trunc = grab("--trunc"),
            "--reps" => reps = grab("--reps"),
            other => panic!("unknown argument {other:?}"),
        }
    }

    let design = PllDesign::reference_design(0.1).expect("reference design");
    let w0 = design.omega_ref();
    let model = PllModel::builder(design).build().expect("model");
    let spec = SweepSpec::log(1e-2 * w0, 0.49 * w0, points)
        .expect("grid")
        .with_truncation(Truncation::new(trunc))
        .with_threads(ThreadBudget::Fixed(1));
    let mut sweep = || {
        model
            .closed_loop_htm_grid_cached(&spec, &SweepCache::new())
            .expect("sweep");
    };

    // The four configs are interleaved round-robin (best-of per config)
    // rather than measured in blocks: on a busy host the noise floor
    // drifts over the process lifetime, and block measurement would
    // charge that drift to whichever config ran in the bad stretch.
    let timed = |f: &mut dyn FnMut()| {
        let t0 = Instant::now();
        f();
        t0.elapsed().as_secs_f64() * 1e3
    };
    let mut disabled_ms = f64::INFINITY;
    let mut debug_ms = f64::INFINITY;
    let mut enabled_ms = f64::INFINITY;
    let mut trace_ms = f64::INFINITY;
    let mut trace_events = 0usize;
    let mut deep_trace_events = 0usize;

    obs::override_filter("off");
    for _ in 0..3 {
        sweep(); // warm-up: page in code, allocator, caches
    }
    obs::reset();
    for _ in 0..reps.max(1) {
        // Disabled path: the zero-cost-when-off contract.
        obs::override_filter("off");
        disabled_ms = disabled_ms.min(timed(&mut sweep));

        // Metrics-only: debug collection, no trace session.
        obs::override_filter("debug");
        debug_ms = debug_ms.min(timed(&mut sweep));

        // Enabled: debug collection plus an active trace session — the
        // default `plltool trace` configuration.
        obs::trace_start(1 << 20);
        enabled_ms = enabled_ms.min(timed(&mut sweep));
        trace_events = obs::trace_stop().events.len();

        // Deepest tier: per-point spans and instants on top.
        obs::override_filter("trace");
        obs::trace_start(1 << 20);
        trace_ms = trace_ms.min(timed(&mut sweep));
        deep_trace_events = obs::trace_stop().events.len();
    }
    let point = obs::snapshot()
        .into_iter()
        .filter(|s| s.key.starts_with("core.") && s.key.ends_with("sweep_point"))
        .max_by_key(|s| s.count);
    let (p50_us, p99_us) = point.map_or((f64::NAN, f64::NAN), |p| {
        (
            p.p50.map_or(f64::NAN, |v| v / 1e3),
            p.p99.map_or(f64::NAN, |v| v / 1e3),
        )
    });
    obs::override_filter("off");

    // Disabled-site microbenchmark: per-hit cost with collection off.
    const HITS: u64 = 10_000_000;
    let t0 = Instant::now();
    for _ in 0..HITS {
        obs::counter!("bench", "disabled_site").inc();
    }
    let disabled_site_ns = t0.elapsed().as_secs_f64() * 1e9 / HITS as f64;

    let overhead_pct = 100.0 * (enabled_ms - disabled_ms) / disabled_ms;
    let trace_overhead_pct = 100.0 * (trace_ms - disabled_ms) / disabled_ms;
    println!(
        "{{\"points\": {points}, \"trunc\": {trunc}, \"reps\": {reps}, \
         \"disabled_ms\": {disabled_ms:.3}, \"debug_ms\": {debug_ms:.3}, \"enabled_ms\": {enabled_ms:.3}, \
         \"trace_ms\": {trace_ms:.3}, \"overhead_pct\": {overhead_pct:.2}, \
         \"trace_overhead_pct\": {trace_overhead_pct:.2}, \
         \"p50_us\": {p50_us:.2}, \"p99_us\": {p99_us:.2}, \
         \"trace_events\": {trace_events}, \"deep_trace_events\": {deep_trace_events}, \
         \"disabled_site_ns\": {disabled_site_ns:.2}, \"host_cores\": {}}}",
        htmpll::par::available_threads()
    );
}
