//! Loop-design optimization and million-period Monte Carlo.
//!
//! Part 1 asks the optimizer for the lowest-noise loop under an
//! *effective*-margin constraint in two noise environments (VCO-limited
//! and reference-limited), showing the bandwidth trade flip.
//!
//! Part 2 takes the winning design and runs a million reference periods
//! through the fast period-map engine with a dead-zone pulse law and a
//! jittery reference — the limit-cycle statistics study that would take
//! hours on an event-driven simulator.
//!
//! Run with `cargo run --release --example loop_optimizer`.

use htmpll::core::{optimize_loop, NoiseShape, NoiseSpec, OptimizeSpec};
use htmpll::sim::{PeriodMap, PulseLaw, SimParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = OptimizeSpec {
        min_pm_eff_deg: 45.0,
        ratios: (0.03, 0.25, 12),
        spreads: vec![3.0, 4.0, 6.0],
    };

    println!("=== optimizer: lowest integrated noise with PM_eff ≥ 45° ===");
    for (name, env) in [
        (
            "VCO-limited (noisy oscillator, clean reference)",
            NoiseSpec {
                reference: NoiseShape::White { level: 1e-13 },
                vco: NoiseShape::PowerLaw {
                    level_at_ref: 3e-11,
                    w_ref: 1.0,
                    exponent: 2,
                },
                band: (1e-3, 0.45),
            },
        ),
        (
            "reference-limited (noisy reference, quiet VCO)",
            NoiseSpec {
                reference: NoiseShape::White { level: 1e-9 },
                vco: NoiseShape::PowerLaw {
                    level_at_ref: 1e-15,
                    w_ref: 1.0,
                    exponent: 2,
                },
                band: (1e-3, 0.45),
            },
        ),
    ] {
        let best = optimize_loop(&spec, &env)?;
        println!("\n{name}:");
        println!(
            "  chosen ω_UG/ω₀ = {:.3}, spread = {} (PM_LTI {:.1}°, PM_eff {:.1}°)",
            best.ratio,
            best.spread,
            best.report.phase_margin_lti_deg,
            best.report.phase_margin_eff_deg
        );
        println!(
            "  integrated output noise: {:.3e} (rms {:.3e})",
            best.integrated_noise,
            best.integrated_noise.sqrt()
        );
    }
    println!("\nA noisy VCO wants the widest loop the margin allows; a noisy");
    println!("reference wants the narrowest. The binding constraint is the");
    println!("EFFECTIVE margin — LTI analysis would let the loop run far faster.");

    // ---- Part 2: million-period dead-zone Monte Carlo --------------
    println!("\n=== fast engine: 1M periods with a dead zone + reference jitter ===");
    let design = htmpll::core::PllDesign::reference_design(0.1)?;
    let params = SimParams::from_design(&design);
    let t_ref = params.t_ref;
    let dead = 2e-3 * t_ref;

    let offset = 8e-3 * t_ref; // reference phase step, well outside the zone
    for (name, law, jitter_on) in [
        ("ideal pump, jitter", PulseLaw::Linear, true),
        (
            "dead zone, NO jitter",
            PulseLaw::DeadZone { width: dead },
            false,
        ),
        (
            "dead zone, jitter",
            PulseLaw::DeadZone { width: dead },
            true,
        ),
    ] {
        let mut map = PeriodMap::new(&params, law);
        // Deterministic pseudo-random reference jitter, rms 0.05 %·T.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut jitter = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (((state >> 32) as u32 as f64) / (u32::MAX as f64) - 0.5) * 1.7e-3 * t_ref
        };
        let n = 1_000_000usize;
        let theta = map.run(n, |_| offset + if jitter_on { jitter() } else { 0.0 });
        let tail = &theta[n / 10..];
        let mean_err = offset - tail.iter().sum::<f64>() / tail.len() as f64;
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        let rms =
            (tail.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / tail.len() as f64).sqrt();
        println!(
            "  {name:<22} residual error = {:+.3e}·T   wander rms = {:.3e}·T",
            mean_err / t_ref,
            rms / t_ref
        );
    }
    println!("\nWithout jitter the dead-zone pump parks exactly a zone-width away");
    println!("from the target (on the overshoot side, given this loop's ringing).");
    println!(
        "WITH jitter the error dithers
across both zone edges and averages away — the classic dither"
    );
    println!("linearization — at the price of doubled wander. A million-period");
    println!("statistic, computed in well under a second by the period map.");
    Ok(())
}
