//! Wall-clock benchmark for the structured closed-loop kernels, used by
//! `scripts/bench_structured.sh` to produce `BENCH_structured_kernels.json`.
//!
//! For each truncation order K the same frequency grid is swept twice
//! per kernel policy:
//!
//! 1. `structured_cold` — [`KernelPolicy::Structured`], fresh cache:
//!    the open loop stays in its rank-one/banded representation and the
//!    closed loop is solved by Sherman–Morrison / banded LU, O(K·b)
//!    per point instead of the dense O(K³).
//! 2. `dense_cold` — [`KernelPolicy::Dense`], fresh cache: every point
//!    materializes `I + G̃` and runs the dense escalating ladder.
//! 3. `*_warm` — the same grid through the populated cache (all hits).
//!
//! Prints one JSON object to stdout. Usage:
//!
//! ```sh
//! cargo run --release --example bench_structured -- [K...] [--points N] [--threads T] [--reps R]
//! ```

use std::time::Instant;

use htmpll::core::{KernelPolicy, PllDesign, PllModel, SweepCache, SweepSpec};
use htmpll::htm::Truncation;

fn main() {
    let mut orders: Vec<usize> = Vec::new();
    let mut points = 192usize;
    let mut threads = 1usize;
    let mut reps = 3usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut grab = |what: &str| {
            args.next()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or_else(|| panic!("{what} needs an integer"))
        };
        match a.as_str() {
            "--points" => points = grab("--points"),
            "--threads" => threads = grab("--threads"),
            "--reps" => reps = grab("--reps"),
            other => orders.push(
                other
                    .parse()
                    .unwrap_or_else(|_| panic!("bad truncation order {other:?}")),
            ),
        }
    }
    if orders.is_empty() {
        orders = vec![16, 24, 32, 64];
    }

    let design = PllDesign::reference_design(0.1).expect("reference design");
    let w0 = design.omega_ref();
    let model = PllModel::builder(design).build().expect("model");

    // Best-of-R wall time for one closure, milliseconds.
    let best_ms = |f: &mut dyn FnMut()| {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t = Instant::now();
            f();
            best = best.min(t.elapsed().as_secs_f64() * 1e3);
        }
        best
    };

    let mut legs = String::new();
    for (i, &k) in orders.iter().enumerate() {
        let spec = SweepSpec::log(1e-2 * w0, 0.49 * w0, points)
            .expect("grid")
            .with_truncation(Truncation::new(k))
            .with_threads(threads);

        let timed = |kernel: KernelPolicy| {
            let spec = spec.clone().with_kernel(kernel);
            let mut cache = SweepCache::new();
            let cold = best_ms(&mut || {
                cache = SweepCache::new();
                model
                    .closed_loop_htm_grid_cached(&spec, &cache)
                    .expect("sweep");
            });
            let warm = best_ms(&mut || {
                model
                    .closed_loop_htm_grid_cached(&spec, &cache)
                    .expect("sweep");
            });
            (cold, warm)
        };
        let (s_cold, s_warm) = timed(KernelPolicy::Structured);
        let (d_cold, d_warm) = timed(KernelPolicy::Dense);

        if i > 0 {
            legs.push_str(",\n");
        }
        legs.push_str(&format!(
            "    {{\"truncation\": {k}, \"dim\": {}, \
             \"structured_cold_ms\": {s_cold:.3}, \"structured_warm_ms\": {s_warm:.3}, \
             \"dense_cold_ms\": {d_cold:.3}, \"dense_warm_ms\": {d_warm:.3}, \
             \"speedup_cold\": {:.1}}}",
            2 * k + 1,
            d_cold / s_cold
        ));
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("{{");
    println!(
        "  \"workload\": {{\"dense_points\": {points}, \"threads\": {threads}, \
         \"reps\": {reps}, \"timing\": \"best-of-reps, ms\"}},"
    );
    println!("  \"host_cores\": {cores},");
    println!("  \"runs\": [\n{legs}\n  ]");
    println!("}}");
}
