//! Per-kernel SIMD speedup benchmark, used by `scripts/bench_simd.sh`
//! to produce `BENCH_simd_kernels.json`.
//!
//! Each vectorized hot loop is timed twice through its real entry
//! point — once with the backend forced to `SimdLevel::Scalar`, once
//! at the detected hardware level — on the same inputs:
//!
//! * `band_lu_factor` — [`BandLu::factor`] of a random banded matrix
//!   (the caxpy elimination kernel).
//! * `band_lu_solve_mat` — multi-RHS [`BandLu::solve_mat`] (the
//!   lane-blocked forward/backward substitution).
//! * `bt_mul` — banded-Toeplitz [`HtmRepr::mul_vec`] (the
//!   diagonal-broadcast kernel).
//! * `fft` — radix-2 [`fft`] (SoA butterfly passes).
//! * `lambda_grid` — [`EffectiveGain::eval_jw_batch`] (the Horner
//!   lattice-sum kernel).
//!
//! Both passes produce bitwise-identical outputs — the dispatch
//! contract — so the ratio is pure data-layout/ILP gain. Prints one
//! JSON object to stdout. Usage:
//!
//! ```sh
//! cargo run --release --example bench_simd -- [--reps R]
//! ```

use std::time::Instant;

use htmpll::core::{EffectiveGain, PllDesign};
use htmpll::htm::HtmRepr;
use htmpll::num::rng::Rng;
use htmpll::num::simd::{self, SimdLevel};
use htmpll::num::{BandLu, BandMat, CMat, Complex};
use htmpll::spectral::fft::fft;

fn main() {
    let mut reps = 7usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps needs an integer")
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    let hw = simd::hardware_level();
    let mut rng = Rng::seed_from_u64(0xBE7C);

    // --- fixtures ------------------------------------------------------
    let n_band = 512usize;
    let b_band = 8usize;
    let band = BandMat::from_fn(n_band, b_band, |i, j| {
        let base = Complex::new(rng.range(-1.0, 1.0), rng.range(-1.0, 1.0));
        if i == j {
            base + Complex::from_re(6.0) // diagonally dominant: no pivoting noise
        } else {
            base
        }
    });
    let factored = BandLu::factor(&band).expect("well-conditioned banded matrix");
    let nrhs = 32usize;
    let rhs = CMat::from_fn(n_band, nrhs, |_, _| {
        Complex::new(rng.range(-1.0, 1.0), rng.range(-1.0, 1.0))
    });

    let n_bt = 2048usize;
    let b_bt = 8usize;
    let bt = HtmRepr::BandedToeplitz {
        coeffs: (0..2 * b_bt + 1)
            .map(|_| Complex::new(rng.range(-1.0, 1.0), rng.range(-1.0, 1.0)))
            .collect(),
        row_scale: None,
    };
    let bt_x: Vec<Complex> = (0..n_bt)
        .map(|_| Complex::new(rng.range(-1.0, 1.0), rng.range(-1.0, 1.0)))
        .collect();

    let n_fft = 4096usize;
    let fft_x: Vec<Complex> = (0..n_fft)
        .map(|_| Complex::new(rng.range(-1.0, 1.0), rng.range(-1.0, 1.0)))
        .collect();

    let design = PllDesign::reference_design(0.1).expect("reference design");
    let lam = EffectiveGain::new(&design.open_loop_gain(), design.omega_ref()).expect("lambda");
    let n_lam = 4096usize;
    let omegas: Vec<f64> = (0..n_lam).map(|i| 0.01 + 0.002 * i as f64).collect();

    // Best-of-R wall time for one closure, milliseconds.
    let best_ms = |level: SimdLevel, f: &mut dyn FnMut()| {
        let prev = simd::set_active_level(level);
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t = Instant::now();
            f();
            best = best.min(t.elapsed().as_secs_f64() * 1e3);
        }
        simd::set_active_level(prev);
        best
    };

    let mut legs = String::new();
    let bench = |name: &str, legs: &mut String, f: &mut dyn FnMut()| {
        let scalar_ms = best_ms(SimdLevel::Scalar, f);
        let simd_ms = best_ms(hw, f);
        if !legs.is_empty() {
            legs.push_str(",\n");
        }
        legs.push_str(&format!(
            "    {{\"kernel\": \"{name}\", \"scalar_ms\": {scalar_ms:.4}, \
             \"simd_ms\": {simd_ms:.4}, \"speedup\": {:.2}}}",
            scalar_ms / simd_ms
        ));
    };

    bench("band_lu_factor", &mut legs, &mut || {
        let lu = BandLu::factor(&band).expect("factor");
        std::hint::black_box(&lu);
    });
    bench("band_lu_solve_mat", &mut legs, &mut || {
        let x = factored.solve_mat(&rhs).expect("solve");
        std::hint::black_box(&x);
    });
    bench("bt_mul", &mut legs, &mut || {
        for _ in 0..16 {
            let y = bt.mul_vec(n_bt, &bt_x);
            std::hint::black_box(&y);
        }
    });
    bench("fft", &mut legs, &mut || {
        for _ in 0..16 {
            let mut x = fft_x.clone();
            fft(&mut x).expect("power of two");
            std::hint::black_box(&x);
        }
    });
    bench("lambda_grid", &mut legs, &mut || {
        let mut out = vec![Complex::ZERO; omegas.len()];
        lam.eval_jw_batch(&omegas, &mut out);
        std::hint::black_box(&out);
    });

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("{{");
    println!(
        "  \"workload\": {{\"band_n\": {n_band}, \"band_b\": {b_band}, \"nrhs\": {nrhs}, \
         \"bt_n\": {n_bt}, \"fft_n\": {n_fft}, \"lambda_points\": {n_lam}, \
         \"reps\": {reps}, \"timing\": \"best-of-reps, ms\"}},"
    );
    println!("  \"detected_level\": \"{}\",", hw.name());
    println!("  \"host_cores\": {cores},");
    println!("  \"kernels\": [\n{legs}\n  ]");
    println!("}}");
}
