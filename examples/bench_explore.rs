//! Wall-clock benchmark for the streaming design-space explorer, used
//! by `scripts/bench_explore.sh` to produce `BENCH_pareto_explore.json`.
//!
//! Two legs over the **same** seeded candidate corpus:
//!
//! 1. `screened` — the production configuration: the closed-form spur
//!    gate and the coarse λ margin scan reject most candidates before
//!    the full HTM analysis runs.
//! 2. `full` — the screen disabled: every candidate pays for the full
//!    analysis. This is the baseline the screening speedup is measured
//!    against; both legs must land on the identical front digest.
//!
//! A counting global allocator tracks the live-bytes high-water mark of
//! each leg — the flat-memory proxy: peak allocation must not scale
//! with the candidate count, because the stream holds only per-worker
//! workspaces and bounded fronts.
//!
//! Prints one JSON object to stdout. Usage:
//!
//! ```sh
//! cargo run --release --example bench_explore -- [--candidates N] [--threads T]
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use htmpll::core::{explore, ExploreSpec, SweepCache};
use htmpll::par::ThreadBudget;

/// System allocator wrapper keeping a live-bytes count and its peak.
/// `realloc`/`alloc_zeroed` use the `GlobalAlloc` defaults, which route
/// through `alloc`/`dealloc`, so the two counters see every byte.
struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, p: *mut u8, layout: Layout) {
        System.dealloc(p, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Resets the peak to the current live count, runs `f`, and returns the
/// peak *growth* during the run — the transient working set on top of
/// whatever was already resident.
fn peak_growth_during<R>(f: impl FnOnce() -> R) -> (R, usize) {
    let base = LIVE.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    let out = f();
    (out, PEAK.load(Ordering::Relaxed).saturating_sub(base))
}

fn main() {
    let mut candidates = 5000usize;
    let mut threads = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut grab = |what: &str| {
            args.next()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or_else(|| panic!("{what} needs an integer"))
        };
        match a.as_str() {
            "--candidates" => candidates = grab("--candidates"),
            "--threads" => threads = grab("--threads"),
            other => panic!("unknown flag {other:?}"),
        }
    }

    // The tight-spec corpus: feasibility gates strict enough that the
    // closed-form screen carries most of the rejection load — the
    // regime exhaustive exploration actually lives in, where most of
    // the box is junk.
    let spec = ExploreSpec {
        candidates,
        seed: 1,
        min_pm_deg: 55.0,
        max_spur_dbc: -70.0,
        front_cap: 128,
        refine_rounds: 0,
        screen: true,
        quasi: false,
        threads: ThreadBudget::Fixed(threads),
    };

    let leg = |screen: bool| {
        let spec = ExploreSpec {
            screen,
            ..spec.clone()
        };
        let t = Instant::now();
        let (report, peak) =
            peak_growth_during(|| explore(&spec, &SweepCache::new()).expect("explore failed"));
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        (report, wall_ms, peak)
    };

    let (screened, screened_ms, screened_peak) = leg(true);
    let (full, full_ms, full_peak) = leg(false);

    assert_eq!(
        screened.digest, full.digest,
        "screening must not change the front"
    );

    let dps = |evaluated: usize, ms: f64| evaluated as f64 / (ms / 1e3);
    let screened_dps = dps(screened.evaluated, screened_ms);
    let full_dps = dps(full.evaluated, full_ms);

    println!("{{");
    println!(
        "  \"workload\": {{\"candidates\": {candidates}, \"seed\": 1, \"min_pm_deg\": 55.0, \
         \"max_spur_dbc\": -70.0, \"front_cap\": 128, \"refine_rounds\": 0, \"threads\": {threads}}},"
    );
    println!(
        "  \"host_cores\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let leg_json = |name: &str, r: &htmpll::core::ExploreReport, ms: f64, peak: usize, d: f64| {
        format!(
            "  \"{name}\": {{\"wall_ms\": {ms:.1}, \"designs_per_sec\": {d:.1}, \
             \"screened_out\": {}, \"full_analyses\": {}, \"screen_rate\": {:.4}, \
             \"front_size\": {}, \"digest\": \"{}\", \"peak_alloc_bytes\": {peak}}}",
            r.screened_out,
            r.full_analyses,
            r.screened_out as f64 / r.evaluated.max(1) as f64,
            r.front.len(),
            r.digest
        )
    };
    println!(
        "{},",
        leg_json(
            "screened",
            &screened,
            screened_ms,
            screened_peak,
            screened_dps
        )
    );
    println!("{},", leg_json("full", &full, full_ms, full_peak, full_dps));
    println!("  \"speedup\": {:.2},", screened_dps / full_dps);
    println!("  \"digests_match\": true");
    println!("}}");
}
