//! Fast-loop stability study: how far can `ω_UG/ω₀` be pushed?
//!
//! The paper's motivating scenario — a PLL with a fast feedback loop —
//! swept across the ratio `ω_UG/ω₀`, comparing three verdicts:
//!
//! 1. classical LTI analysis (Routh on `1 + A`, phase margin of `A`):
//!    blind to the ratio, always says "fine";
//! 2. the HTM effective gain `λ` (phase margin + period-strip Nyquist);
//! 3. the Hein–Scott z-domain model (Jury test) — must agree with (2)
//!    on the boundary since both describe the same sampled system.
//!
//! Run with `cargo run --release --example fast_loop_stability`.

use htmpll::core::{analyze, PllDesign, PllModel};
use htmpll::lti::{is_hurwitz, Tf};
use htmpll::zdomain::{reference_design_stability_limit, CpPllZModel};

fn lti_closed_loop_stable(a: &Tf) -> bool {
    match a.feedback_unity() {
        Ok(cl) => is_hurwitz(cl.den()),
        Err(_) => false,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("ratio    PM_LTI   PM_eff   LTI-stable  HTM-stable  z-stable");
    for &ratio in &[0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4] {
        let design = PllDesign::reference_design(ratio)?;
        let a = design.open_loop_gain();
        let model = PllModel::builder(design.clone()).build()?;
        let report = analyze(&model)?;
        let zmodel = CpPllZModel::from_design(&design)?;
        println!(
            "{ratio:5.2}   {:6.2}°  {:6.2}°   {:^10}  {:^10}  {:^8}",
            report.phase_margin_lti_deg,
            report.phase_margin_eff_deg,
            lti_closed_loop_stable(&a),
            report.nyquist_stable,
            zmodel.is_stable()?,
        );
    }

    let limit = reference_design_stability_limit(0.05, 0.6, 1e-4);
    println!("\nsampling stability limit (Jury bisection): ω_UG/ω₀ = {limit:.4}");
    println!("classical LTI analysis predicts stability at ANY ratio — the");
    println!("time-varying analysis is what catches the fast-loop failure.");
    Ok(())
}
