//! Fractional-N synthesis with a MASH-1-1-1 sigma-delta modulator.
//!
//! Dithers the feedback divider between integers so the loop locks to a
//! *fractional* multiple of the reference, then inspects the output
//! phase spectrum: the sigma-delta quantization noise is shaped up in
//! frequency (`(1 − z⁻¹)³`) and the loop's `|H₀,₀|²` low-pass removes
//! it — visible as a noise floor rising toward the loop bandwidth and
//! rolling off past it.
//!
//! Run with `cargo run --release --example fractional_n`.

use htmpll::core::{PllDesign, PllModel};
use htmpll::sim::{Mash111, PllSim, SimConfig, SimParams};
use htmpll::spectral::{welch, Window};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Reference loop (normalized units): ω_UG/ω₀ = 0.1, divider 256,
    // fractional word 0.37 → effective ratio 256.37. (A large N keeps
    // the MASH's ±3-VCO-cycle excursions small against the reference
    // period; with small N the charge pump's pulse-width nonlinearity
    // folds the shaped noise in-band — demonstrated below.)
    let ratio = 0.1;
    let base = PllDesign::reference_design(ratio)?;
    let n_int = 256.0;
    let frac = 0.37;
    let design = PllDesign::builder()
        .f_ref(base.f_ref())
        // Divider gain scales the loop: raise Icp by N to keep ω_UG.
        .icp(base.icp() * n_int)
        .kvco(base.kvco())
        .divider(n_int)
        .filter(base.filter().clone())
        .build()?;
    let model = PllModel::builder(design.clone()).build()?;

    let mut mash = Mash111::new(frac, 1 << 20, 0x9e37)?;
    let mut params = SimParams::from_design(&design);
    params.div_sequence = Some(mash.sequence(1 << 14));
    // Lock target: (N + frac)·f_ref.
    params.f_center = (n_int + mash.realized_fraction()) * design.f_ref();

    let t_ref = params.t_ref;
    let mut sim = PllSim::new(params.clone(), SimConfig::default());
    let _ = sim.run(500.0 * t_ref, &|_| 0.0);
    let trace = sim.run(4096.0 * t_ref, &|_| 0.0);

    // θ is referenced to the *integer* divider, so fractional lock shows
    // up as a deterministic ramp of slope frac/N: verify it, then remove
    // it (least-squares detrend) before spectral analysis.
    let n_s = trace.theta_vco.len();
    let drift = (trace.theta_vco.last().unwrap() - trace.theta_vco[0]) / (n_s as f64 * trace.dt);
    let expected_drift = mash.realized_fraction() / n_int;
    println!(
        "locked at {:.6}×f_ref (target {:.6}); θ ramp {:.5} (expected {:.5})",
        params.f_center / design.f_ref(),
        n_int + frac,
        drift,
        expected_drift
    );
    assert!((drift - expected_drift).abs() < 0.05 * expected_drift);

    let centered = trace.detrended_theta();
    let psd = welch(&centered, 1.0 / trace.dt, 4096, Window::Hann).expect("psd");
    let f_ref = 1.0 / t_ref;
    println!("\n  f/f_ref    S_θ (dB rel)   prediction slope");
    let base_level = psd
        .iter()
        .filter(|(f, _)| (*f > 0.004 * f_ref) && (*f < 0.008 * f_ref))
        .map(|&(_, p)| p)
        .sum::<f64>()
        / psd
            .iter()
            .filter(|(f, _)| (*f > 0.004 * f_ref) && (*f < 0.008 * f_ref))
            .count() as f64;
    for &(lo, hi) in &[
        (0.004, 0.008),
        (0.01, 0.02),
        (0.03, 0.05),
        (0.08, 0.12),
        (0.2, 0.3),
    ] {
        let sel: Vec<f64> = psd
            .iter()
            .filter(|(f, _)| *f > lo * f_ref && *f < hi * f_ref)
            .map(|&(_, p)| p)
            .collect();
        let avg = sel.iter().sum::<f64>() / sel.len() as f64;
        let fmid = 0.5 * (lo + hi);
        // Standard model: S_q ∝ (2sin(πf/f_ref))⁴ in-band, cut by |H00|².
        let w = 2.0 * std::f64::consts::PI * fmid * f_ref;
        let shape = (std::f64::consts::PI * fmid).sin().powi(4) * model.h00(w).norm_sqr();
        println!(
            "  {:7.3}    {:10.2}       {:10.2}",
            fmid,
            10.0 * (avg / base_level).log10(),
            10.0 * (shape
                / ((std::f64::consts::PI * 0.006).sin().powi(4)
                    * model
                        .h00(2.0 * std::f64::consts::PI * 0.006 * f_ref)
                        .norm_sqr()))
            .log10()
        );
    }
    println!("\nAbove ~0.02·f_ref the measured noise rises ~40 dB/decade (third-order");
    println!("MASH shaping through |H00|²), tracking the prediction column. The");
    println!("flat floor below that is NOT ideal ΣΔ noise: it is the charge pump's");
    println!("pulse-width nonlinearity folding the big high-frequency shaped noise");
    println!("in-band — the classic fractional-N noise-folding problem, reproduced");
    println!("here physically. It collapses ~N³ with divider size (measured: going");
    println!("N = 64 → 256 drops the in-band floor 200×, the linear region 16×).");
    Ok(())
}
