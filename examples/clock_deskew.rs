//! Clock de-skew buffer: a divider-less, fast PLL tracking a digital
//! clock — the application where the paper's warning bites hardest.
//!
//! De-skew loops want the widest possible bandwidth so the output clock
//! tracks reference wander, which pushes `ω_UG/ω₀` up. This example
//! walks the trade-off: tracking error vs. effective phase margin, and
//! shows a time-varying VCO (periodic ISF) shifting the answer.
//!
//! Run with `cargo run --release --example clock_deskew`.

use htmpll::core::{analyze, PllDesign, PllModel};
use htmpll::htm::Truncation;
use htmpll::num::Complex;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("De-skew loop bandwidth trade-off (reference wander at 0.05·ω_UG):");
    println!("ratio   |1−H00| wander-err   PM_eff     verdict");
    for &ratio in &[0.02, 0.05, 0.1, 0.2, 0.3] {
        let design = PllDesign::reference_design(ratio)?;
        let model = PllModel::builder(design).build()?;
        let report = analyze(&model)?;
        // Tracking error for slow reference wander: |1 − H00| at low ω.
        let err = model.error_transfer(0.05).abs();
        let verdict = if !report.nyquist_stable {
            "UNSTABLE"
        } else if report.phase_margin_eff_deg < 30.0 {
            "marginal"
        } else {
            "ok"
        };
        println!(
            "{ratio:5.2}   {err:18.4e}   {:6.2}°   {verdict}",
            report.phase_margin_eff_deg
        );
    }

    // Time-varying VCO: a ring-oscillator-like ISF with strong first and
    // second harmonics. The rank-one closed form still applies; compare
    // baseband responses and the first-harmonic conversion gain.
    println!("\nTime-varying VCO (ISF harmonics v₁/v₀ = 0.5, v₂/v₀ = 0.2), ratio = 0.15:");
    let design = PllDesign::reference_design(0.15)?;
    let v0 = design.v0();
    let ti = PllModel::builder(design.clone()).build()?;
    let isf = vec![
        Complex::from_re(0.2 * v0),
        Complex::from_re(0.5 * v0),
        Complex::from_re(v0),
        Complex::from_re(0.5 * v0),
        Complex::from_re(0.2 * v0),
    ];
    let tv = PllModel::builder(design).vco_isf(isf).build()?;
    let trunc = Truncation::new(12);
    println!("  ω      |H00| TI-VCO   |H00| TV-VCO   |H(+1←0)| TV");
    for &w in &[0.1, 0.5, 1.0, 2.0] {
        let s = Complex::from_im(w);
        let h_ti = ti.closed_loop_htm(s, trunc).band(0, 0);
        let htm_tv = tv.closed_loop_htm(s, trunc);
        println!(
            "  {w:4.1}   {:11.4}   {:11.4}   {:11.4}",
            h_ti.abs(),
            htm_tv.band(0, 0).abs(),
            htm_tv.band(1, 0).abs()
        );
    }
    println!("\nA time-varying ISF adds band-conversion paths (|H(+1←0)| > 0 even");
    println!("at DC-side offsets) — spurs that no LTI model can produce.");
    Ok(())
}
