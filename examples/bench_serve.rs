//! Serve-throughput benchmark, used by `scripts/bench_serve.sh` to
//! produce `BENCH_serve_throughput.json`.
//!
//! Drives the in-process serve core (`htmpll::service::serve_lines`) —
//! the same reader/batcher/pool/cache pipeline behind `plltool serve`,
//! minus OS pipe overhead — with two synthetic JSONL workloads:
//!
//! 1. **repeated** — many requests over a small set of distinct specs;
//!    after the first pass everything is a response-cache hit, so this
//!    measures the service overhead per request (parse, batch, reorder,
//!    emit) and the warm path's latency profile.
//! 2. **distinct** — every request is a different design, so every
//!    request computes; this measures how analysis throughput scales
//!    with the worker pool.
//!
//! Each workload runs at one worker and at the host's full
//! parallelism; requests/sec plus per-request p50/p99 latency are
//! reported for both. Prints one JSON object to stdout. Usage:
//!
//! ```sh
//! cargo run --release --example bench_serve -- [--repeated N] [--specs S] [--distinct D]
//! ```

use htmpll::service::{serve_lines, ServeOptions, ServeSummary};
use std::io::Cursor;
use std::time::Instant;

fn workload_repeated(requests: usize, specs: usize) -> String {
    let mut input = String::with_capacity(requests * 64);
    for i in 0..requests {
        // Spread the distinct specs over a benign ratio range.
        let ratio = 0.06 + 0.01 * (i % specs) as f64;
        input.push_str(&format!(
            "{{\"id\":{i},\"command\":\"analyze\",\"params\":{{\"ratio\":{ratio}}}}}\n"
        ));
    }
    input
}

fn workload_distinct(requests: usize) -> String {
    let mut input = String::with_capacity(requests * 64);
    for i in 0..requests {
        let ratio = 0.05 + 0.15 * i as f64 / requests.max(1) as f64;
        input.push_str(&format!(
            "{{\"id\":{i},\"command\":\"analyze\",\"params\":{{\"ratio\":{ratio}}}}}\n"
        ));
    }
    input
}

fn run(input: &str, workers: usize) -> (ServeSummary, f64) {
    let mut out = Vec::new();
    let t0 = Instant::now();
    let summary = serve_lines(
        Cursor::new(input.to_string()),
        &mut out,
        &ServeOptions {
            workers,
            ..ServeOptions::default()
        },
    )
    .expect("serve_lines");
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(summary.responded, summary.received, "lossless run expected");
    (summary, secs)
}

fn leg_json(summary: &ServeSummary, secs: f64, workers: usize) -> String {
    let rps = summary.responded as f64 / secs.max(1e-9);
    format!(
        "{{\"workers\": {}, \"rps\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
         \"wall_s\": {:.3}, \"response_cache_hits\": {}, \"sweep_cache_hits\": {}}}",
        workers,
        rps,
        summary.p50_latency_ns as f64 / 1e6,
        summary.p99_latency_ns as f64 / 1e6,
        secs,
        summary.response_cache_hits,
        summary.sweep_cache_hits,
    )
}

fn main() {
    let mut repeated = 500usize;
    let mut specs = 8usize;
    let mut distinct = 48usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut grab = |what: &str| {
            args.next()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or_else(|| panic!("{what} needs an integer"))
        };
        match a.as_str() {
            "--repeated" => repeated = grab("--repeated"),
            "--specs" => specs = grab("--specs"),
            "--distinct" => distinct = grab("--distinct"),
            other => panic!("unknown argument {other:?}"),
        }
    }
    let many = std::thread::available_parallelism().map_or(2, |n| n.get());

    let rep_input = workload_repeated(repeated, specs.max(1));
    let (rep1, rep1_s) = run(&rep_input, 1);
    let (repn, repn_s) = run(&rep_input, many);

    let dis_input = workload_distinct(distinct);
    let (dis1, dis1_s) = run(&dis_input, 1);
    let (disn, disn_s) = run(&dis_input, many);

    println!(
        "{{\n  \"host_cores\": {many},\n  \"repeated\": {{\"requests\": {repeated}, \"distinct_specs\": {specs}, \
         \"one_worker\": {}, \"many_workers\": {}}},\n  \"distinct\": {{\"requests\": {distinct}, \
         \"one_worker\": {}, \"many_workers\": {}}}\n}}",
        leg_json(&rep1, rep1_s, 1),
        leg_json(&repn, repn_s, many),
        leg_json(&dis1, dis1_s, 1),
        leg_json(&disn, disn_s, many),
    );
}
