//! Step-response comparison across all four models in the workspace,
//! plus the closed-form symbolic λ(s).
//!
//! A unit reference phase step hits the loop; four predictions of the
//! settling waveform are tabulated:
//!
//! 1. classical LTI (`A/(1+A)`, exact PFE inversion),
//! 2. the time-varying HTM model (numerical inversion of `H₀,₀`),
//! 3. the z-domain Hein–Scott model (exact at the sampling instants),
//! 4. the behavioral simulator (ground truth, period-averaged).
//!
//! Run with `cargo run --release --example transient_response`.

use htmpll::core::{transient, EffectiveGain, PllDesign, PllModel};
use htmpll::lti::response;
use htmpll::sim::{PllSim, SimConfig, SimParams};
use htmpll::zdomain::CpPllZModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ratio = 0.2;
    let design = PllDesign::reference_design(ratio)?;
    let t_ref = 1.0 / design.f_ref();
    println!("reference loop, ω_UG/ω₀ = {ratio} (T = {t_ref:.4} s)\n");

    // The paper's symbolic capability: λ(s) in closed form.
    let lam = EffectiveGain::new(&design.open_loop_gain(), design.omega_ref())?;
    println!(
        "closed-form effective open-loop gain:\n{}\n",
        lam.symbolic()
    );

    // 1. LTI step response.
    let cl = design.open_loop_gain().feedback_unity()?;
    // 2. HTM step response.
    let model = PllModel::builder(design.clone()).build()?;
    // 3. z-domain step response (per sampling instant).
    let zm = CpPllZModel::from_design(&design)?;
    let z_step = zm.closed_loop()?.step_response(64);
    // 4. Simulated step (period-averaged).
    let params = SimParams::from_design(&design);
    let cfg = SimConfig::default();
    let step = 1e-3 * t_ref;
    let t_step = 10.0 * t_ref;
    let modulation = move |t: f64| if t >= t_step { step } else { 0.0 };
    let mut sim = PllSim::new(params, cfg);
    let _ = sim.run(t_step, &modulation);
    let trace = sim.run(50.0 * t_ref, &modulation);

    let spr = cfg.samples_per_ref;
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10}",
        "t/T", "LTI", "HTM", "z-dom", "sim"
    );
    for k in (2..48).step_by(4) {
        let t = k as f64 * t_ref;
        let lti = response::step_response(&cl, &[t])?[0];
        let htm = transient::step_response(&model, &[t])[0];
        let z = z_step[k];
        // Period-centered average of the simulated trace around t.
        let idx = ((t - trace.t0 + t_step) / trace.dt).round() as usize;
        let lo = idx.saturating_sub(spr / 2);
        let hi = (idx + spr / 2).min(trace.theta_vco.len());
        let sim_avg: f64 = trace.theta_vco[lo..hi].iter().sum::<f64>() / (hi - lo) as f64 / step;
        println!("{k:>8} {lti:>10.4} {htm:>10.4} {z:>10.4} {sim_avg:>10.4}");
    }
    println!("\nAt this ratio the LTI column under-predicts the ringing that");
    println!("HTM, z-domain and the simulator all agree on.");
    Ok(())
}
