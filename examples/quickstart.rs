//! Quickstart: analyze one PLL design with both the classical LTI
//! approximation and the paper's time-varying (HTM) method.
//!
//! Run with `cargo run --example quickstart`.

use htmpll::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's "typical loop design" (Fig. 5): open-loop gain with
    // three poles (two at DC) and one zero, unity-gain frequency
    // normalized to 1 rad/s. The single knob is how fast the loop is
    // relative to the reference: ω_UG/ω₀.
    let ratio = 0.15;
    let design = PllDesign::reference_design(ratio)?;
    println!("design: {design}");
    println!(
        "reference: ω₀ = {:.4} rad/s (ω_UG/ω₀ = {ratio})",
        design.omega_ref()
    );

    let model = PllModel::builder(design).build()?;
    let report = analyze(&model)?;

    println!("\n--- classical LTI analysis (textbook) ---");
    println!("unity-gain frequency : {:.4} rad/s", report.omega_ug_lti);
    println!("phase margin         : {:.2}°", report.phase_margin_lti_deg);
    println!("closed-loop peaking  : {:.2} dB", report.peaking_lti_db);

    println!("\n--- time-varying (HTM) analysis — what the loop actually sees ---");
    println!(
        "effective ω_UG        : {:.4} rad/s ({:.2}× the LTI value)",
        report.omega_ug_eff,
        report.omega_ug_eff / report.omega_ug_lti
    );
    println!(
        "effective phase margin: {:.2}°",
        report.phase_margin_eff_deg
    );
    println!("closed-loop peaking   : {:.2} dB", report.peaking_db);
    println!(
        "margin degradation    : {:.2}° ({:.1} % of the LTI prediction)",
        report.phase_margin_degradation_deg(),
        100.0 * report.phase_margin_degradation_rel()
    );
    println!("HTM-Nyquist stable    : {}", report.nyquist_stable);

    // A few closed-loop transfer points: LTI vs time-varying.
    println!("\n  ω/ω_UG   |H00| LTI   |H00| HTM");
    for w in [0.2, 0.5, 1.0, 2.0, 3.0] {
        println!(
            "  {w:6.2}   {:9.4}   {:9.4}",
            model.h00_lti(w).abs(),
            model.h00(w).abs()
        );
    }

    // Cross-check one point against the behavioral time-domain simulator
    // (this is what the paper's Fig. 6 "marks" are).
    let params = SimParams::from_design(model.design());
    let m = measure_h00(
        &params,
        &SimConfig::default(),
        1.0,
        &MeasureOptions::default(),
    );
    println!(
        "\nsimulated |H00({:.3})| = {:.4}  (HTM predicts {:.4})",
        m.omega,
        m.h.abs(),
        model.h00(m.omega).abs()
    );
    Ok(())
}
