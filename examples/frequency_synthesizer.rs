//! Frequency-synthesizer design walkthrough with physical units.
//!
//! Designs a 10 MHz-reference, ÷64 integer-N synthesizer (640 MHz out),
//! sizes the charge-pump filter, and checks the loop with both the LTI
//! and the time-varying analysis; then verifies lock acquisition with
//! the behavioral simulator.
//!
//! Run with `cargo run --release --example frequency_synthesizer`.

use htmpll::core::{analyze, LoopFilter, PllDesign, PllModel};
use htmpll::sim::{acquire_lock, LockOptions, SimConfig, SimParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Target: 640 MHz from a 10 MHz crystal, loop bandwidth ~500 kHz.
    let f_ref = 10.0e6;
    let n = 64.0;
    let f_out = n * f_ref;
    let wug_target = 2.0 * std::f64::consts::PI * 500.0e3;

    // One call does the textbook walk: zero a factor 4 below crossover,
    // pole a factor 4 above, 1 nF of filter capacitance, charge pump
    // solved for |A(jω_UG)| = 1.
    let kvco = 2.0 * std::f64::consts::PI * 100.0e6;
    let design = PllDesign::synthesize(f_ref, n, kvco, wug_target, 4.0, 1.0e-9)?;
    if let LoopFilter::SecondOrder(filter) = design.filter() {
        println!(
            "filter: R = {:.1} Ω, C1 = {:.3} nF, C2 = {:.3} pF",
            filter.r(),
            filter.c1() * 1e9,
            filter.c2() * 1e12
        );
    }
    println!("charge pump: Icp = {:.1} µA", design.icp() * 1e6);
    let model = PllModel::builder(design.clone()).build()?;
    let report = analyze(&model)?;

    println!(
        "\nsynthesizer: {:.0} MHz out from {:.0} MHz reference (÷{n})",
        f_out / 1e6,
        f_ref / 1e6
    );
    println!(
        "loop crossover: {:.1} kHz (ω_UG/ω₀ = {:.3})",
        report.omega_ug_lti / (2.0 * std::f64::consts::PI) / 1e3,
        report.omega_ug_ratio
    );
    println!(
        "phase margin: {:.1}° (LTI) → {:.1}° (time-varying)",
        report.phase_margin_lti_deg, report.phase_margin_eff_deg
    );
    println!(
        "closed-loop −3 dB bandwidth: {:.1} kHz",
        report.bandwidth_3db.unwrap_or(f64::NAN) / (2.0 * std::f64::consts::PI) / 1e3
    );
    println!(
        "peaking: {:.2} dB (LTI predicted {:.2} dB)",
        report.peaking_db, report.peaking_lti_db
    );

    // Reference spur estimate: the HTM band transfer |H_{1,0}| at small
    // offsets tells how baseband reference noise leaks to the first
    // reference harmonic of the output phase.
    let w_off = 0.05 * report.omega_ug_lti;
    let spur = model.h_band(1, w_off).abs();
    println!(
        "band transfer |H(+1 ← 0)| near DC: {:.2e} ({:.1} dBc-ish)",
        spur,
        20.0 * spur.log10()
    );

    // Lock acquisition from a 0.5 % VCO detuning.
    let result = acquire_lock(
        &SimParams::from_design(&design),
        &SimConfig::default(),
        5e-3,
        &LockOptions::default(),
    );
    if result.locked {
        println!(
            "\nlock acquired in {:.1} µs ({:.0} reference cycles) from 0.5 % detuning",
            result.lock_time * 1e6,
            result.lock_time * f_ref
        );
    } else {
        println!(
            "\nloop failed to lock within the horizon (error {:.3e})",
            result.final_error
        );
    }
    Ok(())
}
