//! Seeded profiling workload matrix with per-phase attribution.
//!
//! [`run_profile`] drives a deterministic matrix of representative
//! workloads — λ grid evaluation, cold and warm structured closed-loop
//! sweeps, the dense reference kernel, an adversarial robust grid with
//! on-pole points, and noise folding — each phase bracketed by an
//! [`obs`](crate::obs) reset so the metric registry attributes counters,
//! per-point latency quantiles, cache traffic, solver-ladder stages and
//! worker busy time to exactly one phase. The result renders as the
//! `plltool profile` attribution table ([`ProfileReport::render_table`])
//! or as JSON ([`ProfileReport::to_json`]).
//!
//! Determinism: the workload depends only on [`ProfileSpec`] — the seed
//! perturbs the grid endpoints through a splitmix64 hash, never through
//! wall-clock or OS randomness — so two runs with the same spec evaluate
//! bit-identical grids (timings of course vary).

use crate::core::{
    KernelPolicy, NoiseModel, PllDesign, PllModel, QualitySummary, SweepCache, SweepSpec,
};
use crate::htm::Truncation;
use crate::obs;
use crate::par::ThreadBudget;
use std::fmt::Write as _;
use std::time::Instant;

/// What to profile: the workload matrix is derived entirely from these
/// knobs, so a spec identifies a reproducible run.
#[derive(Debug, Clone)]
pub struct ProfileSpec {
    /// Loop-speed ratio ω_UG/ω₀ of the profiled design.
    pub ratio: f64,
    /// Grid points per sweep phase.
    pub points: usize,
    /// HTM truncation order for the closed-loop phases.
    pub trunc: usize,
    /// Repetitions of each phase (timings aggregate over all reps).
    pub reps: usize,
    /// Worker-thread budget for the sweep pool.
    pub threads: ThreadBudget,
    /// Deterministic grid-jitter seed (same seed ⇒ same grids).
    pub seed: u64,
}

impl Default for ProfileSpec {
    fn default() -> ProfileSpec {
        ProfileSpec {
            ratio: 0.1,
            points: 96,
            trunc: 8,
            reps: 1,
            threads: ThreadBudget::Auto,
            seed: 0,
        }
    }
}

/// Solver-ladder stage distribution harvested from the `num.robust.*`
/// counters of one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LadderDist {
    /// Dense factorizations entered (first rung).
    pub factor: u64,
    /// Escalations to complete pivoting.
    pub escalate_full: u64,
    /// Escalations to the Tikhonov rung.
    pub escalate_tikhonov: u64,
    /// Banded factorizations entered.
    pub factor_banded: u64,
    /// Banded solves that fell back to the dense ladder.
    pub banded_fallback: u64,
}

/// Everything one profiling phase produced.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Phase name (`lambda`, `htm_cold`, `htm_warm`, `dense`, `robust`,
    /// `noise`).
    pub name: &'static str,
    /// Wall-clock time over all reps, milliseconds.
    pub wall_ms: f64,
    /// Per-point solve latency median, microseconds (from the
    /// `core.sweep_point` span; `None` when the phase solved nothing).
    pub p50_us: Option<f64>,
    /// Per-point solve latency 99th percentile, microseconds.
    pub p99_us: Option<f64>,
    /// True while the quantiles are exact order statistics (they degrade
    /// to log₂-bucket upper bounds past 4096 points per phase).
    pub quantiles_exact: bool,
    /// Dense-cache hit rate in [0, 1]; `None` when the cache saw no
    /// traffic during the phase.
    pub cache_hit_rate: Option<f64>,
    /// Dense-cache entries evicted by the capacity bound during the
    /// phase (`core.sweep.cache_evictions`) — nonzero means the working
    /// set outgrew `HTMPLL_CACHE_CAP` and the phase is re-solving
    /// points it already paid for.
    pub cache_evictions: u64,
    /// Point-quality verdicts counted during the phase.
    pub verdicts: QualitySummary,
    /// Truncation-ladder re-runs (`core.robust.trunc_escalated`).
    pub trunc_escalated: u64,
    /// Solver-ladder stage distribution.
    pub ladder: LadderDist,
    /// Worker-pool utilization in [0, 1]: Σ busy time across workers
    /// divided by threads × wall; `None` when no pooled work ran.
    pub utilization: Option<f64>,
}

/// A full profiling run: the spec that produced it plus one
/// [`PhaseReport`] per phase, in execution order.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// The workload spec.
    pub spec: ProfileSpec,
    /// Resolved worker-thread count used for utilization math.
    pub threads: usize,
    /// Per-phase attribution, in execution order.
    pub phases: Vec<PhaseReport>,
}

/// splitmix64 — deterministic grid jitter from the spec's seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A jitter factor in [0.95, 1.05], derived from the seed stream.
fn jitter(state: &mut u64) -> f64 {
    let u = splitmix64(state) as f64 / u64::MAX as f64;
    0.95 + 0.1 * u
}

/// Pulls a counter value out of a registry snapshot (0 when absent).
fn counter_of(snaps: &[obs::MetricSnapshot], key: &str) -> u64 {
    snaps.iter().find(|s| s.key == key).map_or(0, |s| s.count)
}

/// Harvests one phase's attribution from the metric registry (which the
/// caller reset at phase entry) and the measured wall time.
fn harvest(name: &'static str, wall_ms: f64, threads: usize) -> PhaseReport {
    let snaps = obs::snapshot();
    // Span keys are hierarchical (`core.sweep.htm_dense{n=96}/sweep_point`);
    // within one phase a single parent dominates, so take the
    // highest-count match rather than merging sketches.
    let point = snaps
        .iter()
        .filter(|s| s.key.starts_with("core.") && s.key.ends_with("sweep_point"))
        .max_by_key(|s| s.count);
    let (p50_us, p99_us, quantiles_exact) = match point {
        Some(p) => (
            p.p50.map(|v| v / 1e3),
            p.p99.map(|v| v / 1e3),
            p.quantiles_exact,
        ),
        None => (None, None, true),
    };
    let hits = counter_of(&snaps, "core.sweep.dense_cache.hit");
    let misses = counter_of(&snaps, "core.sweep.dense_cache.miss");
    let cache_hit_rate = if hits + misses > 0 {
        Some(hits as f64 / (hits + misses) as f64)
    } else {
        None
    };
    let verdicts = QualitySummary {
        exact: counter_of(&snaps, "core.robust.exact") as usize,
        refined: counter_of(&snaps, "core.robust.refined") as usize,
        perturbed: counter_of(&snaps, "core.robust.perturbed") as usize,
        failed: counter_of(&snaps, "core.robust.failed") as usize,
        ..QualitySummary::default()
    };
    let ladder = LadderDist {
        factor: counter_of(&snaps, "num.robust.factor"),
        escalate_full: counter_of(&snaps, "num.robust.escalate_full"),
        escalate_tikhonov: counter_of(&snaps, "num.robust.escalate_tikhonov"),
        factor_banded: counter_of(&snaps, "num.robust.factor_banded"),
        banded_fallback: counter_of(&snaps, "num.robust.banded_fallback"),
    };
    let busy_ns = snaps
        .iter()
        .find(|s| s.key == "par.worker_busy_ns")
        .map_or(0.0, |s| s.sum);
    let utilization = if busy_ns > 0.0 && wall_ms > 0.0 {
        Some((busy_ns / (threads as f64 * wall_ms * 1e6)).min(1.0))
    } else {
        None
    };
    PhaseReport {
        name,
        wall_ms,
        p50_us,
        p99_us,
        quantiles_exact,
        cache_hit_rate,
        cache_evictions: counter_of(&snaps, "core.sweep.cache_evictions"),
        verdicts,
        trunc_escalated: counter_of(&snaps, "core.robust.trunc_escalated"),
        ladder,
        utilization,
    }
}

/// Runs the profiling workload matrix and returns per-phase attribution.
///
/// Raises the obs filter to `debug` when per-point latency collection is
/// not already enabled (the attribution table is empty without it) and
/// resets the metric registry at every phase boundary — callers holding
/// accumulated metrics should export them first.
///
/// # Errors
///
/// A human-readable message when the design or a sweep grid cannot be
/// constructed (e.g. a ratio outside the reference-design family).
pub fn run_profile(spec: &ProfileSpec) -> Result<ProfileReport, String> {
    // Profiling wants the per-point latency histogram (`sweep_point`
    // lives at the trace tier precisely because it is per-point hot),
    // so raise the filter to `trace` unless it is already there.
    if !obs::enabled("core", obs::Level::Trace) {
        obs::override_filter("trace");
    }
    let design = PllDesign::reference_design(spec.ratio).map_err(|e| e.to_string())?;
    let model = PllModel::builder(design.clone())
        .build()
        .map_err(|e| e.to_string())?;
    let w0 = design.omega_ref();
    let trunc = Truncation::new(spec.trunc.max(1));
    let points = spec.points.max(4);
    let reps = spec.reps.max(1);
    let threads = spec.threads.resolve();

    // Mixed with a fixed tag so a zero seed still jitters.
    let mut rng = spec.seed ^ 0x4854_4d50_4c4c_5052;
    let lam_spec = SweepSpec::log(1e-3 * w0 * jitter(&mut rng), 0.49 * w0, points)
        .map_err(|e| e.to_string())?
        .with_threads(spec.threads);
    let htm_spec = SweepSpec::log(1e-2 * w0 * jitter(&mut rng), 0.49 * w0, points)
        .map_err(|e| e.to_string())?
        .with_truncation(trunc)
        .with_threads(spec.threads);
    let dense_spec = htm_spec.clone().with_kernel(KernelPolicy::Dense);
    // Adversarial grid: healthy band points bracketing exact on-pole
    // evaluations at ω₀ and 0 aliases — exercises the verdict ladder.
    let mut adversarial = Vec::with_capacity(points);
    for (i, w) in lam_spec.grid.iter().enumerate() {
        adversarial.push(if i % 8 == 7 { w0 } else { w });
    }
    let robust_spec = SweepSpec::new(adversarial)
        .with_truncation(trunc)
        .with_threads(spec.threads);

    let mut phases = Vec::new();
    let mut phase =
        |name: &'static str, work: &mut dyn FnMut() -> Result<(), String>| -> Result<(), String> {
            obs::reset();
            let t0 = Instant::now();
            for _ in 0..reps {
                work()?;
            }
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            phases.push(harvest(name, wall_ms, threads));
            Ok(())
        };

    let lam = model.lambda();
    phase("lambda", &mut || {
        lam.eval_grid(&lam_spec);
        Ok::<(), String>(())
    })?;

    let warm_cache = SweepCache::new();
    phase("htm_cold", &mut || {
        model
            .closed_loop_htm_grid_cached(&htm_spec, &SweepCache::new())
            .map(|_| ())
            .map_err(|e| e.to_string())
    })?;
    // Pre-warm outside the timed region, then measure the all-hit pass.
    model
        .closed_loop_htm_grid_cached(&htm_spec, &warm_cache)
        .map_err(|e| e.to_string())?;
    phase("htm_warm", &mut || {
        model
            .closed_loop_htm_grid_cached(&htm_spec, &warm_cache)
            .map(|_| ())
            .map_err(|e| e.to_string())
    })?;
    phase("dense", &mut || {
        model
            .closed_loop_htm_grid_cached(&dense_spec, &SweepCache::new())
            .map(|_| ())
            .map_err(|e| e.to_string())
    })?;
    phase("robust", &mut || {
        let outcome = model.closed_loop_htm_grid_robust(&robust_spec, &SweepCache::new());
        let _ = outcome.summary();
        Ok::<(), String>(())
    })?;
    let noise = NoiseModel::new(&model, 4);
    phase("noise", &mut || {
        let _ = noise.output_psd_grid(&htm_spec, &|_| 1e-12, &|f| 1e-12 / (1.0 + f * f));
        Ok::<(), String>(())
    })?;

    Ok(ProfileReport {
        spec: spec.clone(),
        threads,
        phases,
    })
}

impl ProfileReport {
    /// Renders the per-phase attribution table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profile — ratio {:.3}, {} pts, K = {}, reps {}, threads {}",
            self.spec.ratio, self.spec.points, self.spec.trunc, self.spec.reps, self.threads
        );
        let _ = writeln!(
            out,
            "{:<10} {:>10} {:>9} {:>9} {:>7} {:>6} {:>22} {:>16} {:>6}",
            "phase",
            "wall_ms",
            "p50_us",
            "p99_us",
            "cache%",
            "evict",
            "verdicts e/r/p/f",
            "ladder f/fp/tik/b",
            "util%"
        );
        for p in &self.phases {
            let q = |v: Option<f64>| match v {
                Some(x) if p.quantiles_exact => format!("{x:.1}"),
                Some(x) => format!("≤{x:.1}"),
                None => "-".to_string(),
            };
            let cache = p
                .cache_hit_rate
                .map_or("-".to_string(), |r| format!("{:.1}", 100.0 * r));
            let util = p
                .utilization
                .map_or("-".to_string(), |u| format!("{:.1}", 100.0 * u));
            let verdicts = format!(
                "{}/{}/{}/{}",
                p.verdicts.exact, p.verdicts.refined, p.verdicts.perturbed, p.verdicts.failed
            );
            let ladder = format!(
                "{}/{}/{}/{}",
                p.ladder.factor,
                p.ladder.escalate_full,
                p.ladder.escalate_tikhonov,
                p.ladder.factor_banded
            );
            let _ = writeln!(
                out,
                "{:<10} {:>10.2} {:>9} {:>9} {:>7} {:>6} {:>22} {:>16} {:>6}",
                p.name,
                p.wall_ms,
                q(p.p50_us),
                q(p.p99_us),
                cache,
                p.cache_evictions,
                verdicts,
                ladder,
                util
            );
        }
        out
    }

    /// Serializes the report as JSON (hand-rolled, schema version 1).
    pub fn to_json(&self) -> String {
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            }
        }
        fn opt(v: Option<f64>) -> String {
            v.map_or("null".to_string(), num)
        }
        let mut out = String::new();
        out.push_str("{\n  \"version\": 1,\n");
        let _ = writeln!(
            out,
            "  \"spec\": {{\"ratio\": {}, \"points\": {}, \"trunc\": {}, \"reps\": {}, \"threads\": {}, \"seed\": {}}},",
            num(self.spec.ratio),
            self.spec.points,
            self.spec.trunc,
            self.spec.reps,
            self.threads,
            self.spec.seed
        );
        out.push_str("  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"wall_ms\": {}, \"p50_us\": {}, \"p99_us\": {}, \
                 \"quantiles_exact\": {}, \"cache_hit_rate\": {}, \"cache_evictions\": {}, \
                 \"verdicts\": {{\"exact\": {}, \"refined\": {}, \"perturbed\": {}, \"failed\": {}}}, \
                 \"trunc_escalated\": {}, \
                 \"ladder\": {{\"factor\": {}, \"escalate_full\": {}, \"escalate_tikhonov\": {}, \
                 \"factor_banded\": {}, \"banded_fallback\": {}}}, \"utilization\": {}}}",
                p.name,
                num(p.wall_ms),
                opt(p.p50_us),
                opt(p.p99_us),
                p.quantiles_exact,
                opt(p.cache_hit_rate),
                p.cache_evictions,
                p.verdicts.exact,
                p.verdicts.refined,
                p.verdicts.perturbed,
                p.verdicts.failed,
                p.trunc_escalated,
                p.ladder.factor,
                p.ladder.escalate_full,
                p.ladder.escalate_tikhonov,
                p.ladder.factor_banded,
                p.ladder.banded_fallback,
                opt(p.utilization)
            );
            out.push_str(if i + 1 < self.phases.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_attributes_phases() {
        let spec = ProfileSpec {
            points: 16,
            trunc: 3,
            threads: ThreadBudget::Fixed(1),
            ..ProfileSpec::default()
        };
        let report = run_profile(&spec).expect("profile runs");
        crate::obs::override_filter("off");
        let names: Vec<&str> = report.phases.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            ["lambda", "htm_cold", "htm_warm", "dense", "robust", "noise"]
        );
        let cold = &report.phases[1];
        let warm = &report.phases[2];
        assert!(cold.p50_us.is_some(), "cold sweep records point latency");
        assert_eq!(cold.cache_hit_rate, Some(0.0), "fresh cache: all misses");
        assert_eq!(warm.cache_hit_rate, Some(1.0), "warm cache: all hits");
        let dense = &report.phases[3];
        assert!(
            dense.ladder.factor > 0,
            "dense kernel enters the solver ladder: {:?}",
            dense.ladder
        );
        let robust = &report.phases[4];
        assert!(
            robust.verdicts.failed > 0,
            "on-pole points fail: {:?}",
            robust.verdicts
        );
        assert!(robust.verdicts.exact + robust.verdicts.refined > 0);

        let table = report.render_table();
        assert!(table.contains("phase"), "{table}");
        assert!(table.contains("htm_warm"), "{table}");
        let json = report.to_json();
        assert!(json.contains("\"cache_hit_rate\": 1"), "{json}");
        assert!(json.contains("\"name\": \"robust\""), "{json}");
    }

    #[test]
    fn seed_changes_grid_but_stays_deterministic() {
        let mut a = 7u64;
        let mut b = 7u64;
        assert_eq!(jitter(&mut a), jitter(&mut b));
        let mut c = 8u64;
        assert_ne!(jitter(&mut a), jitter(&mut c));
        let j = jitter(&mut c);
        assert!((0.95..=1.05).contains(&j));
    }
}
