//! `plltool` — command-line front end for the htmpll analyses.
//!
//! ```text
//! plltool analyze --ratio 0.15
//! plltool analyze --fref 10e6 --n 64 --kvco 6.28e8 --bw 500e3
//! plltool sweep   --from 0.02 --to 0.3 --points 15
//! plltool bode    --ratio 0.15 --lambda
//! plltool step    --ratio 0.2 --until 40
//! plltool spur    --ratio 0.1 --leakage-frac 1e-3
//! ```
//!
//! Argument parsing is hand-rolled (`--key value` pairs) to keep the
//! workspace dependency-free.

use htmpll::core::{
    analyze_with, bode_grid, dominant_poles, optimize_loop, transient, EffectiveGain, LeakageSpurs,
    NoiseModel, NoiseShape, NoiseSpec, OptimizeSpec, PllDesign, PllModel, PointQuality,
    SampleHoldModel, SweepCache, SweepSpec, MAX_AUTO_TRUNCATION,
};
use htmpll::htm::{Htm, HtmRepr, Truncation};
use htmpll::lti::FrequencyGrid;
use htmpll::num::optim::lin_grid;
use htmpll::num::Complex;
use htmpll::par::ThreadBudget;
use htmpll::sim::{acquire_lock, LockOptions, PllSim, SimConfig, SimParams};
use htmpll::spectral::{periodogram, Window};
use std::collections::HashMap;
use std::process::ExitCode;

/// Parsed `--key value` arguments.
#[derive(Debug, Clone, Default)]
struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses `--key value` pairs; rejects stray positionals and
    /// dangling flags.
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut values = HashMap::new();
        let mut it = raw.iter();
        while let Some(tok) = it.next() {
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got `{tok}`"))?;
            let val = it
                .next()
                .ok_or_else(|| format!("flag --{key} needs a value"))?;
            values.insert(key.to_string(), val.clone());
        }
        Ok(Args { values })
    }

    fn f64_opt(&self, key: &str) -> Result<Option<f64>, String> {
        match self.values.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse::<f64>()
                .map(Some)
                .map_err(|_| format!("--{key}: `{v}` is not a number")),
        }
    }

    fn f64_or(&self, key: &str, default: f64) -> Result<f64, String> {
        Ok(self.f64_opt(key)?.unwrap_or(default))
    }

    fn usize_or(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse::<usize>()
                .map_err(|_| format!("--{key}: `{v}` is not an integer")),
        }
    }

    fn has(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }

    /// Worker-thread budget from `--threads N` (`0` = auto-detect).
    fn threads(&self) -> Result<ThreadBudget, String> {
        Ok(ThreadBudget::from(self.usize_or("threads", 0)?))
    }
}

/// Builds a design from either `--ratio` (normalized reference family)
/// or physical parameters `--fref --n --kvco --bw [--spread --ctotal]`.
fn design_from(args: &Args) -> Result<PllDesign, String> {
    if let Some(ratio) = args.f64_opt("ratio")? {
        let spread = args.f64_or("spread", 4.0)?;
        return PllDesign::reference_design_shaped(ratio, spread).map_err(|e| e.to_string());
    }
    let fref = args
        .f64_opt("fref")?
        .ok_or("need --ratio or --fref/--n/--kvco/--bw")?;
    let n = args.f64_or("n", 1.0)?;
    let kvco = args.f64_opt("kvco")?.ok_or("--kvco required with --fref")?;
    let bw = args.f64_opt("bw")?.ok_or("--bw required with --fref")?;
    let spread = args.f64_or("spread", 4.0)?;
    let ctotal = args.f64_or("ctotal", 1e-9)?;
    PllDesign::synthesize(
        fref,
        n,
        kvco,
        2.0 * std::f64::consts::PI * bw,
        spread,
        ctotal,
    )
    .map_err(|e| e.to_string())
}

fn cmd_analyze(args: &Args) -> Result<(), String> {
    let design = design_from(args)?;
    let model = PllModel::builder(design.clone())
        .build()
        .map_err(|e| e.to_string())?;
    let r = analyze_with(&model, args.threads()?).map_err(|e| e.to_string())?;
    println!("design             : {design}");
    println!("ω₀ (reference)     : {:.6e} rad/s", design.omega_ref());
    println!(
        "ω_UG (LTI)         : {:.6e} rad/s  (ω_UG/ω₀ = {:.4})",
        r.omega_ug_lti, r.omega_ug_ratio
    );
    println!("phase margin (LTI) : {:.2}°", r.phase_margin_lti_deg);
    println!(
        "ω_UG,eff           : {:.6e} rad/s  ({:.3}× LTI)",
        r.omega_ug_eff,
        r.omega_ug_eff / r.omega_ug_lti
    );
    println!(
        "phase margin (eff) : {:.2}°  ({:.1} % degradation)",
        r.phase_margin_eff_deg,
        100.0 * r.phase_margin_degradation_rel()
    );
    match r.bandwidth_3db {
        Some(bw) => println!("−3 dB bandwidth    : {bw:.6e} rad/s"),
        None => println!("−3 dB bandwidth    : (none in scan window)"),
    }
    println!(
        "peaking            : {:.2} dB (LTI predicted {:.2} dB)",
        r.peaking_db, r.peaking_lti_db
    );
    println!(
        "stable (HTM)       : {}{}",
        r.nyquist_stable,
        if r.beyond_sampling_limit {
            "  [beyond sampling limit]"
        } else {
            ""
        }
    );
    if let Ok(poles) = dominant_poles(&model) {
        println!("strip poles        :");
        for p in poles {
            println!(
                "    {:.4} {:+.4}j   (Im/(ω₀/2) = {:.3})",
                p.re,
                p.im,
                p.im / (0.5 * design.omega_ref())
            );
        }
    }
    if args.values.get("pfd").map(String::as_str) == Some("sh") {
        let sh = SampleHoldModel::new(model.design().clone()).map_err(|e| e.to_string())?;
        match sh.margins() {
            Ok(m) => println!(
                "sample-and-hold PFD: ω_UG,eff = {:.4e} rad/s, PM = {:.2}°",
                m.omega_ug, m.phase_margin_deg
            ),
            Err(e) => println!("sample-and-hold PFD: no margin ({e})"),
        }
    }
    if args.has("symbolic") {
        let lam = EffectiveGain::new(&design.open_loop_gain(), design.omega_ref())
            .map_err(|e| e.to_string())?;
        println!("\n{}", lam.symbolic());
    }
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    let from = args.f64_or("from", 0.02)?;
    let to = args.f64_or("to", 0.3)?;
    let points = args.usize_or("points", 15)?;
    let threads = args.threads()?;
    println!(
        "{:>8} {:>14} {:>12} {:>12} {:>8}",
        "ratio", "wUG_eff/wUG", "PM_eff", "PM_LTI", "limit?"
    );
    for ratio in lin_grid(from, to, points.max(2)) {
        let model =
            PllModel::builder(PllDesign::reference_design(ratio).map_err(|e| e.to_string())?)
                .build()
                .map_err(|e| e.to_string())?;
        let r = analyze_with(&model, threads).map_err(|e| e.to_string())?;
        println!(
            "{:8.3} {:14.4} {:12.2} {:12.2} {:>8}",
            ratio,
            r.omega_ug_eff / r.omega_ug_lti,
            r.phase_margin_eff_deg,
            r.phase_margin_lti_deg,
            if r.beyond_sampling_limit { "YES" } else { "" }
        );
    }
    Ok(())
}

fn cmd_bode(args: &Args) -> Result<(), String> {
    let design = design_from(args)?;
    let threads = args.threads()?;
    let model = PllModel::builder(design.clone())
        .build()
        .map_err(|e| e.to_string())?;
    let wug = analyze_with(&model, threads)
        .map_err(|e| e.to_string())?
        .omega_ug_lti;
    let points = args.usize_or("points", 31)?;
    let grid =
        FrequencyGrid::log(1e-2 * wug, 1e2 * wug, points.max(2)).map_err(|e| e.to_string())?;
    println!("{:>14} {:>12} {:>12}", "omega", "mag_dB", "phase_deg");
    if args.has("lambda") {
        let lam = EffectiveGain::new(&design.open_loop_gain(), design.omega_ref())
            .map_err(|e| e.to_string())?;
        // λ is only meaningful inside the first band.
        let spec =
            SweepSpec::new(grid.retain(|w| w < 0.4999 * design.omega_ref())).with_threads(threads);
        for p in bode_grid(|w| lam.eval_jw(w), &spec) {
            println!("{:14.6e} {:12.3} {:12.2}", p.omega, p.mag_db, p.phase_deg);
        }
    } else {
        let a = design.open_loop_gain();
        let spec = SweepSpec::new(grid).with_threads(threads);
        for p in bode_grid(|w| a.eval_jw(w), &spec) {
            println!("{:14.6e} {:12.3} {:12.2}", p.omega, p.mag_db, p.phase_deg);
        }
    }
    Ok(())
}

fn cmd_step(args: &Args) -> Result<(), String> {
    let design = design_from(args)?;
    let model = PllModel::builder(design)
        .build()
        .map_err(|e| e.to_string())?;
    let until = args.f64_or("until", 40.0)?;
    let points = args.usize_or("points", 20)?;
    let ts = lin_grid(until / points as f64, until, points.max(2));
    let ys = transient::step_response(&model, &ts);
    println!("{:>12} {:>12}", "t", "theta/step");
    for (t, y) in ts.iter().zip(&ys) {
        println!("{t:12.4} {y:12.5}");
    }
    Ok(())
}

fn cmd_hop(args: &Args) -> Result<(), String> {
    let design = design_from(args)?;
    let model = PllModel::builder(design)
        .build()
        .map_err(|e| e.to_string())?;
    let until = args.f64_or("until", 40.0)?;
    let points = args.usize_or("points", 20)?;
    let ts = lin_grid(until / points as f64, until, points.max(2));
    let errs = transient::frequency_step_error(&model, &ts);
    println!("{:>12} {:>14}", "t", "tracking error");
    for (t, e) in ts.iter().zip(&errs) {
        println!("{t:12.4} {e:14.5e}");
    }
    Ok(())
}

fn cmd_spur(args: &Args) -> Result<(), String> {
    let design = design_from(args)?;
    let frac = args.f64_or("leakage-frac", 1e-3)?;
    let k_max = args.usize_or("kmax", 4)? as i64;
    let model = PllModel::builder(design.clone())
        .build()
        .map_err(|e| e.to_string())?;
    let spurs = LeakageSpurs::new(&model, frac * design.icp());
    println!("leakage            : {:.3e} × I_cp", frac);
    println!(
        "static offset      : {:.4e} s ({:.3e}·T)",
        spurs.static_offset(),
        spurs.static_offset() * design.f_ref()
    );
    println!("{:>6} {:>16} {:>12}", "k", "|sideband| (s)", "dBc");
    for line in spurs.scan(k_max, args.threads()?) {
        println!(
            "{:>6} {:16.4e} {:12.2}",
            line.k,
            line.sideband.abs(),
            line.level_dbc
        );
    }
    Ok(())
}

fn cmd_optimize(args: &Args) -> Result<(), String> {
    let spec = OptimizeSpec {
        min_pm_eff_deg: args.f64_or("min-pm", 45.0)?,
        ratios: (
            args.f64_or("from", 0.03)?,
            args.f64_or("to", 0.25)?,
            args.usize_or("points", 10)?,
        ),
        spreads: vec![3.0, 4.0, 6.0],
    };
    let noise = NoiseSpec {
        reference: NoiseShape::White {
            level: args.f64_or("ref-noise", 1e-12)?,
        },
        vco: NoiseShape::PowerLaw {
            level_at_ref: args.f64_or("vco-noise", 1e-11)?,
            w_ref: 1.0,
            exponent: 2,
        },
        band: (1e-3, 0.45),
    };
    let best = optimize_loop(&spec, &noise).map_err(|e| e.to_string())?;
    println!(
        "best: ω_UG/ω₀ = {:.3}, spread = {} (PM_LTI {:.1}°, PM_eff {:.1}°)",
        best.ratio, best.spread, best.report.phase_margin_lti_deg, best.report.phase_margin_eff_deg
    );
    println!(
        "integrated output noise: {:.3e} (rms {:.3e})",
        best.integrated_noise,
        best.integrated_noise.sqrt()
    );
    Ok(())
}

/// One row of the doctor health table.
struct DoctorRow {
    check: &'static str,
    verdict: String,
    cond: Option<f64>,
    residual: Option<f64>,
    ok: bool,
    note: String,
}

/// Short verdict label for the health table.
fn verdict_label(q: &PointQuality) -> &'static str {
    q.name()
}

/// Stress-evaluates a model at adversarial points — on-pole `s`, a loop
/// driven to `ω_UG ≈ ω₀`, (near-)singular `I + G̃`, extreme truncation
/// orders, NaN injection — and prints a health table. Every check must
/// complete without panicking AND land on its expected verdict class;
/// any surprise fails the command (exit code 2).
fn cmd_doctor(args: &Args) -> Result<(), String> {
    let design = if args.has("ratio") || args.has("fref") {
        design_from(args)?
    } else {
        PllDesign::reference_design(0.1).map_err(|e| e.to_string())?
    };
    let model = PllModel::builder(design.clone())
        .build()
        .map_err(|e| e.to_string())?;
    let w0 = design.omega_ref();
    let cache = SweepCache::new();
    let trunc = Truncation::new(4);
    let mut rows: Vec<DoctorRow> = Vec::new();

    // A dense-solve check: evaluate at `s`, expect one of `allowed`.
    let mut dense_check = |check: &'static str, s: Complex, k: Truncation, allowed: &[&str]| {
        let row = match cache.dense_robust(&model, s, k) {
            Ok(d) => DoctorRow {
                check,
                verdict: verdict_label(&d.quality).to_string(),
                cond: Some(d.report.cond_estimate),
                residual: Some(d.report.residual),
                ok: allowed.contains(&verdict_label(&d.quality)),
                note: format!("stages {}", d.report.stages_tried.len()),
            },
            Err(reason) => DoctorRow {
                check,
                verdict: "failed".to_string(),
                cond: None,
                residual: None,
                ok: allowed.contains(&"failed"),
                note: reason.chars().take(48).collect(),
            },
        };
        rows.push(row);
    };

    // 1-2: exactly on the aliased-integrator poles of the open loop —
    // the entries are non-finite there; the engine must fail the point
    // gracefully, never panic or return NaN as a value.
    dense_check("on-pole s = j*w0", Complex::from_im(w0), trunc, &["failed"]);
    dense_check("integrator pole s = 0", Complex::ZERO, trunc, &["failed"]);
    // 3: NaN injection through the public API.
    dense_check(
        "NaN Laplace point",
        Complex::new(f64::NAN, 0.0),
        trunc,
        &["failed"],
    );
    // 4: a usable point at the band edge, where conditioning is worst.
    dense_check(
        "band edge s = j*0.499*w0",
        Complex::from_im(0.499 * w0),
        trunc,
        &["exact", "refined", "perturbed"],
    );
    // 5: on a closed-loop strip pole (if one is found): I+G~ is
    // near-singular; the ladder must still produce a usable value.
    if let Ok(poles) = dominant_poles(&model) {
        if let Some(p) = poles.first() {
            dense_check(
                "closed-loop pole s = p1",
                *p,
                trunc,
                &["exact", "refined", "perturbed"],
            );
        }
    }
    // 6-7: extreme truncation orders.
    dense_check(
        "truncation K = 1",
        Complex::from_im(0.3 * w0),
        Truncation::new(1),
        &["exact", "refined", "perturbed"],
    );
    dense_check(
        "truncation K = MAX",
        Complex::from_im(0.3 * w0),
        Truncation::new(MAX_AUTO_TRUNCATION),
        &["exact", "refined", "perturbed"],
    );

    // 8: exactly singular I+G~ (G~ = -I): the Tikhonov rung must kick
    // in and mark the result perturbed.
    let singular = Htm::identity(trunc, w0).scale(-Complex::ONE);
    rows.push(match singular.closed_loop_factored_robust() {
        Ok((_, cl, report)) => DoctorRow {
            check: "singular I+G~ (G~ = -I)",
            verdict: if report.perturbed {
                "perturbed".into()
            } else {
                "unexpected".into()
            },
            cond: Some(report.cond_estimate),
            residual: Some(report.residual),
            ok: report.perturbed && cl.as_matrix().is_finite(),
            note: format!("stages {}", report.stages_tried.len()),
        },
        Err(e) => DoctorRow {
            check: "singular I+G~ (G~ = -I)",
            verdict: "failed".into(),
            cond: None,
            residual: None,
            ok: false,
            note: e.to_string(),
        },
    });

    // 9: structured-kernel probe — a banded open loop whose I+G~ is a
    // tridiagonal Toeplitz matrix tuned to be singular to working
    // precision (smallest eigenvalue a + 2·cos(π/(n+1)) = 0). The
    // banded rung must refuse it at the conditioning gate and escalate
    // through the dense ladder to a refined/perturbed value — never
    // silently return a wrong structured answer.
    let n = trunc.dim();
    let a0 = -2.0 * (std::f64::consts::PI / (n as f64 + 1.0)).cos();
    let near_singular = Htm::from_repr(
        trunc,
        w0,
        HtmRepr::BandedToeplitz {
            coeffs: vec![Complex::ONE, Complex::from_re(a0 - 1.0), Complex::ONE],
            row_scale: None,
        },
    );
    rows.push(match near_singular.closed_loop_factored_robust() {
        Ok((_, cl, report)) => {
            let quality = PointQuality::from_report(&report);
            let escalated = report.stages_tried.len() > 1;
            DoctorRow {
                check: "structured near-singular band",
                verdict: verdict_label(&quality).to_string(),
                cond: Some(report.cond_estimate),
                residual: Some(report.residual),
                ok: escalated
                    && matches!(quality, PointQuality::Refined | PointQuality::Perturbed)
                    && cl.as_matrix().is_finite(),
                note: format!("stages {}", report.stages_tried.len()),
            }
        }
        Err(e) => DoctorRow {
            check: "structured near-singular band",
            verdict: "failed".into(),
            cond: None,
            residual: None,
            ok: false,
            note: e.to_string(),
        },
    });

    // 10: a loop pushed to the sampling limit (ω_UG ≈ ω₀ regime) must
    // still analyze end to end and report its degraded-point counts.
    let fast_row = match PllDesign::reference_design(0.45)
        .map_err(|e| e.to_string())
        .and_then(|d| PllModel::builder(d).build().map_err(|e| e.to_string()))
        .and_then(|m| analyze_with(&m, args.threads()?).map_err(|e| e.to_string()))
    {
        Ok(r) => DoctorRow {
            check: "fast loop w_UG ~ w0",
            verdict: "completed".into(),
            cond: Some(r.quality.worst_cond),
            residual: Some(r.quality.worst_residual),
            ok: true,
            note: format!(
                "beyond_limit={} degraded={}",
                r.beyond_sampling_limit,
                r.quality.degraded()
            ),
        },
        Err(e) => DoctorRow {
            check: "fast loop w_UG ~ w0",
            verdict: "error".into(),
            cond: None,
            residual: None,
            ok: false,
            note: e.chars().take(48).collect(),
        },
    };
    rows.push(fast_row);

    println!("plltool doctor — numerical-resilience health check");
    println!("design : {design}");
    println!();
    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>6}  note",
        "check", "verdict", "cond", "residual", "ok"
    );
    let mut failures = 0usize;
    for r in &rows {
        let cond = r.cond.map_or("-".to_string(), |c| format!("{c:.2e}"));
        let res = r.residual.map_or("-".to_string(), |x| format!("{x:.2e}"));
        println!(
            "{:<26} {:>10} {:>10} {:>10} {:>6}  {}",
            r.check,
            r.verdict,
            cond,
            res,
            if r.ok { "ok" } else { "FAIL" },
            r.note
        );
        if !r.ok {
            failures += 1;
        }
    }
    println!();
    if failures == 0 {
        println!(
            "doctor: HEALTHY ({}/{} checks as expected)",
            rows.len(),
            rows.len()
        );
        Ok(())
    } else {
        Err(format!(
            "doctor: {failures}/{} checks did NOT behave as expected",
            rows.len()
        ))
    }
}

/// Cross-stack differential verification: runs the deterministic
/// scenario corpus through the λ(s), z-domain and time-domain stacks
/// and reconciles every overlapping observable. Exit 2 on any
/// `Mismatch` verdict.
fn cmd_xcheck(args: &Args) -> Result<(), String> {
    let corpus = args
        .values
        .get("corpus")
        .cloned()
        .unwrap_or_else(|| "default".to_string());
    let report = htmpll::xcheck::run_corpus(&corpus, args.threads()?).map_err(|e| e.to_string())?;
    print!("{}", report.render_table());
    println!();
    println!(
        "xcheck: corpus {} — {} agree, {} tolerated, {} mismatch ({} checks, {} scenarios)",
        report.corpus,
        report.agreements(),
        report.tolerated(),
        report.mismatches(),
        report.total_checks(),
        report.scenarios.len()
    );
    println!("digest : {}", report.digest());
    if let Some(path) = args.values.get("json") {
        std::fs::write(path, report.to_json()).map_err(|e| format!("--json {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = args.values.get("bench") {
        let json = report.timings.to_bench_json(
            &report.corpus,
            report.scenarios.len(),
            report.total_checks(),
        );
        std::fs::write(path, json).map_err(|e| format!("--bench {path}: {e}"))?;
        println!("wrote {path}");
    }
    if report.mismatches() > 0 {
        return Err(format!(
            "xcheck: {} cross-stack mismatch(es) — the models disagree beyond every justified bound",
            report.mismatches()
        ));
    }
    Ok(())
}

/// Runs a representative slice of the whole pipeline — analysis, strip
/// poles, truncated/dense HTM closed loop, eigenvalues, parallel
/// frequency sweeps, behavioral simulation, lock acquisition, spectral
/// estimation — under the obs filter, then reports every metric the run
/// produced.
fn cmd_metrics(args: &Args) -> Result<(), String> {
    let spec = args
        .values
        .get("obs")
        .cloned()
        .unwrap_or_else(|| "debug".to_string());
    htmpll::obs::override_filter(&spec);
    htmpll::obs::reset();
    let threads = args.threads()?;

    let design = if args.has("ratio") || args.has("fref") {
        design_from(args)?
    } else {
        PllDesign::reference_design(0.1).map_err(|e| e.to_string())?
    };
    let model = PllModel::builder(design.clone())
        .build()
        .map_err(|e| e.to_string())?;

    // Frequency-domain leg: margins, strip poles, λ truncation — all
    // scan grids run on the parallel pool.
    analyze_with(&model, threads).map_err(|e| e.to_string())?;
    let _ = dominant_poles(&model);
    let lam = model.lambda();
    let k = lam.suggest_truncation(1e-6);
    let s = Complex::from_im(0.3 * design.omega_ref());
    let _ = lam.eval_truncated(s, k.min(1000));

    // HTM leg: dense closed loop + generalized Nyquist eigenvalues.
    let trunc = Truncation::new(k.min(10));
    let cl = model
        .closed_loop_htm_dense(s, trunc)
        .map_err(|e| e.to_string())?;
    cl.eigenvalues()
        .map_err(|e| format!("eigensolver: {e:?}"))?;

    // Parallel-sweep leg: λ grid, dense HTM grid (twice through one
    // cache, so the second pass is all hits), folded noise PSDs and a
    // spur table — exercises the pool and the sweep cache end to end.
    let w0 = design.omega_ref();
    let sweep_spec = SweepSpec::log(1e-3 * w0, 0.49 * w0, 512)
        .map_err(|e| e.to_string())?
        .with_threads(threads);
    let _ = lam.eval_grid(&sweep_spec);
    let htm_spec = SweepSpec::log(1e-2 * w0, 0.49 * w0, 96)
        .map_err(|e| e.to_string())?
        .with_truncation(trunc)
        .with_threads(threads);
    let cache = SweepCache::new();
    model
        .closed_loop_htm_grid_cached(&htm_spec, &cache)
        .map_err(|e| e.to_string())?;
    model
        .closed_loop_htm_grid_cached(&htm_spec, &cache)
        .map_err(|e| e.to_string())?;
    // Robustness leg: a grid with a deliberately on-pole point (ω = ω₀)
    // exercises the verdict/escalation path — robust.failed alongside
    // the healthy points' robust.exact.
    let adversarial = SweepSpec::new(vec![0.2 * w0, w0, 0.45 * w0])
        .with_truncation(trunc)
        .with_threads(threads);
    let robust = model.closed_loop_htm_grid_robust(&adversarial, &cache);
    let _ = robust.summary();
    let noise = NoiseModel::new(&model, 8);
    let _ = noise.output_psd_grid(&sweep_spec, &|_| 1e-12, &|f| 1e-12 / (1.0 + f * f));
    let _ = LeakageSpurs::new(&model, 1e-3 * design.icp()).scan(16, threads);

    // Time-domain leg: settle run, lock acquisition, PSD of the trace.
    let params = SimParams::from_design(&design);
    let config = SimConfig::default();
    let mut sim = PllSim::new(params.clone(), config);
    let trace = sim.run(30.0 * params.t_ref, &|_| 0.0);
    let _ = acquire_lock(&params, &config, 5e-3, &LockOptions::default());
    let fs = 1.0 / trace.dt;
    periodogram(&trace.v_ctrl, fs, Window::Hann).map_err(|e| e.to_string())?;

    println!("filter : {}", spec);
    println!(
        "levels : {}",
        htmpll::obs::describe_targets(&["num", "htm", "core", "sim", "spectral"])
    );
    println!();
    print!("{}", htmpll::obs::export_table());
    if let Some(path) = args.values.get("json") {
        std::fs::write(path, htmpll::obs::export_json())
            .map_err(|e| format!("--json {path}: {e}"))?;
        println!("\nwrote {path}");
    }
    Ok(())
}

/// Wraps an inner command in a trace session and exports the event
/// timeline as Chrome Trace Format JSON (and optionally a folded-stack
/// flamegraph). The inner command's own flags pass straight through —
/// `plltool trace sweep --points 5 --out t.json` traces a 5-point sweep.
fn cmd_trace(inner: &str, args: &Args) -> Result<(), String> {
    if inner == "trace" || inner == "profile" {
        return Err(format!("trace cannot wrap `{inner}`"));
    }
    let out = args
        .values
        .get("out")
        .cloned()
        .unwrap_or_else(|| "trace.json".to_string());
    let capacity = args.usize_or("trace-capacity", htmpll::obs::DEFAULT_TRACE_CAPACITY)?;
    // Timeline events ride on span/instant sites, so collection must be
    // on; debug captures the per-point and solver-ladder detail.
    let spec = args
        .values
        .get("obs")
        .cloned()
        .unwrap_or_else(|| "debug".to_string());
    htmpll::obs::override_filter(&spec);
    htmpll::obs::trace_start(capacity);
    let result = dispatch(inner, args);
    let trace = htmpll::obs::trace_stop();

    let json = htmpll::obs::chrome_trace_json(&trace);
    htmpll::obs::validate_json(&json).map_err(|e| format!("internal: trace JSON invalid: {e}"))?;
    std::fs::write(&out, &json).map_err(|e| format!("--out {out}: {e}"))?;
    let targets: std::collections::BTreeSet<&str> = trace.events.iter().map(|e| e.cat).collect();
    println!(
        "trace : {} events ({} shed) from targets [{}]",
        trace.events.len(),
        trace.dropped,
        targets.into_iter().collect::<Vec<_>>().join(", ")
    );
    println!("wrote {out}");
    if let Some(path) = args.values.get("folded") {
        std::fs::write(path, htmpll::obs::flamegraph_folded(&trace))
            .map_err(|e| format!("--folded {path}: {e}"))?;
        println!("wrote {path}");
    }
    result
}

/// Runs the seeded profiling workload matrix and prints the per-phase
/// attribution table.
fn cmd_profile(args: &Args) -> Result<(), String> {
    let spec = htmpll::profile::ProfileSpec {
        ratio: args.f64_or("ratio", 0.1)?,
        points: args.usize_or("points", 96)?,
        trunc: args.usize_or("trunc", 8)?,
        reps: args.usize_or("reps", 1)?,
        threads: args.threads()?,
        seed: args.usize_or("seed", 0)? as u64,
    };
    let report = htmpll::profile::run_profile(&spec)?;
    print!("{}", report.render_table());
    if let Some(path) = args.values.get("json") {
        std::fs::write(path, report.to_json()).map_err(|e| format!("--json {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

const USAGE: &str =
    "usage: plltool <analyze|sweep|bode|step|spur|optimize|hop|doctor|xcheck|metrics|trace|profile> [--key value ...]
  analyze --ratio R [--spread S] [--symbolic x] [--pfd sh]
          (or --fref --n --kvco --bw)
  sweep   [--from A] [--to B] [--points N]
  bode    --ratio R [--lambda x] [--points N]
  step    --ratio R [--until T] [--points N]
  spur    --ratio R [--leakage-frac F] [--kmax K]
  optimize [--min-pm DEG] [--from A] [--to B] [--points N]
           [--ref-noise PSD] [--vco-noise PSD]
  hop     --ratio R [--until T] [--points N]
  doctor  [--ratio R]   stress-evaluates adversarial points (on-pole s,
          singular I+G, extreme truncations, NaN injection, a
          structure-breaking near-singular banded loop) and prints
          a health table; non-zero exit when a check misbehaves
  xcheck  [--corpus default|quick] [--json PATH] [--bench PATH]
          reconciles the λ(s), z-domain and time-domain stacks over a
          deterministic scenario corpus; exit 2 on any mismatch
  metrics [--ratio R] [--obs SPEC] [--json PATH]
  trace <cmd> [--out PATH] [--folded PATH] [--obs SPEC] [--trace-capacity N]
          runs <cmd> under an event-timeline session and writes Chrome
          Trace Format JSON (default trace.json; open in a trace viewer)
          plus, with --folded, a folded-stack flamegraph text file;
          the wrapped command's own flags pass through unchanged
  profile [--ratio R] [--points N] [--trunc K] [--reps N] [--seed S]
          [--json PATH]
          runs a seeded workload matrix (λ grid, cold/warm structured
          sweep, dense kernel, adversarial robust grid, noise folding)
          and prints per-phase attribution: wall time, per-point p50/p99,
          cache hit rate, verdicts, ladder stages, worker utilization
  every command accepts --threads N for the sweep worker pool
  (0 = auto; equivalent to setting HTMPLL_THREADS) and --metrics-json
  PATH to dump instrumentation (enables info-level collection if
  HTMPLL_OBS is unset)";

/// Routes one non-wrapper command to its handler. `trace` wraps this,
/// so everything here is traceable.
fn dispatch(cmd: &str, args: &Args) -> Result<(), String> {
    match cmd {
        "analyze" => cmd_analyze(args),
        "sweep" => cmd_sweep(args),
        "bode" => cmd_bode(args),
        "step" => cmd_step(args),
        "spur" => cmd_spur(args),
        "optimize" => cmd_optimize(args),
        "hop" => cmd_hop(args),
        "doctor" => cmd_doctor(args),
        "xcheck" => cmd_xcheck(args),
        "metrics" => cmd_metrics(args),
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let cmd = argv.first().map(String::as_str).ok_or(USAGE)?;
    // `trace` takes the wrapped command as a positional before the flags.
    let (inner, flags) = if cmd == "trace" {
        let inner = argv
            .get(1)
            .map(String::as_str)
            .ok_or("trace needs a command to wrap\n(usage: plltool trace <cmd> [--flags ...])")?;
        (Some(inner), &argv[2..])
    } else {
        (None, &argv[1..])
    };
    let args = Args::parse(flags)?;
    // Bridge --threads into the process-wide budget so code paths that
    // use ThreadBudget::Auto internally (optimizer, library defaults)
    // honor the flag too.
    if let Some(n) = args.values.get("threads") {
        let n: usize = n
            .parse()
            .map_err(|_| format!("--threads: `{n}` is not an integer"))?;
        if n > 0 {
            std::env::set_var(htmpll::par::THREADS_ENV, n.to_string());
        }
    }
    if let Some(inner) = inner {
        return cmd_trace(inner, &args);
    }
    if cmd == "metrics" {
        return cmd_metrics(&args);
    }
    if cmd == "profile" {
        return cmd_profile(&args);
    }
    let metrics_path = args.values.get("metrics-json").cloned();
    if metrics_path.is_some() && std::env::var_os("HTMPLL_OBS").is_none() {
        htmpll::obs::override_filter("info");
    }
    let result = dispatch(cmd, &args);
    if let Some(path) = &metrics_path {
        std::fs::write(path, htmpll::obs::export_json())
            .map_err(|e| format!("--metrics-json {path}: {e}"))?;
    }
    result
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    /// Serializes tests that mutate the process-global obs filter or
    /// trace session, so one test's `override_filter("off")` teardown
    /// cannot disable collection mid-run in another.
    fn obs_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn parses_key_value_pairs() {
        let a = Args::parse(&strs(&["--ratio", "0.1", "--points", "7"])).unwrap();
        assert_eq!(a.f64_opt("ratio").unwrap(), Some(0.1));
        assert_eq!(a.usize_or("points", 3).unwrap(), 7);
        assert_eq!(a.f64_or("missing", 2.5).unwrap(), 2.5);
        assert!(!a.has("symbolic"));
    }

    #[test]
    fn rejects_malformed_args() {
        assert!(Args::parse(&strs(&["ratio", "0.1"])).is_err());
        assert!(Args::parse(&strs(&["--ratio"])).is_err());
        let a = Args::parse(&strs(&["--ratio", "abc"])).unwrap();
        assert!(a.f64_opt("ratio").is_err());
        let b = Args::parse(&strs(&["--points", "1.5"])).unwrap();
        assert!(b.usize_or("points", 1).is_err());
    }

    #[test]
    fn design_from_ratio_and_physical() {
        let a = Args::parse(&strs(&["--ratio", "0.1"])).unwrap();
        let d = design_from(&a).unwrap();
        assert!((d.omega_ref() - 10.0).abs() < 1e-9);

        let b = Args::parse(&strs(&[
            "--fref", "10e6", "--n", "64", "--kvco", "6.283e8", "--bw", "500e3",
        ]))
        .unwrap();
        let d2 = design_from(&b).unwrap();
        assert!((d2.f_ref() - 10e6).abs() < 1.0);
        assert_eq!(d2.divider(), 64.0);

        let c = Args::parse(&strs(&["--fref", "10e6"])).unwrap();
        assert!(design_from(&c).is_err());
    }

    #[test]
    fn commands_run_end_to_end() {
        run(&strs(&["analyze", "--ratio", "0.1"])).unwrap();
        run(&strs(&["analyze", "--ratio", "0.1", "--pfd", "sh"])).unwrap();
        run(&strs(&[
            "sweep", "--from", "0.05", "--to", "0.15", "--points", "3",
        ]))
        .unwrap();
        run(&strs(&["bode", "--ratio", "0.1", "--points", "9"])).unwrap();
        run(&strs(&[
            "bode", "--ratio", "0.1", "--points", "9", "--lambda", "x",
        ]))
        .unwrap();
        run(&strs(&[
            "step", "--ratio", "0.15", "--points", "5", "--until", "20",
        ]))
        .unwrap();
        run(&strs(&["spur", "--ratio", "0.1"])).unwrap();
        run(&strs(&[
            "optimize", "--min-pm", "50", "--from", "0.05", "--to", "0.15", "--points", "4",
        ]))
        .unwrap();
        run(&strs(&[
            "hop", "--ratio", "0.15", "--points", "5", "--until", "25",
        ]))
        .unwrap();
    }

    #[test]
    fn doctor_reports_healthy_and_dumps_robust_metrics() {
        let _guard = obs_lock();
        let path = std::env::temp_dir().join("plltool_doctor_test.json");
        let path_s = path.to_str().unwrap().to_string();
        run(&strs(&[
            "doctor",
            "--ratio",
            "0.1",
            "--metrics-json",
            &path_s,
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(
            json.contains("robust."),
            "robust.* counters missing: {json}"
        );
        assert!(json.contains("num.robust.factor"), "{json}");
        htmpll::obs::override_filter("off");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn xcheck_quick_corpus_reconciles_and_writes_report() {
        let path = std::env::temp_dir().join("plltool_xcheck_test.json");
        let path_s = path.to_str().unwrap().to_string();
        run(&strs(&[
            "xcheck",
            "--corpus",
            "quick",
            "--threads",
            "1",
            "--json",
            &path_s,
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(
            json.contains("\"mismatch\":0"),
            "mismatches in quick corpus: {json}"
        );
        assert!(json.contains("\"digest\":\""), "digest missing: {json}");
        std::fs::remove_file(&path).ok();

        assert!(run(&strs(&["xcheck", "--corpus", "nonsense"])).is_err());
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&strs(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn trace_command_writes_chrome_json_and_flamegraph() {
        let _guard = obs_lock();
        let out = std::env::temp_dir().join("plltool_trace_test.json");
        let folded = std::env::temp_dir().join("plltool_trace_test.folded");
        run(&strs(&[
            "trace",
            "doctor",
            "--ratio",
            "0.1",
            "--threads",
            "1",
            "--out",
            out.to_str().unwrap(),
            "--folded",
            folded.to_str().unwrap(),
        ]))
        .unwrap();
        htmpll::obs::override_filter("off");

        let json = std::fs::read_to_string(&out).unwrap();
        let doc = htmpll::obs::parse_json(&json).unwrap();
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        assert!(!events.is_empty());
        let cats: std::collections::BTreeSet<String> = events
            .iter()
            .filter_map(|e| e.get("cat").and_then(|c| c.as_str()).map(str::to_string))
            .collect();
        // The doctor workload must light up every pipeline layer.
        for cat in ["core", "htm", "num", "par"] {
            assert!(cats.contains(cat), "missing target {cat} in {cats:?}");
        }

        let fold = std::fs::read_to_string(&folded).unwrap();
        for line in fold.lines() {
            let (stack, ns) = line.rsplit_once(' ').expect("`stack ns` line");
            assert!(!stack.is_empty());
            ns.parse::<u64>().expect("self-time is integer ns");
        }
        std::fs::remove_file(&out).ok();
        std::fs::remove_file(&folded).ok();
    }

    #[test]
    fn trace_rejects_bad_wrapping() {
        assert!(run(&strs(&["trace"])).is_err());
        assert!(run(&strs(&["trace", "trace", "--ratio", "0.1"])).is_err());
        assert!(run(&strs(&["trace", "profile"])).is_err());
    }

    #[test]
    fn profile_command_prints_attribution_and_writes_json() {
        let _guard = obs_lock();
        let path = std::env::temp_dir().join("plltool_profile_test.json");
        let path_s = path.to_str().unwrap().to_string();
        run(&strs(&[
            "profile",
            "--points",
            "8",
            "--trunc",
            "3",
            "--threads",
            "1",
            "--json",
            &path_s,
        ]))
        .unwrap();
        htmpll::obs::override_filter("off");
        let json = std::fs::read_to_string(&path).unwrap();
        htmpll::obs::validate_json(&json).unwrap();
        for phase in ["lambda", "htm_cold", "htm_warm", "dense", "robust", "noise"] {
            assert!(json.contains(&format!("\"name\": \"{phase}\"")), "{json}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn metrics_command_writes_valid_json() {
        let _guard = obs_lock();
        let path = std::env::temp_dir().join("plltool_metrics_test.json");
        let path_s = path.to_str().unwrap().to_string();
        run(&strs(&["metrics", "--ratio", "0.1", "--json", &path_s])).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"filter\": \"debug\""));
        // Sites span every pipeline layer.
        for target in ["\"htm.", "\"core.", "\"num.", "\"sim.", "\"spectral."] {
            assert!(json.contains(target), "missing target {target}");
        }
        let sites = json.matches("\"kind\":").count();
        assert!(sites >= 10, "expected ≥10 instrumented sites, got {sites}");
        htmpll::obs::override_filter("off");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn metrics_json_flag_dumps_after_any_command() {
        let _guard = obs_lock();
        let path = std::env::temp_dir().join("plltool_metrics_flag_test.json");
        let path_s = path.to_str().unwrap().to_string();
        run(&strs(&[
            "analyze",
            "--ratio",
            "0.1",
            "--metrics-json",
            &path_s,
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"core.analyze\""));
        htmpll::obs::override_filter("off");
        std::fs::remove_file(&path).ok();
    }
}
