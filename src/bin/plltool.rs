//! `plltool` — command-line front end for the htmpll analyses.
//!
//! ```text
//! plltool analyze --ratio 0.15
//! plltool analyze --fref 10e6 --n 64 --kvco 6.28e8 --bw 500e3
//! plltool sweep   --from 0.02 --to 0.3 --points 15
//! plltool bode    --ratio 0.15 --lambda
//! plltool step    --ratio 0.2 --until 40
//! plltool spur    --ratio 0.1 --leakage-frac 1e-3
//! echo '{"id":1,"command":"analyze","params":{"ratio":0.1}}' | plltool serve
//! ```
//!
//! This binary is a *thin* front end: argv is parsed into a typed
//! [`Request`] (`htmpll::requests`), executed by the shared service
//! layer (`htmpll::service`), and rendered from the typed [`Response`].
//! The same layer powers `plltool serve`, the `trace` wrapper, and the
//! `--json`/`--metrics-json` envelope writers, so every surface
//! produces identical results. Argument parsing stays hand-rolled
//! (`--key value` pairs) to keep the workspace dependency-free.

use htmpll::requests::{Params, Request, RequestId};
use htmpll::service::{envelope, handle, serve_lines, Response, ServeOptions, ServiceCtx};
use std::process::ExitCode;

const USAGE: &str =
    "usage: plltool <analyze|sweep|bode|step|spur|optimize|explore|hop|doctor|xcheck|metrics|trace|profile|serve|chaos> [--key value ...]
  analyze --ratio R [--spread S] [--symbolic x] [--pfd sh]
          (or --fref --n --kvco --bw)
  sweep   [--from A] [--to B] [--points N]
  bode    --ratio R [--lambda x] [--points N]
  step    --ratio R [--until T] [--points N]
  spur    --ratio R [--leakage-frac F] [--kmax K]
  optimize [--min-pm DEG] [--from A] [--to B] [--points N]
           [--ref-noise PSD] [--vco-noise PSD]
  explore [--candidates N] [--seed S] [--min-pm DEG] [--max-spur DBC]
          [--front-cap N] [--refine R] [--full x] [--quasi x]
          streaming design-space sweep over (ratio, spread, icp scale,
          divider): a seeded deterministic candidate stream through a
          closed-form screening cascade into a bounded Pareto front
          over (PM_eff, bandwidth, peaking, spur, lock time); bitwise
          identical for any --threads; --full disables the screen,
          --quasi draws Halton candidates instead of Monte Carlo
  hop     --ratio R [--until T] [--points N]
  doctor  [--ratio R]   stress-evaluates adversarial points (on-pole s,
          singular I+G, extreme truncations, NaN injection, a
          structure-breaking near-singular banded loop) and prints
          a health table; non-zero exit when a check misbehaves
  xcheck  [--corpus default|quick] [--json PATH] [--bench PATH]
          reconciles the λ(s), z-domain and time-domain stacks over a
          deterministic scenario corpus; exit 2 on any mismatch
  metrics [--ratio R] [--obs SPEC] [--json PATH]
  trace <cmd> [--out PATH] [--folded PATH] [--obs SPEC] [--trace-capacity N]
          runs <cmd> under an event-timeline session and writes Chrome
          Trace Format JSON (default trace.json; open in a trace viewer)
          plus, with --folded, a folded-stack flamegraph text file;
          the wrapped command's own flags pass through unchanged
  profile [--ratio R] [--points N] [--trunc K] [--reps N] [--seed S]
          [--json PATH]
          runs a seeded workload matrix (λ grid, cold/warm structured
          sweep, dense kernel, adversarial robust grid, noise folding)
          and prints per-phase attribution: wall time, per-point p50/p99,
          cache hit rate, verdicts, ladder stages, worker utilization
  serve   [--workers N] [--queue-max N] [--batch-max N] [--shed x]
          [--response-cache N] [--log-every N] [--socket PATH]
          [--deadline-ms MS]
          long-running batched analysis service: reads JSON-lines
          requests {\"id\":...,\"command\":...,\"params\":{...}} from stdin
          (or a Unix socket), answers one plltool/v1 envelope line per
          request in input order; identical specs are batched across a
          shared warm cache; send {\"command\":\"stats\"} for live
          latency/throughput/queue/cache figures; with --deadline-ms a
          request over budget degrades (smaller truncation, coarser
          grid, partial rows) or answers a retryable \"code\":\"deadline\"
          error instead of holding its batch, and a watchdog cancels
          in-flight work if the dispatcher wedges
  chaos   [--requests N] [--seed S] [--workers N] [--plan SPEC]
          replays a seeded request corpus through serve under an
          injected fault plan (HTMPLL_FAULT grammar) and verifies the
          robustness invariants: the process never dies, responses stay
          in input order, output is identical for 1 and N workers, and
          unfaulted requests match a fault-free baseline byte-for-byte;
          exit 2 on any violation
  every command accepts --threads N for the sweep worker pool
  (0 = auto; equivalent to setting HTMPLL_THREADS) and --metrics-json
  PATH to dump instrumentation (enables info-level collection if
  HTMPLL_OBS is unset)
  --json PATH and --metrics-json PATH write one versioned envelope
  {\"schema\":\"plltool/v1\",\"command\":...,\"ok\":...,\"result\":...,
   \"quality\":...[,\"metrics\":...]} — the same document shape serve
  emits per line";

/// Parses and executes one non-wrapper command through the service
/// layer: print the human rendering, then write the optional envelope
/// files, then surface the command's failure (if any) for exit 2.
/// `trace` wraps this, so everything here is traceable.
fn run_request(cmd: &str, params: &Params) -> Result<(), String> {
    let req = Request::parse(cmd, params).map_err(|e| {
        if e.starts_with("unknown command") {
            format!("{e}\n{USAGE}")
        } else {
            e
        }
    })?;
    // `metrics` and `profile` manage the obs registry themselves;
    // --metrics-json applies to every other command.
    let metrics_path = if matches!(req, Request::Metrics { .. } | Request::Profile { .. }) {
        None
    } else {
        params.str_opt("metrics-json")
    };
    if metrics_path.is_some() && std::env::var_os("HTMPLL_OBS").is_none() {
        htmpll::obs::override_filter("info");
    }

    let ctx = ServiceCtx::new();
    // Same ambient fault scope the serve workers use, so scope-gated
    // HTMPLL_FAULT rules behave identically from the one-shot CLI.
    let _fault_scope =
        htmpll::fault::scope_guard(Some(htmpll::fault::fnv64(req.canonical_json().as_bytes())));
    let resp = handle(&req, &ctx);
    print!("{}", resp.render_text());

    if let Some(path) = params.str_opt("json") {
        let doc = envelope(&resp, &RequestId::None, None);
        std::fs::write(&path, &doc).map_err(|e| format!("--json {path}: {e}"))?;
        if matches!(resp, Response::Metrics(_)) {
            println!("\nwrote {path}");
        } else {
            println!("wrote {path}");
        }
    }
    if let Some(path) = params.str_opt("bench") {
        if let Response::Xcheck(x) = &resp {
            std::fs::write(&path, &x.bench_json).map_err(|e| format!("--bench {path}: {e}"))?;
            println!("wrote {path}");
        }
    }
    if let Some(path) = &metrics_path {
        let doc = envelope(&resp, &RequestId::None, Some(&htmpll::obs::export_json()));
        std::fs::write(path, &doc).map_err(|e| format!("--metrics-json {path}: {e}"))?;
    }
    match resp.failure() {
        Some(message) => Err(message),
        None => Ok(()),
    }
}

/// Wraps an inner command in a trace session and exports the event
/// timeline as Chrome Trace Format JSON (and optionally a folded-stack
/// flamegraph). The inner command's own flags pass straight through —
/// `plltool trace sweep --points 5 --out t.json` traces a 5-point sweep.
fn cmd_trace(inner: &str, params: &Params) -> Result<(), String> {
    if inner == "trace" || inner == "profile" || inner == "serve" {
        return Err(format!("trace cannot wrap `{inner}`"));
    }
    let out = params
        .str_opt("out")
        .unwrap_or_else(|| "trace.json".to_string());
    let capacity = params.usize_or("trace-capacity", htmpll::obs::DEFAULT_TRACE_CAPACITY)?;
    // Timeline events ride on span/instant sites, so collection must be
    // on; debug captures the per-point and solver-ladder detail.
    let spec = params.str_opt("obs").unwrap_or_else(|| "debug".to_string());
    htmpll::obs::override_filter(&spec);
    htmpll::obs::trace_start(capacity);
    let result = run_request(inner, params);
    let trace = htmpll::obs::trace_stop();

    let json = htmpll::obs::chrome_trace_json(&trace);
    htmpll::obs::validate_json(&json).map_err(|e| format!("internal: trace JSON invalid: {e}"))?;
    std::fs::write(&out, &json).map_err(|e| format!("--out {out}: {e}"))?;
    let targets: std::collections::BTreeSet<&str> = trace.events.iter().map(|e| e.cat).collect();
    println!(
        "trace : {} events ({} shed) from targets [{}]",
        trace.events.len(),
        trace.dropped,
        targets.into_iter().collect::<Vec<_>>().join(", ")
    );
    println!("wrote {out}");
    if let Some(path) = params.str_opt("folded") {
        std::fs::write(&path, htmpll::obs::flamegraph_folded(&trace))
            .map_err(|e| format!("--folded {path}: {e}"))?;
        println!("wrote {path}");
    }
    result
}

/// The `chaos` front end: replays the seeded corpus through serve
/// under an injected fault plan and exits 2 if any robustness
/// invariant (liveness, order, thread invariance, blast radius) broke.
fn cmd_chaos(params: &Params) -> Result<(), String> {
    let opts = htmpll::service::ChaosOptions {
        requests: params.usize_or("requests", 40)?,
        seed: params.usize_or("seed", 42)? as u64,
        workers: params.usize_or("workers", 4)?,
        plan: params.str_opt("plan"),
    };
    let report = htmpll::service::run_chaos(&opts)?;
    print!("{}", report.render_table());
    if report.ok() {
        Ok(())
    } else {
        Err(format!(
            "chaos: {} invariant violation(s)",
            report.violations.len()
        ))
    }
}

/// The `serve` front end: stdin→stdout JSONL by default, a Unix socket
/// with `--socket PATH`. The summary line goes to stderr so response
/// lines stay machine-clean on stdout.
fn cmd_serve(params: &Params) -> Result<(), String> {
    let deadline_ms = params.usize_or("deadline-ms", 0)? as u64;
    let opts = ServeOptions {
        workers: params.usize_or("workers", 0)?,
        queue_max: params.usize_or("queue-max", 256)?,
        batch_max: params.usize_or("batch-max", 32)?,
        shed: params.has("shed"),
        response_cache: params.usize_or("response-cache", 1024)?,
        log_every: params.usize_or("log-every", 0)? as u64,
        deadline_ms: (deadline_ms > 0).then_some(deadline_ms),
    };
    if std::env::var_os("HTMPLL_OBS").is_none() {
        htmpll::obs::override_filter("serve=info");
    }
    if let Some(path) = params.str_opt("socket") {
        #[cfg(unix)]
        return htmpll::service::serve_unix(&path, &opts);
        #[cfg(not(unix))]
        return Err(format!(
            "--socket {path}: unix sockets unavailable on this platform"
        ));
    }
    let reader = std::io::BufReader::new(std::io::stdin());
    let mut writer = std::io::BufWriter::new(std::io::stdout());
    let summary = serve_lines(reader, &mut writer, &opts)?;
    eprintln!("serve: {}", summary.render_line());
    Ok(())
}

fn run(argv: &[String]) -> Result<(), String> {
    let cmd = argv.first().map(String::as_str).ok_or(USAGE)?;
    // `trace` takes the wrapped command as a positional before the flags.
    let (inner, flags) = if cmd == "trace" {
        let inner = argv
            .get(1)
            .map(String::as_str)
            .ok_or("trace needs a command to wrap\n(usage: plltool trace <cmd> [--flags ...])")?;
        (Some(inner), &argv[2..])
    } else {
        (None, &argv[1..])
    };
    let params = Params::from_argv(flags).map_err(|e| format!("{e}\n{USAGE}"))?;
    // Bridge --threads into the process-wide budget so code paths that
    // use ThreadBudget::Auto internally (optimizer, library defaults)
    // honor the flag too.
    let threads = params.threads()?;
    if threads > 0 {
        std::env::set_var(htmpll::par::THREADS_ENV, threads.to_string());
    }
    // Arm the deterministic fault-injection layer from HTMPLL_FAULT, so
    // any subcommand (most usefully serve) can run under a plan.
    htmpll::fault::init_from_env().map_err(|e| format!("HTMPLL_FAULT: {e}"))?;
    if let Some(inner) = inner {
        return cmd_trace(inner, &params);
    }
    if cmd == "serve" {
        return cmd_serve(&params);
    }
    if cmd == "chaos" {
        return cmd_chaos(&params);
    }
    run_request(cmd, &params)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htmpll::requests::DesignSpec;
    use std::sync::{Mutex, MutexGuard};

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn params(v: &[&str]) -> Params {
        Params::from_argv(&strs(v)).unwrap()
    }

    /// Serializes tests that mutate the process-global obs filter or
    /// trace session, so one test's `override_filter("off")` teardown
    /// cannot disable collection mid-run in another.
    fn obs_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn parses_key_value_pairs() {
        let a = params(&["--ratio", "0.1", "--points", "7"]);
        assert_eq!(a.f64_opt("ratio").unwrap(), Some(0.1));
        assert_eq!(a.usize_or("points", 3).unwrap(), 7);
        assert_eq!(a.f64_or("missing", 2.5).unwrap(), 2.5);
        assert!(!a.has("symbolic"));
    }

    #[test]
    fn rejects_malformed_args() {
        assert!(Params::from_argv(&strs(&["ratio", "0.1"])).is_err());
        assert!(Params::from_argv(&strs(&["--ratio"])).is_err());
        let a = params(&["--ratio", "abc"]);
        assert!(a.f64_opt("ratio").is_err());
        let b = params(&["--points", "1.5"]);
        assert!(b.usize_or("points", 1).is_err());
    }

    #[test]
    fn malformed_input_reports_usage_and_exit_code_2_path() {
        // Unknown command and malformed flags both route through
        // `run`'s Err branch (exit 2 in main) and carry the usage text.
        let e1 = run(&strs(&["frobnicate"])).unwrap_err();
        assert!(e1.contains("unknown command `frobnicate`"));
        assert!(e1.contains("usage: plltool"));
        let e2 = run(&strs(&["analyze", "ratio", "0.1"])).unwrap_err();
        assert!(e2.contains("expected --flag"));
        assert!(e2.contains("usage: plltool"));
        let e3 = run(&strs(&["analyze", "--ratio"])).unwrap_err();
        assert!(e3.contains("flag --ratio needs a value"));
        assert!(e3.contains("usage: plltool"));
    }

    #[test]
    fn design_from_ratio_and_physical() {
        let d = DesignSpec::required(&params(&["--ratio", "0.1"]))
            .unwrap()
            .build()
            .unwrap();
        assert!((d.omega_ref() - 10.0).abs() < 1e-9);

        let d2 = DesignSpec::required(&params(&[
            "--fref", "10e6", "--n", "64", "--kvco", "6.283e8", "--bw", "500e3",
        ]))
        .unwrap()
        .build()
        .unwrap();
        assert!((d2.f_ref() - 10e6).abs() < 1.0);
        assert_eq!(d2.divider(), 64.0);

        assert!(DesignSpec::required(&params(&["--fref", "10e6"])).is_err());
    }

    #[test]
    fn commands_run_end_to_end() {
        run(&strs(&["analyze", "--ratio", "0.1"])).unwrap();
        run(&strs(&["analyze", "--ratio", "0.1", "--pfd", "sh"])).unwrap();
        run(&strs(&[
            "sweep", "--from", "0.05", "--to", "0.15", "--points", "3",
        ]))
        .unwrap();
        run(&strs(&["bode", "--ratio", "0.1", "--points", "9"])).unwrap();
        run(&strs(&[
            "bode", "--ratio", "0.1", "--points", "9", "--lambda", "x",
        ]))
        .unwrap();
        run(&strs(&[
            "step", "--ratio", "0.15", "--points", "5", "--until", "20",
        ]))
        .unwrap();
        run(&strs(&["spur", "--ratio", "0.1"])).unwrap();
        run(&strs(&[
            "optimize", "--min-pm", "50", "--from", "0.05", "--to", "0.15", "--points", "4",
        ]))
        .unwrap();
        run(&strs(&[
            "hop", "--ratio", "0.15", "--points", "5", "--until", "25",
        ]))
        .unwrap();
        run(&strs(&[
            "explore",
            "--candidates",
            "64",
            "--seed",
            "7",
            "--refine",
            "0",
        ]))
        .unwrap();
    }

    #[test]
    fn json_flag_writes_envelope_for_any_command() {
        let path = std::env::temp_dir().join("plltool_envelope_test.json");
        let path_s = path.to_str().unwrap().to_string();
        run(&strs(&["analyze", "--ratio", "0.1", "--json", &path_s])).unwrap();
        let doc = std::fs::read_to_string(&path).unwrap();
        assert!(doc.starts_with("{\"schema\":\"plltool/v1\""));
        assert!(doc.contains("\"command\":\"analyze\""));
        assert!(doc.contains("\"ok\":true"));
        assert!(doc.contains("\"quality\":"));
        htmpll::obs::validate_json(&doc).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn doctor_reports_healthy_and_dumps_robust_metrics() {
        let _guard = obs_lock();
        let path = std::env::temp_dir().join("plltool_doctor_test.json");
        let path_s = path.to_str().unwrap().to_string();
        run(&strs(&[
            "doctor",
            "--ratio",
            "0.1",
            "--metrics-json",
            &path_s,
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(
            json.contains("robust."),
            "robust.* counters missing: {json}"
        );
        assert!(json.contains("num.robust.factor"), "{json}");
        // The dump now rides in the envelope's `metrics` member.
        assert!(json.starts_with("{\"schema\":\"plltool/v1\""));
        assert!(json.contains("\"metrics\":{"));
        htmpll::obs::override_filter("off");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn xcheck_quick_corpus_reconciles_and_writes_report() {
        let path = std::env::temp_dir().join("plltool_xcheck_test.json");
        let path_s = path.to_str().unwrap().to_string();
        run(&strs(&[
            "xcheck",
            "--corpus",
            "quick",
            "--threads",
            "1",
            "--json",
            &path_s,
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(
            json.contains("\"mismatch\":0"),
            "mismatches in quick corpus: {json}"
        );
        assert!(json.contains("\"digest\":\""), "digest missing: {json}");
        assert!(json.starts_with("{\"schema\":\"plltool/v1\""));
        std::fs::remove_file(&path).ok();

        assert!(run(&strs(&["xcheck", "--corpus", "nonsense"])).is_err());
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&strs(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn trace_command_writes_chrome_json_and_flamegraph() {
        let _guard = obs_lock();
        let out = std::env::temp_dir().join("plltool_trace_test.json");
        let folded = std::env::temp_dir().join("plltool_trace_test.folded");
        run(&strs(&[
            "trace",
            "doctor",
            "--ratio",
            "0.1",
            "--threads",
            "1",
            "--out",
            out.to_str().unwrap(),
            "--folded",
            folded.to_str().unwrap(),
        ]))
        .unwrap();
        htmpll::obs::override_filter("off");

        let json = std::fs::read_to_string(&out).unwrap();
        let doc = htmpll::obs::parse_json(&json).unwrap();
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        assert!(!events.is_empty());
        let cats: std::collections::BTreeSet<String> = events
            .iter()
            .filter_map(|e| e.get("cat").and_then(|c| c.as_str()).map(str::to_string))
            .collect();
        // The doctor workload must light up every pipeline layer.
        for cat in ["core", "htm", "num", "par"] {
            assert!(cats.contains(cat), "missing target {cat} in {cats:?}");
        }

        let fold = std::fs::read_to_string(&folded).unwrap();
        for line in fold.lines() {
            let (stack, ns) = line.rsplit_once(' ').expect("`stack ns` line");
            assert!(!stack.is_empty());
            ns.parse::<u64>().expect("self-time is integer ns");
        }
        std::fs::remove_file(&out).ok();
        std::fs::remove_file(&folded).ok();
    }

    #[test]
    fn trace_rejects_bad_wrapping() {
        assert!(run(&strs(&["trace"])).is_err());
        assert!(run(&strs(&["trace", "trace", "--ratio", "0.1"])).is_err());
        assert!(run(&strs(&["trace", "profile"])).is_err());
        assert!(run(&strs(&["trace", "serve"])).is_err());
    }

    #[test]
    fn profile_command_prints_attribution_and_writes_json() {
        let _guard = obs_lock();
        let path = std::env::temp_dir().join("plltool_profile_test.json");
        let path_s = path.to_str().unwrap().to_string();
        run(&strs(&[
            "profile",
            "--points",
            "8",
            "--trunc",
            "3",
            "--threads",
            "1",
            "--json",
            &path_s,
        ]))
        .unwrap();
        htmpll::obs::override_filter("off");
        let json = std::fs::read_to_string(&path).unwrap();
        htmpll::obs::validate_json(&json).unwrap();
        for phase in ["lambda", "htm_cold", "htm_warm", "dense", "robust", "noise"] {
            assert!(json.contains(&format!("\"name\": \"{phase}\"")), "{json}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn metrics_command_writes_valid_json() {
        let _guard = obs_lock();
        let path = std::env::temp_dir().join("plltool_metrics_test.json");
        let path_s = path.to_str().unwrap().to_string();
        run(&strs(&["metrics", "--ratio", "0.1", "--json", &path_s])).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"filter\": \"debug\""));
        // Sites span every pipeline layer.
        for target in ["\"htm.", "\"core.", "\"num.", "\"sim.", "\"spectral."] {
            assert!(json.contains(target), "missing target {target}");
        }
        let sites = json.matches("\"kind\":").count();
        assert!(sites >= 10, "expected ≥10 instrumented sites, got {sites}");
        htmpll::obs::override_filter("off");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn metrics_json_flag_dumps_after_any_command() {
        let _guard = obs_lock();
        let path = std::env::temp_dir().join("plltool_metrics_flag_test.json");
        let path_s = path.to_str().unwrap().to_string();
        run(&strs(&[
            "analyze",
            "--ratio",
            "0.1",
            "--metrics-json",
            &path_s,
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"core.analyze\""));
        htmpll::obs::override_filter("off");
        std::fs::remove_file(&path).ok();
    }
}
