//! Typed request layer shared by every `plltool` front end.
//!
//! The CLI (`src/bin/plltool.rs`), the `plltool serve` batch service,
//! and the `trace` wrapper all reduce their inputs to one [`Request`]
//! value and hand it to [`crate::service::handle`]. The CLI parses
//! `--key value` argv pairs and the server parses JSON-lines objects,
//! but both go through the same [`Params`] lookup code and the same
//! per-command extraction in [`Request::parse`], so a flag and its JSON
//! field can never drift apart.

use crate::obs::JsonValue;
use crate::par::ThreadBudget;
use htmpll_core::{CoreError, PllDesign};
use std::collections::BTreeMap;

/// One request parameter: a number, a string, or a boolean flag.
///
/// CLI values arrive as strings and are parsed on first typed access
/// (mirroring the historical `--key value` behavior); JSON values keep
/// their native type.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// A JSON number.
    Num(f64),
    /// A raw string (every CLI value starts here).
    Str(String),
    /// A JSON boolean.
    Bool(bool),
}

/// Parsed request parameters: an ordered `key → value` map with typed
/// accessors.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Params {
    map: BTreeMap<String, ParamValue>,
}

impl Params {
    /// Parses `--key value` argv pairs; rejects stray positionals and
    /// dangling flags.
    pub fn from_argv(raw: &[String]) -> Result<Params, String> {
        let mut map = BTreeMap::new();
        let mut it = raw.iter();
        while let Some(tok) = it.next() {
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got `{tok}`"))?;
            let val = it
                .next()
                .ok_or_else(|| format!("flag --{key} needs a value"))?;
            map.insert(key.to_string(), ParamValue::Str(val.clone()));
        }
        Ok(Params { map })
    }

    /// Extracts parameters from a JSON object (the `params` member of a
    /// serve request). `null` members are treated as absent.
    pub fn from_json(obj: &JsonValue) -> Result<Params, String> {
        let members = match obj {
            JsonValue::Obj(members) => members,
            _ => return Err("params must be a JSON object".to_string()),
        };
        let mut map = BTreeMap::new();
        for (k, v) in members {
            let val = match v {
                JsonValue::Num(x) => ParamValue::Num(*x),
                JsonValue::Str(s) => ParamValue::Str(s.clone()),
                JsonValue::Bool(b) => ParamValue::Bool(*b),
                JsonValue::Null => continue,
                _ => return Err(format!("param `{k}`: expected number, string, or bool")),
            };
            map.insert(k.clone(), val);
        }
        Ok(Params { map })
    }

    /// Optional float: `None` when absent, an error when present but
    /// unparseable.
    pub fn f64_opt(&self, key: &str) -> Result<Option<f64>, String> {
        match self.map.get(key) {
            None => Ok(None),
            Some(ParamValue::Num(x)) => Ok(Some(*x)),
            Some(ParamValue::Str(v)) => v
                .parse::<f64>()
                .map(Some)
                .map_err(|_| format!("--{key}: `{v}` is not a number")),
            Some(ParamValue::Bool(b)) => Err(format!("--{key}: `{b}` is not a number")),
        }
    }

    /// Float with a default.
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, String> {
        Ok(self.f64_opt(key)?.unwrap_or(default))
    }

    /// Unsigned integer with a default.
    pub fn usize_or(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.map.get(key) {
            None => Ok(default),
            Some(ParamValue::Num(x)) => {
                if x.fract() == 0.0 && *x >= 0.0 && *x <= usize::MAX as f64 {
                    Ok(*x as usize)
                } else {
                    Err(format!("--{key}: `{x}` is not an integer"))
                }
            }
            Some(ParamValue::Str(v)) => v
                .parse::<usize>()
                .map_err(|_| format!("--{key}: `{v}` is not an integer")),
            Some(ParamValue::Bool(b)) => Err(format!("--{key}: `{b}` is not an integer")),
        }
    }

    /// Optional string (numbers and booleans render via `Display`).
    pub fn str_opt(&self, key: &str) -> Option<String> {
        match self.map.get(key) {
            None => None,
            Some(ParamValue::Str(s)) => Some(s.clone()),
            Some(ParamValue::Num(x)) => Some(x.to_string()),
            Some(ParamValue::Bool(b)) => Some(b.to_string()),
        }
    }

    /// Flag presence. A CLI `--flag x` and a JSON `"flag": true` both
    /// read as set; a JSON `"flag": false` reads as unset.
    pub fn has(&self, key: &str) -> bool {
        !matches!(self.map.get(key), None | Some(ParamValue::Bool(false)))
    }

    /// Worker-thread request from `threads` (`0` = auto-detect).
    pub fn threads(&self) -> Result<usize, String> {
        self.usize_or("threads", 0)
    }
}

/// How to construct the [`PllDesign`] a request operates on.
#[derive(Debug, Clone, PartialEq)]
pub enum DesignSpec {
    /// Normalized reference family: crossover at `ratio·ω₀` with the
    /// given zero/pole spread.
    Ratio {
        /// `ω_UG/ω₀` target.
        ratio: f64,
        /// Zero/pole spread (default 4).
        spread: f64,
    },
    /// Physical synthesis from reference frequency, divider, VCO gain
    /// and target bandwidth.
    Physical {
        /// Reference frequency, Hz.
        fref: f64,
        /// Feedback divider.
        n: f64,
        /// VCO gain, rad/s/V.
        kvco: f64,
        /// Target loop bandwidth, Hz.
        bw: f64,
        /// Zero/pole spread (default 4).
        spread: f64,
        /// Total filter capacitance, F (default 1 nF).
        ctotal: f64,
    },
}

impl DesignSpec {
    /// Extracts an optional design spec: `ratio` wins, then the
    /// physical-parameter family, then `None`.
    pub fn from_params(p: &Params) -> Result<Option<DesignSpec>, String> {
        if let Some(ratio) = p.f64_opt("ratio")? {
            return Ok(Some(DesignSpec::Ratio {
                ratio,
                spread: p.f64_or("spread", 4.0)?,
            }));
        }
        let Some(fref) = p.f64_opt("fref")? else {
            return Ok(None);
        };
        Ok(Some(DesignSpec::Physical {
            fref,
            n: p.f64_or("n", 1.0)?,
            kvco: p.f64_opt("kvco")?.ok_or("--kvco required with --fref")?,
            bw: p.f64_opt("bw")?.ok_or("--bw required with --fref")?,
            spread: p.f64_or("spread", 4.0)?,
            ctotal: p.f64_or("ctotal", 1e-9)?,
        }))
    }

    /// Like [`DesignSpec::from_params`], but a missing spec is an error.
    pub fn required(p: &Params) -> Result<DesignSpec, String> {
        DesignSpec::from_params(p)?.ok_or_else(|| "need --ratio or --fref/--n/--kvco/--bw".into())
    }

    /// Builds the concrete design.
    pub fn build(&self) -> Result<PllDesign, String> {
        let built: Result<PllDesign, CoreError> = match *self {
            DesignSpec::Ratio { ratio, spread } => {
                PllDesign::reference_design_shaped(ratio, spread)
            }
            DesignSpec::Physical {
                fref,
                n,
                kvco,
                bw,
                spread,
                ctotal,
            } => PllDesign::synthesize(
                fref,
                n,
                kvco,
                2.0 * std::f64::consts::PI * bw,
                spread,
                ctotal,
            ),
        };
        built.map_err(|e| e.to_string())
    }

    fn canonical(&self, out: &mut String) {
        match *self {
            DesignSpec::Ratio { ratio, spread } => {
                out.push_str(&format!(
                    "{{\"ratio\":{},\"spread\":{}}}",
                    canon_f64(ratio),
                    canon_f64(spread)
                ));
            }
            DesignSpec::Physical {
                fref,
                n,
                kvco,
                bw,
                spread,
                ctotal,
            } => {
                out.push_str(&format!(
                    "{{\"fref\":{},\"n\":{},\"kvco\":{},\"bw\":{},\"spread\":{},\"ctotal\":{}}}",
                    canon_f64(fref),
                    canon_f64(n),
                    canon_f64(kvco),
                    canon_f64(bw),
                    canon_f64(spread),
                    canon_f64(ctotal)
                ));
            }
        }
    }
}

/// Canonical float rendering for cache keys: bit-exact (`Display` is
/// shortest-roundtrip) and distinguishing `-0.0`/NaN payloads is not
/// needed for well-formed requests.
fn canon_f64(x: f64) -> String {
    if x.is_finite() {
        x.to_string()
    } else {
        format!("\"{x}\"")
    }
}

/// The request id echoed on a serve response line.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestId {
    /// No `id` member on the request.
    None,
    /// A JSON string id.
    Str(String),
    /// A JSON numeric id.
    Num(f64),
}

impl RequestId {
    /// The `"id":...,` fragment for a response line (empty for `None`).
    pub fn json_fragment(&self) -> String {
        match self {
            RequestId::None => String::new(),
            RequestId::Str(s) => format!("\"id\":\"{}\",", crate::service::json::escape(s)),
            RequestId::Num(x) => format!("\"id\":{},", canon_f64(*x)),
        }
    }
}

/// One fully-parsed `plltool` command with owned parameters. Every
/// front end reduces to this type; [`crate::service::handle`] is the
/// single execution entry point.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Single-design analysis (`plltool analyze`).
    Analyze {
        /// Design under analysis.
        design: DesignSpec,
        /// Worker threads (0 = auto).
        threads: usize,
        /// Also report the sample-and-hold PFD margins (`--pfd sh`).
        pfd_sh: bool,
        /// Also print the symbolic λ(s) expansion.
        symbolic: bool,
    },
    /// Crossover-ratio sweep (`plltool sweep`).
    Sweep {
        /// First ratio.
        from: f64,
        /// Last ratio.
        to: f64,
        /// Grid points.
        points: usize,
        /// Worker threads (0 = auto).
        threads: usize,
    },
    /// Bode table of `A(jω)` or `λ(jω)` (`plltool bode`).
    Bode {
        /// Design under analysis.
        design: DesignSpec,
        /// Grid points.
        points: usize,
        /// Sweep λ instead of the LTI open loop.
        lambda: bool,
        /// Worker threads (0 = auto).
        threads: usize,
    },
    /// Phase-step transient (`plltool step`).
    Step {
        /// Design under analysis.
        design: DesignSpec,
        /// End time (units of 1/ω_UG).
        until: f64,
        /// Sample count.
        points: usize,
    },
    /// Frequency-hop tracking error (`plltool hop`).
    Hop {
        /// Design under analysis.
        design: DesignSpec,
        /// End time (units of 1/ω_UG).
        until: f64,
        /// Sample count.
        points: usize,
    },
    /// Leakage reference-spur table (`plltool spur`).
    Spur {
        /// Design under analysis.
        design: DesignSpec,
        /// Leakage as a fraction of the charge-pump current.
        leakage_frac: f64,
        /// Highest harmonic index.
        kmax: usize,
        /// Worker threads (0 = auto).
        threads: usize,
    },
    /// Streaming design-space exploration (`plltool explore`).
    Explore {
        /// Monte-Carlo candidates in the initial round.
        candidates: usize,
        /// Candidate-stream seed.
        seed: u64,
        /// Minimum acceptable effective phase margin, degrees.
        min_pm: f64,
        /// Maximum acceptable first reference spur, dBc.
        max_spur: f64,
        /// Pareto-front capacity.
        front_cap: usize,
        /// Adaptive refinement rounds.
        refine: usize,
        /// Disable the screening cascade (full analysis per candidate).
        full: bool,
        /// Draw candidates from the Halton sequence instead of
        /// xoshiro streams.
        quasi: bool,
        /// Worker threads (0 = auto).
        threads: usize,
    },
    /// Loop-parameter optimization (`plltool optimize`).
    Optimize {
        /// Minimum acceptable effective phase margin, degrees.
        min_pm: f64,
        /// First ratio.
        from: f64,
        /// Last ratio.
        to: f64,
        /// Ratio grid points.
        points: usize,
        /// Reference phase-noise level (white).
        ref_noise: f64,
        /// VCO phase-noise level at the reference offset.
        vco_noise: f64,
    },
    /// Numerical-resilience health check (`plltool doctor`).
    Doctor {
        /// Design under test (defaults to the 0.1-ratio reference).
        design: Option<DesignSpec>,
        /// Worker threads (0 = auto).
        threads: usize,
    },
    /// Cross-stack differential verification (`plltool xcheck`).
    Xcheck {
        /// Corpus name (`default` or `quick`).
        corpus: String,
        /// Worker threads (0 = auto).
        threads: usize,
    },
    /// Instrumented pipeline run + metric export (`plltool metrics`).
    /// Mutates the process-global obs filter, so it is not servable.
    Metrics {
        /// Optional design override.
        design: Option<DesignSpec>,
        /// Obs filter spec for the run.
        obs_spec: String,
        /// Worker threads (0 = auto).
        threads: usize,
    },
    /// Seeded profiling workload matrix (`plltool profile`). Mutates
    /// process-global obs state, so it is not servable.
    Profile {
        /// Crossover ratio of the workload design.
        ratio: f64,
        /// Sweep grid points.
        points: usize,
        /// HTM truncation order.
        trunc: usize,
        /// Repetitions.
        reps: usize,
        /// Workload seed.
        seed: u64,
        /// Worker threads (0 = auto).
        threads: usize,
    },
    /// Server telemetry probe — only meaningful under `plltool serve`.
    Stats,
}

impl Request {
    /// Parses one command's parameters into a typed request. Unknown
    /// parameter keys are ignored (wrapper flags like `--out` ride in
    /// the same map).
    pub fn parse(command: &str, p: &Params) -> Result<Request, String> {
        let threads = p.threads()?;
        Ok(match command {
            "analyze" => Request::Analyze {
                design: DesignSpec::required(p)?,
                threads,
                pfd_sh: p.str_opt("pfd").as_deref() == Some("sh"),
                symbolic: p.has("symbolic"),
            },
            "sweep" => Request::Sweep {
                from: p.f64_or("from", 0.02)?,
                to: p.f64_or("to", 0.3)?,
                points: p.usize_or("points", 15)?,
                threads,
            },
            "bode" => Request::Bode {
                design: DesignSpec::required(p)?,
                points: p.usize_or("points", 31)?,
                lambda: p.has("lambda"),
                threads,
            },
            "step" => Request::Step {
                design: DesignSpec::required(p)?,
                until: p.f64_or("until", 40.0)?,
                points: p.usize_or("points", 20)?,
            },
            "hop" => Request::Hop {
                design: DesignSpec::required(p)?,
                until: p.f64_or("until", 40.0)?,
                points: p.usize_or("points", 20)?,
            },
            "spur" => Request::Spur {
                design: DesignSpec::required(p)?,
                leakage_frac: p.f64_or("leakage-frac", 1e-3)?,
                kmax: p.usize_or("kmax", 4)?,
                threads,
            },
            "explore" => Request::Explore {
                candidates: p.usize_or("candidates", 5000)?,
                seed: p.usize_or("seed", 1)? as u64,
                min_pm: p.f64_or("min-pm", 50.0)?,
                max_spur: p.f64_or("max-spur", -65.0)?,
                front_cap: p.usize_or("front-cap", 256)?,
                refine: p.usize_or("refine", 1)?,
                full: p.has("full"),
                quasi: p.has("quasi"),
                threads,
            },
            "optimize" => Request::Optimize {
                min_pm: p.f64_or("min-pm", 45.0)?,
                from: p.f64_or("from", 0.03)?,
                to: p.f64_or("to", 0.25)?,
                points: p.usize_or("points", 10)?,
                ref_noise: p.f64_or("ref-noise", 1e-12)?,
                vco_noise: p.f64_or("vco-noise", 1e-11)?,
            },
            "doctor" => Request::Doctor {
                design: DesignSpec::from_params(p)?,
                threads,
            },
            "xcheck" => Request::Xcheck {
                corpus: p.str_opt("corpus").unwrap_or_else(|| "default".to_string()),
                threads,
            },
            "metrics" => Request::Metrics {
                design: DesignSpec::from_params(p)?,
                obs_spec: p.str_opt("obs").unwrap_or_else(|| "debug".to_string()),
                threads,
            },
            "profile" => Request::Profile {
                ratio: p.f64_or("ratio", 0.1)?,
                points: p.usize_or("points", 96)?,
                trunc: p.usize_or("trunc", 8)?,
                reps: p.usize_or("reps", 1)?,
                seed: p.usize_or("seed", 0)? as u64,
                threads,
            },
            "stats" => Request::Stats,
            other => return Err(format!("unknown command `{other}`")),
        })
    }

    /// Parses one serve JSON line:
    /// `{"id": ..., "command": "...", "params": {...}}`.
    pub fn from_json_line(line: &str) -> Result<(RequestId, Request), String> {
        let doc = crate::obs::parse_json(line).map_err(|e| format!("invalid JSON: {e}"))?;
        let id = match doc.get("id") {
            None | Some(JsonValue::Null) => RequestId::None,
            Some(JsonValue::Str(s)) => RequestId::Str(s.clone()),
            Some(JsonValue::Num(x)) => RequestId::Num(*x),
            Some(_) => return Err("id must be a string or number".to_string()),
        };
        let command = doc
            .get("command")
            .and_then(|v| v.as_str())
            .ok_or("missing `command` member")?;
        let params = match doc.get("params") {
            None | Some(JsonValue::Null) => Params::default(),
            Some(obj) => Params::from_json(obj)?,
        };
        let req = Request::parse(command, &params)?;
        Ok((id, req))
    }

    /// The subcommand name this request executes.
    pub fn command(&self) -> &'static str {
        match self {
            Request::Analyze { .. } => "analyze",
            Request::Sweep { .. } => "sweep",
            Request::Bode { .. } => "bode",
            Request::Step { .. } => "step",
            Request::Hop { .. } => "hop",
            Request::Spur { .. } => "spur",
            Request::Explore { .. } => "explore",
            Request::Optimize { .. } => "optimize",
            Request::Doctor { .. } => "doctor",
            Request::Xcheck { .. } => "xcheck",
            Request::Metrics { .. } => "metrics",
            Request::Profile { .. } => "profile",
            Request::Stats => "stats",
        }
    }

    /// Whether `plltool serve` may execute this request. `metrics` and
    /// `profile` mutate the process-global obs filter/registry, so one
    /// request would corrupt every concurrent request's telemetry.
    pub fn is_servable(&self) -> bool {
        !matches!(
            self,
            Request::Metrics { .. } | Request::Profile { .. } | Request::Stats
        )
    }

    /// The worker-thread budget encoded in the request (`Auto` for
    /// commands without one).
    pub fn budget(&self) -> ThreadBudget {
        let threads = match self {
            Request::Analyze { threads, .. }
            | Request::Sweep { threads, .. }
            | Request::Bode { threads, .. }
            | Request::Spur { threads, .. }
            | Request::Explore { threads, .. }
            | Request::Doctor { threads, .. }
            | Request::Xcheck { threads, .. }
            | Request::Metrics { threads, .. }
            | Request::Profile { threads, .. } => *threads,
            _ => 0,
        };
        ThreadBudget::from(threads)
    }

    /// Canonical JSON for this request: a deterministic function of the
    /// typed fields (not of the incoming flag spelling), used as the
    /// serve response-cache key and the admission-batching group key.
    pub fn canonical_json(&self) -> String {
        let mut out = format!("{{\"command\":\"{}\"", self.command());
        let mut field = |k: &str, v: String| {
            out.push_str(&format!(",\"{k}\":{v}"));
        };
        match self {
            Request::Analyze {
                design,
                threads,
                pfd_sh,
                symbolic,
            } => {
                let mut d = String::new();
                design.canonical(&mut d);
                field("design", d);
                field("pfd_sh", pfd_sh.to_string());
                field("symbolic", symbolic.to_string());
                field("threads", threads.to_string());
            }
            Request::Sweep {
                from,
                to,
                points,
                threads,
            } => {
                field("from", canon_f64(*from));
                field("to", canon_f64(*to));
                field("points", points.to_string());
                field("threads", threads.to_string());
            }
            Request::Bode {
                design,
                points,
                lambda,
                threads,
            } => {
                let mut d = String::new();
                design.canonical(&mut d);
                field("design", d);
                field("lambda", lambda.to_string());
                field("points", points.to_string());
                field("threads", threads.to_string());
            }
            Request::Step {
                design,
                until,
                points,
            }
            | Request::Hop {
                design,
                until,
                points,
            } => {
                let mut d = String::new();
                design.canonical(&mut d);
                field("design", d);
                field("until", canon_f64(*until));
                field("points", points.to_string());
            }
            Request::Spur {
                design,
                leakage_frac,
                kmax,
                threads,
            } => {
                let mut d = String::new();
                design.canonical(&mut d);
                field("design", d);
                field("leakage_frac", canon_f64(*leakage_frac));
                field("kmax", kmax.to_string());
                field("threads", threads.to_string());
            }
            Request::Explore {
                candidates,
                seed,
                min_pm,
                max_spur,
                front_cap,
                refine,
                full,
                quasi,
                threads,
            } => {
                field("candidates", candidates.to_string());
                field("seed", seed.to_string());
                field("min_pm", canon_f64(*min_pm));
                field("max_spur", canon_f64(*max_spur));
                field("front_cap", front_cap.to_string());
                field("refine", refine.to_string());
                field("full", full.to_string());
                field("quasi", quasi.to_string());
                field("threads", threads.to_string());
            }
            Request::Optimize {
                min_pm,
                from,
                to,
                points,
                ref_noise,
                vco_noise,
            } => {
                field("min_pm", canon_f64(*min_pm));
                field("from", canon_f64(*from));
                field("to", canon_f64(*to));
                field("points", points.to_string());
                field("ref_noise", canon_f64(*ref_noise));
                field("vco_noise", canon_f64(*vco_noise));
            }
            Request::Doctor { design, threads } => {
                let mut d = String::from("null");
                if let Some(spec) = design {
                    d.clear();
                    spec.canonical(&mut d);
                }
                field("design", d);
                field("threads", threads.to_string());
            }
            Request::Xcheck { corpus, threads } => {
                field(
                    "corpus",
                    format!("\"{}\"", crate::service::json::escape(corpus)),
                );
                field("threads", threads.to_string());
            }
            Request::Metrics {
                design,
                obs_spec,
                threads,
            } => {
                let mut d = String::from("null");
                if let Some(spec) = design {
                    d.clear();
                    spec.canonical(&mut d);
                }
                field("design", d);
                field(
                    "obs",
                    format!("\"{}\"", crate::service::json::escape(obs_spec)),
                );
                field("threads", threads.to_string());
            }
            Request::Profile {
                ratio,
                points,
                trunc,
                reps,
                seed,
                threads,
            } => {
                field("ratio", canon_f64(*ratio));
                field("points", points.to_string());
                field("trunc", trunc.to_string());
                field("reps", reps.to_string());
                field("seed", seed.to_string());
                field("threads", threads.to_string());
            }
            Request::Stats => {}
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn argv_and_json_params_agree() {
        let cli = Params::from_argv(&strs(&["--ratio", "0.1", "--points", "7"])).unwrap();
        let json =
            Params::from_json(&crate::obs::parse_json(r#"{"ratio": 0.1, "points": 7}"#).unwrap())
                .unwrap();
        for p in [&cli, &json] {
            assert_eq!(p.f64_opt("ratio").unwrap(), Some(0.1));
            assert_eq!(p.usize_or("points", 3).unwrap(), 7);
            assert_eq!(p.f64_or("missing", 2.5).unwrap(), 2.5);
            assert!(!p.has("symbolic"));
        }
        let a = Request::parse("analyze", &cli).unwrap();
        let b = Request::parse("analyze", &json).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.canonical_json(), b.canonical_json());
    }

    #[test]
    fn canonical_json_ignores_flag_spelling() {
        let a = Params::from_argv(&strs(&["--ratio", "0.1"])).unwrap();
        let b = Params::from_argv(&strs(&["--ratio", "1e-1", "--spread", "4"])).unwrap();
        let ra = Request::parse("analyze", &a).unwrap();
        let rb = Request::parse("analyze", &b).unwrap();
        assert_eq!(ra.canonical_json(), rb.canonical_json());
    }

    #[test]
    fn from_json_line_roundtrip() {
        let (id, req) = Request::from_json_line(
            r#"{"id": "r1", "command": "bode", "params": {"ratio": 0.1, "lambda": true}}"#,
        )
        .unwrap();
        assert_eq!(id, RequestId::Str("r1".to_string()));
        match req {
            Request::Bode { lambda, points, .. } => {
                assert!(lambda);
                assert_eq!(points, 31);
            }
            other => panic!("wrong request: {other:?}"),
        }
        assert!(Request::from_json_line("not json").is_err());
        assert!(Request::from_json_line(r#"{"params": {}}"#).is_err());
        assert!(Request::from_json_line(r#"{"command": "frobnicate"}"#).is_err());
    }

    #[test]
    fn servability_gates_global_mutators() {
        let p = Params::default();
        assert!(!Request::parse("metrics", &p).unwrap().is_servable());
        assert!(!Request::parse("profile", &p).unwrap().is_servable());
        assert!(!Request::parse("stats", &p).unwrap().is_servable());
        assert!(Request::parse("sweep", &p).unwrap().is_servable());
    }

    #[test]
    fn design_spec_errors_match_cli_wording() {
        let p = Params::default();
        assert_eq!(
            DesignSpec::required(&p).unwrap_err(),
            "need --ratio or --fref/--n/--kvco/--bw"
        );
        let p = Params::from_argv(&strs(&["--fref", "10e6"])).unwrap();
        assert_eq!(
            DesignSpec::required(&p).unwrap_err(),
            "--kvco required with --fref"
        );
    }
}
