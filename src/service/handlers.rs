//! Command handlers: the former `plltool` subcommand bodies, extracted
//! into pure(ish) functions from typed [`Request`] parameters to typed
//! response payloads. No handler prints, reads argv, or writes files —
//! that is front-end work — and every fallible step surfaces as a
//! `Result`, so a batch service can absorb failures per request.

use super::response::{
    AnalyzeOut, BodeOut, BodeRow, DoctorCheck, DoctorOut, ExploreOut, MetricsOut, OptimizeOut,
    ProfileOut, Response, ServiceError, ShMargins, SpurOut, SweepOut, SweepRow, TransientOut,
    XcheckOut,
};
use super::ServiceCtx;
use crate::core::{
    analyze_cached, analyze_deadline, bode_grid, dominant_poles, explore_deadline, optimize_loop,
    transient, EffectiveGain, ExploreSpec, LeakageSpurs, NoiseModel, NoiseShape, NoiseSpec,
    OptimizeSpec, PllDesign, PllModel, PointQuality, QualitySummary, SampleHoldModel, SweepSpec,
    DEADLINE_REASON, MAX_AUTO_TRUNCATION,
};
use crate::htm::{Htm, HtmRepr, Truncation};
use crate::lti::FrequencyGrid;
use crate::num::optim::lin_grid;
use crate::num::Complex;
use crate::par::{Deadline, ThreadBudget};
use crate::requests::{DesignSpec, Request};
use crate::sim::{acquire_lock, LockOptions, PllSim, SimConfig, SimParams};
use crate::spectral::{periodogram, Window};

/// Executes one request against the shared service context. Never
/// panics on request-level failures: they come back as
/// [`Response::Error`].
pub fn handle(req: &Request, ctx: &ServiceCtx) -> Response {
    // Fault site: a handler panic for scope-selected requests, proving
    // the serve worker's `catch_unwind` containment under chaos runs.
    htmpll_fault::panic_if("handler.panic", 0);
    let budget = req.budget();
    let deadline = ctx.begin_request();
    let result = match req {
        Request::Analyze {
            design,
            pfd_sh,
            symbolic,
            ..
        } => analyze(design, budget, *pfd_sh, *symbolic, ctx, &deadline).map(Response::Analyze),
        Request::Sweep {
            from, to, points, ..
        } => sweep(*from, *to, *points, budget, ctx, &deadline),
        Request::Bode {
            design,
            points,
            lambda,
            ..
        } => bode(design, *points, *lambda, budget, ctx, &deadline).map(Response::Bode),
        Request::Step {
            design,
            until,
            points,
        } => transient_out(design, *until, *points, false).map(Response::Step),
        Request::Hop {
            design,
            until,
            points,
        } => transient_out(design, *until, *points, true).map(Response::Hop),
        Request::Spur {
            design,
            leakage_frac,
            kmax,
            ..
        } => spur(design, *leakage_frac, *kmax, budget).map(Response::Spur),
        Request::Optimize {
            min_pm,
            from,
            to,
            points,
            ref_noise,
            vco_noise,
        } => optimize(*min_pm, *from, *to, *points, *ref_noise, *vco_noise).map(Response::Optimize),
        Request::Explore {
            candidates,
            seed,
            min_pm,
            max_spur,
            front_cap,
            refine,
            full,
            quasi,
            ..
        } => explore(
            *candidates,
            *seed,
            *min_pm,
            *max_spur,
            *front_cap,
            *refine,
            *full,
            *quasi,
            budget,
            ctx,
            &deadline,
        )
        .map(Response::Explore),
        Request::Doctor { design, .. } => {
            doctor(design.as_ref(), budget, ctx).map(Response::Doctor)
        }
        Request::Xcheck { corpus, .. } => xcheck(corpus, budget).map(Response::Xcheck),
        Request::Metrics {
            design, obs_spec, ..
        } => metrics(design.as_ref(), obs_spec, budget).map(Response::Metrics),
        Request::Profile {
            ratio,
            points,
            trunc,
            reps,
            seed,
            ..
        } => profile(*ratio, *points, *trunc, *reps, *seed, budget).map(Response::Profile),
        Request::Stats => Err("stats is only available under `plltool serve`".to_string()),
    };
    result.unwrap_or_else(|message| {
        // A handler that ran out of budget reports a *retryable*
        // structured error, not a generic failure: the caller can raise
        // `--deadline-ms` (or drop load) and resubmit the same request.
        let err = if message.starts_with(DEADLINE_REASON) {
            ServiceError::deadline(req.command(), message, None)
        } else {
            ServiceError::failed(req.command(), message)
        };
        Response::Error(err)
    })
}

fn build_model(spec: &DesignSpec) -> Result<(PllDesign, PllModel), String> {
    let design = spec.build()?;
    let model = PllModel::builder(design.clone())
        .build()
        .map_err(|e| e.to_string())?;
    Ok((design, model))
}

fn analyze(
    spec: &DesignSpec,
    threads: ThreadBudget,
    pfd_sh: bool,
    symbolic: bool,
    ctx: &ServiceCtx,
    deadline: &Deadline,
) -> Result<AnalyzeOut, String> {
    let (design, model) = build_model(spec)?;
    let report =
        analyze_deadline(&model, threads, &ctx.cache, deadline).map_err(|e| e.to_string())?;
    let strip_poles = dominant_poles(&model)
        .ok()
        .map(|ps| ps.iter().map(|p| (p.re, p.im)).collect());
    let sample_hold = if pfd_sh {
        let sh = SampleHoldModel::new(model.design().clone()).map_err(|e| e.to_string())?;
        Some(match sh.margins() {
            Ok(m) => Ok(ShMargins {
                omega_ug: m.omega_ug,
                phase_margin_deg: m.phase_margin_deg,
            }),
            Err(e) => Err(e.to_string()),
        })
    } else {
        None
    };
    let symbolic = if symbolic {
        let lam = EffectiveGain::new(&design.open_loop_gain(), design.omega_ref())
            .map_err(|e| e.to_string())?;
        Some(lam.symbolic())
    } else {
        None
    };
    Ok(AnalyzeOut {
        design_display: design.to_string(),
        omega_ref: design.omega_ref(),
        report,
        strip_poles,
        sample_hold,
        symbolic,
    })
}

fn merge_quality(into: &mut QualitySummary, q: &QualitySummary) {
    into.exact += q.exact;
    into.refined += q.refined;
    into.perturbed += q.perturbed;
    into.failed += q.failed;
    if q.worst_cond > into.worst_cond {
        into.worst_cond = q.worst_cond;
    }
    if q.worst_residual > into.worst_residual {
        into.worst_residual = q.worst_residual;
    }
}

/// The ratio sweep with its graceful-degradation ladder. Under an armed
/// deadline the handler sheds work in order of increasing damage:
///
/// 1. **Reduce truncation** — the per-point solver already caps its
///    escalation ladder once the budget is half consumed (recorded by
///    the `core/robust.trunc_capped` counter).
/// 2. **Coarsen the grid** — once more than half the budget is gone
///    with more than half the ratios remaining, every other ratio is
///    skipped.
/// 3. **Partial result** — on expiry the completed rows are returned
///    as-is.
///
/// Every step taken is recorded in [`SweepOut::degradation`], so a
/// degraded response is always distinguishable from a full one. A
/// deadline that fires before *any* ratio completes becomes a
/// retryable `code:deadline` error carrying the (empty) quality
/// roll-up. The ladder consults only the deterministic deadline state,
/// so a given budget and fault plan always degrade the same way.
fn sweep(
    from: f64,
    to: f64,
    points: usize,
    threads: ThreadBudget,
    ctx: &ServiceCtx,
    deadline: &Deadline,
) -> Result<Response, String> {
    let ratios = lin_grid(from, to, points.max(2));
    let total = ratios.len();
    let mut rows = Vec::new();
    let mut quality = QualitySummary::default();
    let mut degradation: Vec<String> = Vec::new();
    let mut stride = 1usize;
    let mut i = 0usize;
    while i < total {
        if deadline.expired() {
            if rows.is_empty() {
                return Ok(Response::Error(ServiceError::deadline(
                    "sweep",
                    format!("{DEADLINE_REASON} before the first of {total} ratios completed"),
                    Some(quality),
                )));
            }
            degradation.push(format!(
                "partial: deadline expired after {} of {} ratios",
                rows.len(),
                total
            ));
            break;
        }
        if stride == 1 && (total - i) * 2 > total && deadline.pressed(0.5) {
            stride = 2;
            degradation.push(format!(
                "coarsened: ratio stride doubled with {} of {} ratios remaining",
                total - i,
                total
            ));
        }
        let ratio = ratios[i];
        let model =
            PllModel::builder(PllDesign::reference_design(ratio).map_err(|e| e.to_string())?)
                .build()
                .map_err(|e| e.to_string())?;
        let r = match analyze_deadline(&model, threads, &ctx.cache, deadline) {
            Ok(r) => r,
            Err(e) => {
                let message = e.to_string();
                if !message.starts_with(DEADLINE_REASON) {
                    return Err(message);
                }
                if rows.is_empty() {
                    return Ok(Response::Error(ServiceError::deadline(
                        "sweep",
                        format!("{message} (0 of {total} ratios completed)"),
                        Some(quality),
                    )));
                }
                degradation.push(format!(
                    "partial: {} after {} of {} ratios",
                    DEADLINE_REASON,
                    rows.len(),
                    total
                ));
                break;
            }
        };
        merge_quality(&mut quality, &r.quality);
        rows.push(SweepRow {
            ratio,
            ug_ratio: r.omega_ug_eff / r.omega_ug_lti,
            pm_eff_deg: r.phase_margin_eff_deg,
            pm_lti_deg: r.phase_margin_lti_deg,
            beyond_limit: r.beyond_sampling_limit,
        });
        i += stride;
    }
    Ok(Response::Sweep(SweepOut {
        rows,
        quality,
        degradation,
    }))
}

fn bode(
    spec: &DesignSpec,
    points: usize,
    lambda: bool,
    threads: ThreadBudget,
    ctx: &ServiceCtx,
    deadline: &Deadline,
) -> Result<BodeOut, String> {
    let (design, model) = build_model(spec)?;
    let wug = analyze_deadline(&model, threads, &ctx.cache, deadline)
        .map_err(|e| e.to_string())?
        .omega_ug_lti;
    let grid =
        FrequencyGrid::log(1e-2 * wug, 1e2 * wug, points.max(2)).map_err(|e| e.to_string())?;
    let pts = if lambda {
        let lam = EffectiveGain::new(&design.open_loop_gain(), design.omega_ref())
            .map_err(|e| e.to_string())?;
        // λ is only meaningful inside the first band.
        let spec =
            SweepSpec::new(grid.retain(|w| w < 0.4999 * design.omega_ref())).with_threads(threads);
        bode_grid(|w| lam.eval_jw(w), &spec)
    } else {
        let a = design.open_loop_gain();
        let spec = SweepSpec::new(grid).with_threads(threads);
        bode_grid(|w| a.eval_jw(w), &spec)
    };
    Ok(BodeOut {
        rows: pts
            .iter()
            .map(|p| BodeRow {
                omega: p.omega,
                mag_db: p.mag_db,
                phase_deg: p.phase_deg,
            })
            .collect(),
    })
}

fn transient_out(
    spec: &DesignSpec,
    until: f64,
    points: usize,
    hop: bool,
) -> Result<TransientOut, String> {
    let (_, model) = build_model(spec)?;
    let ts = lin_grid(until / points as f64, until, points.max(2));
    let ys = if hop {
        transient::frequency_step_error(&model, &ts)
    } else {
        transient::step_response(&model, &ts)
    };
    Ok(TransientOut { ts, ys })
}

fn spur(
    spec: &DesignSpec,
    leakage_frac: f64,
    kmax: usize,
    threads: ThreadBudget,
) -> Result<SpurOut, String> {
    let (design, model) = build_model(spec)?;
    let spurs = LeakageSpurs::new(&model, leakage_frac * design.icp());
    Ok(SpurOut {
        leakage_frac,
        static_offset: spurs.static_offset(),
        f_ref: design.f_ref(),
        lines: spurs.scan(kmax as i64, threads),
    })
}

fn optimize(
    min_pm: f64,
    from: f64,
    to: f64,
    points: usize,
    ref_noise: f64,
    vco_noise: f64,
) -> Result<OptimizeOut, String> {
    let spec = OptimizeSpec {
        min_pm_eff_deg: min_pm,
        ratios: (from, to, points),
        spreads: vec![3.0, 4.0, 6.0],
    };
    let noise = NoiseSpec {
        reference: NoiseShape::White { level: ref_noise },
        vco: NoiseShape::PowerLaw {
            level_at_ref: vco_noise,
            w_ref: 1.0,
            exponent: 2,
        },
        band: (1e-3, 0.45),
    };
    let best = optimize_loop(&spec, &noise).map_err(|e| e.to_string())?;
    Ok(OptimizeOut {
        ratio: best.ratio,
        spread: best.spread,
        pm_lti_deg: best.report.phase_margin_lti_deg,
        pm_eff_deg: best.report.phase_margin_eff_deg,
        integrated_noise: best.integrated_noise,
    })
}

/// Streaming design-space exploration: seeded candidate corpus through
/// the screening cascade into a bounded, deterministic Pareto front.
/// The cooperative deadline shrinks the candidate budget (recorded in
/// the report's degradation notes); an expiry before any block lands
/// surfaces as a retryable `code:deadline` error through the
/// [`DEADLINE_REASON`] prefix protocol.
#[allow(clippy::too_many_arguments)]
fn explore(
    candidates: usize,
    seed: u64,
    min_pm: f64,
    max_spur: f64,
    front_cap: usize,
    refine: usize,
    full: bool,
    quasi: bool,
    threads: ThreadBudget,
    ctx: &ServiceCtx,
    deadline: &Deadline,
) -> Result<ExploreOut, String> {
    let spec = ExploreSpec {
        candidates,
        seed,
        min_pm_deg: min_pm,
        max_spur_dbc: max_spur,
        front_cap,
        refine_rounds: refine,
        screen: !full,
        quasi,
        threads,
    };
    let report = explore_deadline(&spec, &ctx.cache, deadline).map_err(|e| e.to_string())?;
    Ok(ExploreOut { seed, report })
}

/// Stress-evaluates a model at adversarial points — on-pole `s`, a loop
/// driven to `ω_UG ≈ ω₀`, (near-)singular `I + G̃`, extreme truncation
/// orders, NaN injection — and returns the health table. Every check
/// must complete without panicking AND land on its expected verdict
/// class; surprises surface through [`DoctorOut::failures`].
fn doctor(
    spec: Option<&DesignSpec>,
    threads: ThreadBudget,
    ctx: &ServiceCtx,
) -> Result<DoctorOut, String> {
    let design = match spec {
        Some(spec) => spec.build()?,
        None => PllDesign::reference_design(0.1).map_err(|e| e.to_string())?,
    };
    let model = PllModel::builder(design.clone())
        .build()
        .map_err(|e| e.to_string())?;
    let w0 = design.omega_ref();
    let cache = &ctx.cache;
    let trunc = Truncation::new(4);
    let mut checks: Vec<DoctorCheck> = Vec::new();

    // A dense-solve check: evaluate at `s`, expect one of `allowed`.
    let mut dense_check = |check: &'static str, s: Complex, k: Truncation, allowed: &[&str]| {
        let row = match cache.dense_robust(&model, s, k) {
            Ok(d) => DoctorCheck {
                check: check.to_string(),
                verdict: d.quality.name().to_string(),
                cond: Some(d.report.cond_estimate),
                residual: Some(d.report.residual),
                ok: allowed.contains(&d.quality.name()),
                note: format!("stages {}", d.report.stages_tried.len()),
            },
            Err(reason) => DoctorCheck {
                check: check.to_string(),
                verdict: "failed".to_string(),
                cond: None,
                residual: None,
                ok: allowed.contains(&"failed"),
                note: reason.chars().take(48).collect(),
            },
        };
        checks.push(row);
    };

    // 1-2: exactly on the aliased-integrator poles of the open loop —
    // the entries are non-finite there; the engine must fail the point
    // gracefully, never panic or return NaN as a value.
    dense_check("on-pole s = j*w0", Complex::from_im(w0), trunc, &["failed"]);
    dense_check("integrator pole s = 0", Complex::ZERO, trunc, &["failed"]);
    // 3: NaN injection through the public API.
    dense_check(
        "NaN Laplace point",
        Complex::new(f64::NAN, 0.0),
        trunc,
        &["failed"],
    );
    // 4: a usable point at the band edge, where conditioning is worst.
    dense_check(
        "band edge s = j*0.499*w0",
        Complex::from_im(0.499 * w0),
        trunc,
        &["exact", "refined", "perturbed"],
    );
    // 5: on a closed-loop strip pole (if one is found): I+G~ is
    // near-singular; the ladder must still produce a usable value.
    if let Ok(poles) = dominant_poles(&model) {
        if let Some(p) = poles.first() {
            dense_check(
                "closed-loop pole s = p1",
                *p,
                trunc,
                &["exact", "refined", "perturbed"],
            );
        }
    }
    // 6-7: extreme truncation orders.
    dense_check(
        "truncation K = 1",
        Complex::from_im(0.3 * w0),
        Truncation::new(1),
        &["exact", "refined", "perturbed"],
    );
    dense_check(
        "truncation K = MAX",
        Complex::from_im(0.3 * w0),
        Truncation::new(MAX_AUTO_TRUNCATION),
        &["exact", "refined", "perturbed"],
    );

    // 8: exactly singular I+G~ (G~ = -I): the Tikhonov rung must kick
    // in and mark the result perturbed.
    let singular = Htm::identity(trunc, w0).scale(-Complex::ONE);
    checks.push(match singular.closed_loop_factored_robust() {
        Ok((_, cl, report)) => DoctorCheck {
            check: "singular I+G~ (G~ = -I)".to_string(),
            verdict: if report.perturbed {
                "perturbed".into()
            } else {
                "unexpected".into()
            },
            cond: Some(report.cond_estimate),
            residual: Some(report.residual),
            ok: report.perturbed && cl.as_matrix().is_finite(),
            note: format!("stages {}", report.stages_tried.len()),
        },
        Err(e) => DoctorCheck {
            check: "singular I+G~ (G~ = -I)".to_string(),
            verdict: "failed".into(),
            cond: None,
            residual: None,
            ok: false,
            note: e.to_string(),
        },
    });

    // 9: structured-kernel probe — a banded open loop whose I+G~ is a
    // tridiagonal Toeplitz matrix tuned to be singular to working
    // precision (smallest eigenvalue a + 2·cos(π/(n+1)) = 0). The
    // banded rung must refuse it at the conditioning gate and escalate
    // through the dense ladder to a refined/perturbed value — never
    // silently return a wrong structured answer.
    let n = trunc.dim();
    let a0 = -2.0 * (std::f64::consts::PI / (n as f64 + 1.0)).cos();
    let near_singular = Htm::from_repr(
        trunc,
        w0,
        HtmRepr::BandedToeplitz {
            coeffs: vec![Complex::ONE, Complex::from_re(a0 - 1.0), Complex::ONE],
            row_scale: None,
        },
    );
    checks.push(match near_singular.closed_loop_factored_robust() {
        Ok((_, cl, report)) => {
            let quality = PointQuality::from_report(&report);
            let escalated = report.stages_tried.len() > 1;
            DoctorCheck {
                check: "structured near-singular band".to_string(),
                verdict: quality.name().to_string(),
                cond: Some(report.cond_estimate),
                residual: Some(report.residual),
                ok: escalated
                    && matches!(quality, PointQuality::Refined | PointQuality::Perturbed)
                    && cl.as_matrix().is_finite(),
                note: format!("stages {}", report.stages_tried.len()),
            }
        }
        Err(e) => DoctorCheck {
            check: "structured near-singular band".to_string(),
            verdict: "failed".into(),
            cond: None,
            residual: None,
            ok: false,
            note: e.to_string(),
        },
    });

    // 10: a loop pushed to the sampling limit (ω_UG ≈ ω₀ regime) must
    // still analyze end to end and report its degraded-point counts.
    let fast_row = match PllDesign::reference_design(0.45)
        .map_err(|e| e.to_string())
        .and_then(|d| PllModel::builder(d).build().map_err(|e| e.to_string()))
        .and_then(|m| analyze_cached(&m, threads, &ctx.cache).map_err(|e| e.to_string()))
    {
        Ok(r) => DoctorCheck {
            check: "fast loop w_UG ~ w0".to_string(),
            verdict: "completed".into(),
            cond: Some(r.quality.worst_cond),
            residual: Some(r.quality.worst_residual),
            ok: true,
            note: format!(
                "beyond_limit={} degraded={}",
                r.beyond_sampling_limit,
                r.quality.degraded()
            ),
        },
        Err(e) => DoctorCheck {
            check: "fast loop w_UG ~ w0".to_string(),
            verdict: "error".into(),
            cond: None,
            residual: None,
            ok: false,
            note: e.chars().take(48).collect(),
        },
    };
    checks.push(fast_row);

    // 11: eviction storm — two passes of a dense grid through a
    // 16-entry cache (far smaller than the grid, so entries churn
    // constantly) must match an uncapped cache bit for bit. Eviction
    // pressure is allowed to cost time, never correctness.
    let storm_row = (|| -> Result<DoctorCheck, String> {
        let grid = SweepSpec::log(1e-2 * w0, 0.49 * w0, 48)
            .map_err(|e| e.to_string())?
            .with_truncation(trunc)
            .with_threads(threads);
        let tiny = crate::core::SweepCache::with_capacity(16);
        let roomy = crate::core::SweepCache::new();
        let cold = model
            .closed_loop_htm_grid_cached(&grid, &tiny)
            .map_err(|e| e.to_string())?;
        let rerun = model
            .closed_loop_htm_grid_cached(&grid, &tiny)
            .map_err(|e| e.to_string())?;
        let reference = model
            .closed_loop_htm_grid_cached(&grid, &roomy)
            .map_err(|e| e.to_string())?;
        let same = |a: &[crate::htm::Htm], b: &[crate::htm::Htm]| {
            a.len() == b.len()
                && a.iter().zip(b).all(|(x, y)| {
                    let (xs, ys) = (x.as_matrix().as_slice(), y.as_matrix().as_slice());
                    xs.len() == ys.len()
                        && xs.iter().zip(ys).all(|(u, v)| {
                            u.re.to_bits() == v.re.to_bits() && u.im.to_bits() == v.im.to_bits()
                        })
                })
        };
        let identical = same(&cold, &reference) && same(&rerun, &reference);
        let stats = tiny.stats();
        Ok(DoctorCheck {
            check: "cache eviction storm".to_string(),
            verdict: if identical {
                "identical".into()
            } else {
                "mismatch".into()
            },
            cond: None,
            residual: None,
            ok: identical && stats.evictions > 0,
            note: format!(
                "cap 16: {} evictions, {} hits, {} misses",
                stats.evictions, stats.hits, stats.misses
            ),
        })
    })();
    checks.push(storm_row.unwrap_or_else(|e| DoctorCheck {
        check: "cache eviction storm".to_string(),
        verdict: "error".into(),
        cond: None,
        residual: None,
        ok: false,
        note: e.chars().take(48).collect(),
    }));

    Ok(DoctorOut {
        design_display: design.to_string(),
        simd_level: crate::num::simd::active_level().name().to_string(),
        checks,
    })
}

/// Cross-stack differential verification over the deterministic
/// scenario corpus.
fn xcheck(corpus: &str, threads: ThreadBudget) -> Result<XcheckOut, String> {
    let report = crate::xcheck::run_corpus(corpus, threads).map_err(|e| e.to_string())?;
    Ok(XcheckOut {
        corpus: report.corpus.clone(),
        table: report.render_table(),
        agreements: report.agreements(),
        tolerated: report.tolerated(),
        mismatches: report.mismatches(),
        total_checks: report.total_checks(),
        scenarios: report.scenarios.len(),
        digest: report.digest(),
        report_json: report.to_json(),
        bench_json: report.timings.to_bench_json(
            &report.corpus,
            report.scenarios.len(),
            report.total_checks(),
        ),
    })
}

/// Runs a representative slice of the whole pipeline — analysis, strip
/// poles, truncated/dense HTM closed loop, eigenvalues, parallel
/// frequency sweeps, behavioral simulation, lock acquisition, spectral
/// estimation — under the obs filter, then snapshots every metric the
/// run produced. Mutates the process-global obs filter and registry,
/// which is why this request is not servable.
fn metrics(
    spec: Option<&DesignSpec>,
    obs_spec: &str,
    threads: ThreadBudget,
) -> Result<MetricsOut, String> {
    crate::obs::override_filter(obs_spec);
    crate::obs::reset();

    let design = match spec {
        Some(spec) => spec.build()?,
        None => PllDesign::reference_design(0.1).map_err(|e| e.to_string())?,
    };
    let model = PllModel::builder(design.clone())
        .build()
        .map_err(|e| e.to_string())?;

    // Frequency-domain leg: margins, strip poles, λ truncation — all
    // scan grids run on the parallel pool.
    crate::core::analyze_with(&model, threads).map_err(|e| e.to_string())?;
    let _ = dominant_poles(&model);
    let lam = model.lambda();
    let k = lam.suggest_truncation(1e-6);
    let s = Complex::from_im(0.3 * design.omega_ref());
    let _ = lam.eval_truncated(s, k.min(1000));

    // HTM leg: dense closed loop + generalized Nyquist eigenvalues.
    let trunc = Truncation::new(k.min(10));
    let cl = model
        .closed_loop_htm_dense(s, trunc)
        .map_err(|e| e.to_string())?;
    cl.eigenvalues()
        .map_err(|e| format!("eigensolver: {e:?}"))?;

    // Parallel-sweep leg: λ grid, dense HTM grid (twice through one
    // cache, so the second pass is all hits), folded noise PSDs and a
    // spur table — exercises the pool and the sweep cache end to end.
    let w0 = design.omega_ref();
    let sweep_spec = SweepSpec::log(1e-3 * w0, 0.49 * w0, 512)
        .map_err(|e| e.to_string())?
        .with_threads(threads);
    let _ = lam.eval_grid(&sweep_spec);
    let htm_spec = SweepSpec::log(1e-2 * w0, 0.49 * w0, 96)
        .map_err(|e| e.to_string())?
        .with_truncation(trunc)
        .with_threads(threads);
    let cache = crate::core::SweepCache::new();
    model
        .closed_loop_htm_grid_cached(&htm_spec, &cache)
        .map_err(|e| e.to_string())?;
    model
        .closed_loop_htm_grid_cached(&htm_spec, &cache)
        .map_err(|e| e.to_string())?;
    // Robustness leg: a grid with a deliberately on-pole point (ω = ω₀)
    // exercises the verdict/escalation path — robust.failed alongside
    // the healthy points' robust.exact.
    let adversarial = SweepSpec::new(vec![0.2 * w0, w0, 0.45 * w0])
        .with_truncation(trunc)
        .with_threads(threads);
    let robust = model.closed_loop_htm_grid_robust(&adversarial, &cache);
    let _ = robust.summary();
    let noise = NoiseModel::new(&model, 8);
    let _ = noise.output_psd_grid(&sweep_spec, &|_| 1e-12, &|f| 1e-12 / (1.0 + f * f));
    let _ = LeakageSpurs::new(&model, 1e-3 * design.icp()).scan(16, threads);

    // Time-domain leg: settle run, lock acquisition, PSD of the trace.
    let params = SimParams::from_design(&design);
    let config = SimConfig::default();
    let mut sim = PllSim::new(params.clone(), config);
    let trace = sim.run(30.0 * params.t_ref, &|_| 0.0);
    let _ = acquire_lock(&params, &config, 5e-3, &LockOptions::default());
    let fs = 1.0 / trace.dt;
    periodogram(&trace.v_ctrl, fs, Window::Hann).map_err(|e| e.to_string())?;

    Ok(MetricsOut {
        filter: obs_spec.to_string(),
        levels: crate::obs::describe_targets(&["num", "htm", "core", "sim", "spectral"]),
        table: crate::obs::export_table(),
        export_json: crate::obs::export_json(),
    })
}

/// Runs the seeded profiling workload matrix.
fn profile(
    ratio: f64,
    points: usize,
    trunc: usize,
    reps: usize,
    seed: u64,
    threads: ThreadBudget,
) -> Result<ProfileOut, String> {
    let spec = crate::profile::ProfileSpec {
        ratio,
        points,
        trunc,
        reps,
        threads,
        seed,
    };
    let report = crate::profile::run_profile(&spec)?;
    Ok(ProfileOut {
        table: report.render_table(),
        report_json: report.to_json(),
    })
}
