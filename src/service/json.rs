//! Minimal JSON emission helpers for the response envelope.
//!
//! The workspace already hand-rolls JSON in `htmpll-obs` (parser) and
//! the per-crate exporters; this module is the service layer's writing
//! half: string escaping and deterministic number formatting. `Display`
//! for `f64` is shortest-roundtrip in Rust, so values re-parse to the
//! identical bits and responses are byte-stable across runs and worker
//! counts.

/// Escapes a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A JSON number: `Display` (shortest roundtrip) for finite values,
/// `null` for NaN/±∞ (JSON has no representation for them).
pub fn num(x: f64) -> String {
    if x.is_finite() {
        x.to_string()
    } else {
        "null".to_string()
    }
}

/// An optional JSON number (`null` when absent or non-finite).
pub fn opt_num(x: Option<f64>) -> String {
    match x {
        Some(v) => num(v),
        None => "null".to_string(),
    }
}

/// A JSON string literal.
pub fn str_lit(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_numbers() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(num(0.1), "0.1");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(opt_num(None), "null");
        assert_eq!(str_lit("x"), "\"x\"");
        // Round-trip: Display → parse is bit-exact.
        let x = 1.0 / 3.0;
        assert_eq!(num(x).parse::<f64>().unwrap().to_bits(), x.to_bits());
    }
}
