//! # `plltool chaos` — seeded fault replay against the serve pipeline
//!
//! Replays a deterministic request corpus through [`serve_lines`] three
//! times — a fault-free baseline, a faulted single-worker run, and a
//! faulted multi-worker run — and checks the robustness invariants the
//! serve architecture promises:
//!
//! 1. **Liveness** — the process never dies: every run completes and
//!    answers exactly one line per request, panics and all.
//! 2. **Order** — response lines carry the request ids in input order.
//! 3. **Thread invariance** — the faulted output is byte-identical for
//!    1 and N workers (fault decisions are pure functions of the plan,
//!    the request spec, and the line number — never of timing).
//! 4. **Blast radius** — responses for requests that no fault rule
//!    selects are byte-identical to the fault-free baseline: a fault
//!    only ever damages the request it was aimed at.
//!
//! The corpus and the fault plan both derive from one seed, so a
//! failing run is replayed exactly by rerunning with the same
//! arguments. Violations exit nonzero so CI can gate on a chaos smoke.
//!
//! [`serve_lines`]: super::serve_lines

use std::io::Cursor;

use super::server::{serve_lines, ServeOptions, ServeSummary};
use crate::requests::Request;
use htmpll_fault::{fnv64, FaultPlan};

/// Sites whose injected fault changes response *content* (a different
/// verdict, a panic, a NaN) rather than just timing or cache placement.
/// Requests scope-selected by any of these are excluded from the
/// baseline byte-comparison; everything else must match exactly.
const VALUE_CHANGING_SITES: &[&str] =
    &["lu.pivot_fail", "handler.panic", "sweep.nan", "sweep.panic"];

/// Knobs for one chaos run. `Default` matches the CLI defaults.
#[derive(Clone, Debug)]
pub struct ChaosOptions {
    /// Corpus size in input lines.
    pub requests: usize,
    /// Seed for the default fault plan (and recorded in the report).
    pub seed: u64,
    /// Worker count for the multi-worker leg (min 2).
    pub workers: usize,
    /// Explicit fault plan; `None` uses [`default_plan`].
    pub plan: Option<String>,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            requests: 40,
            seed: 42,
            workers: 4,
            plan: None,
        }
    }
}

/// The default seeded plan: every fault family the pipeline contains,
/// each scope-gated or line-gated so most requests stay clean and the
/// blast-radius invariant has something to bite on.
pub fn default_plan(seed: u64) -> String {
    format!(
        "seed={seed};lu.pivot_fail=prob:0.25,scope:0.25;handler.panic=always,scope:0.1;\
         serve.malformed=every:13;cache.evict=every:11;sweep.nan=every:9,scope:0.15;\
         sweep.slow=every:40@2"
    )
}

/// What a chaos run found. `violations` empty means every invariant
/// held.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Input lines replayed per run.
    pub corpus_lines: usize,
    /// The fault plan the faulted legs ran under.
    pub plan: String,
    /// Requests selected by a value-changing fault rule (excluded from
    /// the baseline comparison).
    pub faulted_requests: usize,
    /// Lines hit by the `serve.malformed` envelope fault.
    pub malformed_injected: usize,
    /// Lines compared byte-for-byte against the baseline.
    pub compared: usize,
    /// Invariant violations, empty on a clean run.
    pub violations: Vec<String>,
}

impl ChaosReport {
    /// True when every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human rendering for the CLI.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "chaos : corpus {} lines | plan {}\n",
            self.corpus_lines, self.plan
        ));
        out.push_str(&format!(
            "faults: {} requests fault-selected | {} lines malformed | {} compared to baseline\n",
            self.faulted_requests, self.malformed_injected, self.compared
        ));
        if self.ok() {
            out.push_str(
                "checks: liveness PASS | order PASS | thread-invariance PASS | blast-radius PASS\n",
            );
        } else {
            for v in &self.violations {
                out.push_str(&format!("VIOLATION: {v}\n"));
            }
        }
        out
    }
}

/// The deterministic request corpus: a rotating mix of every servable
/// command family, plus malformed-but-JSON lines, one raw-garbage line
/// per 16, and exact duplicates (same canonical spec under a new id,
/// exercising the response cache under faults). Each line gets its
/// index as its id; every distinct request uses a distinct design so
/// one request's faulted solves can never be another's via the shared
/// sweep cache.
pub fn build_corpus(n: usize) -> Vec<String> {
    let mut lines = Vec::with_capacity(n);
    for i in 0..n {
        let line = match i % 8 {
            0 | 1 => analyze_line(i, i),
            2 => format!(
                "{{\"id\":{i},\"command\":\"bode\",\"params\":{{\"ratio\":{},\"points\":6}}}}",
                (300 + 2 * i) as f64 / 1000.0
            ),
            3 => format!(
                "{{\"id\":{i},\"command\":\"step\",\"params\":{{\"ratio\":{},\"points\":5}}}}",
                (100 + 2 * i) as f64 / 1000.0
            ),
            4 => format!(
                "{{\"id\":{i},\"command\":\"spur\",\"params\":{{\"ratio\":{},\"kmax\":4}}}}",
                (200 + 2 * i) as f64 / 1000.0
            ),
            5 => format!(
                "{{\"id\":{i},\"command\":\"sweep\",\"params\":{{\"from\":{},\"to\":{},\"points\":2}}}}",
                (400 + 2 * i) as f64 / 1000.0,
                (401 + 2 * i) as f64 / 1000.0
            ),
            6 => {
                if i % 16 == 6 {
                    // Raw garbage: not JSON at all, no recoverable id.
                    format!("chaos garbage line {i} ~~~")
                } else {
                    format!("{{\"id\":{i},\"command\":\"nonsense\",\"params\":{{}}}}")
                }
            }
            // An exact duplicate of the analyze seven lines back, under
            // a fresh id: identical canonical spec, identical scope.
            _ => analyze_line(i, i - 7),
        };
        lines.push(line);
    }
    lines
}

fn analyze_line(id: usize, variant: usize) -> String {
    format!(
        "{{\"id\":{id},\"command\":\"analyze\",\"params\":{{\"ratio\":{}}}}}",
        (50 + 2 * variant) as f64 / 1000.0
    )
}

/// Temporarily installs a fault plan process-wide; restores the clean
/// state on drop (including the early-return and panic paths).
struct PlanGuard;

impl PlanGuard {
    fn install(plan: FaultPlan) -> PlanGuard {
        htmpll_fault::install(plan);
        PlanGuard
    }
}

impl Drop for PlanGuard {
    fn drop(&mut self) {
        htmpll_fault::clear();
    }
}

fn serve_once(corpus: &[String], workers: usize) -> Result<(Vec<String>, ServeSummary), String> {
    let mut input = corpus.join("\n");
    input.push('\n');
    let mut out = Vec::new();
    let opts = ServeOptions {
        workers,
        ..ServeOptions::default()
    };
    let summary = serve_lines(Cursor::new(input), &mut out, &opts)?;
    let text = String::from_utf8(out).map_err(|e| format!("chaos: serve output not UTF-8: {e}"))?;
    Ok((text.lines().map(str::to_string).collect(), summary))
}

/// Runs the three-legged replay and checks every invariant. The
/// process-global fault plan is installed for the faulted legs and
/// cleared before returning; callers must not run concurrent
/// fault-sensitive work.
pub fn run_chaos(opts: &ChaosOptions) -> Result<ChaosReport, String> {
    let corpus = build_corpus(opts.requests.max(8));
    let plan_text = opts.plan.clone().unwrap_or_else(|| default_plan(opts.seed));
    let plan = FaultPlan::parse(&plan_text).map_err(|e| format!("chaos: bad fault plan: {e}"))?;
    let workers = opts.workers.max(2);
    let mut violations: Vec<String> = Vec::new();

    // Classify the corpus up front, straight from the plan: which lines
    // get their envelope corrupted, which requests a value-changing
    // rule selects. This is the *predicted* blast radius; the runs must
    // stay inside it.
    let mut malformed = vec![false; corpus.len()];
    let mut fault_selected = vec![false; corpus.len()];
    let mut ids = vec![None; corpus.len()];
    for (seq, line) in corpus.iter().enumerate() {
        malformed[seq] = plan.decide("serve.malformed", None, seq as u64).is_some();
        if let Ok((_, req)) = Request::from_json_line(line) {
            let scope = fnv64(req.canonical_json().as_bytes());
            fault_selected[seq] = VALUE_CHANGING_SITES
                .iter()
                .any(|site| plan.scope_selected(site, scope));
        }
        if line.starts_with('{') {
            ids[seq] = Some(seq);
        }
    }

    // Leg A: fault-free baseline, single worker.
    htmpll_fault::clear();
    let (baseline, a_summary) = serve_once(&corpus, 1)?;

    // Legs B and C: same plan, different worker counts. Injected
    // handler panics are expected and contained; silence the default
    // per-panic backtrace spew for the duration.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let guard = PlanGuard::install(plan);
    type Leg = (Vec<String>, ServeSummary);
    let legs: Result<(Leg, Leg), String> =
        (|| Ok((serve_once(&corpus, 1)?, serve_once(&corpus, workers)?)))();
    drop(guard);
    std::panic::set_hook(prev_hook);
    let ((faulted, b_summary), (faulted_mt, c_summary)) = legs?;

    // Invariant 1: liveness — every leg answered every line.
    for (leg, lines, summary) in [
        ("baseline", &baseline, &a_summary),
        ("faulted x1", &faulted, &b_summary),
        ("faulted xN", &faulted_mt, &c_summary),
    ] {
        if lines.len() != corpus.len() || summary.responded != corpus.len() as u64 {
            violations.push(format!(
                "liveness: {leg} answered {} of {} lines (summary responded {})",
                lines.len(),
                corpus.len(),
                summary.responded
            ));
        }
    }

    // Invariant 2: order — ids come back in input order, in every leg.
    for (leg, lines) in [
        ("baseline", &baseline),
        ("faulted x1", &faulted),
        ("faulted xN", &faulted_mt),
    ] {
        for (seq, line) in lines.iter().enumerate() {
            let Some(id) = ids[seq] else { continue };
            let want = format!("{{\"schema\":\"plltool/v1\",\"id\":{id},");
            if !line.starts_with(&want) {
                violations.push(format!(
                    "order: {leg} line {seq} does not answer id {id}: {}",
                    &line[..line.len().min(96)]
                ));
            }
        }
    }

    // Invariant 3: thread invariance — the faulted legs are bitwise
    // identical, so fault decisions never depended on scheduling.
    let digest_b = fnv64(faulted.join("\n").as_bytes());
    let digest_c = fnv64(faulted_mt.join("\n").as_bytes());
    if digest_b != digest_c {
        for (seq, (b, c)) in faulted.iter().zip(&faulted_mt).enumerate() {
            if b != c {
                violations.push(format!(
                    "thread-invariance: line {seq} differs between 1 and {workers} workers"
                ));
            }
        }
        violations.push(format!(
            "thread-invariance: digest {digest_b:016x} (1 worker) != {digest_c:016x} ({workers} workers)"
        ));
    }

    // Invariant 4: blast radius — lines no rule selected are identical
    // to the fault-free baseline.
    let mut compared = 0usize;
    for (seq, (a, b)) in baseline.iter().zip(&faulted).enumerate() {
        if malformed[seq] || fault_selected[seq] {
            continue;
        }
        compared += 1;
        if a != b {
            violations.push(format!(
                "blast-radius: unfaulted line {seq} changed under the fault plan\n  baseline: {}\n  faulted : {}",
                &a[..a.len().min(96)],
                &b[..b.len().min(96)]
            ));
        }
    }

    Ok(ChaosReport {
        corpus_lines: corpus.len(),
        plan: plan_text,
        faulted_requests: fault_selected.iter().filter(|f| **f).count(),
        malformed_injected: malformed.iter().filter(|m| **m).count(),
        compared,
        violations,
    })
}
