//! Typed responses — one variant per command — plus the two render
//! paths every front end shares:
//!
//! * [`Response::render_text`] reproduces the historical `plltool`
//!   stdout **byte for byte** (the CLI refactor is observable only
//!   through `--json`/serve, never through plain output), and
//! * [`envelope`]/[`envelope_tail`] produce the versioned JSON envelope
//!   `{"schema":"plltool/v1","command":...,"ok":...,"result":...,
//!   "quality":...}` used by `--json`, `--metrics-json`, and every
//!   `plltool serve` response line.

use super::json::{num, opt_num, str_lit};
use crate::requests::RequestId;
use htmpll_core::{AnalysisReport, ExploreReport, QualitySummary, SpurLine};
use std::fmt::Write as _;

/// Sample-and-hold PFD margins for the `--pfd sh` report line.
#[derive(Debug, Clone)]
pub struct ShMargins {
    /// Unity-gain frequency, rad/s.
    pub omega_ug: f64,
    /// Phase margin, degrees.
    pub phase_margin_deg: f64,
}

/// `analyze` result.
#[derive(Debug, Clone)]
pub struct AnalyzeOut {
    /// `Display` form of the design.
    pub design_display: String,
    /// Reference frequency ω₀, rad/s.
    pub omega_ref: f64,
    /// The full analysis report.
    pub report: AnalysisReport,
    /// Dominant strip poles `(re, im)`, when the solver found them.
    pub strip_poles: Option<Vec<(f64, f64)>>,
    /// Sample-and-hold margins (requested via `pfd_sh`); `Err` carries
    /// the no-margin explanation.
    pub sample_hold: Option<Result<ShMargins, String>>,
    /// Symbolic λ(s) expansion (requested via `symbolic`).
    pub symbolic: Option<String>,
}

/// One `sweep` table row.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Crossover ratio ω_UG/ω₀.
    pub ratio: f64,
    /// ω_UG,eff / ω_UG.
    pub ug_ratio: f64,
    /// Effective phase margin, degrees.
    pub pm_eff_deg: f64,
    /// LTI phase margin, degrees.
    pub pm_lti_deg: f64,
    /// At/beyond the sampling stability limit.
    pub beyond_limit: bool,
}

/// `sweep` result.
#[derive(Debug, Clone)]
pub struct SweepOut {
    /// Table rows in ratio order.
    pub rows: Vec<SweepRow>,
    /// Aggregate point quality over every row's analysis.
    pub quality: QualitySummary,
    /// Graceful-degradation steps taken under deadline pressure, in
    /// order (e.g. grid coarsening, partial completion). Empty for an
    /// unpressured sweep — and omitted from the JSON envelope then, so
    /// deadline-free responses keep their historical bytes.
    pub degradation: Vec<String>,
}

/// One `bode` table row.
#[derive(Debug, Clone)]
pub struct BodeRow {
    /// Angular frequency, rad/s.
    pub omega: f64,
    /// Magnitude, dB.
    pub mag_db: f64,
    /// Unwrapped phase, degrees.
    pub phase_deg: f64,
}

/// `bode` result.
#[derive(Debug, Clone)]
pub struct BodeOut {
    /// Table rows in frequency order.
    pub rows: Vec<BodeRow>,
}

/// `step` / `hop` result: a time series.
#[derive(Debug, Clone)]
pub struct TransientOut {
    /// Sample times.
    pub ts: Vec<f64>,
    /// Response values (step response or tracking error).
    pub ys: Vec<f64>,
}

/// `spur` result.
#[derive(Debug, Clone)]
pub struct SpurOut {
    /// Leakage as a fraction of the charge-pump current.
    pub leakage_frac: f64,
    /// Static phase offset, seconds.
    pub static_offset: f64,
    /// Reference frequency, Hz (for the `·T` rendering).
    pub f_ref: f64,
    /// Predicted spur lines.
    pub lines: Vec<SpurLine>,
}

/// `optimize` result.
#[derive(Debug, Clone)]
pub struct OptimizeOut {
    /// Winning crossover ratio.
    pub ratio: f64,
    /// Winning zero/pole spread.
    pub spread: f64,
    /// LTI phase margin of the winner, degrees.
    pub pm_lti_deg: f64,
    /// Effective phase margin of the winner, degrees.
    pub pm_eff_deg: f64,
    /// Integrated output noise of the winner.
    pub integrated_noise: f64,
}

/// `explore` result.
#[derive(Debug, Clone)]
pub struct ExploreOut {
    /// Seed of the candidate stream (echoed for reproducibility).
    pub seed: u64,
    /// The full explorer report, front already in canonical order.
    pub report: ExploreReport,
}

/// One `doctor` health-table row.
#[derive(Debug, Clone)]
pub struct DoctorCheck {
    /// Check name.
    pub check: String,
    /// Verdict label.
    pub verdict: String,
    /// Condition estimate, when the solve produced one.
    pub cond: Option<f64>,
    /// Backward residual, when the solve produced one.
    pub residual: Option<f64>,
    /// Whether the check behaved as expected.
    pub ok: bool,
    /// Free-form note.
    pub note: String,
}

/// `doctor` result.
#[derive(Debug, Clone)]
pub struct DoctorOut {
    /// `Display` form of the design under test.
    pub design_display: String,
    /// Active SIMD backend (`scalar`, `avx2`, `neon`) the numerical
    /// kernels dispatched to during the checks.
    pub simd_level: String,
    /// All health checks, in execution order.
    pub checks: Vec<DoctorCheck>,
}

impl DoctorOut {
    /// Number of checks that did not behave as expected.
    pub fn failures(&self) -> usize {
        self.checks.iter().filter(|c| !c.ok).count()
    }
}

/// `xcheck` result.
#[derive(Debug, Clone)]
pub struct XcheckOut {
    /// Corpus name.
    pub corpus: String,
    /// Rendered reconciliation table.
    pub table: String,
    /// Agreeing checks.
    pub agreements: usize,
    /// Tolerated deviations.
    pub tolerated: usize,
    /// Hard mismatches.
    pub mismatches: usize,
    /// Total checks.
    pub total_checks: usize,
    /// Scenario count.
    pub scenarios: usize,
    /// Report digest.
    pub digest: String,
    /// Full report JSON (the `--json` payload).
    pub report_json: String,
    /// Bench-timing JSON (the `--bench` payload).
    pub bench_json: String,
}

/// `metrics` result.
#[derive(Debug, Clone)]
pub struct MetricsOut {
    /// Active obs filter spec.
    pub filter: String,
    /// `describe_targets` summary line.
    pub levels: String,
    /// Rendered metric table.
    pub table: String,
    /// Full obs export JSON.
    pub export_json: String,
}

/// `profile` result.
#[derive(Debug, Clone)]
pub struct ProfileOut {
    /// Rendered attribution table.
    pub table: String,
    /// Full report JSON.
    pub report_json: String,
}

/// A structured request failure: carried in-band so a serve batch never
/// dies on one bad request, and mapped to stderr + exit 2 by the CLI.
#[derive(Debug, Clone)]
pub struct ServiceError {
    /// Command the failure belongs to (empty when unknown — e.g. an
    /// unparseable request line).
    pub command: String,
    /// Stable machine-readable code: `bad_request`, `failed`,
    /// `unsupported`, `shed`, `deadline`, or `panic`.
    pub code: &'static str,
    /// Human-readable message.
    pub message: String,
    /// Whether retrying the identical request can plausibly succeed —
    /// `true` for transient conditions (an expired deadline, a shed
    /// request), `false` for deterministic failures (bad request,
    /// numerical failure, panic). Rendered as `"retryable"` in the
    /// envelope's error object.
    pub retryable: bool,
    /// Partial quality roll-up gathered before the failure, when any —
    /// a deadline error reports the verdicts of the points it *did*
    /// complete.
    pub quality: Option<QualitySummary>,
}

impl ServiceError {
    /// A handler-level failure of a known command.
    pub fn failed(command: &str, message: String) -> ServiceError {
        ServiceError {
            command: command.to_string(),
            code: "failed",
            message,
            retryable: false,
            quality: None,
        }
    }

    /// A malformed or unparseable request.
    pub fn bad_request(message: String) -> ServiceError {
        ServiceError {
            command: String::new(),
            code: "bad_request",
            message,
            retryable: false,
            quality: None,
        }
    }

    /// A well-formed request the current front end cannot execute.
    pub fn unsupported(command: &str, message: String) -> ServiceError {
        ServiceError {
            command: command.to_string(),
            code: "unsupported",
            message,
            retryable: false,
            quality: None,
        }
    }

    /// A request whose cooperative deadline expired before completion.
    /// Retryable by definition: the same request under a larger
    /// `--deadline-ms` (or lighter load) can succeed.
    pub fn deadline(
        command: &str,
        message: String,
        quality: Option<QualitySummary>,
    ) -> ServiceError {
        ServiceError {
            command: command.to_string(),
            code: "deadline",
            message,
            retryable: true,
            quality,
        }
    }
}

/// One command's structured result — the single type every `plltool`
/// front end consumes.
#[derive(Debug, Clone)]
pub enum Response {
    /// `analyze` output.
    Analyze(AnalyzeOut),
    /// `sweep` output.
    Sweep(SweepOut),
    /// `bode` output.
    Bode(BodeOut),
    /// `step` output.
    Step(TransientOut),
    /// `hop` output.
    Hop(TransientOut),
    /// `spur` output.
    Spur(SpurOut),
    /// `optimize` output.
    Optimize(OptimizeOut),
    /// `explore` output.
    Explore(ExploreOut),
    /// `doctor` output.
    Doctor(DoctorOut),
    /// `xcheck` output.
    Xcheck(XcheckOut),
    /// `metrics` output.
    Metrics(MetricsOut),
    /// `profile` output.
    Profile(ProfileOut),
    /// A structured failure.
    Error(ServiceError),
}

impl Response {
    /// The command this response answers (`None` when even the command
    /// was unparseable).
    pub fn command(&self) -> Option<&str> {
        match self {
            Response::Analyze(_) => Some("analyze"),
            Response::Sweep(_) => Some("sweep"),
            Response::Bode(_) => Some("bode"),
            Response::Step(_) => Some("step"),
            Response::Hop(_) => Some("hop"),
            Response::Spur(_) => Some("spur"),
            Response::Optimize(_) => Some("optimize"),
            Response::Explore(_) => Some("explore"),
            Response::Doctor(_) => Some("doctor"),
            Response::Xcheck(_) => Some("xcheck"),
            Response::Metrics(_) => Some("metrics"),
            Response::Profile(_) => Some("profile"),
            Response::Error(e) => {
                if e.command.is_empty() {
                    None
                } else {
                    Some(&e.command)
                }
            }
        }
    }

    /// The CLI failure for this response: `Some(message)` means stderr
    /// and exit 2 after the text has been printed (doctor failures and
    /// xcheck mismatches still print their tables first).
    pub fn failure(&self) -> Option<String> {
        match self {
            Response::Doctor(d) => {
                let failures = d.failures();
                (failures > 0).then(|| {
                    format!(
                        "doctor: {failures}/{} checks did NOT behave as expected",
                        d.checks.len()
                    )
                })
            }
            Response::Xcheck(x) => (x.mismatches > 0).then(|| {
                format!(
                    "xcheck: {} cross-stack mismatch(es) — the models disagree beyond every justified bound",
                    x.mismatches
                )
            }),
            Response::Error(e) => Some(e.message.clone()),
            _ => None,
        }
    }

    /// Renders the historical `plltool` stdout for this response,
    /// byte-identical to the pre-refactor per-command `println!` bodies.
    pub fn render_text(&self) -> String {
        let mut t = String::new();
        match self {
            Response::Analyze(a) => render_analyze(&mut t, a),
            Response::Sweep(s) => render_sweep(&mut t, s),
            Response::Bode(b) => {
                let _ = writeln!(t, "{:>14} {:>12} {:>12}", "omega", "mag_dB", "phase_deg");
                for p in &b.rows {
                    let _ = writeln!(
                        t,
                        "{:14.6e} {:12.3} {:12.2}",
                        p.omega, p.mag_db, p.phase_deg
                    );
                }
            }
            Response::Step(s) => {
                let _ = writeln!(t, "{:>12} {:>12}", "t", "theta/step");
                for (tt, y) in s.ts.iter().zip(&s.ys) {
                    let _ = writeln!(t, "{tt:12.4} {y:12.5}");
                }
            }
            Response::Hop(h) => {
                let _ = writeln!(t, "{:>12} {:>14}", "t", "tracking error");
                for (tt, e) in h.ts.iter().zip(&h.ys) {
                    let _ = writeln!(t, "{tt:12.4} {e:14.5e}");
                }
            }
            Response::Spur(s) => render_spur(&mut t, s),
            Response::Optimize(o) => {
                let _ = writeln!(
                    t,
                    "best: ω_UG/ω₀ = {:.3}, spread = {} (PM_LTI {:.1}°, PM_eff {:.1}°)",
                    o.ratio, o.spread, o.pm_lti_deg, o.pm_eff_deg
                );
                let _ = writeln!(
                    t,
                    "integrated output noise: {:.3e} (rms {:.3e})",
                    o.integrated_noise,
                    o.integrated_noise.sqrt()
                );
            }
            Response::Explore(e) => render_explore(&mut t, e),
            Response::Doctor(d) => render_doctor(&mut t, d),
            Response::Xcheck(x) => {
                t.push_str(&x.table);
                t.push('\n');
                let _ = writeln!(
                    t,
                    "xcheck: corpus {} — {} agree, {} tolerated, {} mismatch ({} checks, {} scenarios)",
                    x.corpus, x.agreements, x.tolerated, x.mismatches, x.total_checks, x.scenarios
                );
                let _ = writeln!(t, "digest : {}", x.digest);
            }
            Response::Metrics(m) => {
                let _ = writeln!(t, "filter : {}", m.filter);
                let _ = writeln!(t, "levels : {}", m.levels);
                t.push('\n');
                t.push_str(&m.table);
            }
            Response::Profile(p) => t.push_str(&p.table),
            Response::Error(_) => {}
        }
        t
    }

    /// The envelope `result` member as a JSON fragment (`None` for
    /// error responses).
    pub fn result_json(&self) -> Option<String> {
        match self {
            Response::Analyze(a) => Some(analyze_result_json(a)),
            Response::Sweep(s) => {
                let mut r = format!(
                    "{{\"rows\":[{}]",
                    s.rows
                        .iter()
                        .map(|r| format!(
                            "{{\"ratio\":{},\"ug_ratio\":{},\"pm_eff_deg\":{},\"pm_lti_deg\":{},\"beyond_limit\":{}}}",
                            num(r.ratio),
                            num(r.ug_ratio),
                            num(r.pm_eff_deg),
                            num(r.pm_lti_deg),
                            r.beyond_limit
                        ))
                        .collect::<Vec<_>>()
                        .join(",")
                );
                // Degradation notes appear only when the ladder actually
                // stepped, so unpressured sweeps keep their exact
                // historical bytes.
                if !s.degradation.is_empty() {
                    let _ = write!(
                        r,
                        ",\"degradation\":[{}]",
                        s.degradation
                            .iter()
                            .map(|d| str_lit(d))
                            .collect::<Vec<_>>()
                            .join(",")
                    );
                }
                r.push('}');
                Some(r)
            }
            Response::Bode(b) => Some(format!(
                "{{\"points\":[{}]}}",
                b.rows
                    .iter()
                    .map(|p| format!(
                        "{{\"omega\":{},\"mag_db\":{},\"phase_deg\":{}}}",
                        num(p.omega),
                        num(p.mag_db),
                        num(p.phase_deg)
                    ))
                    .collect::<Vec<_>>()
                    .join(",")
            )),
            Response::Step(s) | Response::Hop(s) => Some(format!(
                "{{\"points\":[{}]}}",
                s.ts.iter()
                    .zip(&s.ys)
                    .map(|(t, y)| format!("{{\"t\":{},\"y\":{}}}", num(*t), num(*y)))
                    .collect::<Vec<_>>()
                    .join(",")
            )),
            Response::Spur(s) => Some(format!(
                "{{\"leakage_frac\":{},\"static_offset_s\":{},\"static_offset_periods\":{},\"lines\":[{}]}}",
                num(s.leakage_frac),
                num(s.static_offset),
                num(s.static_offset * s.f_ref),
                s.lines
                    .iter()
                    .map(|l| format!(
                        "{{\"k\":{},\"sideband_abs\":{},\"level_dbc\":{}}}",
                        l.k,
                        num(l.sideband.abs()),
                        num(l.level_dbc)
                    ))
                    .collect::<Vec<_>>()
                    .join(",")
            )),
            Response::Optimize(o) => Some(format!(
                "{{\"ratio\":{},\"spread\":{},\"pm_lti_deg\":{},\"pm_eff_deg\":{},\"integrated_noise\":{},\"rms\":{}}}",
                num(o.ratio),
                num(o.spread),
                num(o.pm_lti_deg),
                num(o.pm_eff_deg),
                num(o.integrated_noise),
                num(o.integrated_noise.sqrt())
            )),
            Response::Explore(e) => Some(explore_result_json(e)),
            Response::Doctor(d) => Some(format!(
                "{{\"design\":{},\"simd_level\":{},\"failures\":{},\"total\":{},\"checks\":[{}]}}",
                str_lit(&d.design_display),
                str_lit(&d.simd_level),
                d.failures(),
                d.checks.len(),
                d.checks
                    .iter()
                    .map(|c| format!(
                        "{{\"check\":{},\"verdict\":{},\"cond\":{},\"residual\":{},\"ok\":{},\"note\":{}}}",
                        str_lit(&c.check),
                        str_lit(&c.verdict),
                        opt_num(c.cond),
                        opt_num(c.residual),
                        c.ok,
                        str_lit(&c.note)
                    ))
                    .collect::<Vec<_>>()
                    .join(",")
            )),
            // These three already emit complete JSON documents; splice
            // them raw so every historical substring survives the
            // envelope migration.
            Response::Xcheck(x) => Some(x.report_json.clone()),
            Response::Metrics(m) => Some(m.export_json.clone()),
            Response::Profile(p) => Some(p.report_json.clone()),
            Response::Error(_) => None,
        }
    }

    /// The envelope `quality` member (`null` for commands without a
    /// quality roll-up).
    pub fn quality_json(&self) -> String {
        let q = match self {
            Response::Analyze(a) => Some(&a.report.quality),
            Response::Sweep(s) => Some(&s.quality),
            Response::Explore(e) => Some(&e.report.quality),
            _ => None,
        };
        match q {
            None => "null".to_string(),
            Some(q) => quality_summary_json(q),
        }
    }
}

/// The `quality` member's JSON form, shared by success envelopes and
/// deadline errors carrying a partial roll-up.
fn quality_summary_json(q: &QualitySummary) -> String {
    format!(
        "{{\"exact\":{},\"refined\":{},\"perturbed\":{},\"failed\":{},\"worst_cond\":{},\"worst_residual\":{}}}",
        q.exact,
        q.refined,
        q.perturbed,
        q.failed,
        num(q.worst_cond),
        num(q.worst_residual)
    )
}

fn render_analyze(t: &mut String, a: &AnalyzeOut) {
    let r = &a.report;
    let _ = writeln!(t, "design             : {}", a.design_display);
    let _ = writeln!(t, "ω₀ (reference)     : {:.6e} rad/s", a.omega_ref);
    let _ = writeln!(
        t,
        "ω_UG (LTI)         : {:.6e} rad/s  (ω_UG/ω₀ = {:.4})",
        r.omega_ug_lti, r.omega_ug_ratio
    );
    let _ = writeln!(t, "phase margin (LTI) : {:.2}°", r.phase_margin_lti_deg);
    let _ = writeln!(
        t,
        "ω_UG,eff           : {:.6e} rad/s  ({:.3}× LTI)",
        r.omega_ug_eff,
        r.omega_ug_eff / r.omega_ug_lti
    );
    let _ = writeln!(
        t,
        "phase margin (eff) : {:.2}°  ({:.1} % degradation)",
        r.phase_margin_eff_deg,
        100.0 * r.phase_margin_degradation_rel()
    );
    match r.bandwidth_3db {
        Some(bw) => {
            let _ = writeln!(t, "−3 dB bandwidth    : {bw:.6e} rad/s");
        }
        None => {
            let _ = writeln!(t, "−3 dB bandwidth    : (none in scan window)");
        }
    }
    let _ = writeln!(
        t,
        "peaking            : {:.2} dB (LTI predicted {:.2} dB)",
        r.peaking_db, r.peaking_lti_db
    );
    let _ = writeln!(
        t,
        "stable (HTM)       : {}{}",
        r.nyquist_stable,
        if r.beyond_sampling_limit {
            "  [beyond sampling limit]"
        } else {
            ""
        }
    );
    if let Some(poles) = &a.strip_poles {
        let _ = writeln!(t, "strip poles        :");
        for &(re, im) in poles {
            let _ = writeln!(
                t,
                "    {:.4} {:+.4}j   (Im/(ω₀/2) = {:.3})",
                re,
                im,
                im / (0.5 * a.omega_ref)
            );
        }
    }
    match &a.sample_hold {
        Some(Ok(m)) => {
            let _ = writeln!(
                t,
                "sample-and-hold PFD: ω_UG,eff = {:.4e} rad/s, PM = {:.2}°",
                m.omega_ug, m.phase_margin_deg
            );
        }
        Some(Err(e)) => {
            let _ = writeln!(t, "sample-and-hold PFD: no margin ({e})");
        }
        None => {}
    }
    if let Some(sym) = &a.symbolic {
        let _ = writeln!(t, "\n{sym}");
    }
}

fn render_sweep(t: &mut String, s: &SweepOut) {
    let _ = writeln!(
        t,
        "{:>8} {:>14} {:>12} {:>12} {:>8}",
        "ratio", "wUG_eff/wUG", "PM_eff", "PM_LTI", "limit?"
    );
    for r in &s.rows {
        let _ = writeln!(
            t,
            "{:8.3} {:14.4} {:12.2} {:12.2} {:>8}",
            r.ratio,
            r.ug_ratio,
            r.pm_eff_deg,
            r.pm_lti_deg,
            if r.beyond_limit { "YES" } else { "" }
        );
    }
}

fn render_spur(t: &mut String, s: &SpurOut) {
    let _ = writeln!(t, "leakage            : {:.3e} × I_cp", s.leakage_frac);
    let _ = writeln!(
        t,
        "static offset      : {:.4e} s ({:.3e}·T)",
        s.static_offset,
        s.static_offset * s.f_ref
    );
    let _ = writeln!(t, "{:>6} {:>16} {:>12}", "k", "|sideband| (s)", "dBc");
    for line in &s.lines {
        let _ = writeln!(
            t,
            "{:>6} {:16.4e} {:12.2}",
            line.k,
            line.sideband.abs(),
            line.level_dbc
        );
    }
}

fn render_explore(t: &mut String, e: &ExploreOut) {
    let r = &e.report;
    let _ = writeln!(
        t,
        "explore : {} candidates, seed {} ({} evaluated, {} refinement probes)",
        r.candidates, e.seed, r.evaluated, r.refined
    );
    let _ = writeln!(
        t,
        "screen  : {} screened out, {} full analyses ({} infeasible, {} failed)",
        r.screened_out, r.full_analyses, r.infeasible, r.failed
    );
    let _ = writeln!(
        t,
        "front   : {} non-dominated designs ({} pruned by capacity)",
        r.front.len(),
        r.pruned
    );
    let _ = writeln!(t, "digest  : {}", r.digest);
    let _ = writeln!(t, "rate    : {:.0} designs/s", r.designs_per_sec);
    for note in &r.degradation {
        let _ = writeln!(t, "note    : {note}");
    }
    t.push('\n');
    let _ = writeln!(
        t,
        "{:>8} {:>8} {:>8} {:>6} {:>8} {:>12} {:>8} {:>9} {:>11}",
        "ratio", "spread", "icp_x", "N", "PM_eff", "bw_rad_s", "peak_dB", "spur_dBc", "lock_s"
    );
    for p in &r.front {
        let _ = writeln!(
            t,
            "{:8.4} {:8.3} {:8.3} {:6.0} {:8.2} {:12.4e} {:8.2} {:9.1} {:11.3e}",
            p.params.ratio,
            p.params.spread,
            p.params.icp_scale,
            p.params.divider,
            p.pm_eff_deg,
            p.bandwidth_3db,
            p.peaking_db,
            p.spur_dbc,
            p.lock_time_s
        );
    }
}

/// The explore `result` member. Timing fields (`elapsed_ns`,
/// `designs_per_sec`) are deliberately omitted: the result is then a
/// pure function of the request, so serve's response-tail cache stays
/// byte-stable across repeats of the same exploration.
fn explore_result_json(e: &ExploreOut) -> String {
    let r = &e.report;
    let mut out = format!(
        "{{\"candidates\":{},\"seed\":{},\"evaluated\":{},\"refined\":{},\"screened_out\":{},\
         \"full_analyses\":{},\"infeasible\":{},\"failed\":{},\"skipped\":{},\"pruned\":{},\
         \"front_size\":{},\"digest\":{},\"front\":[{}]",
        r.candidates,
        e.seed,
        r.evaluated,
        r.refined,
        r.screened_out,
        r.full_analyses,
        r.infeasible,
        r.failed,
        r.skipped,
        r.pruned,
        r.front.len(),
        str_lit(&r.digest),
        r.front
            .iter()
            .map(|p| format!(
                "{{\"ratio\":{},\"spread\":{},\"icp_scale\":{},\"divider\":{},\"pm_eff_deg\":{},\
                 \"bandwidth_3db\":{},\"peaking_db\":{},\"spur_dbc\":{},\"lock_time_s\":{}}}",
                num(p.params.ratio),
                num(p.params.spread),
                num(p.params.icp_scale),
                num(p.params.divider),
                num(p.pm_eff_deg),
                num(p.bandwidth_3db),
                num(p.peaking_db),
                num(p.spur_dbc),
                num(p.lock_time_s)
            ))
            .collect::<Vec<_>>()
            .join(",")
    );
    if !r.degradation.is_empty() {
        let _ = write!(
            out,
            ",\"degradation\":[{}]",
            r.degradation
                .iter()
                .map(|d| str_lit(d))
                .collect::<Vec<_>>()
                .join(",")
        );
    }
    out.push('}');
    out
}

fn render_doctor(t: &mut String, d: &DoctorOut) {
    let _ = writeln!(t, "plltool doctor — numerical-resilience health check");
    let _ = writeln!(t, "design : {}", d.design_display);
    let _ = writeln!(t, "simd   : {}", d.simd_level);
    t.push('\n');
    let _ = writeln!(
        t,
        "{:<26} {:>10} {:>10} {:>10} {:>6}  note",
        "check", "verdict", "cond", "residual", "ok"
    );
    for r in &d.checks {
        let cond = r.cond.map_or("-".to_string(), |c| format!("{c:.2e}"));
        let res = r.residual.map_or("-".to_string(), |x| format!("{x:.2e}"));
        let _ = writeln!(
            t,
            "{:<26} {:>10} {:>10} {:>10} {:>6}  {}",
            r.check,
            r.verdict,
            cond,
            res,
            if r.ok { "ok" } else { "FAIL" },
            r.note
        );
    }
    t.push('\n');
    if d.failures() == 0 {
        let _ = writeln!(
            t,
            "doctor: HEALTHY ({}/{} checks as expected)",
            d.checks.len(),
            d.checks.len()
        );
    }
}

/// The analyze `result` member: the full report plus whatever optional
/// sections (`strip_poles`, `sample_hold`, `symbolic`) the request
/// asked for.
fn analyze_result_json(a: &AnalyzeOut) -> String {
    let mut r = format!(
        "{{\"design\":{},\"omega_ref\":{},\"omega_ug_ratio\":{},\"omega_ug_lti\":{},\
         \"phase_margin_lti_deg\":{},\"omega_ug_eff\":{},\"phase_margin_eff_deg\":{},\
         \"pm_degradation_deg\":{},\"bandwidth_3db\":{},\"peaking_db\":{},\"peaking_lti_db\":{},\
         \"nyquist_stable\":{},\"beyond_sampling_limit\":{}",
        str_lit(&a.design_display),
        num(a.omega_ref),
        num(a.report.omega_ug_ratio),
        num(a.report.omega_ug_lti),
        num(a.report.phase_margin_lti_deg),
        num(a.report.omega_ug_eff),
        num(a.report.phase_margin_eff_deg),
        num(a.report.phase_margin_degradation_deg()),
        opt_num(a.report.bandwidth_3db),
        num(a.report.peaking_db),
        num(a.report.peaking_lti_db),
        a.report.nyquist_stable,
        a.report.beyond_sampling_limit,
    );
    if let Some(poles) = &a.strip_poles {
        let _ = write!(
            r,
            ",\"strip_poles\":[{}]",
            poles
                .iter()
                .map(|(re, im)| format!("{{\"re\":{},\"im\":{}}}", num(*re), num(*im)))
                .collect::<Vec<_>>()
                .join(",")
        );
    }
    if let Some(sh) = &a.sample_hold {
        match sh {
            Ok(m) => {
                let _ = write!(
                    r,
                    ",\"sample_hold\":{{\"omega_ug\":{},\"phase_margin_deg\":{}}}",
                    num(m.omega_ug),
                    num(m.phase_margin_deg)
                );
            }
            Err(e) => {
                let _ = write!(r, ",\"sample_hold\":{{\"error\":{}}}", str_lit(e));
            }
        }
    }
    if let Some(sym) = &a.symbolic {
        let _ = write!(r, ",\"symbolic\":{}", str_lit(sym));
    }
    r.push('}');
    r
}

/// The envelope minus the `{"schema":...,` prefix and the optional id:
/// `"command":...,"ok":...,...}`. Serve caches this tail so one
/// computation can answer many ids.
pub fn envelope_tail(resp: &Response, metrics_json: Option<&str>) -> String {
    let command = match resp.command() {
        Some(c) => str_lit(c),
        None => "null".to_string(),
    };
    let mut tail = format!("\"command\":{command},\"ok\":{}", resp.failure().is_none());
    if let Some(result) = resp.result_json() {
        let _ = write!(
            tail,
            ",\"result\":{result},\"quality\":{}",
            resp.quality_json()
        );
    }
    match resp {
        Response::Error(e) => {
            let _ = write!(
                tail,
                ",\"error\":{{\"code\":\"{}\",\"message\":{},\"retryable\":{}}}",
                e.code,
                str_lit(&e.message),
                e.retryable
            );
            // A deadline error still reports the verdicts of the points
            // it completed before the budget ran out.
            if let Some(q) = &e.quality {
                let _ = write!(tail, ",\"quality\":{}", quality_summary_json(q));
            }
        }
        _ => {
            if let Some(message) = resp.failure() {
                let _ = write!(
                    tail,
                    ",\"error\":{{\"code\":\"failed\",\"message\":{},\"retryable\":false}}",
                    str_lit(&message)
                );
            }
        }
    }
    if let Some(m) = metrics_json {
        let _ = write!(tail, ",\"metrics\":{m}");
    }
    tail.push('}');
    tail
}

/// The full versioned envelope for one response.
pub fn envelope(resp: &Response, id: &RequestId, metrics_json: Option<&str>) -> String {
    format!(
        "{{\"schema\":\"plltool/v1\",{}{}",
        id.json_fragment(),
        envelope_tail(resp, metrics_json)
    )
}

/// An envelope for a failure that never produced a [`Response`]
/// (malformed line, shed request): same shape, built directly.
pub fn error_envelope(id: &RequestId, err: &ServiceError) -> String {
    let command = if err.command.is_empty() {
        "null".to_string()
    } else {
        str_lit(&err.command)
    };
    format!(
        "{{\"schema\":\"plltool/v1\",{}\"command\":{command},\"ok\":false,\"error\":{{\"code\":\"{}\",\"message\":{},\"retryable\":{}}}}}",
        id.json_fragment(),
        err.code,
        str_lit(&err.message),
        err.retryable
    )
}

#[allow(clippy::unwrap_used)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_shapes_are_valid_json() {
        let resp = Response::Error(ServiceError::bad_request("no `command`".to_string()));
        let line = envelope(&resp, &RequestId::Str("r\"1".to_string()), None);
        let doc = crate::obs::parse_json(&line).unwrap();
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("plltool/v1")
        );
        assert_eq!(doc.get("id").and_then(|v| v.as_str()), Some("r\"1"));
        assert_eq!(doc.get("ok"), Some(&crate::obs::JsonValue::Bool(false)));
        assert!(doc.get("command").is_some());

        let ok = Response::Optimize(OptimizeOut {
            ratio: 0.1,
            spread: 4.0,
            pm_lti_deg: 50.0,
            pm_eff_deg: 45.0,
            integrated_noise: 1e-9,
        });
        let line = envelope(&ok, &RequestId::None, Some("{\"version\": 1}"));
        let doc = crate::obs::parse_json(&line).unwrap();
        assert!(doc.get("id").is_none());
        assert_eq!(doc.get("ok"), Some(&crate::obs::JsonValue::Bool(true)));
        assert!(doc.get("result").is_some());
        assert!(doc.get("metrics").is_some());
        assert_eq!(doc.get("quality"), Some(&crate::obs::JsonValue::Null));
    }

    #[test]
    fn doctor_failure_keeps_result_and_reports_error() {
        let d = Response::Doctor(DoctorOut {
            design_display: "d".to_string(),
            simd_level: "scalar".to_string(),
            checks: vec![DoctorCheck {
                check: "c".to_string(),
                verdict: "failed".to_string(),
                cond: None,
                residual: None,
                ok: false,
                note: String::new(),
            }],
        });
        assert!(d.failure().unwrap().contains("1/1 checks"));
        let line = envelope(&d, &RequestId::Num(7.0), None);
        let doc = crate::obs::parse_json(&line).unwrap();
        assert_eq!(doc.get("ok"), Some(&crate::obs::JsonValue::Bool(false)));
        assert!(doc.get("result").is_some());
        assert!(doc.get("error").is_some());
        assert_eq!(doc.get("id").and_then(|v| v.as_f64()), Some(7.0));
    }
}
