//! # The plltool service layer
//!
//! Every `plltool` subcommand is a [`crate::requests::Request`] value
//! executed by [`handle`] against a [`ServiceCtx`], producing a typed
//! [`Response`]. The CLI binary is a thin argv→`Request` parser over
//! this layer; [`serve_lines`] drives the same layer as a long-running
//! batched JSONL service; tests can call [`handle`] directly.
//!
//! Splitting request parsing, execution, and rendering means:
//!
//! * **one execution path** — the CLI, the server, and the `trace`/
//!   `profile` wrappers cannot drift apart;
//! * **shared warm state** — the context owns the cross-request
//!   [`SweepCache`], so repeated specs reuse LU factorizations and λ
//!   values across requests (and across subcommands within a process);
//! * **containable failure** — a handler returns `Result`, the server
//!   additionally catches panics, so one bad request degrades to a
//!   structured error response instead of taking the process down.
//!
//! Rendering is split the same way: [`Response::render_text`] is the
//! classic human CLI output, [`response::envelope`] is the versioned
//! `plltool/v1` JSON envelope shared by `--json` files and serve
//! response lines.

pub mod json;

mod chaos;
mod handlers;
mod response;
mod server;

pub use chaos::{build_corpus, default_plan, run_chaos, ChaosOptions, ChaosReport};
pub use response::{
    envelope, envelope_tail, error_envelope, AnalyzeOut, BodeOut, BodeRow, DoctorCheck, DoctorOut,
    ExploreOut, MetricsOut, OptimizeOut, ProfileOut, Response, ServiceError, ShMargins, SpurOut,
    SweepOut, SweepRow, TransientOut, XcheckOut,
};
#[cfg(unix)]
pub use server::serve_unix;
pub use server::{serve_lines, ServeOptions, ServeSummary};

use crate::core::SweepCache;
use crate::par::{Deadline, WeakDeadline};
use crate::requests::Request;
use std::sync::Mutex;
use std::time::Duration;

/// Shared state threaded through every request execution.
///
/// The context is `Send + Sync`: the serve dispatcher shares one
/// instance (behind an `Arc`) across all pool workers, which is what
/// makes the sweep cache a *cross-request* cache.
pub struct ServiceCtx {
    /// Cross-request dense-solve / λ cache, sharded internally.
    /// Entries are keyed by (model fingerprint, s, truncation), so one
    /// cache safely serves unrelated designs concurrently.
    pub cache: SweepCache,
    /// Per-request wall-clock budget in milliseconds. `None` means
    /// unbounded; when set, [`ServiceCtx::begin_request`] arms a fresh
    /// [`Deadline`] for every request.
    pub deadline_ms: Option<u64>,
    /// Weak handles to the deadlines of requests currently executing.
    /// The serve watchdog walks this list to cancel in-flight work when
    /// the dispatcher stops making progress; entries expire on their
    /// own once a request finishes (the strong `Arc` is dropped).
    pub inflight: Mutex<Vec<WeakDeadline>>,
}

impl ServiceCtx {
    /// A fresh context with an empty sweep cache and no deadline.
    pub fn new() -> Self {
        ServiceCtx {
            cache: SweepCache::new(),
            deadline_ms: None,
            inflight: Mutex::new(Vec::new()),
        }
    }

    /// A fresh context that arms every request with a wall-clock budget.
    pub fn with_deadline_ms(deadline_ms: Option<u64>) -> Self {
        ServiceCtx {
            deadline_ms,
            ..ServiceCtx::new()
        }
    }

    /// Creates the deadline governing one request and registers a weak
    /// handle so an external watchdog can cancel it. Unbounded contexts
    /// hand out [`Deadline::none`], which has no shared state and is
    /// not registered.
    pub fn begin_request(&self) -> Deadline {
        let deadline = match self.deadline_ms {
            Some(ms) => Deadline::after(Duration::from_millis(ms)),
            None => Deadline::none(),
        };
        if let Some(weak) = deadline.downgrade() {
            if let Ok(mut inflight) = self.inflight.lock() {
                inflight.retain(WeakDeadline::is_alive);
                inflight.push(weak);
            }
        }
        deadline
    }
}

impl Default for ServiceCtx {
    fn default() -> Self {
        Self::new()
    }
}

/// Executes one request and returns its response. Request-level
/// failures come back as [`Response::Error`]; this function itself
/// never fails. (`stats` is the one unservable-here variant: it
/// describes a running server, so outside `plltool serve` it reports a
/// structured error.)
pub fn handle(req: &Request, ctx: &ServiceCtx) -> Response {
    handlers::handle(req, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::requests::{Params, Request};

    fn req(command: &str, argv: &[&str]) -> Request {
        let params = Params::from_argv(&argv.iter().map(|s| s.to_string()).collect::<Vec<_>>())
            .expect("params parse");
        Request::parse(command, &params).expect("request parse")
    }

    #[test]
    fn handle_analyze_roundtrip() {
        let ctx = ServiceCtx::new();
        let resp = handle(&req("analyze", &["--ratio", "0.1"]), &ctx);
        match &resp {
            Response::Analyze(out) => {
                assert!(out.report.phase_margin_eff_deg < out.report.phase_margin_lti_deg);
            }
            other => panic!("expected analyze response, got {:?}", other.command()),
        }
        assert!(resp.failure().is_none());
        // The context cache is warm after one request.
        let stats = ctx.cache.stats();
        assert!(stats.misses > 0, "analysis should populate the cache");
    }

    #[test]
    fn handle_bad_design_is_structured_error() {
        let ctx = ServiceCtx::new();
        let resp = handle(&req("analyze", &["--ratio", "-3"]), &ctx);
        match &resp {
            Response::Error(e) => {
                assert_eq!(e.command, "analyze");
                assert_eq!(e.code, "failed");
            }
            other => panic!("expected error response, got {:?}", other.command()),
        }
        assert!(resp.failure().is_some());
    }

    #[test]
    fn stats_outside_serve_is_unsupported() {
        let ctx = ServiceCtx::new();
        let resp = handle(&Request::Stats, &ctx);
        match resp {
            Response::Error(e) => assert!(e.message.contains("serve")),
            _ => panic!("stats must not execute outside serve"),
        }
    }

    #[test]
    fn cache_is_shared_across_requests() {
        let ctx = ServiceCtx::new();
        let r = req("analyze", &["--ratio", "0.12"]);
        let _ = handle(&r, &ctx);
        let after_first = ctx.cache.stats();
        let _ = handle(&r, &ctx);
        let after_second = ctx.cache.stats();
        assert!(
            after_second.hits > after_first.hits,
            "repeat request must hit the shared cache ({after_first:?} -> {after_second:?})"
        );
    }
}
