//! # `plltool serve` — a batched, cache-warm JSONL analysis service
//!
//! Long-running front-end over [`super::handle`]: requests arrive as
//! JSON lines (`{"id":...,"command":...,"params":{...}}`), responses
//! leave as `plltool/v1` envelope lines, **strictly in input order**
//! regardless of worker count or per-request runtime.
//!
//! ## Architecture
//!
//! ```text
//!            reader thread                dispatcher (caller thread)
//!  stdin ──► parse line ──► bounded ──► admission batch (≤ batch_max)
//!            + request id    queue        │  sort by (command, spec)
//!                            │            ▼
//!                     full? ─┤        Pool::map ──► envelope tails
//!              block (default)            │    (shared SweepCache +
//!              or shed (--shed)           │     response-tail cache)
//!                                         ▼
//!                               in-order flush (seq-keyed reorder map)
//! ```
//!
//! * **Backpressure**: the queue holds at most `queue_max` parsed
//!   requests. By default the reader *blocks* on a full queue (lossless
//!   backpressure through the pipe). With [`ServeOptions::shed`] it
//!   instead sheds the overflow request immediately with a structured
//!   `"code":"shed"` error so latency stays bounded.
//! * **Admission batching**: the dispatcher drains whatever is queued
//!   (up to `batch_max`) into one batch and sorts it by
//!   `(command, canonical spec)` before fanning out, so identical and
//!   near-identical specs land adjacently and reuse warm LU
//!   factorizations / λ values through the shared [`SweepCache`]
//!   within the batch — and across batches through the same cache.
//! * **Graceful degradation**: a request can fail three ways — a
//!   malformed line (`bad_request`), a handler error (`failed`, e.g. an
//!   invalid design), or a handler panic (`panic`, contained by
//!   `catch_unwind` inside the worker job). All three produce a
//!   response line; none of them takes the process or its neighbors in
//!   the batch down. Numerically adversarial specs degrade through the
//!   usual `PointQuality` ladder and still answer.
//! * **Determinism**: handlers are pure functions of the request (the
//!   caches are keyed by model fingerprint and return the same solves
//!   they would recompute), responses are reassembled by sequence
//!   number, and floats serialize via shortest-roundtrip `Display` —
//!   so the response stream is byte-identical for 1 or N workers.
//!
//! [`SweepCache`]: crate::core::SweepCache

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{BufRead, ErrorKind, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, RecvTimeoutError, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use super::response::{envelope_tail, error_envelope, Response, ServiceError};
use super::{handlers, json, ServiceCtx};
use crate::obs::JsonValue;
use crate::par::{Pool, ThreadBudget};
use crate::requests::{Request, RequestId};
use htmpll_obs::counter;

/// Tuning knobs for one serve run. `Default` matches the CLI defaults.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Worker threads for the dispatch pool (`0` = auto-detect).
    pub workers: usize,
    /// Parsed requests admitted into the queue before backpressure.
    pub queue_max: usize,
    /// Largest admission batch handed to the pool at once.
    pub batch_max: usize,
    /// `true`: shed on a full queue (bounded latency); `false`
    /// (default): block the reader (lossless backpressure).
    pub shed: bool,
    /// Response-tail cache capacity in entries (`0` disables it).
    pub response_cache: usize,
    /// Emit a progress line to stderr every this many responses
    /// (`0` disables periodic logging).
    pub log_every: u64,
    /// Per-request wall-clock budget in milliseconds (`None` =
    /// unbounded). When set, a request that exceeds it answers with a
    /// retryable `"code":"deadline"` error (or a degraded partial
    /// result) instead of holding its batch, and a watchdog thread
    /// cancels in-flight work if the dispatcher stops making progress.
    pub deadline_ms: Option<u64>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 0,
            queue_max: 256,
            batch_max: 32,
            shed: false,
            response_cache: 1024,
            log_every: 0,
            deadline_ms: None,
        }
    }
}

/// What one serve run did, returned to the front-end for its summary
/// line. Latency is measured per request from parse to envelope.
#[derive(Clone, Debug)]
pub struct ServeSummary {
    /// Non-empty input lines seen.
    pub received: u64,
    /// Response lines written (== received on a clean run).
    pub responded: u64,
    /// Responses that carried an error member.
    pub errors: u64,
    /// Requests shed on a full queue (always 0 without `shed`).
    pub shed: u64,
    /// Admission batches dispatched.
    pub batches: u64,
    /// Largest single batch.
    pub max_batch: u64,
    /// Cross-request sweep-cache hits / misses at the end of the run.
    pub sweep_cache_hits: u64,
    /// See [`ServeSummary::sweep_cache_hits`].
    pub sweep_cache_misses: u64,
    /// Whole-response cache hits (identical spec re-asked).
    pub response_cache_hits: u64,
    /// Median request latency in nanoseconds.
    pub p50_latency_ns: u64,
    /// 99th-percentile request latency in nanoseconds.
    pub p99_latency_ns: u64,
    /// Wall-clock for the whole run in nanoseconds.
    pub elapsed_ns: u64,
}

impl ServeSummary {
    /// One human line for stderr.
    pub fn render_line(&self) -> String {
        let denom = self.sweep_cache_hits + self.sweep_cache_misses;
        format!(
            "{} responses ({} errors, {} shed) in {:.3}s | {} batches (max {}) | \
             p50 {:.3}ms p99 {:.3}ms | sweep-cache {}/{} hits | response-cache {} hits",
            self.responded,
            self.errors,
            self.shed,
            self.elapsed_ns as f64 / 1e9,
            self.batches,
            self.max_batch,
            self.p50_latency_ns as f64 / 1e6,
            self.p99_latency_ns as f64 / 1e6,
            self.sweep_cache_hits,
            denom,
            self.response_cache_hits,
        )
    }
}

/// Recovers a poisoned mutex: serve state (counters, shed list, cache
/// maps) stays valid across a panic unwound mid-update. Every recovery
/// is counted (`serve/lock_poisoned`) so a fault-injection or chaos run
/// can verify the containment path actually executed.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| {
        counter!("serve", "lock_poisoned").inc();
        poisoned.into_inner()
    })
}

/// Live counters shared between the reader, the workers, and the
/// dispatcher; the `stats` request and the final summary read them.
#[derive(Default)]
struct ServeStats {
    received: AtomicU64,
    responded: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    batches: AtomicU64,
    dispatched: AtomicU64,
    max_batch: AtomicU64,
    queue_depth: AtomicU64,
    response_cache_hits: AtomicU64,
    latencies_ns: Mutex<Vec<u64>>,
}

impl ServeStats {
    fn note_latency(&self, t0: Instant) {
        let ns = t0.elapsed().as_nanos() as u64;
        htmpll_obs::record!("serve", "latency_ns").record(ns as f64);
        lock(&self.latencies_ns).push(ns);
    }

    /// (p50, p99, count) over latencies recorded so far, nearest-rank.
    fn latency_quantiles(&self) -> (u64, u64, usize) {
        let mut xs = lock(&self.latencies_ns).clone();
        xs.sort_unstable();
        (percentile(&xs, 0.50), percentile(&xs, 0.99), xs.len())
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Bounded cache of *id-less* envelope tails keyed by the canonical
/// request JSON, so an identical spec asked under a different id (or
/// with differently-spelled flags) is answered without recomputation.
/// Only fully-ok responses are stored; errors always recompute.
/// Eviction is FIFO — good enough for a repeated-spec working set.
struct TailCache {
    cap: usize,
    inner: Mutex<TailCacheInner>,
}

#[derive(Default)]
struct TailCacheInner {
    map: HashMap<String, String>,
    order: VecDeque<String>,
}

impl TailCache {
    fn new(cap: usize) -> TailCache {
        TailCache {
            cap,
            inner: Mutex::new(TailCacheInner::default()),
        }
    }

    fn get(&self, key: &str) -> Option<String> {
        lock(&self.inner).map.get(key).cloned()
    }

    fn put(&self, key: String, tail: String) {
        if self.cap == 0 {
            return;
        }
        let mut inner = lock(&self.inner);
        if inner.map.contains_key(&key) {
            return;
        }
        while inner.order.len() >= self.cap {
            if let Some(old) = inner.order.pop_front() {
                inner.map.remove(&old);
            }
        }
        inner.order.push_back(key.clone());
        inner.map.insert(key, tail);
    }

    fn len(&self) -> usize {
        lock(&self.inner).order.len()
    }
}

/// One parsed input line traveling reader → queue → dispatcher.
struct LineJob {
    seq: u64,
    id: RequestId,
    parsed: Result<Request, String>,
    t0: Instant,
}

/// Best-effort id recovery for lines that fail request parsing but are
/// still JSON objects, so the error response can carry the caller's id.
fn id_of_line(line: &str) -> RequestId {
    match crate::obs::parse_json(line) {
        Ok(v) => match v.get("id") {
            Some(JsonValue::Str(s)) => RequestId::Str(s.clone()),
            Some(JsonValue::Num(n)) => RequestId::Num(*n),
            _ => RequestId::None,
        },
        Err(_) => RequestId::None,
    }
}

/// Runs the service over a line-delimited input until EOF, writing one
/// envelope line per request to `output` in input order. Creates a
/// fresh context and pool; see [`serve_unix`] for the socket front-end
/// that keeps both warm across connections.
pub fn serve_lines<R, W>(
    input: R,
    output: &mut W,
    opts: &ServeOptions,
) -> Result<ServeSummary, String>
where
    R: BufRead + Send,
    W: Write,
{
    let ctx = Arc::new(ServiceCtx::with_deadline_ms(opts.deadline_ms));
    let pool = Pool::new(ThreadBudget::from(opts.workers));
    serve_on(&ctx, &pool, input, output, opts)
}

/// The serve core: one connection/stream against a shared context and
/// pool (both outlive the call, carrying warm caches to the next one).
fn serve_on<R, W>(
    ctx: &Arc<ServiceCtx>,
    pool: &Pool,
    input: R,
    output: &mut W,
    opts: &ServeOptions,
) -> Result<ServeSummary, String>
where
    R: BufRead + Send,
    W: Write,
{
    let start = Instant::now();
    let stats = Arc::new(ServeStats::default());
    let shed_list: Arc<Mutex<Vec<(u64, RequestId)>>> = Arc::new(Mutex::new(Vec::new()));
    let tails = Arc::new(TailCache::new(opts.response_cache));
    let batch_max = opts.batch_max.max(1);

    // Dispatcher heartbeat (milliseconds since `start`) for the
    // watchdog: stamped whenever the dispatcher makes progress.
    let heartbeat = Arc::new(AtomicU64::new(0));
    let watchdog_stop = Arc::new(AtomicBool::new(false));

    let run: Result<(), String> = std::thread::scope(|scope| {
        let (tx, rx) = sync_channel::<LineJob>(opts.queue_max.max(1));
        let reader_stats = Arc::clone(&stats);
        let reader_shed = Arc::clone(&shed_list);
        let shed_mode = opts.shed;

        // Watchdog: while requests are in flight, a dispatcher that has
        // not stamped its heartbeat within the grace window is treated
        // as wedged; every in-flight deadline is cancelled so the
        // workers unwind cooperatively into partial / deadline
        // responses. Only armed together with `--deadline-ms` — without
        // a budget there is no contract on how long a request may run.
        if let Some(deadline_ms) = opts.deadline_ms {
            let stop = Arc::clone(&watchdog_stop);
            let hb = Arc::clone(&heartbeat);
            let wd_ctx = Arc::clone(ctx);
            scope.spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(50));
                    let now_ms = start.elapsed().as_millis() as u64;
                    let stale_ms = now_ms.saturating_sub(hb.load(Ordering::SeqCst));
                    let inflight = {
                        let mut handles = lock(&wd_ctx.inflight);
                        handles.retain(crate::par::WeakDeadline::is_alive);
                        handles.len()
                    };
                    if watchdog_should_trip(inflight, stale_ms, deadline_ms) {
                        counter!("serve", "watchdog_trips").inc();
                        eprintln!(
                            "serve: watchdog: dispatcher quiet for {stale_ms}ms with {inflight} \
                             in-flight request(s); cancelling their deadlines"
                        );
                        for handle in lock(&wd_ctx.inflight).iter() {
                            handle.cancel();
                        }
                        // Re-arm instead of re-tripping every tick.
                        hb.store(now_ms, Ordering::SeqCst);
                    }
                }
            });
        }

        let reader = scope.spawn(move || -> Result<(), String> {
            let mut seq: u64 = 0;
            for line in input.lines() {
                let line = match line {
                    Ok(line) => line,
                    // A client that vanishes mid-stream is EOF, not a
                    // serve failure: finish the work already admitted.
                    Err(e)
                        if matches!(
                            e.kind(),
                            ErrorKind::BrokenPipe | ErrorKind::ConnectionReset
                        ) =>
                    {
                        counter!("serve", "broken_pipe").inc();
                        break;
                    }
                    Err(e) => return Err(format!("serve: read error: {e}")),
                };
                if line.trim().is_empty() {
                    continue;
                }
                reader_stats.received.fetch_add(1, Ordering::SeqCst);
                counter!("serve", "requests").inc();
                let (id, parsed) = match Request::from_json_line(&line) {
                    Ok((id, req)) => (id, Ok(req)),
                    Err(e) => (id_of_line(&line), Err(e)),
                };
                let job = LineJob {
                    seq,
                    id,
                    parsed,
                    t0: Instant::now(),
                };
                seq += 1;
                if shed_mode {
                    match tx.try_send(job) {
                        Ok(()) => {
                            reader_stats.queue_depth.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(TrySendError::Full(job)) => {
                            reader_stats.shed.fetch_add(1, Ordering::SeqCst);
                            counter!("serve", "shed").inc();
                            lock(&reader_shed).push((job.seq, job.id));
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            return Err("serve: dispatcher hung up".to_string());
                        }
                    }
                } else {
                    reader_stats.queue_depth.fetch_add(1, Ordering::SeqCst);
                    if tx.send(job).is_err() {
                        return Err("serve: dispatcher hung up".to_string());
                    }
                }
            }
            Ok(())
        });

        let dispatch: Result<(), String> = (|| {
            let mut pending: BTreeMap<u64, String> = BTreeMap::new();
            let mut next_out: u64 = 0;
            let mut open = true;
            let mut client_gone = false;
            loop {
                heartbeat.store(start.elapsed().as_millis() as u64, Ordering::SeqCst);
                // Admit a batch: block for the first item, then drain
                // whatever else is already queued. In shed mode, wake
                // periodically so shed responses flush even while the
                // pipeline is otherwise idle.
                let mut batch: Vec<LineJob> = Vec::new();
                if open {
                    if opts.shed {
                        match rx.recv_timeout(Duration::from_millis(25)) {
                            Ok(job) => batch.push(job),
                            Err(RecvTimeoutError::Timeout) => {}
                            Err(RecvTimeoutError::Disconnected) => open = false,
                        }
                    } else {
                        match rx.recv() {
                            Ok(job) => batch.push(job),
                            Err(_) => open = false,
                        }
                    }
                    while batch.len() < batch_max {
                        match rx.try_recv() {
                            Ok(job) => batch.push(job),
                            Err(_) => break,
                        }
                    }
                }
                stats
                    .queue_depth
                    .fetch_sub(batch.len() as u64, Ordering::SeqCst);
                // Stamp after admission (the blocking receive above can
                // legitimately sit idle for any length of time): the
                // watchdog only measures time spent *executing* a batch.
                heartbeat.store(start.elapsed().as_millis() as u64, Ordering::SeqCst);

                if !batch.is_empty() {
                    stats.batches.fetch_add(1, Ordering::SeqCst);
                    stats
                        .dispatched
                        .fetch_add(batch.len() as u64, Ordering::SeqCst);
                    stats
                        .max_batch
                        .fetch_max(batch.len() as u64, Ordering::SeqCst);
                    counter!("serve", "batches").inc();

                    // Partition: inline answers (errors, stats, cache
                    // hits) vs. jobs for the pool.
                    let mut work: Vec<(u64, RequestId, Request, Instant, String)> = Vec::new();
                    let mut stats_jobs: Vec<(u64, RequestId, Instant)> = Vec::new();
                    for job in batch {
                        // Fault site: pretend this line failed envelope
                        // parsing. Keyed by sequence number, so the set
                        // of corrupted lines is a pure function of the
                        // fault plan — independent of workers or timing.
                        let parsed = if htmpll_fault::fires_global("serve.malformed", job.seq) {
                            counter!("serve", "fault.malformed").inc();
                            Err(format!(
                                "fault injection: malformed envelope for line {}",
                                job.seq
                            ))
                        } else {
                            job.parsed
                        };
                        match parsed {
                            Err(message) => {
                                stats.errors.fetch_add(1, Ordering::SeqCst);
                                stats.note_latency(job.t0);
                                pending.insert(
                                    job.seq,
                                    error_envelope(&job.id, &ServiceError::bad_request(message)),
                                );
                            }
                            Ok(Request::Stats) => {
                                // Answered after the batch's pool work so
                                // it reflects the requests queued ahead
                                // of it (output order is seq-keyed and
                                // unaffected).
                                stats_jobs.push((job.seq, job.id, job.t0));
                            }
                            Ok(req) if !req.is_servable() => {
                                stats.errors.fetch_add(1, Ordering::SeqCst);
                                stats.note_latency(job.t0);
                                let err = ServiceError::unsupported(
                                    req.command(),
                                    format!(
                                        "`{}` mutates process-global state; run it via the plltool CLI",
                                        req.command()
                                    ),
                                );
                                pending.insert(job.seq, error_envelope(&job.id, &err));
                            }
                            Ok(req) => {
                                let key = req.canonical_json();
                                if let Some(tail) = tails.get(&key) {
                                    stats.response_cache_hits.fetch_add(1, Ordering::SeqCst);
                                    counter!("serve", "cache_hits").inc();
                                    stats.note_latency(job.t0);
                                    pending.insert(job.seq, assemble(&job.id, &tail));
                                } else {
                                    work.push((job.seq, job.id, req, job.t0, key));
                                }
                            }
                        }
                    }

                    // Sort for batch affinity: identical commands and
                    // specs sit in adjacent pool chunks, so their warm
                    // factorizations collide in the shared cache shards
                    // as closely in time as possible.
                    work.sort_by(|a, b| {
                        (a.2.command(), a.4.as_str(), a.0).cmp(&(b.2.command(), b.4.as_str(), b.0))
                    });

                    // Intra-batch dedup: identical specs that arrived in
                    // the *same* admission batch (so none of them could
                    // see the other's response-cache entry yet) compute
                    // once; the duplicates share the representative's
                    // tail. The sort above makes duplicates adjacent.
                    let mut dups: Vec<(u64, RequestId, Instant, String)> = Vec::new();
                    work.dedup_by(|item, kept| {
                        let dup = kept.4 == item.4;
                        if dup {
                            dups.push((item.0, item.1.clone(), item.3, item.4.clone()));
                        }
                        dup
                    });

                    let worker_ctx = Arc::clone(ctx);
                    let worker_stats = Arc::clone(&stats);
                    let results = pool.map(work, move |_, item| {
                        let (seq, id, req, t0, key) = item;
                        // Pin the ambient fault scope to the request's
                        // canonical spec: scope-gated fault rules then
                        // select the same victim *requests* regardless
                        // of worker count, batch shape, or arrival
                        // order.
                        let _fault_scope =
                            htmpll_fault::scope_guard(Some(htmpll_fault::fnv64(key.as_bytes())));
                        let resp =
                            catch_unwind(AssertUnwindSafe(|| handlers::handle(req, &worker_ctx)))
                                .unwrap_or_else(|_| {
                                    Response::Error(ServiceError {
                                        command: req.command().to_string(),
                                        code: "panic",
                                        message: "request handler panicked; the panic was \
                                                  contained and only this request failed"
                                            .to_string(),
                                        retryable: false,
                                        quality: None,
                                    })
                                });
                        let ok = resp.failure().is_none();
                        let tail = envelope_tail(&resp, None);
                        worker_stats.note_latency(*t0);
                        (*seq, id.clone(), tail, ok, key.clone())
                    });
                    let mut batch_tails: HashMap<String, (String, bool)> = HashMap::new();
                    for (seq, id, tail, ok, key) in results {
                        if ok {
                            tails.put(key.clone(), tail.clone());
                        } else {
                            stats.errors.fetch_add(1, Ordering::SeqCst);
                        }
                        pending.insert(seq, assemble(&id, &tail));
                        batch_tails.insert(key, (tail, ok));
                    }
                    for (seq, id, t0, key) in dups {
                        // The representative always ran; its tail is in
                        // `batch_tails` whether it succeeded or failed.
                        if let Some((tail, ok)) = batch_tails.get(&key) {
                            stats.response_cache_hits.fetch_add(1, Ordering::SeqCst);
                            counter!("serve", "cache_hits").inc();
                            if !ok {
                                stats.errors.fetch_add(1, Ordering::SeqCst);
                            }
                            stats.note_latency(t0);
                            pending.insert(seq, assemble(&id, tail));
                        }
                    }
                    for (seq, id, t0) in stats_jobs {
                        stats.note_latency(t0);
                        pending.insert(seq, stats_envelope(&id, &stats, ctx, &tails, start, opts));
                    }
                }

                // Shed responses join the reorder map out of band.
                for (seq, id) in lock(&shed_list).drain(..) {
                    let err = ServiceError {
                        command: String::new(),
                        code: "shed",
                        message: format!(
                            "queue full ({} deep); request shed — retry, or raise --queue-max / \
                             drop --shed for blocking backpressure",
                            opts.queue_max
                        ),
                        // Shedding is a load condition, not a property
                        // of the request: resubmitting can succeed.
                        retryable: true,
                        quality: None,
                    };
                    pending.insert(seq, error_envelope(&id, &err));
                }

                // In-order flush. A client that hangs up mid-stream
                // (BrokenPipe) downgrades writes to no-ops: the run
                // keeps draining its queue and counters instead of
                // aborting with half the batch unaccounted for.
                while let Some(line) = pending.remove(&next_out) {
                    if !client_gone {
                        client_gone = write_line(output, &line)?;
                    }
                    next_out += 1;
                    let responded = stats.responded.fetch_add(1, Ordering::SeqCst) + 1;
                    counter!("serve", "responses").inc();
                    if opts.log_every > 0 && responded % opts.log_every == 0 {
                        let sweep = ctx.cache.stats();
                        eprintln!(
                            "serve: {responded} responded | queue {} | shed {} | sweep-cache {}/{}",
                            stats.queue_depth.load(Ordering::SeqCst),
                            stats.shed.load(Ordering::SeqCst),
                            sweep.hits,
                            sweep.hits + sweep.misses,
                        );
                    }
                }
                if !client_gone {
                    match output.flush() {
                        Ok(()) => {}
                        Err(e) if e.kind() == ErrorKind::BrokenPipe => {
                            counter!("serve", "broken_pipe").inc();
                            client_gone = true;
                        }
                        Err(e) => return Err(format!("serve: flush error: {e}")),
                    }
                }

                if !open && pending.is_empty() && lock(&shed_list).is_empty() {
                    return Ok(());
                }
                if !open && batch_is_stalled(&pending, next_out, &shed_list) {
                    // Defensive: a sequence gap after EOF cannot fill;
                    // flush what remains rather than spin forever.
                    for (_, line) in std::mem::take(&mut pending) {
                        if !client_gone {
                            client_gone = write_line(output, &line)?;
                        }
                        stats.responded.fetch_add(1, Ordering::SeqCst);
                    }
                    return Ok(());
                }
            }
        })();

        watchdog_stop.store(true, Ordering::SeqCst);
        let read = reader
            .join()
            .map_err(|_| "serve: reader thread panicked".to_string())?;
        dispatch?;
        read
    });
    run?;

    let (p50, p99, _) = stats.latency_quantiles();
    let sweep = ctx.cache.stats();
    Ok(ServeSummary {
        received: stats.received.load(Ordering::SeqCst),
        responded: stats.responded.load(Ordering::SeqCst),
        errors: stats.errors.load(Ordering::SeqCst),
        shed: stats.shed.load(Ordering::SeqCst),
        batches: stats.batches.load(Ordering::SeqCst),
        max_batch: stats.max_batch.load(Ordering::SeqCst),
        sweep_cache_hits: sweep.hits,
        sweep_cache_misses: sweep.misses,
        response_cache_hits: stats.response_cache_hits.load(Ordering::SeqCst),
        p50_latency_ns: p50,
        p99_latency_ns: p99,
        elapsed_ns: start.elapsed().as_nanos() as u64,
    })
}

/// Writes one response line, tolerating a vanished client. Returns
/// `Ok(true)` when the client is gone (BrokenPipe — stop writing, keep
/// draining), `Ok(false)` on success, `Err` on any other I/O failure.
fn write_line<W: Write>(output: &mut W, line: &str) -> Result<bool, String> {
    match writeln!(output, "{line}") {
        Ok(()) => Ok(false),
        Err(e) if e.kind() == ErrorKind::BrokenPipe => {
            counter!("serve", "broken_pipe").inc();
            eprintln!("serve: client disconnected mid-stream; draining remaining work");
            Ok(true)
        }
        Err(e) => Err(format!("serve: write error: {e}")),
    }
}

/// The watchdog trip predicate, kept pure for testing: the dispatcher
/// is considered wedged when work is in flight but its heartbeat has
/// been quiet longer than the grace window.
fn watchdog_should_trip(inflight: usize, stale_ms: u64, deadline_ms: u64) -> bool {
    inflight > 0 && stale_ms > watchdog_grace_ms(deadline_ms)
}

/// Grace window before a stale heartbeat counts as a wedge: several
/// deadline budgets (a healthy batch finishes within roughly one), with
/// a floor so tiny budgets don't make the watchdog trigger-happy.
fn watchdog_grace_ms(deadline_ms: u64) -> u64 {
    (4 * deadline_ms).max(1000)
}

/// True when nothing can make progress anymore: input closed, no shed
/// entries waiting, but the next output sequence is absent.
fn batch_is_stalled(
    pending: &BTreeMap<u64, String>,
    next_out: u64,
    shed_list: &Mutex<Vec<(u64, RequestId)>>,
) -> bool {
    !pending.is_empty() && !pending.contains_key(&next_out) && lock(shed_list).is_empty()
}

fn assemble(id: &RequestId, tail: &str) -> String {
    format!("{{\"schema\":\"plltool/v1\",{}{}", id.json_fragment(), tail)
}

/// The `stats` request, answered inline by the dispatcher (it needs the
/// live queue, not a worker).
fn stats_envelope(
    id: &RequestId,
    stats: &ServeStats,
    ctx: &ServiceCtx,
    tails: &TailCache,
    start: Instant,
    opts: &ServeOptions,
) -> String {
    let (p50, p99, count) = stats.latency_quantiles();
    let sweep = ctx.cache.stats();
    let batches = stats.batches.load(Ordering::SeqCst);
    let dispatched = stats.dispatched.load(Ordering::SeqCst);
    let occupancy = if batches == 0 {
        0.0
    } else {
        dispatched as f64 / batches as f64
    };
    let sweep_total = sweep.hits + sweep.misses;
    let hit_rate = if sweep_total == 0 {
        0.0
    } else {
        sweep.hits as f64 / sweep_total as f64
    };
    let result = format!(
        "{{\"uptime_ns\":{},\"received\":{},\"responded\":{},\"queue_depth\":{},\
         \"queue_max\":{},\"shed\":{},\"errors\":{},\"batches\":{},\"max_batch\":{},\
         \"batch_occupancy\":{},\"latency\":{{\"p50_ns\":{},\"p99_ns\":{},\"count\":{}}},\
         \"sweep_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"hit_rate\":{}}},\
         \"response_cache\":{{\"hits\":{},\"entries\":{}}}}}",
        start.elapsed().as_nanos(),
        stats.received.load(Ordering::SeqCst),
        stats.responded.load(Ordering::SeqCst),
        stats.queue_depth.load(Ordering::SeqCst),
        opts.queue_max,
        stats.shed.load(Ordering::SeqCst),
        stats.errors.load(Ordering::SeqCst),
        batches,
        stats.max_batch.load(Ordering::SeqCst),
        json::num(occupancy),
        p50,
        p99,
        count,
        sweep.hits,
        sweep.misses,
        sweep.evictions,
        json::num(hit_rate),
        stats.response_cache_hits.load(Ordering::SeqCst),
        tails.len(),
    );
    format!(
        "{{\"schema\":\"plltool/v1\",{}\"command\":\"stats\",\"ok\":true,\"result\":{result},\"quality\":null}}",
        id.json_fragment()
    )
}

/// Drop guard that unlinks the Unix socket file when the serve loop
/// exits, however it exits.
#[cfg(unix)]
struct SocketCleanup(std::path::PathBuf);

#[cfg(unix)]
impl Drop for SocketCleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Accepts connections on a Unix socket sequentially, serving each with
/// the *same* context and pool — the sweep and response caches stay
/// warm across connections. Runs until the process is killed.
#[cfg(unix)]
pub fn serve_unix(path: &str, opts: &ServeOptions) -> Result<(), String> {
    use std::os::unix::net::UnixListener;
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path).map_err(|e| format!("serve: bind {path}: {e}"))?;
    // Remove the socket file on every exit path (error return, panic
    // unwind), so a restarted server never finds a stale socket.
    let _cleanup = SocketCleanup(std::path::PathBuf::from(path));
    let ctx = Arc::new(ServiceCtx::with_deadline_ms(opts.deadline_ms));
    let pool = Pool::new(ThreadBudget::from(opts.workers));
    eprintln!("serve: listening on {path}");
    for conn in listener.incoming() {
        let stream = conn.map_err(|e| format!("serve: accept: {e}"))?;
        let reader = std::io::BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("serve: clone stream: {e}"))?,
        );
        let mut writer = std::io::BufWriter::new(stream);
        match serve_on(&ctx, &pool, reader, &mut writer, opts) {
            Ok(summary) => eprintln!("serve: connection closed: {}", summary.render_line()),
            Err(e) => eprintln!("serve: connection error: {e}"),
        }
    }
    Ok(())
}

#[allow(clippy::unwrap_used)]
#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn run_serve(input: &str, opts: &ServeOptions) -> (String, ServeSummary) {
        let mut out = Vec::new();
        let summary = serve_lines(Cursor::new(input.to_string()), &mut out, opts).unwrap();
        (String::from_utf8(out).unwrap(), summary)
    }

    #[test]
    fn serves_in_order_with_ids() {
        let input = concat!(
            "{\"id\":\"a\",\"command\":\"analyze\",\"params\":{\"ratio\":0.1}}\n",
            "{\"id\":2,\"command\":\"step\",\"params\":{\"ratio\":0.1,\"points\":4}}\n",
            "{\"id\":\"c\",\"command\":\"stats\"}\n",
        );
        let (out, summary) = run_serve(input, &ServeOptions::default());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with(
            "{\"schema\":\"plltool/v1\",\"id\":\"a\",\"command\":\"analyze\",\"ok\":true"
        ));
        assert!(lines[1]
            .starts_with("{\"schema\":\"plltool/v1\",\"id\":2,\"command\":\"step\",\"ok\":true"));
        assert!(lines[2].contains("\"command\":\"stats\""));
        assert!(lines[2].contains("\"sweep_cache\""));
        assert_eq!(summary.received, 3);
        assert_eq!(summary.responded, 3);
        assert_eq!(summary.shed, 0);
    }

    #[test]
    fn malformed_and_failed_lines_degrade_to_errors() {
        let input = concat!(
            "this is not json\n",
            "{\"id\":7,\"command\":\"nonsense\",\"params\":{}}\n",
            "{\"id\":8,\"command\":\"analyze\",\"params\":{\"ratio\":-1}}\n",
            "{\"id\":9,\"command\":\"metrics\",\"params\":{}}\n",
            "{\"id\":10,\"command\":\"analyze\",\"params\":{\"ratio\":0.1}}\n",
        );
        let (out, summary) = run_serve(input, &ServeOptions::default());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].contains("\"code\":\"bad_request\""));
        assert!(lines[1].contains("\"id\":7") && lines[1].contains("\"code\":\"bad_request\""));
        assert!(lines[2].contains("\"id\":8") && lines[2].contains("\"code\":\"failed\""));
        assert!(lines[3].contains("\"id\":9") && lines[3].contains("\"code\":\"unsupported\""));
        assert!(lines[4].contains("\"id\":10") && lines[4].contains("\"ok\":true"));
        assert_eq!(summary.errors, 4);
        assert_eq!(summary.responded, 5);
    }

    #[test]
    fn repeated_specs_hit_the_response_cache() {
        let mut input = String::new();
        for i in 0..12 {
            input.push_str(&format!(
                "{{\"id\":{i},\"command\":\"analyze\",\"params\":{{\"ratio\":0.1}}}}\n"
            ));
        }
        let (out, summary) = run_serve(&input, &ServeOptions::default());
        assert_eq!(out.lines().count(), 12);
        assert!(
            summary.response_cache_hits > 0,
            "identical specs must reuse the response tail ({summary:?})"
        );
        // Every body after the id must be identical.
        let tails: Vec<String> = out
            .lines()
            .map(|l| l.split_once("\"command\"").unwrap().1.to_string())
            .collect();
        assert!(tails.iter().all(|t| *t == tails[0]));
    }

    #[test]
    fn worker_count_does_not_change_the_bytes() {
        let mut input = String::new();
        for (i, ratio) in [0.08, 0.1, 0.12, 0.2, 0.1, 0.08].iter().enumerate() {
            input.push_str(&format!(
                "{{\"id\":{i},\"command\":\"analyze\",\"params\":{{\"ratio\":{ratio}}}}}\n"
            ));
        }
        input.push_str(
            "{\"id\":\"bode\",\"command\":\"bode\",\"params\":{\"ratio\":0.1,\"points\":8}}\n",
        );
        let one = run_serve(
            &input,
            &ServeOptions {
                workers: 1,
                ..ServeOptions::default()
            },
        );
        let four = run_serve(
            &input,
            &ServeOptions {
                workers: 4,
                ..ServeOptions::default()
            },
        );
        assert_eq!(one.0, four.0, "serve output must be worker-count invariant");
    }

    #[test]
    fn watchdog_trip_predicate() {
        // Nothing in flight: an arbitrarily stale heartbeat is just an
        // idle dispatcher blocked on its input queue.
        assert!(!watchdog_should_trip(0, 60_000, 100));
        // In flight but within the grace window (floor is 1000 ms).
        assert!(!watchdog_should_trip(3, 900, 100));
        assert!(!watchdog_should_trip(1, 7_000, 2_000));
        // In flight and quiet past the grace window: wedged.
        assert!(watchdog_should_trip(1, 1_001, 100));
        assert!(watchdog_should_trip(2, 9_000, 2_000));
        assert_eq!(watchdog_grace_ms(100), 1_000);
        assert_eq!(watchdog_grace_ms(2_000), 8_000);
    }

    #[test]
    fn zero_deadline_returns_retryable_deadline_errors_in_order() {
        let input = concat!(
            "{\"id\":\"a\",\"command\":\"analyze\",\"params\":{\"ratio\":0.1}}\n",
            "{\"id\":\"b\",\"command\":\"sweep\",\"params\":{\"from\":0.05,\"to\":0.2,\"points\":3}}\n",
            "{\"id\":\"c\",\"command\":\"step\",\"params\":{\"ratio\":0.1,\"points\":4}}\n",
        );
        let opts = ServeOptions {
            deadline_ms: Some(0),
            ..ServeOptions::default()
        };
        let (out, summary) = run_serve(input, &opts);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "every request answers, none wedges");
        assert!(
            lines[0].contains("\"code\":\"deadline\"") && lines[0].contains("\"retryable\":true"),
            "analyze under a zero budget must fail retryably: {}",
            lines[0]
        );
        assert!(
            lines[1].contains("\"code\":\"deadline\"") && lines[1].contains("\"quality\""),
            "sweep deadline error carries its quality roll-up: {}",
            lines[1]
        );
        // `step` never consults the deadline (no scan grids): still ok.
        assert!(lines[2].contains("\"ok\":true"));
        assert_eq!(summary.responded, 3);
    }

    #[test]
    fn shed_mode_answers_every_line() {
        let mut input = String::new();
        for i in 0..40 {
            input.push_str(&format!(
                "{{\"id\":{i},\"command\":\"analyze\",\"params\":{{\"ratio\":0.1}}}}\n"
            ));
        }
        let opts = ServeOptions {
            workers: 1,
            queue_max: 2,
            batch_max: 2,
            shed: true,
            ..ServeOptions::default()
        };
        let (out, summary) = run_serve(&input, &opts);
        assert_eq!(
            out.lines().count(),
            40,
            "every request gets a response line"
        );
        assert_eq!(summary.responded, 40);
        if summary.shed > 0 {
            assert!(out.contains("\"code\":\"shed\""));
        }
    }
}
