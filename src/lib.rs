//! # htmpll — time-varying, frequency-domain PLL analysis
//!
//! A Rust implementation of *"Time-Varying, Frequency-Domain Modeling
//! and Analysis of Phase-Locked Loops with Sampling Phase-Frequency
//! Detectors"* (P. Vanassche, G. Gielen, W. Sansen — DATE 2003),
//! together with every substrate it needs: complex numerics, LTI system
//! theory, spectral estimation, the harmonic-transfer-matrix (HTM)
//! formalism, a behavioral time-domain simulator, and the classical
//! z-domain baseline models.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! roof so applications can depend on a single package.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`num`] | `htmpll-num` | complex arithmetic, matrices, LU, polynomials, roots, lattice sums |
//! | [`lti`] | `htmpll-lti` | transfer functions, partial fractions, Bode, margins, loop filters |
//! | [`spectral`] | `htmpll-spectral` | FFT, Goertzel, windows, PSD estimation |
//! | [`htm`] | `htmpll-htm` | harmonic transfer matrices: blocks, composition, Nyquist |
//! | [`core`] | `htmpll-core` | the paper: `λ(s)`, closed-loop HTMs, analysis, noise folding |
//! | [`sim`] | `htmpll-sim` | behavioral charge-pump PLL simulator + tone measurements |
//! | [`zdomain`] | `htmpll-zdomain` | Hein–Scott discrete model, Jury test, stability limit |
//!
//! ## Quickstart
//!
//! ```
//! use htmpll::prelude::*;
//!
//! // Build the paper's reference loop with crossover at 20 % of the
//! // reference frequency and compare LTI vs time-varying phase margin.
//! let design = PllDesign::reference_design(0.2)?;
//! let model = PllModel::builder(design).build()?;
//! let report = analyze(&model)?;
//! assert!(report.phase_margin_eff_deg < report.phase_margin_lti_deg);
//! # Ok::<(), htmpll::core::CoreError>(())
//! ```

#![warn(missing_docs)]

/// Numerical substrate (re-export of `htmpll-num`).
pub use htmpll_num as num;

/// Continuous-time LTI systems (re-export of `htmpll-lti`).
pub use htmpll_lti as lti;

/// Spectral analysis (re-export of `htmpll-spectral`).
pub use htmpll_spectral as spectral;

/// Harmonic transfer matrices (re-export of `htmpll-htm`).
pub use htmpll_htm as htm;

/// The paper's PLL theory (re-export of `htmpll-core`).
pub use htmpll_core as core;

/// Behavioral time-domain simulator (re-export of `htmpll-sim`).
pub use htmpll_sim as sim;

/// Discrete-time baselines (re-export of `htmpll-zdomain`).
pub use htmpll_zdomain as zdomain;

/// Instrumentation: counters, histograms, spans (re-export of `htmpll-obs`).
pub use htmpll_obs as obs;

/// Parallel sweep engine (re-export of `htmpll-par`).
pub use htmpll_par as par;

/// Deterministic fault injection (re-export of `htmpll-fault`).
pub use htmpll_fault as fault;

/// Cross-stack differential verification (re-export of `htmpll-xcheck`).
pub use htmpll_xcheck as xcheck;

/// Seeded profiling workload matrix + per-phase attribution (drives
/// `plltool profile`).
pub mod profile;

/// Typed request layer: every `plltool` subcommand as a parsed,
/// canonicalizable [`requests::Request`] value (argv and JSON share one
/// parser).
pub mod requests;

/// Execution + rendering layer: [`service::handle`] runs a request
/// against a shared [`service::ServiceCtx`], [`service::serve_lines`]
/// batches a JSONL stream of them across a worker pool.
pub mod service;

/// The most commonly used items in one import.
pub mod prelude {
    pub use crate::core::{
        analyze, dominant_poles, AnalysisReport, EffectiveGain, LeakageSpurs, LoopFilter,
        NoiseModel, NoiseShape, PllDesign, PllModel, SampleHoldModel,
    };
    pub use crate::htm::{Htm, HtmBlock, LtiHtm, MultiplierHtm, SamplerHtm, Truncation, VcoHtm};
    pub use crate::lti::{
        bode_sweep, stability_margins, ChargePumpFilter2, ChargePumpFilter3, Pfe, Tf,
    };
    pub use crate::num::{CMat, Complex, Poly};
    pub use crate::sim::{
        measure_band_transfer, measure_h00, MeasureOptions, PllSim, SimConfig, SimParams,
    };
    pub use crate::xcheck::{run_corpus, Verdict, XcheckReport};
    pub use crate::zdomain::{CpPllZModel, Zf};
}
