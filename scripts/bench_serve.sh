#!/usr/bin/env bash
# Regenerates BENCH_serve_throughput.json: requests/sec and per-request
# p50/p99 latency of the `plltool serve` pipeline (reader → bounded
# queue → admission batches → worker pool → in-order emit), measured
# in-process by examples/bench_serve.rs on two workloads:
#
#   repeated  many requests over few distinct specs — the warm path
#             (response-cache hits dominate after the first pass)
#   distinct  every request a different design — the compute path
#             (shows worker-pool scaling at 1 vs all cores)
#
#   scripts/bench_serve.sh [--repeated N] [--specs S] [--distinct D]
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q --example bench_serve
bench=$(./target/release/examples/bench_serve "$@")
cores=$(echo "$bench" | sed -n 's/.*"host_cores": \([0-9]*\).*/\1/p')

cat > BENCH_serve_throughput.json <<EOF
{
  "note": "Measured on a ${cores}-core host via the in-process serve core (no OS pipe). The repeated workload is response-cache-warm after one pass per spec, so its rps is the per-request service overhead ceiling; the distinct workload recomputes every request, so many_workers/one_worker rps is the pool-scaling factor. Latencies are per request, parse-to-envelope, nearest-rank percentiles.",
  "generated_by": "scripts/bench_serve.sh",
  "bench": $bench
}
EOF
echo "wrote BENCH_serve_throughput.json:"
cat BENCH_serve_throughput.json
