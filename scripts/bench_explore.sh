#!/usr/bin/env bash
# Regenerates BENCH_pareto_explore.json: streaming Pareto-explorer
# throughput (examples/bench_explore.rs) with and without the
# closed-form screening cascade on the identical seeded corpus.
#
#   scripts/bench_explore.sh [candidates] [threads]   # default: 5000 1
set -euo pipefail
cd "$(dirname "$0")/.."

candidates=${1:-5000}
threads=${2:-1}

cargo build --release -q --example bench_explore
bench=$(./target/release/examples/bench_explore --candidates "$candidates" --threads "$threads")
cores=$(echo "$bench" | sed -n 's/.*"host_cores": \([0-9]*\).*/\1/p')
speedup=$(echo "$bench" | sed -n 's/.*"speedup": \([0-9.]*\).*/\1/p')

cat > BENCH_pareto_explore.json <<EOF
{
  "note": "Measured on a ${cores}-core host. Both legs evaluate the identical seeded candidate corpus and land on the identical front digest; the screened leg rejects most candidates with one closed-form spur evaluation plus a 32-point lambda margin scan before the full HTM analysis runs, so its throughput advantage is the screen's rejection rate (speedup ~ 1/(1-rejected_fraction)). peak_alloc_bytes is the live-allocation high-water mark during the leg (counting global allocator) — the flat-memory proxy: it is bounded by per-worker workspaces plus the capped front, independent of the candidate count.",
  "generated_by": "scripts/bench_explore.sh",
  "bench": $bench
}
EOF
echo "wrote BENCH_pareto_explore.json (screening speedup: ${speedup}x)"
