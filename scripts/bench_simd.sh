#!/usr/bin/env bash
# Regenerates BENCH_simd_kernels.json: per-kernel scalar-vs-SIMD wall
# clock for the vectorized hot loops (examples/bench_simd.rs) — banded
# LU factor/solve, banded-Toeplitz mat-vec, radix-2 FFT, and the λ(jω)
# lattice-sum grid — timed through their real entry points with the
# backend forced to scalar and then to the detected hardware level.
#
#   scripts/bench_simd.sh [--reps R]       # default: 9
set -euo pipefail
cd "$(dirname "$0")/.."

reps=9
if [ "${1:-}" = "--reps" ]; then
    reps="${2:?--reps needs an integer}"
fi

cargo build --release -q --example bench_simd
bench=$(./target/release/examples/bench_simd --reps "$reps")
level=$(echo "$bench" | sed -n 's/.*"detected_level": "\([a-z0-9]*\)".*/\1/p')
cores=$(echo "$bench" | sed -n 's/.*"host_cores": \([0-9]*\).*/\1/p')

if [ "$level" = "scalar" ]; then
    caveat="This host detected no AVX2/NEON, so both legs dispatch the scalar kernels and every speedup is ~1.0 by construction; regenerate on a vector-capable host for meaningful ratios."
else
    caveat="Detected level: ${level}."
fi

cat > BENCH_simd_kernels.json <<EOF
{
  "note": "Measured on a ${cores}-core host; each kernel is timed best-of-reps through its public entry point with the backend pinned via set_active_level, so the ratio isolates the data-layout/ILP gain of the split-plane (SoA) kernels. ${caveat} Both legs are bitwise identical by contract: the SIMD kernels use no FMA and no reduction reassociation — they vectorize across independent outputs with per-lane op order equal to the scalar reference — so goldens, xcheck digests, and 1-vs-N-thread determinism are unchanged with SIMD on or off (HTMPLL_SIMD=0 forces scalar).",
  "generated_by": "scripts/bench_simd.sh",
  "bench": $bench
}
EOF
echo "wrote BENCH_simd_kernels.json:"
cat BENCH_simd_kernels.json
