#!/usr/bin/env bash
# Regenerates BENCH_profile_overhead.json: wall-clock overhead of the
# observability stack (examples/bench_profile.rs) on a K = 24 structured
# 96-point closed-loop sweep, across the filter/session tiers:
#
#   disabled  HTMPLL_OBS unset — one relaxed atomic load per site
#   debug     counters, per-sweep spans, quantile reservoirs
#   enabled   debug + active trace session (`plltool trace` default)
#   trace     deepest tier: per-point spans and attribution instants
#
#   scripts/bench_profile.sh [--points N] [--trunc K] [--reps R]
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q --example bench_profile
bench=$(./target/release/examples/bench_profile "$@")
cores=$(echo "$bench" | sed -n 's/.*"host_cores": \([0-9]*\).*/\1/p')

cat > BENCH_profile_overhead.json <<EOF
{
  "note": "Measured on a ${cores}-core host, single worker thread. Configs are interleaved round-robin (best-of-reps per config) so host noise is sampled evenly. overhead_pct is the default-tracing tier (debug filter + session, what plltool trace runs) over the disabled baseline and must stay under 10; trace_overhead_pct is the deepest tier (per-point spans + instants), which deliberately trades overhead for per-point timeline detail. disabled_site_ns is the per-hit cost of one instrumented counter site with collection off.",
  "generated_by": "scripts/bench_profile.sh",
  "bench": $bench
}
EOF
echo "wrote BENCH_profile_overhead.json:"
cat BENCH_profile_overhead.json
