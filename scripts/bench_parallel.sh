#!/usr/bin/env bash
# Regenerates BENCH_parallel_sweep.json: wall-clock numbers for the
# parallel sweep engine (examples/bench_sweep.rs) at 1/2/4 threads.
#
#   scripts/bench_parallel.sh [threads...]     # default: 1 2 4
set -euo pipefail
cd "$(dirname "$0")/.."

threads=("$@")
[ ${#threads[@]} -eq 0 ] && threads=(1 2 4)

cargo build --release -q --example bench_sweep
bench=$(./target/release/examples/bench_sweep "${threads[@]}" --reps 5)
cores=$(echo "$bench" | sed -n 's/.*"host_cores": \([0-9]*\).*/\1/p')

cat > BENCH_parallel_sweep.json <<EOF
{
  "note": "Measured on a ${cores}-core host. Thread-count scaling of wall time requires >1 core; on a single core the pool adds only scheduling overhead and the win comes from the SweepCache (dense_warm vs dense_cold: repeated sweeps skip the (2K+1)^2 LU factorization per point). Results are bitwise identical across all thread counts (tests/parallel_determinism.rs).",
  "generated_by": "scripts/bench_parallel.sh",
  "bench": $bench
}
EOF
echo "wrote BENCH_parallel_sweep.json:"
cat BENCH_parallel_sweep.json
