#!/usr/bin/env bash
# Local CI: everything a reviewer needs to trust the tree, offline.
#
#   scripts/ci.sh            # build, test, clippy, fmt check, metrics smoke
#
# The bench crate is excluded from the workspace (needs the registry);
# this script covers the offline workspace only.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace, HTMPLL_THREADS=1)"
HTMPLL_THREADS=1 cargo test --workspace -q

echo "==> cargo test -q (workspace, HTMPLL_THREADS=4)"
HTMPLL_THREADS=4 cargo test --workspace -q

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> plltool metrics smoke"
out=$(./target/release/plltool metrics --ratio 0.1)
echo "$out" | grep -q "core.analyze" || {
    echo "metrics smoke failed: no core.analyze in output" >&2
    exit 1
}
sites=$(echo "$out" | grep -cE "counter|histogram|span" || true)
if [ "$sites" -lt 10 ]; then
    echo "metrics smoke failed: only $sites instrumented sites" >&2
    exit 1
fi
echo "metrics smoke ok ($sites instrumented sites)"

echo "==> parallel sweep pool smoke"
tmpjson=$(mktemp)
trap 'rm -f "$tmpjson"' EXIT
./target/release/plltool metrics --ratio 0.1 --threads 2 --json "$tmpjson" > /dev/null
for key in par.tasks par.chunks par.worker_busy_ns core.sweep.dense_cache.hit; do
    grep -q "\"$key" "$tmpjson" || {
        echo "pool smoke failed: $key missing from metrics JSON" >&2
        exit 1
    }
done
echo "pool smoke ok (par.* counters + sweep cache hits present)"

echo "==> all green"
