#!/usr/bin/env bash
# Local CI: everything a reviewer needs to trust the tree, offline.
#
#   scripts/ci.sh            # build, test, clippy, fmt check, metrics smoke
#
# The bench crate is excluded from the workspace (needs the registry);
# this script covers the offline workspace only.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace, HTMPLL_THREADS=1)"
HTMPLL_THREADS=1 cargo test --workspace -q

echo "==> cargo test -q (workspace, HTMPLL_THREADS=4)"
HTMPLL_THREADS=4 cargo test --workspace -q

echo "==> cargo test -q (workspace, HTMPLL_SIMD=0 forced-scalar)"
HTMPLL_SIMD=0 cargo test --workspace -q

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> plltool metrics smoke"
out=$(./target/release/plltool metrics --ratio 0.1)
echo "$out" | grep -q "core.analyze" || {
    echo "metrics smoke failed: no core.analyze in output" >&2
    exit 1
}
sites=$(echo "$out" | grep -cE "counter|histogram|span" || true)
if [ "$sites" -lt 10 ]; then
    echo "metrics smoke failed: only $sites instrumented sites" >&2
    exit 1
fi
echo "metrics smoke ok ($sites instrumented sites)"

echo "==> panic audit (library paths)"
audit_fail=0
while IFS= read -r hit; do
    [ -z "$hit" ] && continue
    if ! grep -qF "$hit" scripts/panic_allowlist.txt; then
        echo "panic audit: site not in scripts/panic_allowlist.txt:" >&2
        echo "  $hit" >&2
        audit_fail=1
    fi
done < <(
    find crates/*/src src/bin src/lib.rs src/profile.rs src/requests.rs src/service -name '*.rs' 2>/dev/null \
        | grep -v '^crates/bench/' | sort | while IFS= read -r f; do
        # The assert!-family is additionally audited in the estimation
        # and z-domain crates, whose inputs come straight from user
        # records: every remaining assert must be a documented
        # `# Panics` contract, not a reachable crash on bad data.
        case "$f" in
            crates/spectral/*|crates/zdomain/*) asserts=1 ;;
            *) asserts=0 ;;
        esac
        awk -v fn="$f" -v asserts="$asserts" '/#\[cfg\(test\)\]/{exit}
            /\.unwrap\(\)|\.expect\(|panic!\(|unreachable!\(/ {
                line=$0; sub(/^[ \t]+/, "", line);
                if (line !~ /^\/\//) print fn "\t" line; next
            }
            asserts && /assert!\(|assert_eq!\(|assert_ne!\(/ {
                line=$0; sub(/^[ \t]+/, "", line);
                if (line !~ /^\/\//) print fn "\t" line
            }' "$f"
    done
)
if [ "$audit_fail" -ne 0 ]; then
    echo "panic audit failed: convert the site to a Result or add it to the allow-list with justification" >&2
    exit 1
fi
echo "panic audit ok (all library-path sites allow-listed)"

# The main audit trims leading whitespace and skips `//`-prefixed lines,
# which also hides doc-comment examples. The estimation kernels' doc
# examples are the first code a user copies, so in fft.rs and psd.rs
# they must model the fallible API (`?` against FftError/SpectralError),
# never `.unwrap()`.
echo "==> panic audit (spectral doc examples)"
docfail=0
for f in crates/spectral/src/fft.rs crates/spectral/src/psd.rs; do
    hits=$(grep -nE '^\s*//[/!].*(\.unwrap\(\)|\.expect\(|panic!\()' "$f" || true)
    if [ -n "$hits" ]; then
        echo "doc-example panic audit: unwrap/expect/panic in $f doc comments:" >&2
        echo "$hits" >&2
        docfail=1
    fi
done
if [ "$docfail" -ne 0 ]; then
    echo "doc-example panic audit failed: rewrite the example with ? and a fallible fn" >&2
    exit 1
fi
echo "doc-example panic audit ok (fft.rs, psd.rs)"

echo "==> plltool doctor smoke"
doctorjson=$(mktemp)
./target/release/plltool doctor --ratio 0.1 --metrics-json "$doctorjson" || {
    echo "doctor smoke failed: non-zero exit on a healthy design" >&2
    exit 1
}
for key in robust. num.robust.factor htm.closed_loop.rank_one num.robust.banded_fallback; do
    grep -q "$key" "$doctorjson" || {
        echo "doctor smoke failed: $key missing from doctor metrics JSON" >&2
        exit 1
    }
done
rm -f "$doctorjson"
echo "doctor smoke ok"

echo "==> SIMD feature-detection smoke"
# The doctor banner names the dispatched backend; with HTMPLL_SIMD=0 it
# must always read scalar, and unset it must name the detected level
# (scalar is valid — it documents a host without AVX2/NEON).
simdline=$(HTMPLL_SIMD=0 ./target/release/plltool doctor --ratio 0.1 | grep '^simd') || {
    echo "SIMD smoke failed: doctor output has no simd line" >&2
    exit 1
}
case "$simdline" in
    *scalar*) ;;
    *) echo "SIMD smoke failed: HTMPLL_SIMD=0 dispatched '$simdline'" >&2; exit 1 ;;
esac
detected=$(./target/release/plltool doctor --ratio 0.1 | grep '^simd')
case "$detected" in
    *scalar*|*avx2*|*neon*) ;;
    *) echo "SIMD smoke failed: unrecognized backend line '$detected'" >&2; exit 1 ;;
esac
echo "SIMD smoke ok ($detected)"

echo "==> xcheck determinism leg (quick corpus, threads 1 vs 4)"
x1=$(mktemp); x4=$(mktemp)
HTMPLL_THREADS=1 ./target/release/plltool xcheck --corpus quick --threads 1 --json "$x1" > /dev/null
HTMPLL_THREADS=4 ./target/release/plltool xcheck --corpus quick --threads 4 --json "$x4" \
    --bench BENCH_xcheck_corpus.json > /dev/null
cmp -s "$x1" "$x4" || {
    echo "xcheck determinism failed: quick-corpus reports differ across thread counts" >&2
    diff "$x1" "$x4" | head -5 >&2
    exit 1
}
grep -q '"mismatch":0' "$x1" || {
    echo "xcheck leg failed: cross-stack mismatches in the quick corpus" >&2
    exit 1
}
# The corpus reconciles the structured kernels against the forced dense
# ladder; the bitwise compare above therefore also pins that check's
# digest across HTMPLL_THREADS=1 and =4. Assert it actually ran.
grep -q 'structured-vs-dense' "$x1" || {
    echo "xcheck leg failed: structured-vs-dense reconciliation missing from report" >&2
    exit 1
}
digest=$(grep -o '"digest":"[0-9a-f]*"' "$x1" | head -1)
rm -f "$x1" "$x4"
echo "xcheck determinism ok (bitwise-identical across thread counts, $digest)"

echo "==> xcheck full corpus (exit 2 on any mismatch)"
./target/release/plltool xcheck --corpus default > /dev/null
echo "xcheck full corpus ok (zero mismatches)"

echo "==> plltool trace smoke"
tracejson=$(mktemp)
./target/release/plltool trace doctor --ratio 0.1 --threads 1 --out "$tracejson" > /dev/null
for cat in core htm num par; do
    grep -q "\"cat\": \"$cat\"" "$tracejson" || {
        echo "trace smoke failed: no $cat spans in Chrome trace" >&2
        exit 1
    }
done
grep -q '"ph": "B"' "$tracejson" && grep -q '"ph": "E"' "$tracejson" || {
    echo "trace smoke failed: no span begin/end pairs" >&2
    exit 1
}
rm -f "$tracejson"
echo "trace smoke ok (core/htm/num/par spans in Chrome trace JSON)"

echo "==> tracing overhead guard"
cargo build --release -q --example bench_profile
overhead=$(./target/release/examples/bench_profile --reps 9 \
    | grep -o '"overhead_pct": [0-9.eE+-]*' | cut -d' ' -f2)
awk -v o="$overhead" 'BEGIN { exit !(o < 10.0) }' || {
    echo "overhead guard failed: default-tracing overhead ${overhead}% >= 10% on the K=24 structured sweep" >&2
    exit 1
}
echo "tracing overhead guard ok (${overhead}% < 10%)"

echo "==> parallel sweep pool smoke"
tmpjson=$(mktemp)
trap 'rm -f "$tmpjson"' EXIT
./target/release/plltool metrics --ratio 0.1 --threads 2 --json "$tmpjson" > /dev/null
for key in par.tasks par.chunks par.worker_busy_ns core.sweep.dense_cache.hit; do
    grep -q "\"$key" "$tmpjson" || {
        echo "pool smoke failed: $key missing from metrics JSON" >&2
        exit 1
    }
done
echo "pool smoke ok (par.* counters + sweep cache hits present)"

echo "==> plltool serve leg (50-request JSONL batch)"
servein=$(mktemp); serveout=$(mktemp)
{
    for i in $(seq 0 48); do
        r=$(awk -v i="$i" 'BEGIN { printf "0.%02d", 6 + i % 5 }')
        echo "{\"id\":$i,\"command\":\"analyze\",\"params\":{\"ratio\":$r}}"
    done
    echo '{"id":"stats","command":"stats"}'
} > "$servein"
./target/release/plltool serve --workers 4 < "$servein" > "$serveout" 2>/dev/null
lines=$(wc -l < "$serveout")
[ "$lines" -eq 50 ] || {
    echo "serve leg failed: expected 50 response lines, got $lines" >&2
    exit 1
}
if grep -q '"code":"shed"' "$serveout"; then
    echo "serve leg failed: request shed at default queue bounds" >&2
    exit 1
fi
if grep -q '"ok":false' "$serveout"; then
    echo "serve leg failed: a request errored in the healthy batch" >&2
    grep '"ok":false' "$serveout" | head -3 >&2
    exit 1
fi
hits=$(grep -o '"response_cache":{"hits":[0-9]*' "$serveout" | grep -o '[0-9]*$' | head -1)
[ -n "$hits" ] && [ "$hits" -gt 0 ] || {
    echo "serve leg failed: repeated specs produced no warm-cache hits (hits=$hits)" >&2
    exit 1
}
rm -f "$servein" "$serveout"
echo "serve leg ok (50/50 in-order responses, zero shed, $hits warm-cache hits)"

echo "==> serve deadline leg (tight budget answers, never hangs)"
dlout=$(mktemp)
printf '{"id":0,"command":"sweep","params":{"from":0.05,"to":0.3,"points":60}}\n{"id":1,"command":"analyze","params":{"ratio":0.1}}\n' \
    | timeout 60 ./target/release/plltool serve --deadline-ms 1 --workers 2 > "$dlout" 2>/dev/null || {
    echo "serve deadline leg failed: serve exited nonzero or hung" >&2
    exit 1
}
dllines=$(wc -l < "$dlout")
[ "$dllines" -eq 2 ] || {
    echo "serve deadline leg failed: expected 2 response lines, got $dllines" >&2
    exit 1
}
grep -q '"code":"deadline"' "$dlout" || {
    echo "serve deadline leg failed: no structured deadline error under a 1 ms budget" >&2
    head -2 "$dlout" >&2
    exit 1
}
grep -q '"retryable":true' "$dlout" || {
    echo "serve deadline leg failed: deadline error not marked retryable" >&2
    exit 1
}
rm -f "$dlout"
echo "serve deadline leg ok (structured retryable deadline errors, no hang)"

echo "==> explore smoke (seeded run, digest pin, thread determinism, zero failures)"
e1=$(mktemp); e4=$(mktemp)
HTMPLL_THREADS=1 ./target/release/plltool explore --candidates 600 --seed 1 \
    --min-pm 55 --max-spur -72 --front-cap 128 --refine 0 --json "$e1" > /dev/null
HTMPLL_THREADS=4 ./target/release/plltool explore --candidates 600 --seed 1 \
    --min-pm 55 --max-spur -72 --front-cap 128 --refine 0 --json "$e4" > /dev/null
cmp -s "$e1" "$e4" || {
    echo "explore smoke failed: front differs across thread counts" >&2
    diff "$e1" "$e4" | head -5 >&2
    exit 1
}
grep -q '"failed":0' "$e1" || {
    echo "explore smoke failed: candidates failed outright" >&2
    exit 1
}
grep -q '"quality":{"exact":' "$e1" || {
    echo "explore smoke failed: no quality roll-up in the envelope" >&2
    exit 1
}
if grep -q '"failed":[1-9]' "$e1"; then
    echo "explore smoke failed: Failed verdicts in the quality roll-up" >&2
    exit 1
fi
edigest=$(grep -o '"digest":"[0-9a-f]*"' "$e1" | head -1)
rm -f "$e1" "$e4"
echo "explore smoke ok (bitwise-identical across thread counts, $edigest)"

echo "==> chaos smoke (seeded fault replay, exit 2 on invariant violation)"
timeout 120 ./target/release/plltool chaos --requests 24 || {
    echo "chaos smoke failed: invariant violation or hang under the default fault plan" >&2
    exit 1
}
echo "chaos smoke ok"

echo "==> all green"
