#!/usr/bin/env bash
# Local CI: everything a reviewer needs to trust the tree, offline.
#
#   scripts/ci.sh            # build, test, clippy, fmt check, metrics smoke
#
# The bench crate is excluded from the workspace (needs the registry);
# this script covers the offline workspace only.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace)"
cargo test --workspace -q

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> plltool metrics smoke"
out=$(./target/release/plltool metrics --ratio 0.1)
echo "$out" | grep -q "core.analyze" || {
    echo "metrics smoke failed: no core.analyze in output" >&2
    exit 1
}
sites=$(echo "$out" | grep -cE "counter|histogram|span" || true)
if [ "$sites" -lt 10 ]; then
    echo "metrics smoke failed: only $sites instrumented sites" >&2
    exit 1
fi
echo "metrics smoke ok ($sites instrumented sites)"

echo "==> all green"
