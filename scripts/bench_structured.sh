#!/usr/bin/env bash
# Regenerates BENCH_structured_kernels.json: wall-clock numbers for the
# structured closed-loop kernels (examples/bench_structured.rs) against
# the forced dense ladder at K = 16, 24, 32, 64.
#
#   scripts/bench_structured.sh [K...]     # default: 16 24 32 64
set -euo pipefail
cd "$(dirname "$0")/.."

orders=("$@")
[ ${#orders[@]} -eq 0 ] && orders=(16 24 32 64)

cargo build --release -q --example bench_structured
bench=$(./target/release/examples/bench_structured "${orders[@]}" --reps 5)
cores=$(echo "$bench" | sed -n 's/.*"host_cores": \([0-9]*\).*/\1/p')

cat > BENCH_structured_kernels.json <<EOF
{
  "note": "Measured on a ${cores}-core host, single worker thread so the numbers isolate kernel cost, not pool scaling. structured_* sweeps keep the open loop in its rank-one/banded representation and close the loop by Sherman-Morrison or banded LU (O(K) per point); dense_* sweeps force materialization of I+G and the dense escalating ladder (O(K^3) per point). Both policies reconcile to 1e-10 on the xcheck corpus (structured-vs-dense check) with a thread-count-invariant digest. Baseline note: these numbers include the SIMD/SoA kernel pass (see BENCH_simd_kernels.json) — the structured path's inner loops (banded LU, banded-Toeplitz mat-vec) now dispatch vectorized split-plane kernels at the detected level, bitwise identical to scalar, so structured-vs-dense ratios measured before that pass are not directly comparable to these.",
  "generated_by": "scripts/bench_structured.sh",
  "bench": $bench
}
EOF
echo "wrote BENCH_structured_kernels.json:"
cat BENCH_structured_kernels.json
