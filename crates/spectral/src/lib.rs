//! # htmpll-spectral — spectral analysis substrate
//!
//! DSP tools used to post-process behavioral PLL simulations and to
//! verify frequency-domain (HTM) predictions against time-domain data:
//!
//! * [`mod@fft`] — iterative radix-2 FFT (power-of-two lengths) with a naive
//!   DFT reference.
//! * [`bluestein`] — arbitrary-length DFT via the chirp-z transform,
//!   needed because simulation records are cut at reference-period
//!   boundaries.
//! * [`mod@goertzel`] — single-bin DFT and complex tone extraction; the
//!   engine behind single-tone closed-loop transfer measurements.
//! * [`window`] — Hann / Hamming / Blackman–Harris windows with gain
//!   bookkeeping.
//! * [`psd`] — one-sided periodogram and Welch PSD estimation plus band
//!   power integration.
//!
//! ```
//! use htmpll_spectral::goertzel::tone_transfer;
//!
//! let omega = 2.0 * std::f64::consts::PI * 4.0;
//! let dt = 1e-3;
//! let u: Vec<f64> = (0..1000).map(|k| (omega * k as f64 * dt).cos()).collect();
//! let y: Vec<f64> = u.iter().map(|v| 0.5 * v).collect();
//! let h = tone_transfer(&u, &y, omega, dt);
//! assert!((h.abs() - 0.5).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

pub mod bluestein;
pub mod cross;
pub mod fft;
pub mod goertzel;
pub mod psd;
pub mod window;

pub use bluestein::{fft_any, ifft_any};
pub use cross::{tf_estimate, CrossBin};
pub use fft::{fft, fft_real, ifft, FftError};
pub use goertzel::{goertzel, tone_amplitude, tone_transfer};
pub use psd::{band_power, periodogram, welch, SpectralError};
pub use window::Window;
