//! Cross-spectral estimation: cross-PSD, coherence and broadband
//! transfer-function estimation.
//!
//! Single-tone and multitone measurements probe a transfer function at
//! chosen frequencies; the H1 estimator `H = S_xy/S_xx` recovers it at
//! **every** resolvable frequency from one broadband-stimulus record,
//! with the magnitude-squared coherence `γ² = |S_xy|²/(S_xx·S_yy)`
//! flagging the bins where the estimate can be trusted.
//!
//! ```
//! use htmpll_spectral::cross::tf_estimate;
//!
//! // y = x delayed by two samples through a known gain.
//! let x: Vec<f64> = (0..4096).map(|k| ((k * 2654435761usize) % 1000) as f64 / 1000.0 - 0.5).collect();
//! let mut y = vec![0.0; x.len()];
//! for k in 2..x.len() { y[k] = 0.5 * x[k - 2]; }
//! let est = tf_estimate(&x, &y, 1.0, 512);
//! let mid = &est[est.len() / 4];
//! assert!((mid.h.abs() - 0.5).abs() < 0.05);
//! assert!(mid.coherence > 0.95);
//! ```

use crate::bluestein::fft_any;
use crate::window::Window;
use htmpll_num::Complex;

/// One bin of a cross-spectral estimate.
#[derive(Debug, Clone, Copy)]
pub struct CrossBin {
    /// Frequency (Hz).
    pub frequency: f64,
    /// Input auto-PSD `S_xx`.
    pub s_xx: f64,
    /// Output auto-PSD `S_yy`.
    pub s_yy: f64,
    /// Cross-PSD `S_xy` (one-sided convention matching the autos).
    pub s_xy: Complex,
    /// H1 transfer estimate `S_xy/S_xx`.
    pub h: Complex,
    /// Magnitude-squared coherence `|S_xy|²/(S_xx·S_yy) ∈ [0, 1]`.
    pub coherence: f64,
}

/// Welch-averaged cross-spectral estimate between records `x` (input)
/// and `y` (output): Hann-windowed segments of `segment_len` samples
/// with 50 % overlap. Returns bins `1..segment_len/2` (DC and Nyquist
/// excluded — their one-sided scaling differs and transfer estimates
/// there are rarely meaningful).
///
/// # Panics
///
/// Panics when the records differ in length, are shorter than one
/// segment, or `fs <= 0`.
pub fn tf_estimate(x: &[f64], y: &[f64], fs: f64, segment_len: usize) -> Vec<CrossBin> {
    assert_eq!(x.len(), y.len(), "records must have equal length");
    assert!(fs > 0.0, "sample rate must be positive");
    assert!(segment_len >= 8, "segment too short");
    assert!(x.len() >= segment_len, "record shorter than one segment");

    let w = Window::Hann.samples(segment_len);
    let norm = fs * segment_len as f64 * Window::Hann.power_gain(segment_len);
    let half = segment_len / 2;
    let hop = (segment_len / 2).max(1);

    let mut sxx = vec![0.0f64; half];
    let mut syy = vec![0.0f64; half];
    let mut sxy = vec![Complex::ZERO; half];
    let mut count = 0usize;
    let mut start = 0usize;
    while start + segment_len <= x.len() {
        let seg_x: Vec<Complex> = x[start..start + segment_len]
            .iter()
            .zip(&w)
            .map(|(&v, &wk)| Complex::from_re(v * wk))
            .collect();
        let seg_y: Vec<Complex> = y[start..start + segment_len]
            .iter()
            .zip(&w)
            .map(|(&v, &wk)| Complex::from_re(v * wk))
            .collect();
        let fx = fft_any(&seg_x);
        let fy = fft_any(&seg_y);
        for k in 1..half {
            sxx[k] += fx[k].norm_sqr() / norm * 2.0;
            syy[k] += fy[k].norm_sqr() / norm * 2.0;
            sxy[k] += fy[k] * fx[k].conj() / norm * 2.0;
        }
        count += 1;
        start += hop;
    }
    let c = count as f64;
    (1..half)
        .map(|k| {
            let s_xx = sxx[k] / c;
            let s_yy = syy[k] / c;
            let s_xy = sxy[k] / c;
            let h = if s_xx > 0.0 {
                s_xy / s_xx
            } else {
                Complex::ZERO
            };
            let coherence = if s_xx > 0.0 && s_yy > 0.0 {
                (s_xy.norm_sqr() / (s_xx * s_yy)).min(1.0)
            } else {
                0.0
            };
            CrossBin {
                frequency: k as f64 * fs / segment_len as f64,
                s_xx,
                s_yy,
                s_xy,
                h,
                coherence,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 32) as u32 as f64) / (u32::MAX as f64) - 0.5
            })
            .collect()
    }

    #[test]
    fn identity_system() {
        let x = noise(1 << 14, 3);
        let est = tf_estimate(&x, &x, 1.0, 1024);
        for bin in est.iter().step_by(37) {
            assert!((bin.h - Complex::ONE).abs() < 1e-9, "{:?}", bin.h);
            assert!(bin.coherence > 1.0 - 1e-9);
        }
    }

    #[test]
    fn scaled_delay_system() {
        // y[k] = g·x[k−d]: |H| = g, phase = −2π·f·d.
        let g = 0.7;
        let d = 3usize;
        let x = noise(1 << 14, 9);
        let mut y = vec![0.0; x.len()];
        for k in d..x.len() {
            y[k] = g * x[k - d];
        }
        let est = tf_estimate(&x, &y, 1.0, 512);
        for bin in est.iter().step_by(23) {
            assert!(
                (bin.h.abs() - g).abs() < 0.03,
                "f={}: {}",
                bin.frequency,
                bin.h.abs()
            );
            let expect_phase = -2.0 * std::f64::consts::PI * bin.frequency * d as f64;
            let dphi = (bin.h.arg() - expect_phase).rem_euclid(2.0 * std::f64::consts::PI);
            let dphi = dphi.min(2.0 * std::f64::consts::PI - dphi);
            assert!(dphi < 0.05, "f={}: phase {}", bin.frequency, bin.h.arg());
            assert!(bin.coherence > 0.95);
        }
    }

    #[test]
    fn one_pole_filter_response() {
        // y[k] = a·y[k−1] + (1−a)·x[k]: H(f) = (1−a)/(1 − a·e^{−j2πf}).
        let a = 0.8;
        let x = noise(1 << 15, 17);
        let mut y = vec![0.0; x.len()];
        for k in 1..x.len() {
            y[k] = a * y[k - 1] + (1.0 - a) * x[k];
        }
        let est = tf_estimate(&x, &y, 1.0, 1024);
        for bin in est.iter().step_by(61) {
            let z = Complex::cis(-2.0 * std::f64::consts::PI * bin.frequency);
            let expect = Complex::from_re(1.0 - a) / (Complex::ONE - z.scale(a));
            assert!(
                (bin.h - expect).abs() < 0.05 * (1.0 + expect.abs()),
                "f={}: {} vs {expect}",
                bin.frequency,
                bin.h
            );
        }
    }

    #[test]
    fn uncorrelated_signals_have_low_coherence() {
        let x = noise(1 << 14, 5);
        let y = noise(1 << 14, 6);
        let est = tf_estimate(&x, &y, 1.0, 256);
        let mean_coh: f64 = est.iter().map(|b| b.coherence).sum::<f64>() / est.len() as f64;
        assert!(mean_coh < 0.2, "mean coherence {mean_coh}");
    }

    #[test]
    fn additive_noise_lowers_coherence_not_h1() {
        // H1 is unbiased under output noise; coherence reports the SNR.
        let x = noise(1 << 15, 21);
        let n = noise(1 << 15, 22);
        let y: Vec<f64> = x.iter().zip(&n).map(|(a, b)| 0.5 * a + 0.5 * b).collect();
        let est = tf_estimate(&x, &y, 1.0, 512);
        let mid = &est[est.len() / 3];
        assert!((mid.h.abs() - 0.5).abs() < 0.08, "{}", mid.h.abs());
        assert!(
            mid.coherence < 0.9 && mid.coherence > 0.2,
            "{}",
            mid.coherence
        );
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_checked() {
        let _ = tf_estimate(&[0.0; 100], &[0.0; 99], 1.0, 32);
    }
}
