//! Single-bin DFT (Goertzel) and tone extraction.
//!
//! Measuring the PLL's closed-loop transfer function in the time domain
//! means injecting one sinusoidal tone at a time and reading its complex
//! amplitude out of the simulated response. A full FFT is wasteful for
//! one frequency; the Goertzel recurrence computes a single spectral
//! sample in O(N) with two state variables.
//!
//! ```
//! use htmpll_spectral::goertzel::tone_amplitude;
//!
//! // x(t) = 0.5·cos(ωt + 30°) sampled over an integer number of cycles.
//! let omega = 2.0 * std::f64::consts::PI * 5.0;
//! let dt = 1e-3;
//! let n = 1000; // exactly 5 cycles
//! let x: Vec<f64> = (0..n)
//!     .map(|k| 0.5 * (omega * k as f64 * dt + 0.5236).cos())
//!     .collect();
//! let a = tone_amplitude(&x, omega, dt);
//! assert!((a.abs() - 0.5).abs() < 1e-9);
//! assert!((a.arg() - 0.5236).abs() < 1e-6);
//! ```

use htmpll_num::Complex;

/// Goertzel evaluation of the DFT-like sum `Σ_k x[k]·e^{−jθk}` for an
/// arbitrary (non-integer-bin) normalized angular step `θ` in
/// radians/sample.
pub fn goertzel(x: &[f64], theta: f64) -> Complex {
    // Recurrence: s[k] = x[k] + 2cosθ·s[k−1] − s[k−2];
    // result = s[N−1] − e^{−jθ}·s[N−2], corrected by e^{−jθ(N−1)}.
    let coeff = 2.0 * theta.cos();
    let (mut s1, mut s2) = (0.0f64, 0.0f64);
    for &v in x {
        let s0 = v + coeff * s1 - s2;
        s2 = s1;
        s1 = s0;
    }
    // y = s[N−1] − e^{−jθ}·s[N−2] = (s1 − s2·cosθ) + j·s2·sinθ.
    let y = Complex::new(s1 - s2 * theta.cos(), s2 * theta.sin());
    // The recurrence accumulates a phase reference at the *last* sample;
    // rotate back so phases are referred to sample 0.
    y * Complex::cis(-theta * (x.len() as f64 - 1.0))
}

/// Complex amplitude of the tone `A·cos(ωt + φ)` in uniformly sampled
/// data: returns `A·e^{jφ}`.
///
/// The estimate is exact when the record spans an integer number of tone
/// periods; otherwise spectral leakage limits accuracy (window the data
/// or adjust the record length).
///
/// # Panics
///
/// Panics when `x` is empty or `dt <= 0`.
pub fn tone_amplitude(x: &[f64], omega: f64, dt: f64) -> Complex {
    assert!(!x.is_empty(), "tone_amplitude needs samples");
    assert!(dt > 0.0, "sample interval must be positive");
    let theta = omega * dt;
    let n = x.len() as f64;
    // X(ω) ≈ (A/2)·N·e^{jφ} for a real tone; scale to A·e^{jφ}.
    goertzel(x, theta).scale(2.0 / n)
}

/// Complex ratio `out/in` of the same tone measured in two signals —
/// the single-tone transfer-function estimate `H(jω)`.
///
/// # Panics
///
/// Panics when the records differ in length, are empty, or `dt <= 0`.
pub fn tone_transfer(input: &[f64], output: &[f64], omega: f64, dt: f64) -> Complex {
    assert_eq!(input.len(), output.len(), "records must have equal length");
    let u = tone_amplitude(input, omega, dt);
    let y = tone_amplitude(output, omega, dt);
    y / u
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn matches_direct_correlation() {
        let n = 256;
        let theta = 2.0 * PI * 10.0 / n as f64;
        let x: Vec<f64> = (0..n).map(|k| (0.3 * k as f64).sin() + 0.1).collect();
        let g = goertzel(&x, theta);
        let direct: Complex = x
            .iter()
            .enumerate()
            .map(|(k, &v)| Complex::cis(-theta * k as f64).scale(v))
            .sum();
        assert!((g - direct).abs() < 1e-9, "{g} vs {direct}");
    }

    #[test]
    fn amplitude_and_phase_recovery() {
        let omega = 2.0 * PI * 3.0;
        let dt = 1.0 / 300.0;
        let n = 300; // 3 full cycles
        for (amp, phase) in [(1.0, 0.0), (0.25, 1.0), (2.0, -2.5)] {
            let x: Vec<f64> = (0..n)
                .map(|k| amp * (omega * k as f64 * dt + phase).cos())
                .collect();
            let a = tone_amplitude(&x, omega, dt);
            assert!((a.abs() - amp).abs() < 1e-9, "amp {amp}");
            let dphi = (a.arg() - phase + PI).rem_euclid(2.0 * PI) - PI;
            assert!(dphi.abs() < 1e-7, "phase {phase}: got {}", a.arg());
        }
    }

    #[test]
    fn rejects_other_tones_on_integer_record() {
        // Record holds integer cycles of both tones ⇒ orthogonality.
        let dt = 1e-3;
        let n = 1000;
        let w_probe = 2.0 * PI * 7.0;
        let w_other = 2.0 * PI * 13.0;
        let x: Vec<f64> = (0..n).map(|k| (w_other * k as f64 * dt).cos()).collect();
        let a = tone_amplitude(&x, w_probe, dt);
        assert!(a.abs() < 1e-9, "leakage {}", a.abs());
    }

    #[test]
    fn transfer_of_known_gain_and_delay() {
        let omega = 2.0 * PI * 5.0;
        let dt = 1e-3;
        let n = 1000;
        let gain = 0.4;
        let lag = 0.7; // radians
        let u: Vec<f64> = (0..n).map(|k| (omega * k as f64 * dt).cos()).collect();
        let y: Vec<f64> = (0..n)
            .map(|k| gain * (omega * k as f64 * dt - lag).cos())
            .collect();
        let h = tone_transfer(&u, &y, omega, dt);
        assert!((h.abs() - gain).abs() < 1e-9);
        assert!((h.arg() + lag).abs() < 1e-7);
    }

    #[test]
    fn dc_measurement() {
        let x = vec![0.7; 100];
        let a = tone_amplitude(&x, 0.0, 1.0);
        // DC convention: cos(0) tone of amplitude 0.7 reads 2× because
        // the A/2 spectral split does not happen at ω = 0 — callers probe
        // ω > 0 in practice; just pin the behavior.
        assert!((a.abs() - 1.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn transfer_length_checked() {
        let _ = tone_transfer(&[1.0, 2.0], &[1.0], 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "needs samples")]
    fn empty_rejected() {
        let _ = tone_amplitude(&[], 1.0, 1.0);
    }
}
