//! Window functions for spectral estimation.
//!
//! Periodogram and Welch PSD estimates taper each record with a window to
//! trade main-lobe width against side-lobe leakage. Gains are exposed so
//! PSDs can be normalized to physical units.
//!
//! ```
//! use htmpll_spectral::window::Window;
//!
//! let w = Window::Hann.samples(8);
//! assert_eq!(w.len(), 8);
//! assert!(w[0] < 1e-12); // Hann starts at zero
//! ```

/// Supported window shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Window {
    /// No taper (all ones).
    Rectangular,
    /// Hann (raised cosine), the default general-purpose window.
    #[default]
    Hann,
    /// Hamming (non-zero endpoints, slightly better first side lobe).
    Hamming,
    /// 4-term Blackman–Harris (−92 dB side lobes) for high-dynamic-range
    /// spur measurements.
    BlackmanHarris,
}

impl Window {
    /// Generates `n` window samples (periodic convention, suited to
    /// spectral averaging).
    pub fn samples(self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        let nn = n as f64;
        (0..n)
            .map(|k| {
                let x = 2.0 * std::f64::consts::PI * k as f64 / nn;
                match self {
                    Window::Rectangular => 1.0,
                    Window::Hann => 0.5 - 0.5 * x.cos(),
                    Window::Hamming => 0.54 - 0.46 * x.cos(),
                    Window::BlackmanHarris => {
                        0.35875 - 0.48829 * x.cos() + 0.14128 * (2.0 * x).cos()
                            - 0.01168 * (3.0 * x).cos()
                    }
                }
            })
            .collect()
    }

    /// Coherent gain: the mean window value (amplitude correction for
    /// tone measurements).
    pub fn coherent_gain(self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        self.samples(n).iter().sum::<f64>() / n as f64
    }

    /// Power (noise) gain: the mean squared window value (PSD
    /// normalization).
    pub fn power_gain(self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        self.samples(n).iter().map(|w| w * w).sum::<f64>() / n as f64
    }

    /// Equivalent noise bandwidth in bins: `power_gain / coherent_gain²`.
    pub fn enbw_bins(self, n: usize) -> f64 {
        let cg = self.coherent_gain(n);
        self.power_gain(n) / (cg * cg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_ones() {
        let w = Window::Rectangular.samples(5);
        assert!(w.iter().all(|&v| v == 1.0));
        assert_eq!(Window::Rectangular.coherent_gain(5), 1.0);
        assert_eq!(Window::Rectangular.power_gain(5), 1.0);
        assert!((Window::Rectangular.enbw_bins(128) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hann_properties() {
        let n = 1024;
        // Asymptotic gains: CG = 0.5, PG = 0.375, ENBW = 1.5 bins.
        assert!((Window::Hann.coherent_gain(n) - 0.5).abs() < 1e-3);
        assert!((Window::Hann.power_gain(n) - 0.375).abs() < 1e-3);
        assert!((Window::Hann.enbw_bins(n) - 1.5).abs() < 5e-3);
        // Symmetry of the periodic window: w[k] == w[n−k].
        let w = Window::Hann.samples(n);
        for k in 1..n / 2 {
            assert!((w[k] - w[n - k]).abs() < 1e-12);
        }
    }

    #[test]
    fn hamming_endpoints() {
        let w = Window::Hamming.samples(64);
        assert!((w[0] - 0.08).abs() < 1e-12);
        let peak = w.iter().cloned().fold(0.0, f64::max);
        assert!((peak - 1.0).abs() < 0.01);
    }

    #[test]
    fn blackman_harris_dynamic_range() {
        // Its coherent gain ≈ 0.35875 for large n.
        assert!((Window::BlackmanHarris.coherent_gain(4096) - 0.35875).abs() < 1e-3);
        // ENBW ≈ 2.0 bins.
        assert!((Window::BlackmanHarris.enbw_bins(4096) - 2.0).abs() < 0.05);
    }

    #[test]
    fn empty_window() {
        assert!(Window::Hann.samples(0).is_empty());
        assert_eq!(Window::Hann.coherent_gain(0), 0.0);
        assert_eq!(Window::Hann.power_gain(0), 0.0);
    }

    #[test]
    fn default_is_hann() {
        assert_eq!(Window::default(), Window::Hann);
    }
}
