//! Arbitrary-length FFT via Bluestein's chirp-z algorithm.
//!
//! Simulator records rarely have power-of-two lengths (they are cut at
//! reference-period boundaries), so [`fft_any`] re-expresses an N-point
//! DFT as a circular convolution of chirped sequences, evaluated with the
//! radix-2 kernel at a padded power-of-two length `≥ 2N − 1`.
//!
//! ```
//! use htmpll_spectral::bluestein::fft_any;
//! use htmpll_spectral::fft::dft_naive;
//! use htmpll_num::Complex;
//!
//! let x: Vec<Complex> = (0..12).map(|i| Complex::from_re(i as f64)).collect();
//! let fast = fft_any(&x);
//! let slow = dft_naive(&x);
//! for (a, b) in fast.iter().zip(&slow) {
//!     assert!((*a - *b).abs() < 1e-9);
//! }
//! ```

use crate::fft::{fft, ifft, is_power_of_two};
use htmpll_num::Complex;

/// Forward DFT of arbitrary length (dispatches to radix-2 when the
/// length is a power of two; Bluestein otherwise). Empty input returns
/// an empty spectrum.
pub fn fft_any(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    if is_power_of_two(n) {
        let mut buf = x.to_vec();
        fft(&mut buf).expect("power-of-two checked");
        return buf;
    }
    bluestein(x)
}

/// Inverse DFT of arbitrary length (with `1/N` normalization).
pub fn ifft_any(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    // IDFT via conjugation: idft(x) = conj(dft(conj(x)))/N.
    let conj: Vec<Complex> = x.iter().map(|v| v.conj()).collect();
    let y = fft_any(&conj);
    y.into_iter()
        .map(|v| v.conj().scale(1.0 / n as f64))
        .collect()
}

fn bluestein(x: &[Complex]) -> Vec<Complex> {
    htmpll_obs::counter!("spectral", "fft.bluestein").inc();
    let n = x.len();
    // Chirp w[k] = e^{−jπk²/N}. Reduce k² mod 2N before the trig call so
    // large k does not lose precision.
    let chirp: Vec<Complex> = (0..n)
        .map(|k| {
            let k2 = (k as u128 * k as u128) % (2 * n as u128);
            Complex::cis(-std::f64::consts::PI * k2 as f64 / n as f64)
        })
        .collect();

    let m = (2 * n - 1).next_power_of_two();
    let mut a = vec![Complex::ZERO; m];
    for k in 0..n {
        a[k] = x[k] * chirp[k];
    }
    let mut b = vec![Complex::ZERO; m];
    b[0] = chirp[0].conj();
    for k in 1..n {
        let c = chirp[k].conj();
        b[k] = c;
        b[m - k] = c;
    }
    fft(&mut a).expect("padded power of two");
    fft(&mut b).expect("padded power of two");
    for (av, bv) in a.iter_mut().zip(&b) {
        *av *= *bv;
    }
    ifft(&mut a).expect("padded power of two");
    (0..n).map(|k| a[k] * chirp[k]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::dft_naive;

    fn max_err(a: &[Complex], b: &[Complex]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn matches_naive_for_awkward_lengths() {
        for n in [3usize, 5, 7, 12, 100, 127, 1000] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
                .collect();
            let fast = fft_any(&x);
            let slow = dft_naive(&x);
            assert!(
                max_err(&fast, &slow) < 1e-8 * n as f64,
                "n={n}: err {}",
                max_err(&fast, &slow)
            );
        }
    }

    #[test]
    fn dispatches_radix2() {
        let x: Vec<Complex> = (0..16).map(|i| Complex::from_re(i as f64)).collect();
        let fast = fft_any(&x);
        let slow = dft_naive(&x);
        assert!(max_err(&fast, &slow) < 1e-10);
    }

    #[test]
    fn roundtrip_odd_length() {
        let x: Vec<Complex> = (0..31)
            .map(|i| Complex::new((i as f64).cos(), (i as f64 * 2.0).sin()))
            .collect();
        let y = ifft_any(&fft_any(&x));
        assert!(max_err(&x, &y) < 1e-10);
    }

    #[test]
    fn empty_and_single() {
        assert!(fft_any(&[]).is_empty());
        assert!(ifft_any(&[]).is_empty());
        let one = fft_any(&[Complex::new(2.0, 1.0)]);
        assert_eq!(one.len(), 1);
        assert!((one[0] - Complex::new(2.0, 1.0)).abs() < 1e-15);
    }

    #[test]
    fn tone_in_prime_length() {
        // A bin-3 tone in a length-13 DFT lands exactly in bin 3.
        let n = 13;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::cis(2.0 * std::f64::consts::PI * 3.0 * i as f64 / n as f64))
            .collect();
        let y = fft_any(&x);
        assert!((y[3].abs() - n as f64).abs() < 1e-8);
        for (k, v) in y.iter().enumerate() {
            if k != 3 {
                assert!(v.abs() < 1e-8, "bin {k}: {}", v.abs());
            }
        }
    }

    #[test]
    fn large_index_chirp_precision() {
        // Large n exercises the k² mod 2n reduction.
        let n = 4099; // prime
        let x: Vec<Complex> = (0..n).map(|i| Complex::from_re((i % 17) as f64)).collect();
        let y = fft_any(&x);
        // Spot-check DC bin against direct sum.
        let dc: Complex = x.iter().copied().sum();
        assert!((y[0] - dc).abs() < 1e-6 * dc.abs());
    }
}
