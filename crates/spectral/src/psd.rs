//! Power spectral density estimation.
//!
//! Periodogram and Welch estimators with window normalization. Used to
//! inspect simulated VCO phase records (jitter spectra, reference spurs)
//! and to cross-check the HTM noise-propagation predictions.
//!
//! Convention: **one-sided** PSD in units of `signal²/Hz`. The discrete
//! Parseval identity holds exactly for every record length and window:
//! the rectangle-rule integral `Σ_k S_k·Δf` equals the windowed mean
//! square `Σ(x_n·w_n)²/(N·PG)` (with `PG` the window power gain), which
//! is the record variance itself for the rectangular window and misses
//! it only by windowing loss otherwise. The one-sided folding doubles
//! every bin except DC and — for even `N` only — the Nyquist bin
//! `k = N/2`, which is its own conjugate image; for odd `N` the grid
//! `0..=⌊N/2⌋` stops below `fs/2` and every nonzero bin `k` has a
//! distinct image `N−k`, so all of them double. Both parities are
//! pinned by the `parseval_*` tests.
//!
//! ```
//! use htmpll_spectral::psd::{periodogram, SpectralError};
//! use htmpll_spectral::window::Window;
//!
//! # fn main() -> Result<(), SpectralError> {
//! let fs = 1000.0;
//! let x: Vec<f64> = (0..1024).map(|k| (2.0 * std::f64::consts::PI * 100.0
//!     * k as f64 / fs).sin()).collect();
//! let psd = periodogram(&x, fs, Window::Hann)?;
//! let peak = psd.iter().cloned().fold((0.0f64, 0.0f64), |acc, p| {
//!     if p.1 > acc.1 { p } else { acc }
//! });
//! assert!((peak.0 - 100.0).abs() < 2.0); // tone shows up at 100 Hz
//! # Ok(())
//! # }
//! ```

use crate::bluestein::fft_any;
use crate::window::Window;
use htmpll_num::Complex;
use std::fmt;

/// Errors surfaced by the PSD estimators on malformed input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpectralError {
    /// The input record contains no samples.
    EmptyRecord,
    /// The sample rate is not a positive finite number.
    BadSampleRate(f64),
    /// The Welch segment length is zero or exceeds the record length.
    BadSegment {
        /// Requested segment length.
        segment_len: usize,
        /// Available record length.
        record_len: usize,
    },
}

impl fmt::Display for SpectralError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpectralError::EmptyRecord => write!(f, "spectral estimate needs a non-empty record"),
            SpectralError::BadSampleRate(fs) => {
                write!(f, "sample rate must be positive and finite, got {fs}")
            }
            SpectralError::BadSegment {
                segment_len,
                record_len,
            } => write!(
                f,
                "segment length {segment_len} invalid for record of {record_len} samples"
            ),
        }
    }
}

impl std::error::Error for SpectralError {}

/// One-sided periodogram: returns `(frequency_hz, psd)` pairs for bins
/// `0..=⌊N/2⌋`.
///
/// # Errors
///
/// [`SpectralError::EmptyRecord`] when `x` is empty and
/// [`SpectralError::BadSampleRate`] when `fs` is not positive finite.
pub fn periodogram(x: &[f64], fs: f64, window: Window) -> Result<Vec<(f64, f64)>, SpectralError> {
    if x.is_empty() {
        return Err(SpectralError::EmptyRecord);
    }
    if !fs.is_finite() || fs <= 0.0 {
        return Err(SpectralError::BadSampleRate(fs));
    }
    let n = x.len();
    let w = window.samples(n);
    let tapered: Vec<Complex> = x
        .iter()
        .zip(&w)
        .map(|(&v, &wk)| Complex::from_re(v * wk))
        .collect();
    let spec = fft_any(&tapered);
    let norm = fs * n as f64 * window.power_gain(n);
    let half = n / 2;
    Ok((0..=half)
        .map(|k| {
            let mut p = spec[k].norm_sqr() / norm;
            // One-sided: double everything except DC and the even-N
            // Nyquist bin (its own conjugate image). For odd N every
            // k ≥ 1 has a distinct image N−k above the grid, so all
            // of them double — see the module-level Parseval note.
            if k != 0 && !(n.is_multiple_of(2) && k == half) {
                p *= 2.0;
            }
            (k as f64 * fs / n as f64, p)
        })
        .collect())
}

/// Welch PSD: averages windowed periodograms over `segment_len`-sample
/// segments with 50 % overlap. Longer records trade variance for
/// resolution.
///
/// # Errors
///
/// [`SpectralError::BadSegment`] when `segment_len` is zero or exceeds
/// the record, plus the [`periodogram`] errors on a bad sample rate.
pub fn welch(
    x: &[f64],
    fs: f64,
    segment_len: usize,
    window: Window,
) -> Result<Vec<(f64, f64)>, SpectralError> {
    if segment_len == 0 || segment_len > x.len() {
        return Err(SpectralError::BadSegment {
            segment_len,
            record_len: x.len(),
        });
    }
    let hop = (segment_len / 2).max(1);
    let mut acc: Vec<f64> = vec![0.0; segment_len / 2 + 1];
    let mut freqs: Vec<f64> = Vec::new();
    let mut count = 0usize;
    let mut start = 0usize;
    while start + segment_len <= x.len() {
        let seg = periodogram(&x[start..start + segment_len], fs, window)?;
        if freqs.is_empty() {
            freqs = seg.iter().map(|&(f, _)| f).collect();
        }
        for (a, (_, p)) in acc.iter_mut().zip(&seg) {
            *a += p;
        }
        count += 1;
        start += hop;
    }
    Ok(freqs
        .into_iter()
        .zip(acc)
        .map(|(f, p)| (f, p / count as f64))
        .collect())
}

/// Integrates a one-sided PSD over `[f_lo, f_hi]` by trapezoid rule,
/// returning the band power (variance contribution). Note the trapezoid
/// rule slightly smears single-bin tones compared with the exact
/// rectangle-sum Parseval identity (`Σ S_k·Δf`); use the latter for
/// full-band totals.
pub fn band_power(psd: &[(f64, f64)], f_lo: f64, f_hi: f64) -> f64 {
    let mut acc = 0.0;
    for pair in psd.windows(2) {
        let (f0, p0) = pair[0];
        let (f1, p1) = pair[1];
        let a = f0.max(f_lo);
        let b = f1.min(f_hi);
        if b <= a {
            continue;
        }
        // Linear interpolation of the PSD across the clipped cell.
        let frac = |f: f64| if f1 > f0 { (f - f0) / (f1 - f0) } else { 0.0 };
        let pa = p0 + (p1 - p0) * frac(a);
        let pb = p0 + (p1 - p0) * frac(b);
        acc += 0.5 * (pa + pb) * (b - a);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn white_noise(n: usize, seed: u64) -> Vec<f64> {
        // Deterministic uniform noise in [−0.5, 0.5): variance 1/12.
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 32) as u32 as f64) / (u32::MAX as f64) - 0.5
            })
            .collect()
    }

    #[test]
    fn sine_power_recovered() {
        // A/√2 rms → band power A²/2 regardless of window.
        let fs = 1024.0;
        let n = 4096;
        let f0 = 128.0;
        let x: Vec<f64> = (0..n)
            .map(|k| 0.8 * (2.0 * PI * f0 * k as f64 / fs).sin())
            .collect();
        for w in [Window::Rectangular, Window::Hann, Window::BlackmanHarris] {
            let psd = periodogram(&x, fs, w).unwrap();
            let p = band_power(&psd, f0 - 10.0, f0 + 10.0);
            assert!((p - 0.32).abs() < 0.01, "{w:?}: {p}");
        }
    }

    #[test]
    fn white_noise_flat_and_total_variance() {
        let fs = 1.0;
        let x = white_noise(1 << 15, 7);
        let var: f64 = x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64;
        let psd = welch(&x, fs, 1024, Window::Hann).unwrap();
        let total = band_power(&psd, 0.0, 0.5);
        assert!(
            (total - var).abs() < 0.1 * var,
            "total {total} vs variance {var}"
        );
        // Flatness: median-ish check between two half-bands.
        let lo = band_power(&psd, 0.01, 0.25);
        let hi = band_power(&psd, 0.25, 0.49);
        assert!((lo / hi - 1.0).abs() < 0.2, "lo {lo} hi {hi}");
    }

    #[test]
    fn parseval_exact_for_both_parities_and_all_windows() {
        // The rectangle-rule integral of the one-sided PSD must equal
        // the windowed mean square Σ(x·w)²/(N·PG) to FFT rounding, for
        // even and odd N alike — this pins the Nyquist-bin doubling
        // rule for both parities and the window normalization.
        for &n in &[256usize, 255, 1024, 1023] {
            let x = white_noise(n, 11);
            let fs = 3.0;
            for w in [Window::Rectangular, Window::Hann, Window::BlackmanHarris] {
                let psd = periodogram(&x, fs, w).unwrap();
                assert_eq!(psd.len(), n / 2 + 1);
                let df = fs / n as f64;
                let total: f64 = psd.iter().map(|&(_, p)| p).sum::<f64>() * df;
                let wk = w.samples(n);
                let windowed_ms = x
                    .iter()
                    .zip(&wk)
                    .map(|(&v, &c)| (v * c) * (v * c))
                    .sum::<f64>()
                    / (n as f64 * w.power_gain(n));
                assert!(
                    (total - windowed_ms).abs() <= 1e-9 * windowed_ms,
                    "N={n} {w:?}: ΣS·Δf {total} vs windowed ms {windowed_ms}"
                );
                // With no window the identity is Parseval for the raw
                // record: the integral recovers the full variance.
                if matches!(w, Window::Rectangular) {
                    let ms = x.iter().map(|v| v * v).sum::<f64>() / n as f64;
                    assert!(
                        (total - ms).abs() <= 1e-9 * ms,
                        "N={n}: ΣS·Δf {total} vs variance {ms}"
                    );
                }
            }
        }
    }

    #[test]
    fn welch_reduces_variance_vs_periodogram() {
        let fs = 1.0;
        let x = white_noise(1 << 14, 3);
        let single = periodogram(&x, fs, Window::Hann).unwrap();
        let avg = welch(&x, fs, 512, Window::Hann).unwrap();
        let spread = |p: &[(f64, f64)]| {
            let vals: Vec<f64> = p.iter().skip(2).map(|&(_, v)| v).collect();
            let m = vals.iter().sum::<f64>() / vals.len() as f64;
            vals.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / vals.len() as f64
        };
        assert!(spread(&avg) < 0.2 * spread(&single));
    }

    #[test]
    fn band_power_clipping() {
        let psd = vec![(0.0, 1.0), (1.0, 1.0), (2.0, 1.0)];
        assert!((band_power(&psd, 0.0, 2.0) - 2.0).abs() < 1e-12);
        assert!((band_power(&psd, 0.5, 1.5) - 1.0).abs() < 1e-12);
        assert_eq!(band_power(&psd, 3.0, 4.0), 0.0);
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            periodogram(&[], 1.0, Window::Hann),
            Err(SpectralError::EmptyRecord)
        );
    }

    #[test]
    fn bad_sample_rate_rejected() {
        for fs in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                periodogram(&[1.0, 2.0], fs, Window::Rectangular),
                Err(SpectralError::BadSampleRate(_))
            ));
        }
    }

    #[test]
    fn welch_segment_checked() {
        assert_eq!(
            welch(&[0.0; 10], 1.0, 20, Window::Hann),
            Err(SpectralError::BadSegment {
                segment_len: 20,
                record_len: 10
            })
        );
        assert_eq!(
            welch(&[0.0; 10], 1.0, 0, Window::Hann),
            Err(SpectralError::BadSegment {
                segment_len: 0,
                record_len: 10
            })
        );
    }

    #[test]
    fn errors_render_a_reason() {
        assert!(SpectralError::EmptyRecord.to_string().contains("non-empty"));
        assert!(SpectralError::BadSampleRate(-2.0)
            .to_string()
            .contains("-2"));
        let e = SpectralError::BadSegment {
            segment_len: 9,
            record_len: 4,
        };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
    }
}
