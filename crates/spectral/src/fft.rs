//! Radix-2 fast Fourier transform.
//!
//! Iterative, in-place Cooley–Tukey FFT for power-of-two lengths. The
//! simulator's spectral post-processing and the Bluestein arbitrary-length
//! transform are built on this kernel.
//!
//! Convention: forward transform `X[k] = Σ_n x[n]·e^{−j2πkn/N}` (no
//! normalization); the inverse divides by `N`.
//!
//! Butterfly passes run on split re/im planes through the
//! runtime-dispatched SIMD kernels in `htmpll_num::simd` for large
//! transforms; the twiddle factors come from a per-stage table built
//! with the same sequential recurrence the scalar loop uses, so the
//! output is bitwise identical whichever backend runs.
//!
//! ```
//! use htmpll_spectral::fft::{fft, ifft, FftError};
//! use htmpll_num::Complex;
//!
//! # fn main() -> Result<(), FftError> {
//! let mut x = vec![Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::ZERO];
//! fft(&mut x)?;                       // impulse → flat spectrum
//! assert!(x.iter().all(|v| (*v - Complex::ONE).abs() < 1e-12));
//! ifft(&mut x)?;                      // and back
//! assert!((x[0] - Complex::ONE).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

use htmpll_num::simd::{self, SoaVec};
use htmpll_num::Complex;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

/// Error returned by the radix-2 kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FftError {
    /// The input length is not a power of two (use
    /// [`crate::bluestein::fft_any`] instead).
    NotPowerOfTwo {
        /// Rejected length.
        len: usize,
    },
}

impl fmt::Display for FftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FftError::NotPowerOfTwo { len } => {
                write!(f, "length {len} is not a power of two")
            }
        }
    }
}

impl std::error::Error for FftError {}

/// True when `n` is a (nonzero) power of two.
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// In-place forward FFT (radix-2, decimation in time).
///
/// # Errors
///
/// [`FftError::NotPowerOfTwo`] unless `x.len()` is a power of two.
pub fn fft(x: &mut [Complex]) -> Result<(), FftError> {
    transform(x, false)
}

/// In-place inverse FFT including the `1/N` normalization.
///
/// # Errors
///
/// [`FftError::NotPowerOfTwo`] unless `x.len()` is a power of two.
pub fn ifft(x: &mut [Complex]) -> Result<(), FftError> {
    transform(x, true)?;
    let n = x.len() as f64;
    for v in x.iter_mut() {
        *v = v.scale(1.0 / n);
    }
    Ok(())
}

/// Below this length the transform stays in the interleaved scalar
/// loop: the SoA conversion and twiddle table don't pay for themselves.
const SOA_MIN_LEN: usize = 64;

/// Most distinct `(length, direction)` plans the process keeps. A plan
/// for length `n` holds `n − 1` twiddle pairs (≈ 16·n bytes), so the
/// cap bounds cache memory at roughly 32 transforms' worth of tables;
/// beyond it new sizes build a throwaway plan instead of evicting —
/// steady-state workloads reuse a handful of sizes, and a deterministic
/// "never evict" policy keeps warm sizes warm under size churn.
const PLAN_CACHE_CAP: usize = 32;

/// Per-stage twiddle table of one whole radix-2 transform.
struct PlanStage {
    tw_re: Vec<f64>,
    tw_im: Vec<f64>,
}

/// Whole-transform twiddle plan: one table per butterfly stage, built
/// by the identical sequential `w *= wlen` recurrence the scalar loop
/// replays — so a cached plan is bit-for-bit the table an uncached
/// call would rebuild, and caching is observationally invisible.
struct FftPlan {
    stages: Vec<PlanStage>,
}

impl FftPlan {
    fn build(n: usize, inverse: bool) -> FftPlan {
        let sign = if inverse { 1.0 } else { -1.0 };
        let mut stages = Vec::with_capacity(n.trailing_zeros() as usize);
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
            let wlen = Complex::cis(ang);
            let mut tw_re = Vec::with_capacity(half);
            let mut tw_im = Vec::with_capacity(half);
            let mut w = Complex::ONE;
            for _ in 0..half {
                tw_re.push(w.re);
                tw_im.push(w.im);
                w *= wlen;
            }
            stages.push(PlanStage { tw_re, tw_im });
            len <<= 1;
        }
        FftPlan { stages }
    }
}

/// The process-wide plan cache. Lookups are a hash probe under a mutex;
/// a miss builds outside the lock (two racing builders produce
/// identical tables, first insert wins) so concurrent transforms never
/// serialize on table construction.
type PlanCache = Mutex<HashMap<(usize, bool), Arc<FftPlan>>>;

fn plan_for(n: usize, inverse: bool) -> Arc<FftPlan> {
    static CACHE: OnceLock<PlanCache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(plan) = cache
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .get(&(n, inverse))
    {
        htmpll_obs::counter!("spectral", "fft.plan_hits").inc();
        return Arc::clone(plan);
    }
    htmpll_obs::counter!("spectral", "fft.plan_builds").inc();
    let plan = Arc::new(FftPlan::build(n, inverse));
    let mut map = cache.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(existing) = map.get(&(n, inverse)) {
        return Arc::clone(existing);
    }
    if map.len() < PLAN_CACHE_CAP {
        map.insert((n, inverse), Arc::clone(&plan));
    }
    plan
}

fn transform(x: &mut [Complex], inverse: bool) -> Result<(), FftError> {
    let n = x.len();
    if !is_power_of_two(n) {
        return Err(FftError::NotPowerOfTwo { len: n });
    }
    if n <= 1 {
        return Ok(());
    }
    htmpll_obs::counter!("spectral", "fft.radix2").inc();
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            x.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    if n < SOA_MIN_LEN {
        // Butterflies, interleaved with the sequential twiddle
        // recurrence — the historical scalar path.
        let mut len = 2;
        while len <= n {
            let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
            let wlen = Complex::cis(ang);
            for start in (0..n).step_by(len) {
                let mut w = Complex::ONE;
                for k in 0..len / 2 {
                    let u = x[start + k];
                    let v = x[start + k + len / 2] * w;
                    x[start + k] = u + v;
                    x[start + k + len / 2] = u - v;
                    w *= wlen;
                }
            }
            len <<= 1;
        }
        return Ok(());
    }
    // SoA path: split planes, one twiddle table per stage from the
    // whole-transform plan cache (each table built with the exact
    // `w *= wlen` recurrence every block used to replay, so the factors
    // are bit-identical whether the plan is fresh or cached), SIMD
    // butterfly passes. The per-lane operation order matches the scalar
    // loop exactly, making the whole transform bitwise identical to the
    // path above.
    let plan = plan_for(n, inverse);
    let mut work = SoaVec::from_complex(x);
    let mut len = 2;
    let mut stage = 0usize;
    while len <= n {
        let half = len / 2;
        let PlanStage { tw_re, tw_im } = &plan.stages[stage];
        let (re, im) = work.planes_mut();
        if half < 8 {
            // Small stages mean thousands of tiny blocks; a per-block
            // kernel call would cost more than the butterflies. Run
            // them inline — identical per-element operation order, so
            // still bitwise-equal to the dispatched kernel.
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let (a, b) = (start + k, start + k + half);
                    let t_re = re[b] * tw_re[k] - im[b] * tw_im[k];
                    let t_im = re[b] * tw_im[k] + im[b] * tw_re[k];
                    let (ur, ui) = (re[a], im[a]);
                    re[a] = ur + t_re;
                    im[a] = ui + t_im;
                    re[b] = ur - t_re;
                    im[b] = ui - t_im;
                }
            }
        } else {
            for start in (0..n).step_by(len) {
                let (u_re, v_re) = re[start..start + len].split_at_mut(half);
                let (u_im, v_im) = im[start..start + len].split_at_mut(half);
                simd::butterfly(u_re, u_im, v_re, v_im, tw_re, tw_im);
            }
        }
        len <<= 1;
        stage += 1;
    }
    work.copy_to_complex(x);
    Ok(())
}

/// Allocating forward FFT of a real signal; returns the full complex
/// spectrum.
///
/// # Errors
///
/// [`FftError::NotPowerOfTwo`] unless `x.len()` is a power of two.
pub fn fft_real(x: &[f64]) -> Result<Vec<Complex>, FftError> {
    let mut buf: Vec<Complex> = x.iter().map(|&v| Complex::from_re(v)).collect();
    fft(&mut buf)?;
    Ok(buf)
}

/// Reference O(N²) DFT used to validate the fast paths in tests and as a
/// fallback for tiny lengths.
pub fn dft_naive(x: &[Complex]) -> Vec<Complex> {
    htmpll_obs::counter!("spectral", "fft.naive").inc();
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (i, &v) in x.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * i) as f64 / n as f64;
                acc += v * Complex::cis(ang);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_err(a: &[Complex], b: &[Complex]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 64] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.7).cos()))
                .collect();
            let mut fast = x.clone();
            fft(&mut fast).unwrap();
            let slow = dft_naive(&x);
            assert!(max_err(&fast, &slow) < 1e-10 * n as f64, "n={n}");
        }
    }

    #[test]
    fn roundtrip() {
        let x: Vec<Complex> = (0..128)
            .map(|i| Complex::new((i as f64 * 0.31).sin(), (i as f64 * 0.17).cos()))
            .collect();
        let mut y = x.clone();
        fft(&mut y).unwrap();
        ifft(&mut y).unwrap();
        assert!(max_err(&x, &y) < 1e-12);
    }

    #[test]
    fn parseval() {
        let x: Vec<Complex> = (0..256)
            .map(|i| Complex::new((i as f64 * 0.13).cos(), 0.0))
            .collect();
        let time_energy: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let mut y = x.clone();
        fft(&mut y).unwrap();
        let freq_energy: f64 = y.iter().map(|v| v.norm_sqr()).sum::<f64>() / 256.0;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy);
    }

    #[test]
    fn pure_tone_lands_in_one_bin() {
        let n = 64;
        let k0 = 5;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::cis(2.0 * std::f64::consts::PI * (k0 * i) as f64 / n as f64))
            .collect();
        let mut y = x;
        fft(&mut y).unwrap();
        for (k, v) in y.iter().enumerate() {
            if k == k0 {
                assert!((v.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(v.abs() < 1e-9, "leakage at bin {k}");
            }
        }
    }

    #[test]
    fn linearity() {
        let n = 32;
        let a: Vec<Complex> = (0..n).map(|i| Complex::from_re(i as f64)).collect();
        let b: Vec<Complex> = (0..n).map(|i| Complex::from_im((i as f64).sin())).collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x + y.scale(2.0)).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fs = sum.clone();
        fft(&mut fa).unwrap();
        fft(&mut fb).unwrap();
        fft(&mut fs).unwrap();
        let combined: Vec<Complex> = fa.iter().zip(&fb).map(|(x, y)| *x + y.scale(2.0)).collect();
        assert!(max_err(&fs, &combined) < 1e-10);
    }

    #[test]
    fn rejects_non_power_of_two() {
        let mut x = vec![Complex::ZERO; 6];
        assert_eq!(fft(&mut x).unwrap_err(), FftError::NotPowerOfTwo { len: 6 });
        assert!(ifft(&mut x).is_err());
    }

    #[test]
    fn real_input_hermitian_spectrum() {
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).sin() + 0.5).collect();
        let y = fft_real(&x).unwrap();
        for k in 1..32 {
            assert!((y[k] - y[64 - k].conj()).abs() < 1e-9, "bin {k}");
        }
    }

    /// The pre-SoA transform, verbatim: bit-reversal followed by
    /// butterflies with the per-block sequential twiddle recurrence.
    fn transform_reference(x: &mut [Complex], inverse: bool) {
        let n = x.len();
        if n <= 1 {
            return;
        }
        let bits = n.trailing_zeros();
        for i in 0..n {
            let j = i.reverse_bits() >> (usize::BITS - bits);
            if j > i {
                x.swap(i, j);
            }
        }
        let sign = if inverse { 1.0 } else { -1.0 };
        let mut len = 2;
        while len <= n {
            let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
            let wlen = Complex::cis(ang);
            for start in (0..n).step_by(len) {
                let mut w = Complex::ONE;
                for k in 0..len / 2 {
                    let u = x[start + k];
                    let v = x[start + k + len / 2] * w;
                    x[start + k] = u + v;
                    x[start + k + len / 2] = u - v;
                    w *= wlen;
                }
            }
            len <<= 1;
        }
    }

    #[test]
    fn soa_path_bitwise_matches_historical_loop() {
        use htmpll_num::rng::Rng;
        let mut rng = Rng::seed_from_u64(0xF0F7);
        for n in [64usize, 128, 512, 1024] {
            for inverse in [false, true] {
                let x: Vec<Complex> = (0..n)
                    .map(|_| Complex::new(rng.range(-1.0, 1.0), rng.range(-1.0, 1.0)))
                    .collect();
                let mut fast = x.clone();
                let mut slow = x;
                transform(&mut fast, inverse).unwrap();
                transform_reference(&mut slow, inverse);
                for (k, (a, b)) in fast.iter().zip(&slow).enumerate() {
                    assert!(
                        a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                        "n={n} inverse={inverse} bin {k}: {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn plan_cache_is_bitwise_transparent() {
        use htmpll_num::rng::Rng;
        // A cached plan's tables are bit-for-bit what a fresh build
        // produces...
        for n in [64usize, 256, 2048] {
            for inverse in [false, true] {
                let cached = plan_for(n, inverse);
                let fresh = FftPlan::build(n, inverse);
                assert_eq!(cached.stages.len(), fresh.stages.len());
                for (c, f) in cached.stages.iter().zip(&fresh.stages) {
                    let same = c
                        .tw_re
                        .iter()
                        .zip(&f.tw_re)
                        .all(|(a, b)| a.to_bits() == b.to_bits())
                        && c.tw_im
                            .iter()
                            .zip(&f.tw_im)
                            .all(|(a, b)| a.to_bits() == b.to_bits());
                    assert!(same, "n={n} inverse={inverse}");
                }
            }
        }
        // ...and a warm-cache transform is bitwise identical to the
        // uncached historical loop (first call warms, second reuses).
        let mut rng = Rng::seed_from_u64(0x504c_414e);
        for pass in 0..2 {
            let x: Vec<Complex> = (0..512)
                .map(|_| Complex::new(rng.range(-1.0, 1.0), rng.range(-1.0, 1.0)))
                .collect();
            let mut fast = x.clone();
            let mut slow = x;
            transform(&mut fast, false).unwrap();
            transform_reference(&mut slow, false);
            for (k, (a, b)) in fast.iter().zip(&slow).enumerate() {
                assert!(
                    a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                    "pass {pass} bin {k}"
                );
            }
        }
    }

    #[test]
    fn power_of_two_detector() {
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(1024));
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(12));
    }
}
