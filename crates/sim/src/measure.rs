//! Single-tone closed-loop transfer measurement.
//!
//! Reproduces the paper's §5 verification procedure: inject a small
//! sinusoidal reference phase modulation, simulate until the loop's
//! periodic steady state, record an integer number of modulation cycles,
//! and extract the complex ratio `θ/θ_ref` at the tone — one point of
//! the measured `H₀,₀(jω)` curve (the "marks" in Fig. 6).
//!
//! ```no_run
//! use htmpll_core::PllDesign;
//! use htmpll_sim::engine::{SimConfig, SimParams};
//! use htmpll_sim::measure::{measure_h00, MeasureOptions};
//!
//! let d = PllDesign::reference_design(0.1).unwrap();
//! let m = measure_h00(
//!     &SimParams::from_design(&d),
//!     &SimConfig::default(),
//!     0.8, // rad/s
//!     &MeasureOptions::default(),
//! );
//! assert!((m.h.abs() - 1.0).abs() < 0.3); // in-band: near unity
//! ```

use crate::engine::{PllSim, SimConfig, SimParams};
use htmpll_num::Complex;
use htmpll_spectral::goertzel::tone_transfer;

/// Options controlling the tone measurement.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy)]
pub struct MeasureOptions {
    /// Modulation amplitude as a fraction of the reference period
    /// (small-signal: keep ≪ 1).
    pub amplitude_frac: f64,
    /// Number of modulation cycles to discard while the loop settles.
    pub settle_cycles: usize,
    /// Number of modulation cycles to record and analyze.
    pub measure_cycles: usize,
}

impl Default for MeasureOptions {
    fn default() -> Self {
        MeasureOptions {
            // Small enough that the finite-pulse-width deviation from
            // the impulse model (paper Fig. 4) is below the Fig.-6
            // agreement target; error scales linearly with this value.
            amplitude_frac: 1e-3,
            settle_cycles: 12,
            measure_cycles: 16,
        }
    }
}

/// One measured transfer-function point.
#[derive(Debug, Clone, Copy)]
pub struct ToneMeasurement {
    /// The angular frequency actually probed (snapped so the record
    /// spans an integer number of modulation cycles *and* samples).
    pub omega: f64,
    /// Measured complex transfer `θ/θ_ref` at `omega`.
    pub h: Complex,
    /// Peak |θ| during the measurement window (small-signal sanity
    /// check).
    pub peak_theta: f64,
}

/// Measures the closed-loop baseband transfer `H₀,₀(jω)` of the loop
/// described by `params` at (approximately) `omega` rad/s.
///
/// The requested tone is snapped to the nearest frequency whose period
/// is an integer number of output samples, making the Goertzel
/// extraction leakage-free; the snapped value is returned in
/// [`ToneMeasurement::omega`].
///
/// # Panics
///
/// Panics when `omega <= 0` or the options request zero cycles.
pub fn measure_h00(
    params: &SimParams,
    config: &SimConfig,
    omega: f64,
    opts: &MeasureOptions,
) -> ToneMeasurement {
    assert!(omega > 0.0, "probe frequency must be positive");
    assert!(
        opts.measure_cycles > 0,
        "need at least one measurement cycle"
    );
    let dt = params.t_ref / config.samples_per_ref as f64;
    // Snap: one modulation period = integer number of samples.
    let samples_per_cycle = ((2.0 * std::f64::consts::PI / omega) / dt).round().max(2.0);
    let omega_snapped = 2.0 * std::f64::consts::PI / (samples_per_cycle * dt);
    let period = samples_per_cycle * dt;

    let amp = opts.amplitude_frac * params.t_ref;
    let modulation = move |t: f64| amp * (omega_snapped * t).sin();

    let mut sim = PllSim::new(params.clone(), *config);
    if opts.settle_cycles > 0 {
        let _ = sim.run(opts.settle_cycles as f64 * period, &modulation);
    }
    let trace = sim.run(opts.measure_cycles as f64 * period, &modulation);

    // Reference the tone phases to the same absolute time origin: the
    // recorded samples start at t0; rebuild the stimulus on exactly the
    // recorded grid.
    let stim: Vec<f64> = (0..trace.theta_ref.len())
        .map(|k| modulation(trace.t0 + k as f64 * trace.dt))
        .collect();
    let h = tone_transfer(&stim, &trace.theta_vco, omega_snapped, trace.dt);
    let peak_theta = trace.theta_vco.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
    ToneMeasurement {
        omega: omega_snapped,
        h,
        peak_theta,
    }
}

/// Sweeps `measure_h00` over a frequency list, returning one measurement
/// per requested point.
pub fn sweep_h00(
    params: &SimParams,
    config: &SimConfig,
    omegas: &[f64],
    opts: &MeasureOptions,
) -> Vec<ToneMeasurement> {
    omegas
        .iter()
        .map(|&w| measure_h00(params, config, w, opts))
        .collect()
}

/// Measures a **band-conversion** transfer of the closed loop: inject a
/// reference tone at `omega` and read the output phase content at the
/// *shifted* frequency `omega + band·ω₀` — the time-domain counterpart
/// of the HTM element `H_{band,0}(jω)`.
///
/// This goes beyond the paper's §5 verification (which only checked the
/// baseband element): the sampling PFD genuinely creates sidebands at
/// every reference harmonic of the modulation, with complex amplitudes
/// the HTM predicts.
///
/// The probe must keep `2ω/ω₀` away from integers: the image of the
/// real input tone (at `−ω + mω₀`) would otherwise land on the readout
/// frequency and the single-tone measurement becomes degenerate.
///
/// # Panics
///
/// Panics when `omega <= 0`, the readout frequency is non-positive, or
/// the options request zero cycles.
pub fn measure_band_transfer(
    params: &SimParams,
    config: &SimConfig,
    omega: f64,
    band: i64,
    opts: &MeasureOptions,
) -> ToneMeasurement {
    assert!(omega > 0.0, "probe frequency must be positive");
    assert!(
        opts.measure_cycles > 0,
        "need at least one measurement cycle"
    );
    let w0 = 2.0 * std::f64::consts::PI / params.t_ref;
    let dt = params.t_ref / config.samples_per_ref as f64;
    // Snap the *probe* so that both the probe and the readout land on
    // exact DFT-orthogonal frequencies of the record: pick the record
    // length as a whole number of reference periods and a probe with an
    // integer number of cycles in it.
    let cycles = opts.measure_cycles.max(1) as f64;
    // Whole reference periods so the readout at ω + band·ω₀ is also
    // orthogonal over the record.
    let spr = config.samples_per_ref as f64;
    let record = ((cycles * 2.0 * std::f64::consts::PI / omega / dt / spr)
        .round()
        .max(1.0))
        * spr;
    let omega_snapped = 2.0 * std::f64::consts::PI * cycles / (record * dt);
    let readout = omega_snapped + band as f64 * w0;
    assert!(
        readout.abs() > 1e-12 * w0,
        "readout frequency collapsed to DC"
    );

    let amp = opts.amplitude_frac * params.t_ref;
    let modulation = move |t: f64| amp * (omega_snapped * t).sin();

    let mut sim = PllSim::new(params.clone(), *config);
    let period = 2.0 * std::f64::consts::PI / omega_snapped;
    if opts.settle_cycles > 0 {
        let _ = sim.run(opts.settle_cycles as f64 * period, &modulation);
    }
    let trace = sim.run(record * dt, &modulation);

    // Complex amplitude of the *input* tone at ω and the *output* tone
    // at ω + band·ω₀, both referenced to the record's absolute origin.
    let stim: Vec<f64> = (0..trace.theta_vco.len())
        .map(|k| modulation(trace.t0 + k as f64 * trace.dt))
        .collect();
    // `tone_amplitude` references phases to the first sample (absolute
    // time t0); rotate both back to the t = 0 frame so the ratio is the
    // HTM element.
    let u = htmpll_spectral::tone_amplitude(&stim, omega_snapped, trace.dt)
        * Complex::cis(-omega_snapped * trace.t0);
    // Negative readout (band below DC): the content of a real signal at
    // −|f| is the conjugate of its content at +|f|.
    let y = if readout > 0.0 {
        htmpll_spectral::tone_amplitude(&trace.theta_vco, readout, trace.dt)
            * Complex::cis(-readout * trace.t0)
    } else {
        (htmpll_spectral::tone_amplitude(&trace.theta_vco, -readout, trace.dt)
            * Complex::cis(readout * trace.t0))
        .conj()
    };
    let peak_theta = trace.theta_vco.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
    ToneMeasurement {
        omega: omega_snapped,
        h: y / u,
        peak_theta,
    }
}

/// Measures `H₀,₀` at many frequencies in a **single** simulation run
/// using an orthogonal multitone (Schroeder-phased multisine) stimulus:
/// for a linear small-signal loop the tones superpose, so one settle +
/// one record replaces a full sweep — an order-of-magnitude speedup for
/// the Fig.-6 style curves.
///
/// The requested frequencies are snapped to distinct DFT bins of the
/// common record (whole reference periods, so band images stay
/// orthogonal too); duplicates after snapping are merged. Schroeder
/// phases `φ_k = −π·k(k−1)/K` keep the crest factor low so the summed
/// stimulus stays in the small-signal regime.
///
/// # Panics
///
/// Panics when `omegas` is empty or contains non-positive entries, or
/// the options request zero cycles.
pub fn measure_h00_multitone(
    params: &SimParams,
    config: &SimConfig,
    omegas: &[f64],
    opts: &MeasureOptions,
) -> Vec<ToneMeasurement> {
    assert!(!omegas.is_empty(), "need at least one probe frequency");
    assert!(
        omegas.iter().all(|&w| w > 0.0),
        "probe frequencies must be positive"
    );
    assert!(
        opts.measure_cycles > 0,
        "need at least one measurement cycle"
    );
    let dt = params.t_ref / config.samples_per_ref as f64;
    let w_min = omegas.iter().cloned().fold(f64::INFINITY, f64::min);
    // Record: enough whole reference periods that the lowest tone
    // completes `measure_cycles` cycles.
    let spr = config.samples_per_ref as f64;
    let record = ((opts.measure_cycles as f64 * 2.0 * std::f64::consts::PI / w_min / dt / spr)
        .ceil()
        .max(1.0))
        * spr;
    let bin = |w: f64| {
        ((w * record * dt) / (2.0 * std::f64::consts::PI))
            .round()
            .max(1.0)
    };
    let mut bins: Vec<f64> = omegas.iter().map(|&w| bin(w)).collect();
    bins.sort_by(f64::total_cmp);
    bins.dedup();
    let tones: Vec<f64> = bins
        .iter()
        .map(|&b| 2.0 * std::f64::consts::PI * b / (record * dt))
        .collect();

    // Schroeder phases for a low crest factor.
    let k_tones = tones.len();
    let phases: Vec<f64> = (0..k_tones)
        .map(|k| -std::f64::consts::PI * (k * k.saturating_sub(1)) as f64 / k_tones as f64)
        .collect();
    let amp = opts.amplitude_frac * params.t_ref / (k_tones as f64).sqrt();
    let tones_cl = tones.clone();
    let phases_cl = phases.clone();
    let modulation = move |t: f64| {
        tones_cl
            .iter()
            .zip(&phases_cl)
            .map(|(&w, &ph)| amp * (w * t + ph).sin())
            .sum::<f64>()
    };

    let mut sim = PllSim::new(params.clone(), *config);
    if opts.settle_cycles > 0 {
        let settle = opts.settle_cycles as f64 * 2.0 * std::f64::consts::PI / w_min;
        let _ = sim.run(settle, &modulation);
    }
    let trace = sim.run(record * dt, &modulation);
    let stim: Vec<f64> = (0..trace.theta_vco.len())
        .map(|k| modulation(trace.t0 + k as f64 * trace.dt))
        .collect();
    let peak_theta = trace.theta_vco.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
    tones
        .iter()
        .map(|&w| ToneMeasurement {
            omega: w,
            h: tone_transfer(&stim, &trace.theta_vco, w, trace.dt),
            peak_theta,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use htmpll_core::{PllDesign, PllModel};

    #[test]
    fn matches_htm_prediction_in_band() {
        // The paper's Fig.-6 agreement claim (within a few percent).
        let d = PllDesign::reference_design(0.1).unwrap();
        let model = PllModel::builder(d.clone()).build().unwrap();
        let params = SimParams::from_design(&d);
        let cfg = SimConfig::default();
        for w in [0.3, 1.0] {
            let m = measure_h00(&params, &cfg, w, &MeasureOptions::default());
            let predict = model.h00(m.omega);
            let err = (m.h - predict).abs() / predict.abs();
            assert!(
                err < 0.05,
                "w={w}: sim {} vs htm {predict} (err {err})",
                m.h
            );
        }
    }

    #[test]
    fn lti_model_fails_where_htm_succeeds() {
        // At a fast ratio the LTI prediction misses the simulated
        // response while the HTM one tracks it — the paper's headline.
        let d = PllDesign::reference_design(0.25).unwrap();
        let model = PllModel::builder(d.clone()).build().unwrap();
        let params = SimParams::from_design(&d);
        let cfg = SimConfig::default();
        let w = 1.4; // near the passband edge where peaking appears
        let m = measure_h00(&params, &cfg, w, &MeasureOptions::default());
        let htm = model.h00(m.omega);
        let lti = model.h00_lti(m.omega);
        let err_htm = (m.h - htm).abs() / m.h.abs();
        let err_lti = (m.h - lti).abs() / m.h.abs();
        assert!(err_htm < 0.1, "HTM should match: {err_htm}");
        assert!(
            err_lti > 3.0 * err_htm,
            "LTI should be much worse: {err_lti} vs {err_htm}"
        );
    }

    #[test]
    fn measurement_is_small_signal() {
        let d = PllDesign::reference_design(0.1).unwrap();
        let params = SimParams::from_design(&d);
        let m = measure_h00(
            &params,
            &SimConfig::default(),
            0.5,
            &MeasureOptions::default(),
        );
        assert!(m.peak_theta < 0.05 * params.t_ref);
    }

    #[test]
    fn band_transfer_matches_htm_prediction() {
        // The off-diagonal validation the paper did not run: sidebands
        // at ω ± ω₀ of the modulation, amplitude AND phase, vs H_{±1,0}.
        let d = PllDesign::reference_design(0.2).unwrap();
        let model = PllModel::builder(d.clone()).build().unwrap();
        let params = SimParams::from_design(&d);
        let cfg = SimConfig::default();
        let opts = MeasureOptions {
            amplitude_frac: 2e-4,
            settle_cycles: 16,
            measure_cycles: 24,
        };
        let w = 0.7; // 2ω/ω₀ = 0.28: far from the degenerate integers
        for band in [1i64, -1, 2] {
            let m = measure_band_transfer(&params, &cfg, w, band, &opts);
            let predict = model.h_band(band, m.omega);
            let err = (m.h - predict).abs() / predict.abs();
            assert!(
                err < 0.05,
                "band {band}: sim {} vs htm {predict} (err {err:.4})",
                m.h
            );
        }
    }

    #[test]
    fn band_zero_reduces_to_h00_measurement() {
        let d = PllDesign::reference_design(0.1).unwrap();
        let model = PllModel::builder(d.clone()).build().unwrap();
        let params = SimParams::from_design(&d);
        let m = measure_band_transfer(
            &params,
            &SimConfig::default(),
            0.6,
            0,
            &MeasureOptions::default(),
        );
        let predict = model.h00(m.omega);
        assert!(
            (m.h - predict).abs() < 0.03 * predict.abs(),
            "{} vs {predict}",
            m.h
        );
    }

    #[test]
    fn multitone_matches_single_tone_sweep() {
        let d = PllDesign::reference_design(0.1).unwrap();
        let model = PllModel::builder(d.clone()).build().unwrap();
        let params = SimParams::from_design(&d);
        let cfg = SimConfig::default();
        let opts = MeasureOptions {
            amplitude_frac: 5e-4,
            settle_cycles: 10,
            measure_cycles: 12,
        };
        let omegas = [0.3, 0.8, 1.7, 3.1];
        let multi = measure_h00_multitone(&params, &cfg, &omegas, &opts);
        assert_eq!(multi.len(), omegas.len());
        for m in &multi {
            let predict = model.h00(m.omega);
            let err = (m.h - predict).abs() / predict.abs();
            assert!(
                err < 0.05,
                "w={}: multi {} vs htm {predict} (err {err:.4})",
                m.omega,
                m.h
            );
        }
    }

    #[test]
    fn multitone_dedupes_colliding_bins() {
        let d = PllDesign::reference_design(0.1).unwrap();
        let params = SimParams::from_design(&d);
        let opts = MeasureOptions {
            settle_cycles: 1,
            measure_cycles: 2,
            ..MeasureOptions::default()
        };
        // Two requests that snap to the same bin collapse to one tone.
        let res = measure_h00_multitone(&params, &SimConfig::default(), &[1.0, 1.0000001], &opts);
        assert_eq!(res.len(), 1);
    }

    #[test]
    fn frequency_snapping() {
        let d = PllDesign::reference_design(0.1).unwrap();
        let params = SimParams::from_design(&d);
        let cfg = SimConfig::default();
        let dt = params.t_ref / cfg.samples_per_ref as f64;
        let m = measure_h00(
            &params,
            &cfg,
            0.73,
            &MeasureOptions {
                settle_cycles: 2,
                measure_cycles: 2,
                ..MeasureOptions::default()
            },
        );
        let samples_per_cycle = 2.0 * std::f64::consts::PI / (m.omega * dt);
        assert!((samples_per_cycle - samples_per_cycle.round()).abs() < 1e-9);
        assert!((m.omega - 0.73).abs() < 0.05);
    }
}
