//! Lock acquisition studies.
//!
//! The tri-state PFD's frequency-detection behavior (Gardner 1980) lets
//! a charge-pump PLL acquire lock from large frequency offsets. This
//! module runs the behavioral simulator from a detuned VCO and reports
//! when the loop settles — useful for validating the large-signal side
//! of the model that the small-signal HTM analysis deliberately ignores.
//!
//! ```no_run
//! use htmpll_core::PllDesign;
//! use htmpll_sim::engine::{SimConfig, SimParams};
//! use htmpll_sim::lock::{acquire_lock, LockOptions};
//!
//! let d = PllDesign::reference_design(0.1).unwrap();
//! let r = acquire_lock(&SimParams::from_design(&d), &SimConfig::default(),
//!                      0.01, &LockOptions::default());
//! assert!(r.locked);
//! ```

use crate::engine::{PllSim, SimConfig, SimParams};

/// Options controlling the acquisition run.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy)]
pub struct LockOptions {
    /// Phase-error threshold (fraction of `T`) below which the loop
    /// counts as locked.
    pub threshold_frac: f64,
    /// Number of consecutive reference periods the error must stay below
    /// threshold.
    pub hold_periods: usize,
    /// Give-up horizon in reference periods.
    pub max_periods: usize,
}

impl Default for LockOptions {
    fn default() -> Self {
        LockOptions {
            threshold_frac: 0.01,
            hold_periods: 50,
            max_periods: 20_000,
        }
    }
}

/// Result of an acquisition run.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy)]
pub struct LockResult {
    /// Whether lock was declared before the horizon.
    pub locked: bool,
    /// Time at which the hold window began (s), when locked.
    pub lock_time: f64,
    /// Final phase error (time units).
    pub final_error: f64,
}

/// Runs acquisition from a fractional VCO frequency detuning.
///
/// The loop starts phase-aligned but with the VCO center frequency
/// offset by `freq_offset_frac`; the charge pump must slew the filter to
/// the compensating control voltage.
pub fn acquire_lock(
    params: &SimParams,
    config: &SimConfig,
    freq_offset_frac: f64,
    opts: &LockOptions,
) -> LockResult {
    let _span = htmpll_obs::span("sim", "acquire_lock");
    let mut sim = PllSim::new(params.clone(), *config);
    sim.detune(freq_offset_frac);
    let t_ref = params.t_ref;
    let threshold = opts.threshold_frac * t_ref;

    let mut held = 0usize;
    let mut hold_start = 0.0;
    let mut last_err = f64::INFINITY;
    // Acquisition may slip whole reference cycles before locking; the
    // settled phase offset is then an integer number of periods, which
    // the PFD cannot see. Measure the error modulo T.
    let wrap = |x: f64| x - t_ref * (x / t_ref).round();
    for _ in 0..opts.max_periods {
        let trace = sim.run(t_ref, &|_| 0.0);
        // Phase error relative to the (unmodulated) reference.
        let err = trace
            .theta_vco
            .iter()
            .fold(0.0f64, |a, &b| a.max(wrap(b).abs()));
        last_err = err;
        if err < threshold {
            if held == 0 {
                hold_start = sim.time() - t_ref;
                // First period back under threshold: an unlocked→locked
                // candidate transition (re-entries count again).
                htmpll_obs::counter!("sim", "lock.transitions").inc();
            }
            held += 1;
            if held >= opts.hold_periods {
                htmpll_obs::counter!("sim", "lock.acquired").inc();
                return LockResult {
                    locked: true,
                    lock_time: hold_start,
                    final_error: err,
                };
            }
        } else {
            held = 0;
        }
    }
    htmpll_obs::counter!("sim", "lock.failed").inc();
    LockResult {
        locked: false,
        lock_time: f64::NAN,
        final_error: last_err,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htmpll_core::PllDesign;

    fn params(ratio: f64) -> SimParams {
        SimParams::from_design(&PllDesign::reference_design(ratio).unwrap())
    }

    #[test]
    fn acquires_from_small_offset() {
        let r = acquire_lock(
            &params(0.1),
            &SimConfig::default(),
            5e-3,
            &LockOptions::default(),
        );
        assert!(r.locked, "failed to lock: final error {}", r.final_error);
        assert!(r.lock_time.is_finite() && r.lock_time >= 0.0);
        assert!(r.final_error < 0.01 * params(0.1).t_ref);
    }

    #[test]
    fn larger_offset_takes_longer() {
        let cfg = SimConfig::default();
        let p = params(0.1);
        let opts = LockOptions::default();
        let small = acquire_lock(&p, &cfg, 2e-3, &opts);
        let large = acquire_lock(&p, &cfg, 2e-2, &opts);
        assert!(small.locked && large.locked);
        assert!(
            large.lock_time > small.lock_time,
            "{} vs {}",
            large.lock_time,
            small.lock_time
        );
    }

    #[test]
    fn zero_offset_is_instantly_locked() {
        let r = acquire_lock(
            &params(0.1),
            &SimConfig::default(),
            0.0,
            &LockOptions::default(),
        );
        assert!(r.locked);
        assert!(r.lock_time < 2.0 * params(0.1).t_ref);
    }
}
