//! Tri-state phase-frequency detector with charge pump.
//!
//! The behavioral model of Fig. 3: two edge-triggered flip-flops (UP set
//! by reference edges, DOWN set by divided-VCO edges) with an AND-reset.
//! The phase error is encoded as the **width** of the UP/DOWN pulses —
//! exactly the circuit-level behavior the paper's Matlab/Simulink
//! verification model implements, and the behavior the impulse-train HTM
//! model (Fig. 4) approximates.
//!
//! ```
//! use htmpll_sim::pfd::TriStatePfd;
//!
//! let mut pfd = TriStatePfd::new(1.0e-3);
//! assert_eq!(pfd.current(), 0.0);
//! pfd.ref_edge();                 // reference leads...
//! assert_eq!(pfd.current(), 1.0e-3); // ...pump up
//! pfd.vco_edge();                 // VCO edge arrives: reset
//! assert_eq!(pfd.current(), 0.0);
//! ```

/// Tri-state PFD driving a charge pump of `±i_cp`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriStatePfd {
    i_cp: f64,
    up: bool,
    down: bool,
}

impl TriStatePfd {
    /// Creates a PFD with charge-pump current `i_cp` (A).
    ///
    /// # Panics
    ///
    /// Panics when `i_cp <= 0`.
    pub fn new(i_cp: f64) -> Self {
        assert!(
            i_cp > 0.0 && i_cp.is_finite(),
            "charge-pump current must be positive"
        );
        TriStatePfd {
            i_cp,
            up: false,
            down: false,
        }
    }

    /// Charge-pump current magnitude.
    pub fn i_cp(&self) -> f64 {
        self.i_cp
    }

    /// UP flip-flop state.
    pub fn up(&self) -> bool {
        self.up
    }

    /// DOWN flip-flop state.
    pub fn down(&self) -> bool {
        self.down
    }

    /// Instantaneous charge-pump output current.
    pub fn current(&self) -> f64 {
        match (self.up, self.down) {
            (true, false) => self.i_cp,
            (false, true) => -self.i_cp,
            _ => 0.0,
        }
    }

    /// Registers a reference edge: sets UP, or resets both when DOWN was
    /// already high (zero reset delay).
    pub fn ref_edge(&mut self) {
        if self.down {
            self.up = false;
            self.down = false;
        } else {
            self.up = true;
        }
    }

    /// Registers a divided-VCO edge: sets DOWN, or resets both when UP
    /// was already high.
    pub fn vco_edge(&mut self) {
        if self.up {
            self.up = false;
            self.down = false;
        } else {
            self.down = true;
        }
    }

    /// Forces both flip-flops low (power-on reset, or the delayed AND
    /// reset when the engine models a nonzero reset delay).
    pub fn reset(&mut self) {
        self.up = false;
        self.down = false;
    }

    /// Sets the UP flip-flop without the immediate AND-reset — used by
    /// engines that model a finite reset delay (both outputs stay high
    /// until the delayed reset fires).
    pub fn set_up(&mut self) {
        self.up = true;
    }

    /// Sets the DOWN flip-flop without the immediate AND-reset.
    pub fn set_down(&mut self) {
        self.down = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pumps_up_when_reference_leads() {
        let mut p = TriStatePfd::new(2.0);
        p.ref_edge();
        assert!(p.up() && !p.down());
        assert_eq!(p.current(), 2.0);
        p.vco_edge(); // reset
        assert!(!p.up() && !p.down());
        assert_eq!(p.current(), 0.0);
    }

    #[test]
    fn pumps_down_when_vco_leads() {
        let mut p = TriStatePfd::new(2.0);
        p.vco_edge();
        assert_eq!(p.current(), -2.0);
        p.ref_edge();
        assert_eq!(p.current(), 0.0);
    }

    #[test]
    fn frequency_detection_behavior() {
        // Two reference edges in a row (reference faster): UP stays high
        // through the second edge — net positive drive, the
        // frequency-acquisition property of the tri-state PFD.
        let mut p = TriStatePfd::new(1.0);
        p.ref_edge();
        p.ref_edge();
        assert_eq!(p.current(), 1.0);
        // One VCO edge only resets; current returns to zero, not −Icp.
        p.vco_edge();
        assert_eq!(p.current(), 0.0);
    }

    #[test]
    fn alternating_edges_in_lock() {
        let mut p = TriStatePfd::new(1.0);
        for _ in 0..10 {
            p.ref_edge();
            assert_eq!(p.current(), 1.0);
            p.vco_edge();
            assert_eq!(p.current(), 0.0);
        }
    }

    #[test]
    fn reset_clears() {
        let mut p = TriStatePfd::new(1.0);
        p.ref_edge();
        p.reset();
        assert_eq!(p.current(), 0.0);
        assert!(!p.up() && !p.down());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_current_rejected() {
        let _ = TriStatePfd::new(0.0);
    }
}
