//! Event-driven behavioral PLL simulation engine.
//!
//! This is the workspace's stand-in for the paper's Matlab/Simulink
//! verification model: the PFD is a tri-state flip-flop pair whose
//! output pulses have **finite width** (the phase error), the charge
//! pump drives the loop-filter state space with piecewise-constant
//! current, and the VCO integrates the control voltage into phase.
//! Reference and divided-VCO edges are located to ~1e−13·T accuracy by
//! bisection, so the only modeling difference from the HTM prediction is
//! the pulse-width-vs-impulse approximation itself (paper Fig. 4).
//!
//! Phases are expressed in the paper's **time units**: `θ(t)` is the
//! time displacement of zero crossings, with `θ/T ≪ 1` in lock.
//!
//! ```no_run
//! use htmpll_core::PllDesign;
//! use htmpll_sim::engine::{PllSim, SimConfig, SimParams};
//!
//! let d = PllDesign::reference_design(0.1).unwrap();
//! let mut sim = PllSim::new(SimParams::from_design(&d), SimConfig::default());
//! let trace = sim.run(50.0 * sim.params().t_ref, &|_t| 0.0);
//! assert!(trace.theta_vco.iter().all(|th| th.abs() < 1e-6)); // stays locked
//! ```

use crate::pfd::TriStatePfd;
use crate::state_space::StateSpace;
use htmpll_core::PllDesign;
use htmpll_lti::Tf;
use htmpll_num::rng::Rng;

/// Physical parameters of the simulated loop.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone)]
pub struct SimParams {
    /// Reference period `T = 1/f_ref` (s).
    pub t_ref: f64,
    /// Charge-pump current (A).
    pub i_cp: f64,
    /// VCO gain (rad/s per V).
    pub kvco: f64,
    /// Feedback divider `N`.
    pub divider: f64,
    /// Loop-filter transimpedance `Z(s)` (V/A).
    pub filter: Tf,
    /// VCO free-running frequency at zero control voltage (Hz). Lock
    /// requires `f_center ≈ N/t_ref`; offsets exercise acquisition.
    pub f_center: f64,
    /// Fractional UP/DOWN charge-pump current mismatch: the UP current
    /// is `I_cp·(1 + cp_mismatch)` while DOWN stays `I_cp`. Zero for an
    /// ideal pump.
    pub cp_mismatch: f64,
    /// Constant leakage current (A) always flowing into the loop-filter
    /// node. In lock the pump must cancel it each period, producing a
    /// static phase offset `θ ≈ +I_leak·T/I_cp` and a reference spur.
    pub leakage: f64,
    /// PFD reset delay (s): after both flip-flops go high they stay
    /// high for this long before the AND reset fires — the standard
    /// anti-dead-zone pulse. With a current mismatch it produces a
    /// static phase offset `θ ≈ cp_mismatch·reset_delay`.
    pub reset_delay: f64,
    /// Periodic VCO gain modulation (impulse sensitivity function):
    /// centered cosine-series coefficients `[a₁, a₂, …]` making the
    /// instantaneous gain `K_vco·(1 + Σ_k aₖ·cos(2πk·Φ))` where `Φ` is
    /// the VCO phase in cycles. Empty = time-invariant (the paper's §5
    /// setup); nonempty exercises the §3.3 time-varying machinery.
    pub isf_cosine: Vec<f64>,
    /// Divider offset sequence for fractional-N operation: when set,
    /// divided edge `k` uses ratio `divider + div_sequence[k mod len]`
    /// (e.g. a MASH sigma-delta output). `f_center` should then be
    /// `(divider + mean(offsets))·f_ref` for lock.
    pub div_sequence: Option<Vec<i64>>,
    /// Charge-pump turn-on time (s): a flip-flop must have been high at
    /// least this long before its current source conducts, so pulses
    /// narrower than `dead_zone` deliver **no** charge — the classic PFD
    /// dead zone. Small phase errors then go uncorrected and the locked
    /// loop wanders inside ±`dead_zone` instead of converging; a
    /// `reset_delay ≥ dead_zone` restores linear behavior (both sources
    /// conduct on every cycle).
    pub dead_zone: f64,
}

impl SimParams {
    /// Derives simulation parameters from a [`PllDesign`], centered for
    /// perfect lock at zero control voltage.
    pub fn from_design(d: &PllDesign) -> SimParams {
        SimParams {
            t_ref: 1.0 / d.f_ref(),
            i_cp: d.icp(),
            kvco: d.kvco(),
            divider: d.divider(),
            filter: d.filter().impedance(),
            f_center: d.divider() * d.f_ref(),
            cp_mismatch: 0.0,
            leakage: 0.0,
            reset_delay: 0.0,
            dead_zone: 0.0,
            isf_cosine: Vec::new(),
            div_sequence: None,
        }
    }
}

/// Numerical configuration of the engine.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Uniform output samples per reference period.
    pub samples_per_ref: usize,
    /// RK4 substeps per sample interval (before event splitting).
    pub substeps: usize,
    /// RMS white jitter added to each reference edge (seconds); 0
    /// disables the noise source.
    pub ref_jitter_rms: f64,
    /// One-sided PSD of white VCO **frequency** noise, in Hz²/Hz
    /// (white FM — the free-running oscillator's 1/f² phase noise).
    /// Implemented as an independent frequency offset per integration
    /// segment with variance `S/(2h)`, which makes the accumulated VCO
    /// phase a Brownian motion of rate `S/2` cycles²/s.
    pub vco_fm_psd: f64,
    /// Seed for the jitter generator (deterministic runs).
    pub jitter_seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            samples_per_ref: 32,
            substeps: 4,
            ref_jitter_rms: 0.0,
            vco_fm_psd: 0.0,
            jitter_seed: 0x5eed,
        }
    }
}

/// Uniformly sampled simulation record.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone)]
pub struct Trace {
    /// Sample interval (s).
    pub dt: f64,
    /// Time of the first sample (s).
    pub t0: f64,
    /// Reference phase modulation `θ_ref(t)` at the samples (time units).
    pub theta_ref: Vec<f64>,
    /// Divided-VCO phase `θ(t)` at the samples (time units).
    pub theta_vco: Vec<f64>,
    /// Loop-filter output (VCO control) voltage at the samples.
    pub v_ctrl: Vec<f64>,
}

impl Trace {
    /// Sample times of the record.
    pub fn times(&self) -> Vec<f64> {
        (0..self.theta_vco.len())
            .map(|k| self.t0 + k as f64 * self.dt)
            .collect()
    }

    /// Least-squares removal of mean and linear trend from `θ` —
    /// needed before spectral analysis of fractional-N records, where
    /// integer-divider-referenced `θ` ramps at `frac/N`.
    pub fn detrended_theta(&self) -> Vec<f64> {
        let n = self.theta_vco.len() as f64;
        let tbar = (n - 1.0) / 2.0;
        let ybar = self.theta_vco.iter().sum::<f64>() / n;
        let (mut sxy, mut sxx) = (0.0, 0.0);
        for (k, y) in self.theta_vco.iter().enumerate() {
            let x = k as f64 - tbar;
            sxy += x * (y - ybar);
            sxx += x * x;
        }
        let slope = if sxx > 0.0 { sxy / sxx } else { 0.0 };
        self.theta_vco
            .iter()
            .enumerate()
            .map(|(k, y)| y - ybar - slope * (k as f64 - tbar))
            .collect()
    }

    /// Moving average of `θ` over `window` samples (typically one
    /// reference period) with the matching center times — strips the
    /// once-per-`T` correction ripple, leaving the baseband component.
    ///
    /// # Panics
    ///
    /// Panics when `window` is zero or longer than the record.
    pub fn period_averaged_theta(&self, window: usize) -> (Vec<f64>, Vec<f64>) {
        assert!(window > 0, "window must be positive");
        assert!(
            window <= self.theta_vco.len(),
            "window longer than the record"
        );
        let times: Vec<f64> = (0..=self.theta_vco.len() - window)
            .map(|k| self.t0 + (k as f64 + 0.5 * (window - 1) as f64) * self.dt)
            .collect();
        let avg: Vec<f64> = self
            .theta_vco
            .windows(window)
            .map(|w| w.iter().sum::<f64>() / window as f64)
            .collect();
        (times, avg)
    }
}

/// The behavioral PLL simulator.
#[derive(Debug, Clone)]
pub struct PllSim {
    params: SimParams,
    config: SimConfig,
    filter: StateSpace,
    pfd: TriStatePfd,
    /// Current simulation time (s).
    t: f64,
    /// VCO phase in cycles (of the undivided VCO).
    phi: f64,
    /// Index of the next reference edge.
    next_ref_index: u64,
    /// VCO cycle count at which the next divided edge fires.
    next_div_cycles: f64,
    rng: Rng,
    /// Jitter of the upcoming reference edge (drawn once per edge).
    pending_jitter: f64,
    /// Current VCO frequency-noise offset (Hz), redrawn per segment.
    fm_noise: f64,
    /// Absolute time of a scheduled delayed PFD reset, if any.
    pending_reset: Option<f64>,
    /// Time the UP flip-flop last went high (dead-zone bookkeeping).
    up_since: Option<f64>,
    /// Time the DOWN flip-flop last went high.
    down_since: Option<f64>,
    /// Count of divided edges fired (indexes the divider sequence).
    div_edge_index: usize,
}

impl PllSim {
    /// Creates a simulator starting in perfect lock at `t = 0`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive parameters or configuration.
    pub fn new(params: SimParams, config: SimConfig) -> PllSim {
        assert!(params.t_ref > 0.0, "reference period must be positive");
        assert!(params.kvco > 0.0, "VCO gain must be positive");
        assert!(params.divider >= 1.0, "divider must be at least 1");
        assert!(params.f_center > 0.0, "center frequency must be positive");
        assert!(
            config.samples_per_ref > 0,
            "need at least one sample per period"
        );
        assert!(config.substeps > 0, "need at least one substep");
        let filter = StateSpace::from_tf(&params.filter);
        let pfd = TriStatePfd::new(params.i_cp);
        let mut rng = Rng::seed_from_u64(config.jitter_seed);
        let pending_jitter = draw_jitter(&mut rng, config.ref_jitter_rms);
        let divider = params.divider;
        PllSim {
            params,
            config,
            filter,
            pfd,
            t: 0.0,
            phi: 0.0,
            next_ref_index: 1,
            // First divided edge after N VCO cycles, aligned with the
            // first reference edge at t = T.
            next_div_cycles: divider,
            rng,
            pending_jitter,
            fm_noise: 0.0,
            pending_reset: None,
            up_since: None,
            down_since: None,
            div_edge_index: 0,
        }
    }

    /// The physical parameters.
    pub fn params(&self) -> &SimParams {
        &self.params
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.t
    }

    /// Divided-VCO phase deviation `θ(t)` in time units:
    /// `θ = Φ·T/N − t` (zero while perfectly locked and aligned).
    pub fn theta_vco(&self) -> f64 {
        self.phi * self.params.t_ref / self.params.divider - self.t
    }

    /// Instantaneous loop-filter input current including charge-pump
    /// mismatch and leakage (UP and DOWN branches summed separately so
    /// the reset-delay overlap interval carries the mismatch current).
    fn filter_current(&self) -> f64 {
        let dz = self.params.dead_zone;
        let conducting = |high: bool, since: Option<f64>| {
            high && since.is_some_and(|t0| self.t - t0 >= dz - 1e-300)
        };
        let up = if conducting(self.pfd.up(), self.up_since) {
            self.params.i_cp * (1.0 + self.params.cp_mismatch)
        } else {
            0.0
        };
        let down = if conducting(self.pfd.down(), self.down_since) {
            self.params.i_cp
        } else {
            0.0
        };
        up - down + self.params.leakage
    }

    /// Next time a currently-high flip-flop crosses its dead-zone
    /// turn-on boundary (a current discontinuity the integrator must
    /// not step across).
    fn next_turn_on(&self) -> f64 {
        let dz = self.params.dead_zone;
        if dz == 0.0 {
            return f64::INFINITY;
        }
        let mut next = f64::INFINITY;
        if self.pfd.up() {
            if let Some(t0) = self.up_since {
                if self.t < t0 + dz {
                    next = next.min(t0 + dz);
                }
            }
        }
        if self.pfd.down() {
            if let Some(t0) = self.down_since {
                if self.t < t0 + dz {
                    next = next.min(t0 + dz);
                }
            }
        }
        next
    }

    /// Routes a PFD edge through the delayed-reset logic, keeping the
    /// dead-zone turn-on timestamps current.
    fn pfd_edge(&mut self, is_ref: bool) {
        if is_ref {
            htmpll_obs::counter!("sim", "pfd.ref_edges").inc();
        } else {
            htmpll_obs::counter!("sim", "pfd.div_edges").inc();
        }
        let (up_before, down_before) = (self.pfd.up(), self.pfd.down());
        if self.params.reset_delay > 0.0 {
            if is_ref {
                self.pfd.set_up();
            } else {
                self.pfd.set_down();
            }
            if self.pfd.up() && self.pfd.down() && self.pending_reset.is_none() {
                self.pending_reset = Some(self.t + self.params.reset_delay);
            }
        } else if is_ref {
            self.pfd.ref_edge();
        } else {
            self.pfd.vco_edge();
        }
        // Rising edges start the turn-on clocks; falling edges clear them.
        if self.pfd.up() && !up_before {
            self.up_since = Some(self.t);
        }
        if self.pfd.down() && !down_before {
            self.down_since = Some(self.t);
        }
        if !self.pfd.up() {
            self.up_since = None;
        }
        if !self.pfd.down() {
            self.down_since = None;
        }
    }

    /// Instantaneous VCO control voltage.
    pub fn v_ctrl(&self) -> f64 {
        self.filter.output(self.filter_current())
    }

    /// Detunes the VCO center frequency by a fractional offset (for lock
    /// acquisition studies).
    pub fn detune(&mut self, fractional_offset: f64) {
        self.params.f_center *= 1.0 + fractional_offset;
    }

    /// Time of reference edge `k` under modulation `θ_ref`: solves
    /// `t + θ_ref(t) = k·T` by fixed-point iteration (converges because
    /// `|θ_ref′| ≪ 1` for small-signal modulation), plus per-edge jitter.
    fn ref_edge_time(&self, k: u64, modulation: &dyn Fn(f64) -> f64) -> f64 {
        let target = k as f64 * self.params.t_ref;
        let mut t = target - modulation(target);
        for _ in 0..8 {
            t = target - modulation(t);
        }
        t + self.pending_jitter
    }

    /// RK4 derivative of the combined state `[filter…, Φ]`.
    fn deriv(&self, x: &[f64], i_cp: f64, out: &mut [f64]) {
        let nf = self.filter.order();
        self.filter.eval_deriv(&x[..nf], i_cp, &mut out[..nf]);
        let v = self.filter.eval_output(&x[..nf], i_cp);
        // Time-varying sensitivity: gain modulated over the VCO cycle.
        let mut gain = 1.0;
        if !self.params.isf_cosine.is_empty() {
            let phi = x[nf]; // VCO phase in cycles
            for (k, &a) in self.params.isf_cosine.iter().enumerate() {
                gain += a * (2.0 * std::f64::consts::PI * (k + 1) as f64 * phi).cos();
            }
        }
        out[nf] = self.params.f_center
            + self.fm_noise
            + self.params.kvco * gain / (2.0 * std::f64::consts::PI) * v;
    }

    /// One RK4 step of size `h` from state `x` with constant current.
    fn rk4(&self, x: &[f64], i_cp: f64, h: f64) -> Vec<f64> {
        let n = x.len();
        let mut k1 = vec![0.0; n];
        let mut k2 = vec![0.0; n];
        let mut k3 = vec![0.0; n];
        let mut k4 = vec![0.0; n];
        let mut tmp = vec![0.0; n];
        self.deriv(x, i_cp, &mut k1);
        for i in 0..n {
            tmp[i] = x[i] + 0.5 * h * k1[i];
        }
        self.deriv(&tmp, i_cp, &mut k2);
        for i in 0..n {
            tmp[i] = x[i] + 0.5 * h * k2[i];
        }
        self.deriv(&tmp, i_cp, &mut k3);
        for i in 0..n {
            tmp[i] = x[i] + h * k3[i];
        }
        self.deriv(&tmp, i_cp, &mut k4);
        let mut out = x.to_vec();
        for i in 0..n {
            out[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        out
    }

    fn combined_state(&self) -> Vec<f64> {
        let mut x = self.filter.state().to_vec();
        x.push(self.phi);
        x
    }

    fn set_combined_state(&mut self, x: &[f64]) {
        let nf = self.filter.order();
        self.filter.set_state(&x[..nf]);
        self.phi = x[nf];
    }

    /// Advances exactly to `t_target`, firing PFD events on the way.
    fn advance_to(&mut self, t_target: f64, modulation: &dyn Fn(f64) -> f64) {
        let hs = self.params.t_ref / (self.config.samples_per_ref * self.config.substeps) as f64;
        let time_eps = 1e-13 * self.params.t_ref;
        let mut guard = 0usize;
        let guard_max = 1000 * (((t_target - self.t) / hs).abs() as usize + 10);
        while self.t < t_target - time_eps {
            guard += 1;
            assert!(guard < guard_max, "event loop failed to make progress");
            let next_ref = self.ref_edge_time(self.next_ref_index, modulation);
            let next_reset = self.pending_reset.unwrap_or(f64::INFINITY);
            let seg_end = (self.t + hs)
                .min(t_target)
                .min(next_ref)
                .min(next_reset)
                .min(self.next_turn_on());
            let h = seg_end - self.t;
            if h <= time_eps {
                // We are sitting on an event: fire it.
                if (next_reset - self.t).abs() <= 2.0 * time_eps || next_reset <= self.t {
                    self.pfd.reset();
                    self.pending_reset = None;
                    self.up_since = None;
                    self.down_since = None;
                    continue;
                }
                if (self.next_turn_on() - self.t).abs() <= 2.0 * time_eps {
                    // Current discontinuity only: step past it.
                    self.t += time_eps;
                    continue;
                }
                if (next_ref - self.t).abs() <= 2.0 * time_eps.max(1e-300) || next_ref <= self.t {
                    self.fire_ref_edge();
                    continue;
                }
                self.t = seg_end;
                continue;
            }
            // Fresh white-FM draw for this segment: variance S/(2h)
            // makes the integrated phase Brownian with rate S/2,
            // independent of how events split the grid.
            if self.config.vco_fm_psd > 0.0 {
                let sigma = (self.config.vco_fm_psd / (2.0 * h)).sqrt();
                self.fm_noise = sigma * draw_gaussian(&mut self.rng);
            }
            let x0 = self.combined_state();
            let i_now = self.filter_current();
            htmpll_obs::counter!("sim", "engine.rk4_steps").inc();
            let trial = self.rk4(&x0, i_now, h);
            let phi_idx = x0.len() - 1;
            if trial[phi_idx] >= self.next_div_cycles {
                // Divided-VCO edge inside the segment: bisect for the
                // crossing time.
                let mut lo = 0.0;
                let mut hi = h;
                for _ in 0..60 {
                    let mid = 0.5 * (lo + hi);
                    let xm = self.rk4(&x0, i_now, mid);
                    if xm[phi_idx] >= self.next_div_cycles {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                    if hi - lo < time_eps {
                        break;
                    }
                }
                let x_edge = self.rk4(&x0, i_now, hi);
                self.set_combined_state(&x_edge);
                self.phi = self.next_div_cycles; // pin against drift
                self.t += hi;
                self.pfd_edge(false);
                let offset = match &self.params.div_sequence {
                    Some(seq) if !seq.is_empty() => seq[self.div_edge_index % seq.len()] as f64,
                    _ => 0.0,
                };
                self.div_edge_index += 1;
                self.next_div_cycles += self.params.divider + offset;
            } else {
                self.set_combined_state(&trial);
                self.t += h;
                if (self.t - next_ref).abs() <= time_eps {
                    self.fire_ref_edge();
                }
            }
        }
        self.t = t_target;
    }

    fn fire_ref_edge(&mut self) {
        self.pfd_edge(true);
        self.next_ref_index += 1;
        self.pending_jitter = draw_jitter(&mut self.rng, self.config.ref_jitter_rms);
    }

    /// Runs for `duration` seconds under the reference phase modulation
    /// `θ_ref(t)` (time units, absolute time argument), returning the
    /// uniformly sampled trace. Repeated calls continue from the current
    /// state, so a settle run can precede a measurement run.
    ///
    /// # Panics
    ///
    /// Panics when `duration <= 0`.
    pub fn run(&mut self, duration: f64, modulation: &dyn Fn(f64) -> f64) -> Trace {
        assert!(duration > 0.0, "duration must be positive");
        let _span = htmpll_obs::span_labeled("sim", "engine.run", || {
            format!("periods={:.0}", duration / self.params.t_ref)
        });
        let dt = self.params.t_ref / self.config.samples_per_ref as f64;
        let n = (duration / dt).round() as usize;
        let t0 = self.t;
        let mut theta_ref = Vec::with_capacity(n);
        let mut theta_vco = Vec::with_capacity(n);
        let mut v_ctrl = Vec::with_capacity(n);
        for k in 1..=n {
            self.advance_to(t0 + k as f64 * dt, modulation);
            theta_ref.push(modulation(self.t));
            theta_vco.push(self.theta_vco());
            v_ctrl.push(self.v_ctrl());
        }
        Trace {
            dt,
            t0: t0 + dt,
            theta_ref,
            theta_vco,
            v_ctrl,
        }
    }
}

fn draw_jitter(rng: &mut Rng, rms: f64) -> f64 {
    if rms == 0.0 {
        return 0.0;
    }
    rms * draw_gaussian(rng)
}

/// Standard normal sample by Box–Muller.
fn draw_gaussian(rng: &mut Rng) -> f64 {
    rng.gaussian()
}

#[cfg(test)]
mod tests {
    use super::*;
    use htmpll_core::PllDesign;

    fn reference_sim(ratio: f64) -> PllSim {
        let d = PllDesign::reference_design(ratio).unwrap();
        PllSim::new(SimParams::from_design(&d), SimConfig::default())
    }

    #[test]
    fn stays_locked_without_stimulus() {
        let mut sim = reference_sim(0.1);
        let t_ref = sim.params().t_ref;
        let trace = sim.run(100.0 * t_ref, &|_| 0.0);
        for th in &trace.theta_vco {
            assert!(th.abs() < 1e-9 * t_ref, "drifted: {th}");
        }
        for v in &trace.v_ctrl {
            assert!(v.abs() < 1e-9, "control moved: {v}");
        }
    }

    #[test]
    fn tracks_static_phase_step() {
        // A constant θ_ref offset must be tracked to zero steady-state
        // error (type-2 loop).
        let mut sim = reference_sim(0.1);
        let t_ref = sim.params().t_ref;
        let step = 0.01 * t_ref;
        let trace = sim.run(400.0 * t_ref, &move |_| step);
        let tail = &trace.theta_vco[trace.theta_vco.len() - 20..];
        for th in tail {
            assert!(
                (th - step).abs() < 0.05 * step,
                "steady-state error: {} vs {step}",
                th
            );
        }
    }

    #[test]
    fn tracks_frequency_step_type2() {
        // A reference frequency offset = ramp in θ_ref; a type-2 loop
        // tracks it with zero steady-state *phase* error.
        let mut sim = reference_sim(0.1);
        let t_ref = sim.params().t_ref;
        let slope = 1e-4; // dθ_ref/dt (dimensionless frequency offset)
        let trace = sim.run(600.0 * t_ref, &move |t| slope * t);
        let last_t = trace.t0 + (trace.theta_vco.len() - 1) as f64 * trace.dt;
        let expect = slope * last_t;
        let got = *trace.theta_vco.last().unwrap();
        assert!(
            (got - expect).abs() < 0.05 * expect.abs(),
            "{got} vs {expect}"
        );
    }

    #[test]
    fn sinusoidal_modulation_produces_response_at_same_frequency() {
        let mut sim = reference_sim(0.1);
        let t_ref = sim.params().t_ref;
        let w_m = 0.5; // rad/s, well inside the loop bandwidth (ω_UG = 1)
        let amp = 1e-3 * t_ref;
        let modulation = move |t: f64| amp * (w_m * t).sin();
        // Settle, then measure.
        let _ = sim.run(400.0 * t_ref, &modulation);
        let trace = sim.run(800.0 * t_ref, &modulation);
        let peak = trace.theta_vco.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        // In-band modulation is tracked: output amplitude ≈ input.
        assert!(peak > 0.8 * amp && peak < 1.6 * amp, "peak {peak} vs {amp}");
    }

    #[test]
    fn trace_shape() {
        let mut sim = reference_sim(0.2);
        let t_ref = sim.params().t_ref;
        let trace = sim.run(10.0 * t_ref, &|_| 0.0);
        assert_eq!(trace.theta_ref.len(), trace.theta_vco.len());
        assert_eq!(trace.theta_ref.len(), trace.v_ctrl.len());
        assert_eq!(trace.theta_ref.len(), 10 * 32);
        assert!((trace.dt - t_ref / 32.0).abs() < 1e-15);
    }

    #[test]
    fn jitter_source_injects_noise() {
        let d = PllDesign::reference_design(0.1).unwrap();
        let cfg = SimConfig {
            ref_jitter_rms: 1e-4,
            ..SimConfig::default()
        };
        let mut sim = PllSim::new(SimParams::from_design(&d), cfg);
        let t_ref = sim.params().t_ref;
        let trace = sim.run(300.0 * t_ref, &|_| 0.0);
        let rms = (trace.theta_vco.iter().map(|v| v * v).sum::<f64>()
            / trace.theta_vco.len() as f64)
            .sqrt();
        assert!(rms > 1e-6, "jitter should propagate, rms {rms}");
    }

    #[test]
    fn deterministic_given_seed() {
        let d = PllDesign::reference_design(0.1).unwrap();
        let cfg = SimConfig {
            ref_jitter_rms: 1e-4,
            ..SimConfig::default()
        };
        let run = || {
            let mut s = PllSim::new(SimParams::from_design(&d), cfg);
            s.run(50.0 * s.params().t_ref, &|_| 0.0).theta_vco
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn leakage_creates_static_phase_offset() {
        // In lock the pump cancels the leakage once per period with a
        // pulse of width |θ|: θ_static ≈ −I_leak·T/I_cp.
        let d = PllDesign::reference_design(0.1).unwrap();
        let mut params = SimParams::from_design(&d);
        params.leakage = 1e-4 * params.i_cp;
        let mut sim = PllSim::new(params.clone(), SimConfig::default());
        let t_ref = params.t_ref;
        let trace = sim.run(2000.0 * t_ref, &|_| 0.0);
        let expect = params.leakage * t_ref / params.i_cp;
        let got = *trace.theta_vco.last().unwrap();
        assert!(
            (got - expect).abs() < 0.2 * expect.abs(),
            "{got} vs {expect}"
        );
    }

    #[test]
    fn leakage_produces_reference_spur() {
        // The once-per-period correction pulse is a periodic
        // disturbance: the output phase spectrum grows a line at f_ref.
        use htmpll_spectral::{periodogram, Window};
        let d = PllDesign::reference_design(0.1).unwrap();
        let mut params = SimParams::from_design(&d);
        params.leakage = 5e-3 * params.i_cp;
        let mut sim = PllSim::new(params.clone(), SimConfig::default());
        let t_ref = params.t_ref;
        let _ = sim.run(500.0 * t_ref, &|_| 0.0);
        let trace = sim.run(1024.0 * t_ref, &|_| 0.0);
        let fs = 1.0 / trace.dt;
        // Remove the static offset before the PSD.
        let mean = trace.theta_vco.iter().sum::<f64>() / trace.theta_vco.len() as f64;
        let centered: Vec<f64> = trace.theta_vco.iter().map(|v| v - mean).collect();
        let psd = periodogram(&centered, fs, Window::Hann).expect("psd");
        let f_ref = 1.0 / t_ref;
        let near = |f: f64| {
            psd.iter()
                .filter(|(ff, _)| (ff - f).abs() < 0.03 * f_ref)
                .map(|&(_, p)| p)
                .fold(0.0f64, f64::max)
        };
        let spur = near(f_ref);
        let floor = near(0.62 * f_ref).max(near(1.45 * f_ref));
        assert!(
            spur > 30.0 * floor,
            "spur {spur} should stand above floor {floor}"
        );
    }

    #[test]
    fn mismatch_keeps_lock_and_perturbs_response() {
        let d = PllDesign::reference_design(0.1).unwrap();
        let mut params = SimParams::from_design(&d);
        params.cp_mismatch = 0.2;
        let mut sim = PllSim::new(params.clone(), SimConfig::default());
        let t_ref = params.t_ref;
        let trace = sim.run(500.0 * t_ref, &|t| 1e-3 * t_ref * (0.5 * t).sin());
        // Still locked (bounded error)...
        let peak = trace.theta_vco.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!(peak < 0.05 * t_ref, "{peak}");
    }

    #[test]
    fn reset_delay_alone_is_benign() {
        // With an ideal (matched) pump, the anti-dead-zone pulse adds
        // equal UP and DOWN charge: no static offset.
        let d = PllDesign::reference_design(0.1).unwrap();
        let mut params = SimParams::from_design(&d);
        params.reset_delay = 0.02 * params.t_ref;
        let mut sim = PllSim::new(params.clone(), SimConfig::default());
        let trace = sim.run(1000.0 * params.t_ref, &|_| 0.0);
        let tail = *trace.theta_vco.last().unwrap();
        assert!(tail.abs() < 1e-3 * params.t_ref, "offset {tail}");
    }

    #[test]
    fn mismatch_with_reset_delay_creates_static_offset() {
        // Charge balance across the overlap window: the VCO must lead by
        // θ ≈ mismatch·delay/(1+mismatch)·… ≈ mismatch·delay to first
        // order, so the DOWN pulse outweighs the boosted UP pulse.
        let d = PllDesign::reference_design(0.1).unwrap();
        let mut params = SimParams::from_design(&d);
        params.cp_mismatch = 0.2;
        params.reset_delay = 0.02 * params.t_ref;
        let mut sim = PllSim::new(params.clone(), SimConfig::default());
        let trace = sim.run(2000.0 * params.t_ref, &|_| 0.0);
        let got = *trace.theta_vco.last().unwrap();
        let expect = params.cp_mismatch * params.reset_delay;
        assert!(
            (got - expect).abs() < 0.25 * expect.abs(),
            "{got} vs {expect}"
        );
    }

    #[test]
    fn dead_zone_leaves_small_errors_uncorrected() {
        // A static reference offset smaller than the dead zone produces
        // pulses too narrow to conduct: the loop never pulls the error
        // in (the classic PFD dead-zone failure).
        let d = PllDesign::reference_design(0.1).unwrap();
        let mut params = SimParams::from_design(&d);
        let t_ref = params.t_ref;
        params.dead_zone = 5e-3 * t_ref;
        let offset = 2e-3 * t_ref; // inside the dead zone
        let mut sim = PllSim::new(params, SimConfig::default());
        let trace = sim.run(600.0 * t_ref, &move |_| offset);
        let err = offset - *trace.theta_vco.last().unwrap();
        assert!(
            err.abs() > 0.5 * offset,
            "dead zone should leave most of the offset: residual {err}"
        );
    }

    #[test]
    fn reset_delay_cures_the_dead_zone() {
        // With an anti-dead-zone pulse (reset delay ≥ dead zone) both
        // sources conduct every cycle and linear correction returns.
        let d = PllDesign::reference_design(0.1).unwrap();
        let mut params = SimParams::from_design(&d);
        let t_ref = params.t_ref;
        params.dead_zone = 5e-3 * t_ref;
        params.reset_delay = 1.5 * params.dead_zone;
        let offset = 2e-3 * t_ref;
        let mut sim = PllSim::new(params, SimConfig::default());
        let trace = sim.run(600.0 * t_ref, &move |_| offset);
        let err = offset - *trace.theta_vco.last().unwrap();
        assert!(
            err.abs() < 0.1 * offset,
            "anti-dead-zone pulse should restore tracking: residual {err}"
        );
    }

    #[test]
    fn trace_utilities() {
        let mut sim = reference_sim(0.1);
        let t_ref = sim.params().t_ref;
        let trace = sim.run(20.0 * t_ref, &|t| 1e-4 * t); // ramp stimulus
        let times = trace.times();
        assert_eq!(times.len(), trace.theta_vco.len());
        assert!((times[1] - times[0] - trace.dt).abs() < 1e-15);
        // Detrending removes the tracked ramp.
        let det = trace.detrended_theta();
        let rms = (det.iter().map(|v| v * v).sum::<f64>() / det.len() as f64).sqrt();
        let raw_rms = (trace.theta_vco.iter().map(|v| v * v).sum::<f64>()
            / trace.theta_vco.len() as f64)
            .sqrt();
        assert!(rms < 0.3 * raw_rms, "{rms} vs {raw_rms}");
        // Period averaging shortens by window−1 and smooths.
        let (at, avg) = trace.period_averaged_theta(32);
        assert_eq!(avg.len(), trace.theta_vco.len() - 31);
        assert_eq!(at.len(), avg.len());
    }

    #[test]
    #[should_panic(expected = "reference period")]
    fn rejects_bad_period() {
        let d = PllDesign::reference_design(0.1).unwrap();
        let mut p = SimParams::from_design(&d);
        p.t_ref = 0.0;
        let _ = PllSim::new(p, SimConfig::default());
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn rejects_zero_samples() {
        let d = PllDesign::reference_design(0.1).unwrap();
        let cfg = SimConfig {
            samples_per_ref: 0,
            ..SimConfig::default()
        };
        let _ = PllSim::new(SimParams::from_design(&d), cfg);
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn rejects_nonpositive_duration() {
        let mut sim = reference_sim(0.1);
        let _ = sim.run(0.0, &|_| 0.0);
    }

    #[test]
    fn all_non_idealities_combined_stay_locked() {
        // Mismatch + leakage + reset delay + dead zone + TV ISF + jitter
        // + VCO noise, all at once: the event loop must stay consistent
        // and the loop must remain locked (bounded error).
        let d = PllDesign::reference_design(0.1).unwrap();
        let mut params = SimParams::from_design(&d);
        params.cp_mismatch = 0.1;
        params.leakage = 5e-4 * params.i_cp;
        params.reset_delay = 0.01 * params.t_ref;
        params.dead_zone = 0.004 * params.t_ref;
        params.isf_cosine = vec![0.3];
        let cfg = SimConfig {
            ref_jitter_rms: 5e-5 * params.t_ref,
            vco_fm_psd: 1e-9,
            ..SimConfig::default()
        };
        let t_ref = params.t_ref;
        let mut sim = PllSim::new(params, cfg);
        let trace = sim.run(800.0 * t_ref, &|t| 5e-4 * t_ref * (0.5 * t).sin());
        let peak = trace.theta_vco.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!(peak < 0.1 * t_ref, "lost lock: peak {peak}");
        // And the state stays finite throughout.
        assert!(trace.v_ctrl.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn detune_shifts_control_voltage() {
        // After detuning, the locked loop must hold a control voltage
        // that cancels the offset: v = −Δω_free/K_vco-ish.
        let mut sim = reference_sim(0.1);
        let t_ref = sim.params().t_ref;
        sim.detune(1e-4);
        let trace = sim.run(2000.0 * t_ref, &|_| 0.0);
        let f_c = sim.params().f_center;
        let expect = -(1e-4 / (1.0 + 1e-4)) * f_c * 2.0 * std::f64::consts::PI / sim.params().kvco;
        let v_tail = *trace.v_ctrl.last().unwrap();
        assert!(
            (v_tail - expect).abs() < 0.05 * expect.abs(),
            "{v_tail} vs {expect}"
        );
    }
}
