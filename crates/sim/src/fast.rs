//! Fast period-map simulator.
//!
//! The full engine ([`crate::engine::PllSim`]) integrates the loop
//! continuously and resolves every pulse edge; this module trades that
//! fidelity for speed by adopting the **impulse approximation** the
//! paper's HTM model itself makes: each correction pulse delivers its
//! charge `q_k = I_cp·e_k` at the sampling instant. The inter-sample
//! dynamics are then *exactly* linear, so one cached matrix exponential
//! `E = e^{MT}` advances a whole reference period per step:
//!
//! ```text
//! z_k⁺ = z_k + P·q(e_k)          (charge injection, maybe nonlinear)
//! z_{k+1} = E·z_k⁺ + L·I_leak    (exact LTI propagation over T)
//! ```
//!
//! with `z = [filter states…, θ]`. This is the Hein–Scott discrete
//! model in state-space form — the two are cross-validated in tests —
//! but the map keeps the **pulse-law nonlinearity** (dead zone,
//! saturation), making million-period Monte-Carlo and limit-cycle
//! studies cheap (one small matrix·vector product per period).
//!
//! ```
//! use htmpll_core::PllDesign;
//! use htmpll_sim::fast::{PeriodMap, PulseLaw};
//! use htmpll_sim::SimParams;
//!
//! let d = PllDesign::reference_design(0.1).unwrap();
//! let mut map = PeriodMap::new(&SimParams::from_design(&d), PulseLaw::Linear);
//! let theta = map.run(200, |_k| 1e-3);   // constant reference offset
//! assert!((theta.last().unwrap() - 1e-3).abs() < 1e-4); // tracked
//! ```

use crate::engine::SimParams;
use crate::state_space::StateSpace;
use htmpll_num::mat::expm;
use htmpll_num::{CMat, Complex};

/// Charge-pump pulse law: maps the phase error `e` (time units) to the
/// delivered charge.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PulseLaw {
    /// Ideal: `q = I_cp·e`.
    Linear,
    /// Dead zone: no charge for `|e| < width`, then
    /// `q = I_cp·(e ∓ width)`.
    DeadZone {
        /// Dead-zone half width (time units).
        width: f64,
    },
    /// Slew limit: pulse width clamps at `max_width`,
    /// `q = I_cp·clamp(e, ±max_width)`.
    Saturating {
        /// Maximum pulse width (time units).
        max_width: f64,
    },
}

impl PulseLaw {
    /// Delivered charge for phase error `e`.
    pub fn charge(&self, i_cp: f64, e: f64) -> f64 {
        match *self {
            PulseLaw::Linear => i_cp * e,
            PulseLaw::DeadZone { width } => {
                if e.abs() <= width {
                    0.0
                } else {
                    i_cp * (e - width.copysign(e))
                }
            }
            PulseLaw::Saturating { max_width } => i_cp * e.clamp(-max_width, max_width),
        }
    }
}

/// How the sampled phase error is converted to charge-pump drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrectionKind {
    /// Impulsive charge at the sampling instant (narrow-pulse charge
    /// pump — the paper's model).
    Impulse,
    /// Sample-and-hold: the error is held and drives a constant current
    /// `q_k/T` for the whole period (same charge, spread in time) —
    /// the detector modeled by `core::hold::SampleHoldModel`.
    Hold,
}

/// The cached one-period affine map.
#[derive(Debug, Clone)]
pub struct PeriodMap {
    /// Propagator `e^{MT}` over one period ((n+1)×(n+1), real content).
    propagator: CMat,
    /// Constant-input response over one period (per ampere of constant
    /// filter current): `∫₀ᵀ e^{M(T−τ)}·P dτ`.
    leak_response: Vec<f64>,
    /// Charge injection direction `P` (filter B column + direct θ term).
    injection: Vec<f64>,
    /// State `[x_filter…, θ]`.
    z: Vec<f64>,
    i_cp: f64,
    leakage: f64,
    law: PulseLaw,
    kind: CorrectionKind,
    t_ref: f64,
}

impl PeriodMap {
    /// Builds the map from physical loop parameters (impulsive charge
    /// pump).
    ///
    /// # Panics
    ///
    /// Panics when the filter transfer function is improper.
    pub fn new(params: &SimParams, law: PulseLaw) -> PeriodMap {
        PeriodMap::with_kind(params, law, CorrectionKind::Impulse)
    }

    /// Builds the map with an explicit correction kind — `Hold` gives
    /// the discrete-time truth model for the sample-and-hold PFD.
    ///
    /// # Panics
    ///
    /// Panics when the filter transfer function is improper.
    pub fn with_kind(params: &SimParams, law: PulseLaw, kind: CorrectionKind) -> PeriodMap {
        let ss = StateSpace::from_tf(&params.filter);
        let nf = ss.order();
        let n = nf + 1;
        // θ̇ = g·v, v = Cx + D·i, g = K_vco·T/(2π·N).
        let g = params.kvco * params.t_ref / (2.0 * std::f64::consts::PI * params.divider);

        // Continuous generator M (companion A from the state space) and
        // input column P, extracted by probing the state-space callbacks.
        let mut m = CMat::zeros(n + 1, n + 1); // +1 column for the input trick
        let mut deriv = vec![0.0; nf];
        for j in 0..nf {
            let mut basis = vec![0.0; nf];
            basis[j] = 1.0;
            ss.eval_deriv(&basis, 0.0, &mut deriv);
            for (i, &d) in deriv.iter().enumerate() {
                m[(i, j)] = Complex::from_re(d);
            }
            m[(nf, j)] = Complex::from_re(g * ss.eval_output(&basis, 0.0));
        }
        // Input column: ẋ response to unit current (state at zero).
        let zero = vec![0.0; nf];
        ss.eval_deriv(&zero, 1.0, &mut deriv);
        let mut p = vec![0.0; n];
        p[..nf].copy_from_slice(&deriv);
        p[nf] = g * ss.eval_output(&zero, 1.0); // direct feedthrough (usually 0)

        // Augmented exponential over T: exp([[M·T, P·T],[0,0]]) =
        // [[e^{MT}, ∫e^{M(T−τ)}P dτ],[0,1]].
        for (i, &pi) in p.iter().enumerate() {
            m[(i, n)] = Complex::from_re(pi);
        }
        // Infallible here: m is square by construction and every entry
        // comes from finite state-space coefficients.
        let aug = expm(&m.scale(Complex::from_re(params.t_ref)))
            .expect("augmented generator is square and finite");
        let propagator = CMat::from_fn(n, n, |i, j| aug[(i, j)]);
        let leak_response: Vec<f64> = (0..n).map(|i| aug[(i, n)].re).collect();

        // Impulse injection direction is the same input column P:
        // x += B·q and θ += g·D·q.
        let injection = p;

        PeriodMap {
            propagator,
            leak_response,
            injection,
            z: vec![0.0; n],
            i_cp: params.i_cp,
            leakage: params.leakage,
            law,
            kind,
            t_ref: params.t_ref,
        }
    }

    /// The reference period.
    pub fn t_ref(&self) -> f64 {
        self.t_ref
    }

    /// Current divided-VCO phase deviation `θ` (time units).
    pub fn theta(&self) -> f64 {
        *self.z.last().expect("state nonempty")
    }

    /// Advances one reference period given the reference phase sample
    /// `θ_ref,k`; returns the post-period `θ`.
    pub fn step(&mut self, theta_ref: f64) -> f64 {
        let e = theta_ref - self.theta();
        let q = self.law.charge(self.i_cp, e);
        // Constant drive over the period: leakage, plus the held
        // correction current q/T in Hold mode.
        let mut steady = self.leakage;
        match self.kind {
            CorrectionKind::Impulse => {
                // Impulsive injection at the period start.
                for (zi, pi) in self.z.iter_mut().zip(&self.injection) {
                    *zi += pi * q;
                }
            }
            CorrectionKind::Hold => steady += q / self.t_ref,
        }
        let zc: Vec<Complex> = self.z.iter().map(|&v| Complex::from_re(v)).collect();
        let advanced = self.propagator.mul_vec(&zc);
        for ((zi, a), l) in self.z.iter_mut().zip(&advanced).zip(&self.leak_response) {
            *zi = a.re + l * steady;
        }
        self.theta()
    }

    /// Runs `n` periods with `theta_ref(k)` supplying the reference
    /// phase at period `k`; returns the per-period `θ` sequence.
    pub fn run<F: FnMut(usize) -> f64>(&mut self, n: usize, mut theta_ref: F) -> Vec<f64> {
        (0..n).map(|k| self.step(theta_ref(k))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htmpll_core::{PllDesign, PllModel};
    use htmpll_zdomain::CpPllZModel;

    fn params(ratio: f64) -> SimParams {
        SimParams::from_design(&PllDesign::reference_design(ratio).unwrap())
    }

    #[test]
    fn matches_zdomain_step_response() {
        // Same impulse approximation ⇒ the period map and the Hein–Scott
        // pulse transfer function are the same discrete system.
        let design = PllDesign::reference_design(0.15).unwrap();
        let zm = CpPllZModel::from_design(&design).unwrap();
        let z_step = zm.closed_loop().unwrap().step_response(41);
        let mut map = PeriodMap::new(&SimParams::from_design(&design), PulseLaw::Linear);
        let theta = map.run(40, |_| 1.0);
        // The map reports θ *after* each period's propagation, i.e.
        // θ((k+1)T): compare against the z-domain sample k+1.
        for (k, a) in theta.iter().enumerate() {
            let b = z_step[k + 1];
            assert!((a - b).abs() < 1e-9, "k={k}: map {a} vs zdomain {b}");
        }
    }

    #[test]
    fn tracks_phase_step_to_zero_error() {
        let mut map = PeriodMap::new(&params(0.1), PulseLaw::Linear);
        let theta = map.run(400, |_| 2.5e-3);
        assert!((theta.last().unwrap() - 2.5e-3).abs() < 1e-6);
    }

    #[test]
    fn tone_response_matches_h00() {
        // Drive with a sampled sinusoid, extract the tone, compare with
        // the HTM baseband transfer at the same frequency.
        let ratio = 0.1;
        let design = PllDesign::reference_design(ratio).unwrap();
        let model = PllModel::builder(design.clone()).build().unwrap();
        let p = SimParams::from_design(&design);
        let mut map = PeriodMap::new(&p, PulseLaw::Linear);
        let t = p.t_ref;
        // Integer number of tone cycles over the record.
        let n = 4000usize;
        let cycles = 40.0;
        let w = 2.0 * std::f64::consts::PI * cycles / (n as f64 * t);
        let amp = 1e-4 * t;
        let _ = map.run(2000, |k| amp * (w * (k as f64) * t).sin()); // settle
        let start = 2000usize;
        let out = map.run(n, |k| amp * (w * ((start + k) as f64) * t).sin());
        let stim: Vec<f64> = (0..n)
            .map(|k| amp * (w * ((start + k + 1) as f64) * t).sin())
            .collect();
        let h = htmpll_spectral::tone_transfer(&stim, &out, w, t);
        let predict = model.h00(w);
        let err = (h - predict).abs() / predict.abs();
        // The period map samples θ once per period (no inter-sample
        // detail), so agreement is to the discrete/continuous gap.
        assert!(err < 0.05, "map {h} vs htm {predict} (err {err:.4})");
    }

    #[test]
    fn dead_zone_wanders() {
        let mut map = PeriodMap::new(&params(0.1), PulseLaw::DeadZone { width: 1e-3 });
        let offset = 5e-4; // inside the dead zone
        let theta = map.run(600, |_| offset);
        let residual = offset - theta.last().unwrap();
        assert!(
            residual.abs() > 0.5 * offset,
            "dead zone should leave the offset uncorrected: {residual}"
        );
    }

    #[test]
    fn saturation_slows_large_steps() {
        let p = params(0.1);
        let step = 0.05 * p.t_ref;
        let mut lin = PeriodMap::new(&p, PulseLaw::Linear);
        let mut sat = PeriodMap::new(
            &p,
            PulseLaw::Saturating {
                max_width: 0.01 * p.t_ref,
            },
        );
        let y_lin = lin.run(50, |_| step);
        let y_sat = sat.run(50, |_| step);
        // After a few periods the saturating loop lags the linear one.
        assert!(y_sat[5] < y_lin[5]);
        // But it still gets there eventually.
        let mut sat2 = PeriodMap::new(
            &p,
            PulseLaw::Saturating {
                max_width: 0.01 * p.t_ref,
            },
        );
        let y_final = sat2.run(2000, |_| step);
        assert!((y_final.last().unwrap() - step).abs() < 1e-3 * step);
    }

    #[test]
    fn leakage_static_offset_matches_full_engine_physics() {
        let mut p = params(0.1);
        p.leakage = 1e-3 * p.i_cp;
        let mut map = PeriodMap::new(&p, PulseLaw::Linear);
        let theta = map.run(3000, |_| 0.0);
        let expect = p.leakage * p.t_ref / p.i_cp;
        let got = *theta.last().unwrap();
        assert!((got - expect).abs() < 0.1 * expect, "{got} vs {expect}");
    }

    #[test]
    fn hold_mode_matches_sample_hold_model() {
        // The Hold period map is an independent discrete-time truth for
        // the S&H PFD: its tone response must match the continuous
        // SampleHoldModel's H₀,₀ from the lattice-sum path.
        use htmpll_core::SampleHoldModel;
        let ratio = 0.1;
        let design = PllDesign::reference_design(ratio).unwrap();
        let sh = SampleHoldModel::new(design.clone()).unwrap();
        let p = SimParams::from_design(&design);
        let mut map = PeriodMap::with_kind(&p, PulseLaw::Linear, CorrectionKind::Hold);
        let t = p.t_ref;
        let n = 4000usize;
        let cycles = 40.0;
        let w = 2.0 * std::f64::consts::PI * cycles / (n as f64 * t);
        let amp = 1e-4 * t;
        let _ = map.run(2000, |k| amp * (w * (k as f64) * t).sin());
        let start = 2000usize;
        let out = map.run(n, |k| amp * (w * ((start + k) as f64) * t).sin());
        let stim: Vec<f64> = (0..n)
            .map(|k| amp * (w * ((start + k + 1) as f64) * t).sin())
            .collect();
        let h = htmpll_spectral::tone_transfer(&stim, &out, w, t);
        let predict = sh.h00(w);
        let err = (h - predict).abs() / predict.abs();
        assert!(err < 0.05, "map {h} vs S&H model {predict} (err {err:.4})");
        // And it must differ measurably from the impulse model at this
        // frequency (the hold's phase lag).
        let imp = PllModel::builder(design).build().unwrap().h00(w);
        assert!((h - imp).abs() / imp.abs() > 2.0 * err);
    }

    #[test]
    fn hold_mode_tracks_and_settles() {
        let mut map = PeriodMap::with_kind(&params(0.1), PulseLaw::Linear, CorrectionKind::Hold);
        let theta = map.run(600, |_| 1.5e-3);
        assert!((theta.last().unwrap() - 1.5e-3).abs() < 1e-6);
    }

    #[test]
    fn pulse_laws() {
        assert_eq!(PulseLaw::Linear.charge(2.0, 0.3), 0.6);
        let dz = PulseLaw::DeadZone { width: 0.1 };
        assert_eq!(dz.charge(1.0, 0.05), 0.0);
        assert!((dz.charge(1.0, 0.3) - 0.2).abs() < 1e-15);
        assert!((dz.charge(1.0, -0.3) + 0.2).abs() < 1e-15);
        let sat = PulseLaw::Saturating { max_width: 0.2 };
        assert_eq!(sat.charge(1.0, 0.1), 0.1);
        assert_eq!(sat.charge(1.0, 5.0), 0.2);
        assert_eq!(sat.charge(1.0, -5.0), -0.2);
    }
}
