//! # htmpll-sim — behavioral time-domain PLL simulator
//!
//! The verification substrate of the workspace: an event-driven
//! simulation of a charge-pump PLL at the same abstraction level as the
//! paper's Matlab/Simulink model. The PFD is a tri-state flip-flop pair
//! whose pulses have finite width (the sampled phase error), so the
//! simulator exercises precisely the behavior that the impulse-train HTM
//! model approximates — making it the ground truth for the Fig.-6
//! comparison and the Fig.-4 pulse-vs-impulse study.
//!
//! * [`state_space`] — loop-filter ODE integration (controllable
//!   canonical form, RK4).
//! * [`pfd`] — tri-state PFD + charge pump.
//! * [`engine`] — the event loop: edge solving, bisection-accurate
//!   event location, uniform-rate trace recording, reference jitter
//!   injection.
//! * [`measure`] — single-tone closed-loop transfer extraction (the
//!   paper's §5 procedure).
//! * [`lock`] — large-signal lock-acquisition runs.
//!
//! ```no_run
//! use htmpll_core::PllDesign;
//! use htmpll_sim::engine::{PllSim, SimConfig, SimParams};
//!
//! let d = PllDesign::reference_design(0.1).unwrap();
//! let mut sim = PllSim::new(SimParams::from_design(&d), SimConfig::default());
//! let trace = sim.run(10.0 * sim.params().t_ref, &|t| 1e-3 * (0.5 * t).sin());
//! println!("recorded {} samples", trace.theta_vco.len());
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod fast;
pub mod lock;
pub mod measure;
pub mod pfd;
pub mod sigma_delta;
pub mod state_space;

pub use engine::{PllSim, SimConfig, SimParams, Trace};
pub use fast::{CorrectionKind, PeriodMap, PulseLaw};
pub use lock::{acquire_lock, LockOptions, LockResult};
pub use measure::{
    measure_band_transfer, measure_h00, measure_h00_multitone, sweep_h00, MeasureOptions,
    ToneMeasurement,
};
pub use pfd::TriStatePfd;
pub use sigma_delta::{Mash111, MashError};
pub use state_space::StateSpace;
