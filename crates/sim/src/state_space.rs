//! Real state-space realization of a transfer function, with RK4
//! integration.
//!
//! The loop-filter network is simulated as `ẋ = Ax + B·i(t)`,
//! `v = Cx + D·i(t)` in controllable canonical form, built from any
//! proper rational transimpedance `Z(s)`. The charge-pump current is
//! piecewise constant between PFD events, so fixed-step RK4 with
//! substepping tied to the fastest pole is accurate to O(h⁴) and has no
//! discontinuity inside any step.
//!
//! ```
//! use htmpll_sim::state_space::StateSpace;
//! use htmpll_lti::Tf;
//!
//! // 1/(s+1) driven by a unit step: v(t) = 1 − e^{−t}.
//! let mut ss = StateSpace::from_tf(&Tf::from_coeffs(vec![1.0], vec![1.0, 1.0]).unwrap());
//! ss.step(1.0, 1.0, 64);
//! assert!((ss.output(1.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-9);
//! ```

use htmpll_lti::Tf;

/// A single-input single-output real state-space system in controllable
/// canonical form.
#[derive(Debug, Clone)]
pub struct StateSpace {
    /// Denominator coefficients, monic, ascending (length n+1 with last
    /// element 1): the companion-form feedback row.
    den: Vec<f64>,
    /// Numerator coefficients mapped onto the state (length n).
    c_row: Vec<f64>,
    /// Direct feedthrough.
    d: f64,
    /// State vector (length n).
    x: Vec<f64>,
}

impl StateSpace {
    /// Builds the controllable-canonical realization of a **proper**
    /// transfer function.
    ///
    /// # Panics
    ///
    /// Panics when the transfer function is improper (`deg num > deg
    /// den`) — physical loop filters never are.
    pub fn from_tf(tf: &Tf) -> StateSpace {
        assert!(
            tf.is_proper(),
            "state-space realization requires a proper transfer function"
        );
        let den_raw = tf.den().coeffs();
        let n = tf.den().degree();
        let lead = *den_raw.last().expect("nonzero denominator");
        // Monic denominator a_0 + a_1 s + … + s^n.
        let den: Vec<f64> = den_raw.iter().map(|c| c / lead).collect();
        // Split off direct feedthrough for biproper inputs:
        // N(s)/D(s) = d + R(s)/D(s) with deg R < n.
        let num_raw = tf.num().coeffs();
        let d = if tf.num().degree() == n && !tf.num().is_zero() {
            num_raw[n] / lead
        } else {
            0.0
        };
        let mut c_row = vec![0.0; n];
        for (k, c) in c_row.iter_mut().enumerate() {
            let num_k = num_raw.get(k).copied().unwrap_or(0.0) / lead;
            *c = num_k - d * den[k];
        }
        StateSpace {
            den,
            c_row,
            d,
            x: vec![0.0; n],
        }
    }

    /// Number of states.
    pub fn order(&self) -> usize {
        self.x.len()
    }

    /// Borrows the state vector.
    pub fn state(&self) -> &[f64] {
        &self.x
    }

    /// Overwrites the state vector.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn set_state(&mut self, x: &[f64]) {
        assert_eq!(x.len(), self.x.len(), "state length mismatch");
        self.x.copy_from_slice(x);
    }

    /// Resets the state to zero.
    pub fn reset(&mut self) {
        self.x.iter_mut().for_each(|v| *v = 0.0);
    }

    /// The output `v = Cx + D·u` for the current state and input `u`.
    pub fn output(&self, u: f64) -> f64 {
        self.eval_output(&self.x, u)
    }

    /// The output for an **explicit** state vector (used by callers that
    /// co-integrate this system inside a larger ODE).
    pub fn eval_output(&self, x: &[f64], u: f64) -> f64 {
        self.c_row.iter().zip(x).map(|(c, x)| c * x).sum::<f64>() + self.d * u
    }

    /// The state derivative for an explicit state vector; `out` must
    /// have length [`order`](StateSpace::order).
    pub fn eval_deriv(&self, x: &[f64], u: f64, out: &mut [f64]) {
        self.deriv(x, u, out);
    }

    /// Magnitude of the fastest pole (for substep selection); zero for a
    /// static system.
    pub fn fastest_pole(&self, tf: &Tf) -> f64 {
        tf.poles()
            .map(|ps| ps.iter().map(|p| p.abs()).fold(0.0, f64::max))
            .unwrap_or(0.0)
    }

    /// State derivative for constant input `u` (companion form).
    fn deriv(&self, x: &[f64], u: f64, out: &mut [f64]) {
        let n = x.len();
        if n == 0 {
            return;
        }
        out[..n - 1].copy_from_slice(&x[1..n]);
        let mut acc = u;
        for (k, &a) in self.den.iter().take(n).enumerate() {
            acc -= a * x[k];
        }
        out[n - 1] = acc;
    }

    /// Advances the state by `h` seconds with constant input `u`, using
    /// `substeps` RK4 sub-intervals.
    ///
    /// # Panics
    ///
    /// Panics when `substeps == 0` or `h < 0`.
    pub fn step(&mut self, h: f64, u: f64, substeps: usize) {
        assert!(substeps > 0, "need at least one substep");
        assert!(h >= 0.0, "negative step");
        if h == 0.0 || self.x.is_empty() {
            return;
        }
        let hs = h / substeps as f64;
        let n = self.x.len();
        let mut k1 = vec![0.0; n];
        let mut k2 = vec![0.0; n];
        let mut k3 = vec![0.0; n];
        let mut k4 = vec![0.0; n];
        let mut tmp = vec![0.0; n];
        for _ in 0..substeps {
            self.deriv(&self.x, u, &mut k1);
            for i in 0..n {
                tmp[i] = self.x[i] + 0.5 * hs * k1[i];
            }
            self.deriv(&tmp, u, &mut k2);
            for i in 0..n {
                tmp[i] = self.x[i] + 0.5 * hs * k2[i];
            }
            self.deriv(&tmp, u, &mut k3);
            for i in 0..n {
                tmp[i] = self.x[i] + hs * k3[i];
            }
            self.deriv(&tmp, u, &mut k4);
            for i in 0..n {
                self.x[i] += hs / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htmpll_lti::response::step_response;

    #[test]
    fn first_order_step_matches_analytic() {
        let tf = Tf::from_coeffs(vec![2.0], vec![3.0, 1.0]).unwrap();
        let mut ss = StateSpace::from_tf(&tf);
        assert_eq!(ss.order(), 1);
        let mut t = 0.0;
        for _ in 0..50 {
            ss.step(0.05, 1.0, 8);
            t += 0.05;
            let t_now: f64 = t;
            let expect = (2.0 / 3.0) * (1.0 - (-3.0 * t_now).exp());
            assert!((ss.output(1.0) - expect).abs() < 1e-9, "t={t}");
        }
    }

    #[test]
    fn second_order_matches_pfe_step() {
        // Cross-check against the exact PFE-based step response.
        let tf = Tf::from_coeffs(vec![5.0, 1.0], vec![4.0, 1.2, 1.0]).unwrap();
        let ts: Vec<f64> = (1..=20).map(|k| 0.2 * k as f64).collect();
        let exact = step_response(&tf, &ts).unwrap();
        let mut ss = StateSpace::from_tf(&tf);
        let mut t = 0.0;
        for (t_target, e) in ts.iter().zip(&exact) {
            ss.step(t_target - t, 1.0, 64);
            t = *t_target;
            assert!(
                (ss.output(1.0) - e).abs() < 1e-8,
                "t={t}: {} vs {e}",
                ss.output(1.0)
            );
        }
    }

    #[test]
    fn biproper_direct_feedthrough() {
        // (s+2)/(s+1): D = 1, instantaneous response to input.
        let tf = Tf::from_coeffs(vec![2.0, 1.0], vec![1.0, 1.0]).unwrap();
        let ss = StateSpace::from_tf(&tf);
        assert!((ss.output(1.0) - 1.0).abs() < 1e-12); // x = 0, v = D·u
        let mut ss = ss;
        ss.step(20.0, 1.0, 2000);
        // Settles to DC gain 2.
        assert!((ss.output(1.0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn integrator_ramps() {
        let mut ss = StateSpace::from_tf(&Tf::integrator());
        ss.step(2.5, 3.0, 16);
        assert!((ss.output(3.0) - 7.5).abs() < 1e-10);
    }

    #[test]
    fn charge_pump_filter_realization() {
        // The actual loop-filter shape: integrator + zero + HF pole.
        let f = htmpll_lti::ChargePumpFilter2::from_pole_zero(0.25, 4.0, 1.0).unwrap();
        let tf = f.impedance();
        let mut ss = StateSpace::from_tf(&tf);
        assert_eq!(ss.order(), 2);
        // Constant current in: output ramps at I/C_total plus transient.
        ss.step(50.0, 1.0, 5000);
        let v50 = ss.output(1.0);
        ss.step(1.0, 1.0, 100);
        let v51 = ss.output(1.0);
        // Long-term slope = 1/(C1+C2) = 1.
        assert!((v51 - v50 - 1.0).abs() < 1e-6, "slope {}", v51 - v50);
    }

    #[test]
    fn zero_step_is_identity() {
        let tf = Tf::from_coeffs(vec![1.0], vec![1.0, 1.0]).unwrap();
        let mut ss = StateSpace::from_tf(&tf);
        ss.step(1.0, 1.0, 8);
        let before = ss.state().to_vec();
        ss.step(0.0, 5.0, 8);
        assert_eq!(ss.state(), &before[..]);
    }

    #[test]
    fn state_accessors() {
        let tf = Tf::from_coeffs(vec![1.0], vec![1.0, 0.5, 1.0]).unwrap();
        let mut ss = StateSpace::from_tf(&tf);
        ss.set_state(&[1.0, 2.0]);
        assert_eq!(ss.state(), &[1.0, 2.0]);
        ss.reset();
        assert_eq!(ss.state(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "proper")]
    fn improper_rejected() {
        let _ = StateSpace::from_tf(&Tf::differentiator());
    }
}
