//! MASH-1-1-1 sigma-delta modulator for fractional-N division.
//!
//! A fractional-N synthesizer hits frequencies between integer multiples
//! of the reference by dithering the divider value around its mean. A
//! plain accumulator (first-order ΣΔ) produces strong fractional spurs;
//! the cascaded MASH-1-1-1 pushes the quantization noise up in frequency
//! with a `(1 − z⁻¹)³` shaping, where the loop's low-pass `|H₀,₀|²`
//! removes it — the standard architecture this module reproduces.
//!
//! ```
//! use htmpll_sim::sigma_delta::Mash111;
//!
//! let mut m = Mash111::new(0.25, 1 << 20, 1).unwrap();
//! let seq: Vec<i64> = (0..4096).map(|_| m.next_offset()).collect();
//! let mean = seq.iter().sum::<i64>() as f64 / seq.len() as f64;
//! assert!((mean - 0.25).abs() < 1e-2);
//! ```

use std::fmt;

/// Error returned by the modulator constructor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MashError {
    /// The fractional word must lie in `[0, 1)`.
    FractionOutOfRange,
    /// The modulus must be at least 2.
    ModulusTooSmall,
}

impl fmt::Display for MashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MashError::FractionOutOfRange => write!(f, "fraction must be in [0, 1)"),
            MashError::ModulusTooSmall => write!(f, "accumulator modulus must be at least 2"),
        }
    }
}

impl std::error::Error for MashError {}

/// Third-order MASH (1-1-1) sigma-delta modulator.
///
/// Three cascaded first-order accumulators; each stage's carry is
/// differentiated once more than the previous, giving the output
/// `y = c₁ + Δc₂ + Δ²c₃ ∈ {−3, …, +4}` with mean equal to the
/// programmed fraction and `(1 − z⁻¹)³`-shaped quantization noise.
#[derive(Debug, Clone)]
pub struct Mash111 {
    step: u64,
    modulus: u64,
    acc: [u64; 3],
    /// Previous carries for the first and second difference.
    c2_hist: i64,
    c3_hist: [i64; 2],
}

impl Mash111 {
    /// Creates a modulator for `fraction ∈ [0, 1)` with the given
    /// accumulator modulus; `seed` offsets the first accumulator so
    /// independent instances decorrelate.
    ///
    /// # Errors
    ///
    /// Rejects fractions outside `[0, 1)` and moduli below 2.
    pub fn new(fraction: f64, modulus: u64, seed: u64) -> Result<Mash111, MashError> {
        if !(0.0..1.0).contains(&fraction) {
            return Err(MashError::FractionOutOfRange);
        }
        if modulus < 2 {
            return Err(MashError::ModulusTooSmall);
        }
        let step = (fraction * modulus as f64).round() as u64 % modulus;
        Ok(Mash111 {
            step,
            modulus,
            acc: [seed % modulus, 0, 0],
            c2_hist: 0,
            c3_hist: [0, 0],
        })
    }

    /// The exact fraction realized after quantizing to the modulus.
    pub fn realized_fraction(&self) -> f64 {
        self.step as f64 / self.modulus as f64
    }

    /// Produces the next divider **offset** (add it to the integer part
    /// of the division ratio). Bounded to `{−3, …, +4}`.
    pub fn next_offset(&mut self) -> i64 {
        // Stage 1 integrates the input; stages 2 and 3 integrate the
        // residue of the stage before them.
        let s1 = self.acc[0] + self.step;
        let c1 = (s1 >= self.modulus) as i64;
        self.acc[0] = s1 % self.modulus;

        let s2 = self.acc[1] + self.acc[0];
        let c2 = (s2 >= self.modulus) as i64;
        self.acc[1] = s2 % self.modulus;

        let s3 = self.acc[2] + self.acc[1];
        let c3 = (s3 >= self.modulus) as i64;
        self.acc[2] = s3 % self.modulus;

        let d_c2 = c2 - self.c2_hist;
        self.c2_hist = c2;
        let dd_c3 = c3 - 2 * self.c3_hist[0] + self.c3_hist[1];
        self.c3_hist[1] = self.c3_hist[0];
        self.c3_hist[0] = c3;

        c1 + d_c2 + dd_c3
    }

    /// Generates `n` offsets as a sequence (convenience for the
    /// simulator's divider-sequence input).
    pub fn sequence(&mut self, n: usize) -> Vec<i64> {
        (0..n).map(|_| self.next_offset()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_equals_fraction() {
        for frac in [0.1, 0.25, 0.5, 0.73] {
            let mut m = Mash111::new(frac, 1 << 20, 7).unwrap();
            let n = 1 << 15;
            let mean = m.sequence(n).iter().sum::<i64>() as f64 / n as f64;
            assert!((mean - frac).abs() < 5e-3, "frac {frac}: mean {mean}");
        }
    }

    #[test]
    fn output_is_bounded() {
        let mut m = Mash111::new(0.37, 1 << 16, 3).unwrap();
        for v in m.sequence(1 << 14) {
            assert!((-3..=4).contains(&v), "out of range: {v}");
        }
    }

    #[test]
    fn zero_fraction_is_silent() {
        let mut m = Mash111::new(0.0, 1 << 10, 0).unwrap();
        assert!(m.sequence(100).iter().all(|&v| v == 0));
    }

    #[test]
    fn noise_is_high_pass_shaped() {
        // Spectral mass of (y − mean) concentrates at high frequencies:
        // compare first-difference energy against the raw variance (a
        // white sequence has ratio 2; third-order shaping pushes it
        // higher).
        let mut m = Mash111::new(0.321, 1 << 20, 11).unwrap();
        let seq: Vec<f64> = m.sequence(1 << 14).iter().map(|&v| v as f64).collect();
        let mean = seq.iter().sum::<f64>() / seq.len() as f64;
        let var: f64 = seq.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / seq.len() as f64;
        let dvar: f64 = seq
            .windows(2)
            .map(|w| (w[1] - w[0]) * (w[1] - w[0]))
            .sum::<f64>()
            / (seq.len() - 1) as f64;
        assert!(
            dvar / var > 2.5,
            "expected high-pass shaping, ratio {}",
            dvar / var
        );
    }

    #[test]
    fn realized_fraction_quantizes() {
        let m = Mash111::new(0.3, 10, 0).unwrap();
        assert!((m.realized_fraction() - 0.3).abs() < 1e-12);
        let m2 = Mash111::new(0.333, 4, 0).unwrap();
        assert!((m2.realized_fraction() - 0.25).abs() < 1e-12); // rounds to 1/4
    }

    #[test]
    fn invalid_inputs() {
        assert_eq!(
            Mash111::new(1.0, 16, 0).unwrap_err(),
            MashError::FractionOutOfRange
        );
        assert_eq!(
            Mash111::new(-0.1, 16, 0).unwrap_err(),
            MashError::FractionOutOfRange
        );
        assert_eq!(
            Mash111::new(0.5, 1, 0).unwrap_err(),
            MashError::ModulusTooSmall
        );
    }
}
