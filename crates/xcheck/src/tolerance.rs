//! The tolerance ladder: turning a measured deviation into a verdict.
//!
//! Every cross-stack comparison carries two numbers:
//!
//! * an **exact tier** below which the two routes are considered
//!   numerically identical (default [`EXACT_TIER`] = `1e-10`, sized for
//!   double-precision algebra chained through root finding and partial
//!   fractions), and
//! * an **analytic bound** — the deviation the *physics of the
//!   comparison* predicts: a truncation tail `2c/((d−1)ω₀^d M^{d−1})`,
//!   a half-sample Poisson correction `p(0⁺)/2`, solver roundoff at the
//!   grid's conditioning, or the statistical confidence of a
//!   finite-record measurement.
//!
//! A deviation inside the exact tier is [`Verdict::Agree`]; inside the
//! analytic bound it is a [`Verdict::ToleratedDivergence`] carrying the
//! bound and its reason (so a future regression that stays "tolerated"
//! is still visible in the report); beyond the bound it is a
//! [`Verdict::Mismatch`] and the run fails.

use crate::report::Verdict;

/// Exact-vs-exact agreement tier: double-precision algebra chained
/// through pole extraction / partial fractions keeps independent exact
/// routes within ~`1e-12`; `1e-10` leaves headroom without masking
/// real model errors (which show up at `1e-3`+).
pub const EXACT_TIER: f64 = 1e-10;

/// Grades a relative deviation on the ladder. `values` are the two
/// raw observables (used only in the mismatch verdict for diagnosis).
pub fn ladder(
    deviation: f64,
    exact_tier: f64,
    bound: f64,
    reason: &'static str,
    stacks: &'static str,
    values: (f64, f64),
) -> Verdict {
    if deviation.is_finite() && deviation <= exact_tier {
        Verdict::Agree
    } else if deviation.is_finite() && deviation <= bound {
        Verdict::ToleratedDivergence { bound, reason }
    } else {
        Verdict::Mismatch { stacks, values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_tiers() {
        let v = ladder(1e-12, EXACT_TIER, 1e-4, "tail", "a vs b", (1.0, 1.0));
        assert!(matches!(v, Verdict::Agree));
        let v = ladder(1e-6, EXACT_TIER, 1e-4, "tail", "a vs b", (1.0, 1.0));
        assert!(matches!(v, Verdict::ToleratedDivergence { .. }));
        let v = ladder(1e-2, EXACT_TIER, 1e-4, "tail", "a vs b", (1.0, 1.01));
        assert!(matches!(v, Verdict::Mismatch { .. }));
        // Non-finite deviations can never agree.
        let v = ladder(
            f64::NAN,
            EXACT_TIER,
            1e-4,
            "tail",
            "a vs b",
            (1.0, f64::NAN),
        );
        assert!(matches!(v, Verdict::Mismatch { .. }));
    }
}
