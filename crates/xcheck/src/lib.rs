//! # htmpll-xcheck — cross-stack differential verification
//!
//! The workspace computes the same physical quantities along three
//! independent routes:
//!
//! 1. **λ(s) stack** (`core`/`htm`): the exact `coth` lattice-sum
//!    effective gain, its truncated alias sum, the scalar closed forms
//!    `H₀,₀ = A/(1+λ)`, and the dense-LU harmonic-transfer-matrix
//!    reference path.
//! 2. **z-domain stack** (`zdomain`): the impulse-invariant Hein–Scott
//!    discrete model `G(z)`, its Jury stability verdict and sampled
//!    closed loop.
//! 3. **time-domain stack** (`sim`/`spectral`): the behavioral
//!    charge-pump simulator with tone/PSD measurement.
//!
//! Where the routes overlap they must agree — any systematic deviation
//! is a modeling bug in whichever stack a unit test happens not to
//! exercise. This crate runs a deterministic scenario corpus (seeded by
//! the vendored PRNG; `ω_UG/ω₀` from 0.01 to 0.45, 1st–3rd-order loop
//! filters, delay and ISF variants) through every overlapping
//! observable and grades each comparison on a physically-justified
//! tolerance ladder:
//!
//! * **exact tier** — algebraically identical quantities computed by
//!   independent algebra (e.g. `λ(jω)` vs `G(e^{jωT})`, which match
//!   exactly for relative degree ≥ 2 by impulse invariance): verdict
//!   [`Verdict::Agree`] at `1e-10`.
//! * **model tier** — quantities that differ by a *derivable* amount
//!   (truncation tails, half-sample Poisson corrections, solver
//!   roundoff): [`Verdict::ToleratedDivergence`] carrying the analytic
//!   bound and its reason.
//! * **statistical tier** — model vs finite-record simulation:
//!   tolerances set by record length and empirical extraction accuracy.
//!
//! Anything outside its bound is a [`Verdict::Mismatch`] — the
//! `plltool xcheck` subcommand exits 2 on any of those, making "the
//! three stacks agree" a CI-enforced invariant. The machine-readable
//! [`XcheckReport`] hashes to a deterministic FNV-1a digest that is
//! bitwise-identical across thread counts (timings are excluded).

#![warn(missing_docs)]

pub mod checks;
pub mod corpus;
pub mod report;
pub mod tolerance;

pub use checks::{run_corpus, XcheckError};
pub use corpus::{corpus, FilterKind, Scenario};
pub use report::{CheckResult, ScenarioReport, StackTimings, Verdict, XcheckReport};
pub use tolerance::{ladder, EXACT_TIER};
