//! Machine-readable verification report with a deterministic digest.
//!
//! The report is the corpus's single artifact: per-scenario,
//! per-comparison verdicts plus per-stack wall-clock. Everything except
//! the timings is folded into an FNV-1a digest, so "two runs produced
//! bitwise-identical numerical results" — e.g. across `HTMPLL_THREADS`
//! settings — collapses to one hex-string comparison. The JSON
//! rendering likewise excludes timings, making the files themselves
//! byte-comparable; wall-clock goes to a separate bench artifact.

use htmpll_num::hash::Fnv1a;
use std::fmt::Write as _;

/// Outcome of one cross-stack comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// The routes agree within the exact tier.
    Agree,
    /// The routes differ, but by less than a derivable amount.
    ToleratedDivergence {
        /// The analytic bound the deviation stayed under (relative).
        bound: f64,
        /// Where the bound comes from.
        reason: &'static str,
    },
    /// The routes disagree beyond any justified bound: a model bug.
    Mismatch {
        /// Which two stacks disagreed.
        stacks: &'static str,
        /// The two raw observables, for diagnosis.
        values: (f64, f64),
    },
}

/// One graded comparison.
#[derive(Debug, Clone)]
pub struct CheckResult {
    /// Short name of the comparison.
    pub check: &'static str,
    /// The stacks being reconciled (e.g. `"core::λ vs zdomain::G"`).
    pub stacks: &'static str,
    /// Observed relative deviation (worst over the probe grid).
    pub deviation: f64,
    /// The verdict from the tolerance ladder.
    pub verdict: Verdict,
}

/// All comparisons for one corpus scenario.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name (deterministic, from the corpus generator).
    pub scenario: String,
    /// Graded comparisons.
    pub checks: Vec<CheckResult>,
}

/// Per-stack wall-clock totals in milliseconds. **Excluded from the
/// digest and the JSON report** — timing is machine-dependent and must
/// not break bitwise determinism; it is exported separately as a bench
/// artifact.
#[derive(Debug, Clone, Copy, Default)]
pub struct StackTimings {
    /// λ evaluations (exact + truncated).
    pub lambda_ms: f64,
    /// Dense/SMW HTM closed-loop solves.
    pub htm_ms: f64,
    /// z-domain model construction and evaluation.
    pub zdomain_ms: f64,
    /// Behavioral simulation runs.
    pub sim_ms: f64,
    /// Spectral estimation on simulated records.
    pub spectral_ms: f64,
}

impl StackTimings {
    /// Total wall-clock across stacks.
    pub fn total_ms(&self) -> f64 {
        self.lambda_ms + self.htm_ms + self.zdomain_ms + self.sim_ms + self.spectral_ms
    }

    /// Bench-artifact JSON (`BENCH_xcheck_corpus.json` payload).
    pub fn to_bench_json(&self, corpus: &str, scenarios: usize, checks: usize) -> String {
        format!(
            concat!(
                "{{\"corpus\":\"{}\",\"scenarios\":{},\"checks\":{},",
                "\"wall_ms\":{{\"lambda\":{:.3},\"htm\":{:.3},\"zdomain\":{:.3},",
                "\"sim\":{:.3},\"spectral\":{:.3}}},\"total_ms\":{:.3}}}"
            ),
            corpus,
            scenarios,
            checks,
            self.lambda_ms,
            self.htm_ms,
            self.zdomain_ms,
            self.sim_ms,
            self.spectral_ms,
            self.total_ms()
        )
    }
}

/// The full corpus run.
#[derive(Debug, Clone)]
pub struct XcheckReport {
    /// Corpus name (`"default"`, `"quick"`).
    pub corpus: String,
    /// Per-scenario results.
    pub scenarios: Vec<ScenarioReport>,
    /// Per-stack wall-clock (not digested, not in the JSON report).
    pub timings: StackTimings,
}

impl XcheckReport {
    /// Number of `Mismatch` verdicts (exit-2 condition).
    pub fn mismatches(&self) -> usize {
        self.iter_checks()
            .filter(|c| matches!(c.verdict, Verdict::Mismatch { .. }))
            .count()
    }

    /// Number of `ToleratedDivergence` verdicts.
    pub fn tolerated(&self) -> usize {
        self.iter_checks()
            .filter(|c| matches!(c.verdict, Verdict::ToleratedDivergence { .. }))
            .count()
    }

    /// Number of `Agree` verdicts.
    pub fn agreements(&self) -> usize {
        self.iter_checks()
            .filter(|c| matches!(c.verdict, Verdict::Agree))
            .count()
    }

    /// Total comparisons.
    pub fn total_checks(&self) -> usize {
        self.iter_checks().count()
    }

    fn iter_checks(&self) -> impl Iterator<Item = &CheckResult> {
        self.scenarios.iter().flat_map(|s| s.checks.iter())
    }

    /// Deterministic FNV-1a digest over every numerical result —
    /// corpus name, scenario names, check names/stacks, deviation bit
    /// patterns and verdicts. Timings are deliberately excluded, so the
    /// digest is invariant across machines and thread counts.
    pub fn digest(&self) -> String {
        let mut h = Fnv1a::new();
        h.write_str(&self.corpus);
        h.write_u64(self.scenarios.len() as u64);
        for sc in &self.scenarios {
            h.write_str(&sc.scenario);
            h.write_u64(sc.checks.len() as u64);
            for c in &sc.checks {
                h.write_str(c.check);
                h.write_str(c.stacks);
                h.write_f64(c.deviation);
                match c.verdict {
                    Verdict::Agree => h.write_u64(0),
                    Verdict::ToleratedDivergence { bound, reason } => {
                        h.write_u64(1);
                        h.write_f64(bound);
                        h.write_str(reason);
                    }
                    Verdict::Mismatch { stacks, values } => {
                        h.write_u64(2);
                        h.write_str(stacks);
                        h.write_f64(values.0);
                        h.write_f64(values.1);
                    }
                }
            }
        }
        h.finish_hex()
    }

    /// JSON rendering of the full report (timings excluded; the digest
    /// is embedded so consumers can verify determinism offline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"corpus\":\"{}\",\"digest\":\"{}\",\"agree\":{},\"tolerated\":{},\"mismatch\":{},\"scenarios\":[",
            self.corpus,
            self.digest(),
            self.agreements(),
            self.tolerated(),
            self.mismatches()
        );
        for (i, sc) in self.scenarios.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\",\"checks\":[", sc.scenario);
            for (j, c) in sc.checks.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let (verdict, extra) = match c.verdict {
                    Verdict::Agree => ("agree", String::new()),
                    Verdict::ToleratedDivergence { bound, reason } => (
                        "tolerated",
                        format!(",\"bound\":{bound:e},\"reason\":\"{reason}\""),
                    ),
                    Verdict::Mismatch { stacks, values } => (
                        "mismatch",
                        format!(
                            ",\"between\":\"{stacks}\",\"values\":[{:e},{:e}]",
                            values.0, values.1
                        ),
                    ),
                };
                let _ = write!(
                    out,
                    "{{\"check\":\"{}\",\"stacks\":\"{}\",\"deviation\":{:e},\"verdict\":\"{verdict}\"{extra}}}",
                    c.check, c.stacks, c.deviation
                );
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Human-readable table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        for sc in &self.scenarios {
            let _ = writeln!(out, "scenario {}", sc.scenario);
            for c in &sc.checks {
                let verdict = match c.verdict {
                    Verdict::Agree => "agree".to_string(),
                    Verdict::ToleratedDivergence { bound, reason } => {
                        format!("tolerated (bound {bound:.2e}: {reason})")
                    }
                    Verdict::Mismatch { stacks, values } => {
                        format!("MISMATCH {stacks}: {:.6e} vs {:.6e}", values.0, values.1)
                    }
                };
                let _ = writeln!(
                    out,
                    "  {:<34} {:<30} dev {:>9.2e}  {}",
                    c.check, c.stacks, c.deviation, verdict
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> XcheckReport {
        XcheckReport {
            corpus: "test".into(),
            scenarios: vec![ScenarioReport {
                scenario: "s1".into(),
                checks: vec![
                    CheckResult {
                        check: "a",
                        stacks: "x vs y",
                        deviation: 1e-12,
                        verdict: Verdict::Agree,
                    },
                    CheckResult {
                        check: "b",
                        stacks: "x vs z",
                        deviation: 1e-5,
                        verdict: Verdict::ToleratedDivergence {
                            bound: 1e-4,
                            reason: "tail",
                        },
                    },
                ],
            }],
            timings: StackTimings::default(),
        }
    }

    #[test]
    fn digest_ignores_timings() {
        let mut a = sample();
        let d0 = a.digest();
        a.timings.sim_ms = 123.0;
        assert_eq!(a.digest(), d0);
        // ... but is sensitive to any numerical result.
        a.scenarios[0].checks[0].deviation = 2e-12;
        assert_ne!(a.digest(), d0);
    }

    #[test]
    fn json_excludes_timings_and_embeds_digest() {
        let mut a = sample();
        let j0 = a.to_json();
        a.timings.lambda_ms = 9.0;
        assert_eq!(a.to_json(), j0, "timings must not leak into the report");
        assert!(j0.contains(&a.digest()));
        assert!(j0.contains("\"verdict\":\"agree\""));
        assert!(j0.contains("\"reason\":\"tail\""));
    }

    #[test]
    fn counters_add_up() {
        let a = sample();
        assert_eq!(a.agreements(), 1);
        assert_eq!(a.tolerated(), 1);
        assert_eq!(a.mismatches(), 0);
        assert_eq!(a.total_checks(), 2);
    }

    #[test]
    fn bench_json_has_stack_breakdown() {
        let t = StackTimings {
            lambda_ms: 1.0,
            htm_ms: 2.0,
            zdomain_ms: 3.0,
            sim_ms: 4.0,
            spectral_ms: 5.0,
        };
        let j = t.to_bench_json("quick", 4, 20);
        assert!(j.contains("\"corpus\":\"quick\""));
        assert!(j.contains("\"lambda\":1.000"));
        assert!(j.contains("\"total_ms\":15.000"));
    }
}
