//! The cross-stack comparisons and the corpus driver.
//!
//! Each scenario is pushed through every overlapping observable of the
//! three stacks:
//!
//! | check | stacks reconciled | identity |
//! |---|---|---|
//! | `lambda-truncation` | exact `coth` λ vs `Σ_{\|m\|≤M}` | eq. 37, Richardson-bounded tail |
//! | `smw-vs-dense` | rank-one SMW closed loop vs dense LU | same matrix, two solvers |
//! | `structured-vs-dense` | structured kernel dispatch vs dense ladder | same matrix, two kernel families |
//! | `h00-vs-dense` | scalar `A/(1+λ)` vs HTM `(0,0)` band | eq. 38 vs truncated reference |
//! | `lambda-vs-ztf` | `λ(jω)` vs `G(e^{jωT})` | impulse invariance (exact, rel. deg. ≥ 2) |
//! | `half-sample-residual` | ditto, relative degree 1 | Poisson correction `T·c/2` |
//! | `closed-loop-sampled` | `λ/(1+λ)` vs `G/(1+G)` | sampled closed loop |
//! | `jury-vs-nyquist` | Jury test vs HTM-Nyquist verdict | same stability boundary |
//! | `crossing-consistency` | analysis margins vs direct λ | `\|λ(jω_UG,eff)\| = 1` |
//! | `sim-h00` | multitone simulation vs `H₀,₀` | paper Fig. 6 |
//! | `sim-spur` | Goertzel on sim trace vs `LeakageSpurs` | reference-spur closed form |
//! | `sim-psd-parseval` | PSD of sim record vs its mean square | Parseval |
//! | `nyquist-vs-jury-…`, `sim-lock-…` | all three at the stability limit | one shared boundary |
//!
//! Every comparison is graded on the [`crate::tolerance`] ladder with a
//! bound derived from the physics of the comparison — never a fudge
//! factor picked to make the corpus pass. The corpus driver runs
//! scenarios on the `htmpll-par` pool; all numerical work is
//! per-scenario deterministic, so the report digest is bitwise-stable
//! across thread counts.

use crate::corpus::{corpus, Scenario};
use crate::report::{CheckResult, ScenarioReport, StackTimings, Verdict, XcheckReport};
use crate::tolerance::{ladder, EXACT_TIER};
use htmpll_core::{
    analyze_with, AnalysisReport, CoreError, KernelPolicy, LeakageSpurs, PllDesign, PllModel,
    SweepCache, SweepWorkspace,
};
use htmpll_htm::Truncation;
use htmpll_num::Complex;
use htmpll_par::{par_map, ThreadBudget};
use htmpll_sim::{acquire_lock, measure_h00_multitone, LockOptions, MeasureOptions};
use htmpll_sim::{PllSim, SimConfig, SimParams};
use htmpll_spectral::goertzel::tone_amplitude;
use htmpll_spectral::{periodogram, Window};
use htmpll_zdomain::{impulse_invariant, jury_stable, reference_design_stability_limit, Zf};
use std::fmt;
use std::time::Instant;

/// Truncation order for the dense HTM reference path.
const DENSE_K: usize = 16;
/// Alias-sum length for the truncation cross-check (the Richardson
/// bound is computed from `M` and `2M`).
const TRUNC_M: usize = 10_000;
/// Probe frequencies as fractions of the Nyquist band edge `ω₀/2`.
const PROBE_FRACS: [f64; 5] = [0.08, 0.2, 0.4, 0.6, 0.85];

/// Failure to *run* the corpus (as opposed to a model discrepancy,
/// which is a [`Verdict::Mismatch`] in the report).
#[derive(Debug)]
pub enum XcheckError {
    /// No corpus with that name.
    UnknownCorpus(String),
    /// A model failed to build or analyze.
    Core(CoreError),
    /// A z-domain construction failed.
    ZDomain(String),
}

impl fmt::Display for XcheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XcheckError::UnknownCorpus(n) => write!(f, "unknown corpus {n:?}"),
            XcheckError::Core(e) => write!(f, "model construction/analysis failed: {e}"),
            XcheckError::ZDomain(e) => write!(f, "z-domain construction failed: {e}"),
        }
    }
}

impl std::error::Error for XcheckError {}

impl From<CoreError> for XcheckError {
    fn from(e: CoreError) -> Self {
        XcheckError::Core(e)
    }
}

/// One graded probe point.
struct Pt {
    deviation: f64,
    bound: f64,
    values: (f64, f64),
}

/// Grades a set of probe points and keeps the worst: any mismatch wins,
/// otherwise the largest deviation.
fn grade(
    check: &'static str,
    stacks: &'static str,
    reason: &'static str,
    tier: f64,
    pts: &[Pt],
) -> CheckResult {
    let mut worst: Option<(u8, &Pt, Verdict)> = None;
    for p in pts {
        let v = ladder(p.deviation, tier, p.bound, reason, stacks, p.values);
        let rank = match v {
            Verdict::Agree => 0,
            Verdict::ToleratedDivergence { .. } => 1,
            Verdict::Mismatch { .. } => 2,
        };
        let replace = match &worst {
            None => true,
            Some((r, w, _)) => {
                rank > *r || (rank == *r && p.deviation.max(-1.0) > w.deviation.max(-1.0))
            }
        };
        if replace {
            worst = Some((rank, p, v));
        }
    }
    let (_, p, verdict) = worst.expect("at least one probe point");
    CheckResult {
        check,
        stacks,
        deviation: p.deviation,
        verdict,
    }
}

/// Grades a boolean agreement (stability verdicts, lock outcomes).
fn grade_bool(check: &'static str, stacks: &'static str, a: bool, b: bool) -> CheckResult {
    let deviation = if a == b { 0.0 } else { 1.0 };
    CheckResult {
        check,
        stacks,
        deviation,
        verdict: ladder(
            deviation,
            0.5,
            0.5,
            "boolean",
            stacks,
            (a as u8 as f64, b as u8 as f64),
        ),
    }
}

fn ms_since(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// λ-stack internal consistency: the exact lattice-sum closed form vs
/// the truncated alias sum, with a Richardson error estimate. The tail
/// decays like `C/M^{d−1}` (`d ≥ 2`) or `C/M` for the symmetric
/// relative-degree-1 sum, so `e(M) − e(2M) ≥ e(2M)` and
/// `4·(e(M) − e(2M))` bounds `e(2M)` with margin.
fn check_lambda_truncation(model: &PllModel, probes: &[f64]) -> CheckResult {
    let lam = model.lambda();
    let pts: Vec<Pt> = probes
        .iter()
        .map(|&w| {
            let s = Complex::from_im(w);
            let exact = lam.eval(s);
            let scale = 1.0 + exact.abs();
            let t2m = lam.eval_truncated(s, 2 * TRUNC_M);
            let e1 = (lam.eval_truncated(s, TRUNC_M) - exact).abs();
            let e2 = (t2m - exact).abs();
            Pt {
                deviation: e2 / scale,
                bound: 4.0 * (e1 - e2).max(0.0) / scale + 1e-11,
                values: (exact.abs(), t2m.abs()),
            }
        })
        .collect();
    grade(
        "lambda-truncation",
        "core::λ exact vs Σ|m|≤M",
        "Richardson tail estimate 4(e(M)−e(2M))",
        EXACT_TIER,
        &pts,
    )
}

/// Two solvers, one matrix: the rank-one Sherman–Morrison closed loop
/// against the dense-LU reference at identical truncation. Differences
/// are pure linear-algebra roundoff, amplified by the conditioning of
/// `I + G̃` (worst near crossover where `|1+λ|` is small).
fn check_smw_vs_dense(model: &PllModel, probes: &[f64]) -> Result<CheckResult, XcheckError> {
    let k = Truncation::new(DENSE_K);
    let lam = model.lambda();
    let pts: Vec<Pt> = probes
        .iter()
        .map(|&w| {
            let s = Complex::from_im(w);
            let smw = model.closed_loop_htm(s, k);
            let dense = model.closed_loop_htm_dense(s, k)?;
            let scale = dense
                .as_matrix()
                .as_slice()
                .iter()
                .fold(0.0f64, |a, z| a.max(z.abs()))
                .max(1e-300);
            let diff = smw.as_matrix().max_diff(dense.as_matrix());
            // Conditioning of the solve: `1/|1+λ_K|` is the rank-one
            // loop's exact inverse-amplification factor.
            let cond = (Complex::ONE + lam.eval_truncated(s, DENSE_K))
                .abs()
                .recip();
            Ok(Pt {
                deviation: diff / scale,
                bound: 1e-12 * (DENSE_K as f64) * (1.0 + cond),
                values: (scale, diff),
            })
        })
        .collect::<Result<_, XcheckError>>()?;
    Ok(grade(
        "smw-vs-dense",
        "core::SMW vs htm::LU",
        "solver roundoff × (1 + 1/|1+λ|)",
        EXACT_TIER,
        &pts,
    ))
}

/// The paper's eq.-38 scalar closed form `H₀,₀ = A/(1+λ)` (exact λ)
/// against the `(0,0)` band of the dense truncated reference. The only
/// legitimate gap is the λ truncation at order `K`, which is directly
/// computable: `t_K = |λ − λ_K|` enters through the resolvent as
/// `≈ |H₀,₀|·t_K/|1+λ_K|`.
fn check_h00_vs_dense(model: &PllModel, probes: &[f64]) -> Result<CheckResult, XcheckError> {
    let k = Truncation::new(DENSE_K);
    let lam = model.lambda();
    let pts: Vec<Pt> = probes
        .iter()
        .map(|&w| {
            let s = Complex::from_im(w);
            let h00 = model.h00(w);
            let d00 = model.closed_loop_htm_dense(s, k)?.band(0, 0);
            let lam_exact = lam.eval(s);
            let lam_k = lam.eval_truncated(s, DENSE_K);
            let t_k = (lam_exact - lam_k).abs();
            let scale = 1.0 + h00.abs();
            Ok(Pt {
                deviation: (h00 - d00).abs() / scale,
                bound: 5.0 * h00.abs() * t_k / ((Complex::ONE + lam_k).abs().max(1e-300) * scale)
                    + 1e-9,
                values: (h00.abs(), d00.abs()),
            })
        })
        .collect::<Result<_, XcheckError>>()?;
    Ok(grade(
        "h00-vs-dense",
        "core::A/(1+λ) vs htm::band(0,0)",
        "λ truncation tail t_K through the resolvent",
        EXACT_TIER,
        &pts,
    ))
}

/// The structured kernel family (rank-one / diagonal / banded dispatch
/// with the Sherman–Morrison and banded-LU fast paths) against the
/// forced dense escalating ladder at identical truncation — same
/// closed-loop matrix, two kernel implementations, reconciled entry by
/// entry and on the `(0,0)` baseband element. Differences are pure
/// solver roundoff amplified by the conditioning of `I + G̃`.
fn check_structured_vs_dense(model: &PllModel, probes: &[f64]) -> Result<CheckResult, XcheckError> {
    let k = Truncation::new(DENSE_K);
    let lam = model.lambda();
    let cache = SweepCache::new();
    let mut ws = SweepWorkspace::new();
    let mut solve = |w: f64, kernel: KernelPolicy| {
        cache
            .dense_robust_with(model, Complex::from_im(w), k, kernel, &mut ws)
            .map_err(|reason| XcheckError::Core(CoreError::SweepFailed { reason }))
    };
    let mut pts = Vec::with_capacity(2 * probes.len());
    for &w in probes {
        let fast = solve(w, KernelPolicy::Structured)?;
        let strict = solve(w, KernelPolicy::Dense)?;
        let dense = strict.htm.as_matrix();
        let scale = dense
            .as_slice()
            .iter()
            .fold(0.0f64, |a, z| a.max(z.abs()))
            .max(1e-300);
        let cond = (Complex::ONE + lam.eval_truncated(Complex::from_im(w), DENSE_K))
            .abs()
            .recip();
        pts.push(Pt {
            deviation: fast.htm.as_matrix().max_diff(dense) / scale,
            bound: 1e-12 * (DENSE_K as f64) * (1.0 + cond),
            values: (scale, fast.htm.as_matrix().max_diff(dense)),
        });
        let (f00, d00) = (fast.htm.band(0, 0), strict.htm.band(0, 0));
        pts.push(Pt {
            deviation: (f00 - d00).abs() / (1.0 + d00.abs()),
            bound: 1e-12 * (DENSE_K as f64) * (1.0 + cond),
            values: (f00.abs(), d00.abs()),
        });
    }
    Ok(grade(
        "structured-vs-dense",
        "core::structured kernels vs dense ladder",
        "solver roundoff × (1 + 1/|1+λ|)",
        EXACT_TIER,
        &pts,
    ))
}

/// Builds the discrete open-loop pulse transfer function from the
/// *delay-folded* continuous gain, so delay scenarios compare the same
/// loop on both sides.
fn z_open_loop(model: &PllModel) -> Result<(Zf, f64), XcheckError> {
    let t = 1.0 / model.design().f_ref();
    let plant = model.open_loop().scale(t);
    let g = impulse_invariant(&plant, t).map_err(|e| XcheckError::ZDomain(e.to_string()))?;
    Ok((g, t))
}

/// Impulse invariance: `G(e^{jωT}) = Σ_m A(jω + jmω₀) = λ(jω)` exactly
/// for relative degree ≥ 2. For relative degree 1 the one-sided sample
/// sum counts the impulse-response jump `p(0⁺) = T·c` fully instead of
/// half, so `G − λ = T·c/2` — checked separately as
/// `half-sample-residual`.
fn check_lambda_vs_ztf(
    model: &PllModel,
    g: &Zf,
    t_sample: f64,
    probes: &[f64],
) -> Vec<CheckResult> {
    let lam = model.lambda();
    let a = model.open_loop();
    let rel_deg_one = a.den().degree() == a.num().degree() + 1;
    // c = lim s·A(s): the impulse-response jump of A at t = 0⁺.
    let corr = if rel_deg_one {
        0.5 * t_sample * a.num().leading() / a.den().leading()
    } else {
        0.0
    };
    let mut out = Vec::new();
    let raw: Vec<Pt> = probes
        .iter()
        .map(|&w| {
            let gz = g.eval_jw(w, t_sample);
            let l = lam.eval(Complex::from_im(w));
            let scale = 1.0 + l.abs();
            Pt {
                deviation: (gz - l).abs() / scale,
                bound: if rel_deg_one {
                    1.05 * corr.abs() / scale + 3e-8
                } else {
                    3e-8
                },
                values: (gz.abs(), l.abs()),
            }
        })
        .collect();
    out.push(grade(
        "lambda-vs-ztf",
        "core::λ(jω) vs zdomain::G(e^{jωT})",
        if rel_deg_one {
            "half-sample Poisson correction T·c/2"
        } else {
            "pole-extraction roundoff"
        },
        EXACT_TIER,
        &raw,
    ));
    if rel_deg_one {
        // After subtracting the analytic correction the two routes must
        // agree to roundoff again.
        let residual: Vec<Pt> = probes
            .iter()
            .map(|&w| {
                let gz = g.eval_jw(w, t_sample);
                let l = lam.eval(Complex::from_im(w));
                let scale = 1.0 + l.abs();
                Pt {
                    deviation: (gz - l - Complex::from_re(corr)).abs() / scale,
                    bound: 3e-8,
                    values: ((gz - l).abs(), corr.abs()),
                }
            })
            .collect();
        out.push(grade(
            "half-sample-residual",
            "core::λ + T·c/2 vs zdomain::G",
            "pole-extraction roundoff",
            EXACT_TIER,
            &residual,
        ));
    }
    out
}

/// Sampled closed loop: `G/(1+G)` at `z = e^{jωT}` against the scalar
/// closed form `λ/(1+λ)`. Equality is inherited from impulse
/// invariance (relative degree ≥ 2 only), but the crossover region
/// amplifies roundoff by `1/|1+λ|`.
fn check_closed_loop_sampled(
    model: &PllModel,
    g: &Zf,
    t_sample: f64,
    probes: &[f64],
) -> Result<CheckResult, XcheckError> {
    let closed = g
        .feedback_unity()
        .map_err(|e| XcheckError::ZDomain(e.to_string()))?;
    let lam = model.lambda();
    let pts: Vec<Pt> = probes
        .iter()
        .map(|&w| {
            let hz = closed.eval_jw(w, t_sample);
            let l = lam.eval(Complex::from_im(w));
            let h = l / (Complex::ONE + l);
            let scale = 1.0 + h.abs();
            let amp = (Complex::ONE + l).abs().max(1e-300).recip();
            Pt {
                deviation: (hz - h).abs() / scale,
                bound: 3e-8 * (1.0 + amp),
                values: (hz.abs(), h.abs()),
            }
        })
        .collect();
    Ok(grade(
        "closed-loop-sampled",
        "core::λ/(1+λ) vs zdomain::G/(1+G)",
        "roundoff × (1 + 1/|1+λ|) at crossover",
        EXACT_TIER,
        &pts,
    ))
}

/// The analysis layer's crossover against the λ it was extracted from:
/// `|λ(jω_UG,eff)| = 1` to the margin scanner's refinement tolerance,
/// and the reported phase margin equals `180° + arg λ` there.
fn check_crossing(model: &PllModel, report: &AnalysisReport) -> Vec<CheckResult> {
    if report.beyond_sampling_limit {
        return Vec::new();
    }
    let l = model.lambda().eval(Complex::from_im(report.omega_ug_eff));
    let mag = Pt {
        deviation: (l.abs() - 1.0).abs(),
        bound: 1e-6,
        values: (l.abs(), 1.0),
    };
    let pm = 180.0 + l.arg().to_degrees();
    let pm_pt = Pt {
        deviation: (pm - report.phase_margin_eff_deg).abs() / 180.0,
        bound: 1e-6,
        values: (pm, report.phase_margin_eff_deg),
    };
    vec![
        grade(
            "crossing-magnitude",
            "core::analyze ω_UG,eff vs λ(jω)",
            "margin-scan refinement tolerance",
            EXACT_TIER,
            &[mag],
        ),
        grade(
            "crossing-phase-margin",
            "core::analyze PM_eff vs arg λ",
            "margin-scan refinement tolerance",
            EXACT_TIER,
            &[pm_pt],
        ),
    ]
}

/// Time-domain leg: multitone-simulated `H₀,₀` against the closed form.
/// Agreement is statistical — finite pulse width (the impulse-PFD
/// idealization, paper Fig. 4) and finite-record tone extraction bound
/// it at the few-percent level of the paper's own Fig.-6 claim.
fn check_sim_h00(model: &PllModel) -> CheckResult {
    let params = SimParams::from_design(model.design());
    let cfg = SimConfig::default();
    let tones = [0.2, 0.5, 1.0];
    let ms = measure_h00_multitone(&params, &cfg, &tones, &MeasureOptions::default());
    let pts: Vec<Pt> = ms
        .iter()
        .map(|m| {
            let predict = model.h00(m.omega);
            Pt {
                deviation: (m.h - predict).abs() / predict.abs().max(1e-300),
                bound: 0.08,
                values: (m.h.abs(), predict.abs()),
            }
        })
        .collect();
    grade(
        "sim-h00",
        "sim::multitone vs core::H₀,₀",
        "finite pulse width + finite-record extraction",
        EXACT_TIER,
        &pts,
    )
}

/// Reference-spur closed form vs a Goertzel line measurement on the
/// simulated locked loop with charge-pump leakage. The record spans an
/// integer number of reference periods, so the extraction itself is
/// leakage-free; the residual gap is the finite width of the correction
/// pulse (the closed form takes the narrow-pulse limit).
fn check_sim_spur(model: &PllModel) -> (CheckResult, CheckResult) {
    let mut params = SimParams::from_design(model.design());
    params.leakage = 1e-3 * params.i_cp;
    let t_ref = params.t_ref;
    let mut sim = PllSim::new(params.clone(), SimConfig::default());
    let _ = sim.run(400.0 * t_ref, &|_| 0.0);
    let trace = sim.run(512.0 * t_ref, &|_| 0.0);
    let mean = trace.theta_vco.iter().sum::<f64>() / trace.theta_vco.len() as f64;
    let centered: Vec<f64> = trace.theta_vco.iter().map(|v| v - mean).collect();
    let w0 = 2.0 * std::f64::consts::PI / t_ref;
    let measured = tone_amplitude(&centered, w0, trace.dt).abs();
    // The real waveform carries the conjugate pair: peak 2|θ̃₁|.
    let predicted = 2.0 * LeakageSpurs::new(model, params.leakage).sideband(1).abs();
    let spur = grade(
        "sim-spur",
        "sim::Goertzel@ω₀ vs core::spurs",
        "finite correction-pulse width",
        EXACT_TIER,
        &[Pt {
            deviation: (measured - predicted).abs() / predicted.max(1e-300),
            bound: 0.05,
            values: (measured, predicted),
        }],
    );

    // Parseval on the same record: the one-sided PSD rectangle sum must
    // reproduce the record's mean square exactly (rectangular window).
    let psd = periodogram(&centered, 1.0 / trace.dt, Window::Rectangular)
        .expect("non-empty record, positive fs");
    let df = psd[1].0 - psd[0].0;
    let total: f64 = psd.iter().map(|&(_, p)| p * df).sum();
    let msq = centered.iter().map(|v| v * v).sum::<f64>() / centered.len() as f64;
    let parseval = grade(
        "sim-psd-parseval",
        "spectral::periodogram vs sim record",
        "FFT roundoff",
        1e-9,
        &[Pt {
            deviation: (total - msq).abs() / msq.max(1e-300),
            bound: 1e-8,
            values: (total, msq),
        }],
    );
    (spur, parseval)
}

/// Runs every applicable comparison for one scenario.
fn run_scenario(s: &Scenario) -> Result<(ScenarioReport, StackTimings), XcheckError> {
    let _span = htmpll_obs::span_labeled("xcheck", "scenario", || s.name.clone());
    let mut tm = StackTimings::default();
    let model = s.model()?;
    let w0 = model.design().omega_ref();
    let probes: Vec<f64> = PROBE_FRACS.iter().map(|f| f * w0 / 2.0).collect();
    let mut checks = Vec::new();

    // λ stack internal.
    let t0 = Instant::now();
    checks.push(check_lambda_truncation(&model, &probes));
    tm.lambda_ms += ms_since(t0);

    // HTM reference path.
    let t0 = Instant::now();
    checks.push(check_smw_vs_dense(&model, &probes)?);
    checks.push(check_structured_vs_dense(&model, &probes)?);
    if !s.isf {
        // The scalar closed form assumes the time-invariant V-column.
        checks.push(check_h00_vs_dense(&model, &probes)?);
    }
    tm.htm_ms += ms_since(t0);

    // Analysis crossover vs λ, and the two stability verdicts.
    let t0 = Instant::now();
    let report = analyze_with(&model, ThreadBudget::Fixed(1))?;
    checks.extend(check_crossing(&model, &report));
    tm.lambda_ms += ms_since(t0);

    // z-domain stack (scalar LTI model: skip for time-varying ISF).
    if !s.isf {
        let t0 = Instant::now();
        let (g, t_sample) = z_open_loop(&model)?;
        checks.extend(check_lambda_vs_ztf(&model, &g, t_sample, &probes));
        if !s.relative_degree_one() {
            checks.push(check_closed_loop_sampled(&model, &g, t_sample, &probes)?);
        }
        let jury =
            jury_stable(&g.characteristic()).map_err(|e| XcheckError::ZDomain(e.to_string()))?;
        checks.push(grade_bool(
            "jury-vs-nyquist",
            "zdomain::Jury vs core::Nyquist",
            jury,
            report.nyquist_stable,
        ));
        tm.zdomain_ms += ms_since(t0);
    }

    // Time-domain stack.
    if s.sim {
        let t0 = Instant::now();
        checks.push(check_sim_h00(&model));
        tm.sim_ms += ms_since(t0);
        let t0 = Instant::now();
        let (spur, parseval) = check_sim_spur(&model);
        checks.push(spur);
        tm.spectral_ms += ms_since(t0);
        checks.push(parseval);
    }

    Ok((
        ScenarioReport {
            scenario: s.name.clone(),
            checks,
        },
        tm,
    ))
}

/// The three stacks share one stability boundary: brackets the Jury
/// sampling limit and confirms the HTM-Nyquist verdict and the
/// behavioral simulator (lock vs divergence) land on the same side.
fn boundary_scenario() -> Result<(ScenarioReport, StackTimings), XcheckError> {
    let mut tm = StackTimings::default();
    let mut checks = Vec::new();

    let t0 = Instant::now();
    let limit = reference_design_stability_limit(0.05, 0.6, 1e-3);
    tm.zdomain_ms += ms_since(t0);

    for (tag, factor, expect_stable) in [
        ("nyquist-vs-jury-below", 0.92, true),
        ("nyquist-vs-jury-above", 1.08, false),
    ] {
        let t0 = Instant::now();
        let design = PllDesign::reference_design(factor * limit)?;
        let model = PllModel::builder(design).build()?;
        let report = analyze_with(&model, ThreadBudget::Fixed(1))?;
        tm.lambda_ms += ms_since(t0);
        let check: &'static str = tag;
        checks.push(grade_bool(
            check,
            "core::Nyquist vs zdomain::Jury limit",
            report.nyquist_stable,
            expect_stable,
        ));
    }

    for (tag, factor, expect_locked) in [
        ("sim-lock-below", 0.7, true),
        ("sim-lock-above", 1.25, false),
    ] {
        let t0 = Instant::now();
        let design = PllDesign::reference_design(factor * limit)?;
        let params = SimParams::from_design(&design);
        let opts = LockOptions {
            threshold_frac: 0.02,
            hold_periods: 50,
            max_periods: 4000,
        };
        let r = acquire_lock(&params, &SimConfig::default(), 5e-3, &opts);
        tm.sim_ms += ms_since(t0);
        checks.push(grade_bool(
            tag,
            "sim::acquire_lock vs zdomain::Jury limit",
            r.locked,
            expect_locked,
        ));
    }

    Ok((
        ScenarioReport {
            scenario: format!("stability-boundary-l{limit:.4}"),
            checks,
        },
        tm,
    ))
}

/// Runs the named corpus and reconciles every overlapping observable.
///
/// Scenarios run in parallel on the `htmpll-par` pool; each scenario's
/// numerics are computed sequentially inside it, so the report (and its
/// digest) is **bitwise-identical for any thread count**.
///
/// # Errors
///
/// [`XcheckError::UnknownCorpus`] for an unknown name; construction
/// failures propagate. Model *disagreements* are not errors — they are
/// [`Verdict::Mismatch`] entries in the report.
pub fn run_corpus(name: &str, threads: ThreadBudget) -> Result<XcheckReport, XcheckError> {
    let _span = htmpll_obs::span_labeled("xcheck", "run_corpus", || name.to_string());
    let scenarios = corpus(name).ok_or_else(|| XcheckError::UnknownCorpus(name.to_string()))?;
    let results = par_map(threads, &scenarios, |_, s| run_scenario(s));

    let mut reports = Vec::new();
    let mut timings = StackTimings::default();
    for r in results {
        let (rep, tm) = r?;
        reports.push(rep);
        timings.lambda_ms += tm.lambda_ms;
        timings.htm_ms += tm.htm_ms;
        timings.zdomain_ms += tm.zdomain_ms;
        timings.sim_ms += tm.sim_ms;
        timings.spectral_ms += tm.spectral_ms;
    }

    let (boundary, tm) = boundary_scenario()?;
    reports.push(boundary);
    timings.zdomain_ms += tm.zdomain_ms;
    timings.lambda_ms += tm.lambda_ms;
    timings.sim_ms += tm.sim_ms;

    let report = XcheckReport {
        corpus: name.to_string(),
        scenarios: reports,
        timings,
    };
    htmpll_obs::counter!("xcheck", "checks.agree").add(report.agreements() as u64);
    htmpll_obs::counter!("xcheck", "checks.tolerated").add(report.tolerated() as u64);
    htmpll_obs::counter!("xcheck", "checks.mismatch").add(report.mismatches() as u64);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_corpus_is_an_error() {
        assert!(matches!(
            run_corpus("nope", ThreadBudget::Fixed(1)),
            Err(XcheckError::UnknownCorpus(_))
        ));
    }

    #[test]
    fn single_scenario_reconciles() {
        // One mid-range scenario end to end (no sim: keep the unit test
        // fast — the corpus integration test covers the rest).
        let s = Scenario {
            name: "unit-mid-2nd".into(),
            ratio: 0.1,
            filter: crate::corpus::FilterKind::Second { spread: 4.0 },
            delay: None,
            isf: false,
            sim: false,
        };
        let (rep, _) = run_scenario(&s).expect("scenario runs");
        assert!(rep.checks.len() >= 6);
        for c in &rep.checks {
            assert!(
                !matches!(c.verdict, Verdict::Mismatch { .. }),
                "{}: {:?} (deviation {:.3e})",
                c.check,
                c.verdict,
                c.deviation
            );
        }
    }
}
