//! # htmpll-par — std-only parallel sweep engine
//!
//! Every headline quantity of the paper — the effective open-loop gain
//! `λ(s)`, closed-loop peaking via `(1 + λ(s))⁻¹`, noise folding through
//! the HTM — is evaluated on dense frequency grids, one independent point
//! at a time. This crate turns those embarrassingly parallel loops into
//! multi-core sweeps **without leaving `std`** (the workspace builds
//! offline, so `rayon`/`crossbeam` are not options):
//!
//! * [`par_map`] — map a pure function over a slice using scoped worker
//!   threads that pull **chunks of work from a shared atomic cursor**
//!   (self-balancing: a worker that finishes its chunk steals the next
//!   one, so uneven per-point cost does not serialize the sweep), and
//!   [`par_map_with`] — the same engine with a per-worker scratch
//!   workspace so hot loops can run allocation-free,
//! * [`ThreadBudget`] — where the thread count comes from: an explicit
//!   request, the `HTMPLL_THREADS` environment variable, or the
//!   machine's available parallelism,
//! * `htmpll-obs` telemetry — tasks executed, chunks grabbed, steal
//!   counts and per-worker busy time under the `par` target, so
//!   `plltool metrics` can report parallel efficiency.
//!
//! ## Determinism contract
//!
//! `par_map` calls `f` exactly once per item and writes each result into
//! the output slot of its item's index. For a pure `f`, the output is
//! therefore **bitwise identical** for every thread count, including 1 —
//! scheduling only decides *who* computes a point, never *what* is
//! computed. The workspace's `parallel_determinism` integration test
//! asserts this end to end.
//!
//! ```
//! use htmpll_par::{par_map, ThreadBudget};
//!
//! let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
//! let seq = par_map(ThreadBudget::Fixed(1), &xs, |_, &x| x.sqrt());
//! let par = par_map(ThreadBudget::Fixed(4), &xs, |_, &x| x.sqrt());
//! assert_eq!(seq, par); // bitwise: same ops, same order per item
//! ```

#![warn(missing_docs)]

pub mod cancel;
pub mod pool;

pub use cancel::{CancelToken, Deadline, WeakDeadline};
pub use pool::Pool;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Environment variable consulted by [`ThreadBudget::Auto`].
pub const THREADS_ENV: &str = "HTMPLL_THREADS";

/// Where a sweep's worker-thread count comes from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ThreadBudget {
    /// `HTMPLL_THREADS` if set to a positive integer, otherwise the
    /// machine's available parallelism.
    #[default]
    Auto,
    /// An explicit thread count (clamped to ≥ 1 at resolution).
    Fixed(usize),
}

impl From<usize> for ThreadBudget {
    /// `0` means [`ThreadBudget::Auto`]; any positive value is
    /// [`ThreadBudget::Fixed`].
    fn from(n: usize) -> Self {
        if n == 0 {
            ThreadBudget::Auto
        } else {
            ThreadBudget::Fixed(n)
        }
    }
}

impl From<Option<usize>> for ThreadBudget {
    fn from(n: Option<usize>) -> Self {
        match n {
            None => ThreadBudget::Auto,
            Some(n) => ThreadBudget::from(n),
        }
    }
}

impl ThreadBudget {
    /// Resolves to a concrete thread count ≥ 1.
    pub fn resolve(self) -> usize {
        match self {
            ThreadBudget::Fixed(n) => n.max(1),
            ThreadBudget::Auto => match std::env::var(THREADS_ENV) {
                Ok(v) => match v.trim().parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => available_threads(),
                },
                Err(_) => available_threads(),
            },
        }
    }
}

/// The machine's available parallelism (1 when undeterminable).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Chunk size for `n` items across `threads` workers: ~4 chunks per
/// worker so a fast worker can steal from a slow one, but never so small
/// that the cursor contention dominates point cost.
pub(crate) fn chunk_size(n: usize, threads: usize) -> usize {
    n.div_ceil(threads * 4).max(1)
}

/// Maps `f` over `items` in parallel, preserving item order in the
/// output. `f` receives `(index, &item)` and must be pure for the
/// determinism contract to hold (it is called exactly once per item
/// regardless of thread count).
///
/// With a resolved budget of 1 (or ≤ 1 items) the map runs inline on the
/// calling thread — no spawn, no synchronization, and `htmpll-obs` span
/// nesting stays attached to the caller.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope unwinds after all workers
/// stop).
pub fn par_map<T, R, F>(budget: ThreadBudget, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with(budget, items, || (), |(), i, t| f(i, t))
}

/// [`par_map`] with a **per-worker workspace**: `init` runs once per
/// worker thread (once total on the inline path) and the resulting
/// value is passed `&mut` to every `f` call that worker executes. Sweep
/// loops use this to reuse factor/right-hand-side scratch buffers
/// across grid points instead of allocating per point.
///
/// The determinism contract is unchanged — the workspace must be
/// *scratch* (its contents may not influence results), which holds
/// whenever `f` fully overwrites what it reads. `f` is still called
/// exactly once per item and results are placed by item index.
///
/// # Panics
///
/// Propagates a panic from `init` or `f` (the scope unwinds after all
/// workers stop).
pub fn par_map_with<T, R, W, I, F>(budget: ThreadBudget, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, usize, &T) -> R + Sync,
{
    let n = items.len();
    let threads = budget.resolve().min(n.max(1));
    htmpll_obs::counter!("par", "tasks").add(n as u64);
    if threads <= 1 {
        // Same span as the threaded path so traces carry a `par` timeline
        // at every thread count; children still nest under the caller.
        let _span = htmpll_obs::span_labeled("par", "map", || format!("n={n},threads=1"));
        let mut ws = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut ws, i, t))
            .collect();
    }

    let _span = htmpll_obs::span_labeled("par", "map", || format!("n={n},threads={threads}"));
    let telemetry = htmpll_obs::record!("par", "worker_busy_ns").is_enabled();
    // Fault scopes are thread-local; spawned workers must re-establish
    // the caller's ambient scope or scope-gated injection sites would
    // silently stop firing above one thread (breaking the chaos
    // harness's thread-count invariance).
    let fault_scope = htmpll_fault::current_scope();
    let chunk = chunk_size(n, threads);
    let cursor = AtomicUsize::new(0);
    // Workers publish (start_index, results) per chunk; the merge below
    // reorders by start index, so placement is deterministic no matter
    // which worker computed which chunk.
    let parts: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(n / chunk + threads));
    std::thread::scope(|scope| {
        let cursor = &cursor;
        let parts = &parts;
        let init = &init;
        let f = &f;
        for widx in 0..threads {
            scope.spawn(move || {
                let _fault = htmpll_fault::scope_guard(fault_scope);
                // Busy/steal timeline: the worker span brackets this
                // worker's busy life; each chunk is a child span; every
                // grab after the first is a steal marker. All trace-only
                // (high cardinality would pollute the metric registry).
                let _wspan = htmpll_obs::trace_span("par", || format!("worker{{w{widx}}}"));
                let started = telemetry.then(Instant::now);
                let mut ws = init();
                let mut grabbed = 0usize;
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    if grabbed > 0 {
                        htmpll_obs::instant("par", || format!("steal{{w{widx}@{start}}}"));
                    }
                    let _cspan =
                        htmpll_obs::trace_span("par", || format!("chunk{{{start}..{end}}}"));
                    let out: Vec<R> = items[start..end]
                        .iter()
                        .enumerate()
                        .map(|(i, t)| f(&mut ws, start + i, t))
                        .collect();
                    parts
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push((start, out));
                    grabbed += 1;
                }
                if grabbed > 0 {
                    htmpll_obs::counter!("par", "chunks").add(grabbed as u64);
                    // Everything beyond a worker's first grab came off the
                    // shared cursor while other workers were busy: steals.
                    htmpll_obs::counter!("par", "steals").add((grabbed - 1) as u64);
                }
                if let Some(t0) = started {
                    htmpll_obs::record!("par", "worker_busy_ns")
                        .record(t0.elapsed().as_secs_f64() * 1e9);
                }
            });
        }
    });

    let mut parts = parts.into_inner().unwrap_or_else(|e| e.into_inner());
    parts.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(n);
    for (_, mut p) in parts {
        out.append(&mut p);
    }
    debug_assert_eq!(out.len(), n);
    out
}

/// [`par_map`] with a cooperative [`Deadline`]: the budget is checked
/// before every item, and once it expires no further item is started.
/// Returns one slot per item — `Some(r)` for items computed before
/// expiry, `None` for items skipped after it.
///
/// The determinism contract narrows but holds: a `Some` slot holds
/// exactly the bits [`par_map`] would have produced for that item, for
/// any thread count. Which slots are `Some` is timing-dependent under a
/// wall-clock budget; use [`Deadline::after_checks`] when the completed
/// *set* must also be reproducible.
pub fn par_map_cancellable<T, R, F>(
    budget: ThreadBudget,
    items: &[T],
    deadline: &Deadline,
    f: F,
) -> Vec<Option<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with_cancel(budget, items, deadline, || (), |(), i, t| f(i, t))
}

/// [`par_map_with`] (per-worker workspace) with a cooperative
/// [`Deadline`] — see [`par_map_cancellable`] for the slot semantics.
///
/// An unbounded deadline ([`Deadline::none`]) adds one `Option` test per
/// item over [`par_map_with`].
pub fn par_map_with_cancel<T, R, W, I, F>(
    budget: ThreadBudget,
    items: &[T],
    deadline: &Deadline,
    init: I,
    f: F,
) -> Vec<Option<R>>
where
    T: Sync,
    R: Send,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, usize, &T) -> R + Sync,
{
    let n = items.len();
    let threads = budget.resolve().min(n.max(1));
    htmpll_obs::counter!("par", "tasks").add(n as u64);
    if threads <= 1 {
        let _span = htmpll_obs::span_labeled("par", "map", || format!("n={n},threads=1"));
        let mut ws = init();
        let mut out: Vec<Option<R>> = Vec::with_capacity(n);
        for (i, t) in items.iter().enumerate() {
            if deadline.expired() {
                break;
            }
            out.push(Some(f(&mut ws, i, t)));
        }
        let skipped = n - out.len();
        out.resize_with(n, || None);
        if skipped > 0 {
            htmpll_obs::counter!("par", "cancelled_tasks").add(skipped as u64);
        }
        return out;
    }

    let _span = htmpll_obs::span_labeled("par", "map", || format!("n={n},threads={threads}"));
    let fault_scope = htmpll_fault::current_scope();
    let chunk = chunk_size(n, threads);
    let cursor = AtomicUsize::new(0);
    // Chunks may complete partially (expiry mid-chunk), so workers
    // publish per-chunk Option vectors; unpublished tail items of a
    // chunk — and whole chunks never grabbed — stay None in the merge.
    let parts: Mutex<Vec<(usize, Vec<Option<R>>)>> =
        Mutex::new(Vec::with_capacity(n / chunk + threads));
    std::thread::scope(|scope| {
        let cursor = &cursor;
        let parts = &parts;
        let init = &init;
        let f = &f;
        for widx in 0..threads {
            scope.spawn(move || {
                let _fault = htmpll_fault::scope_guard(fault_scope);
                let _wspan = htmpll_obs::trace_span("par", || format!("worker{{w{widx}}}"));
                let mut ws = init();
                loop {
                    if deadline.expired() {
                        break;
                    }
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    let _cspan =
                        htmpll_obs::trace_span("par", || format!("chunk{{{start}..{end}}}"));
                    let mut out: Vec<Option<R>> = Vec::with_capacity(end - start);
                    for (i, t) in items[start..end].iter().enumerate() {
                        if !out.is_empty() && deadline.expired() {
                            break;
                        }
                        out.push(Some(f(&mut ws, start + i, t)));
                    }
                    parts
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push((start, out));
                }
            });
        }
    });

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut completed = 0usize;
    for (start, part) in parts.into_inner().unwrap_or_else(|e| e.into_inner()) {
        for (i, r) in part.into_iter().enumerate() {
            if r.is_some() {
                completed += 1;
            }
            slots[start + i] = r;
        }
    }
    if completed < n {
        htmpll_obs::counter!("par", "cancelled_tasks").add((n - completed) as u64);
    }
    slots
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let xs: Vec<usize> = (0..1000).collect();
        let out = par_map(ThreadBudget::Fixed(7), &xs, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u8> = vec![];
        assert!(par_map(ThreadBudget::Fixed(4), &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(ThreadBudget::Fixed(4), &[9u8], |_, &x| x), vec![9]);
    }

    #[test]
    fn identical_across_thread_counts() {
        let xs: Vec<f64> = (1..500).map(|i| i as f64 * 0.37).collect();
        let f = |_: usize, &x: &f64| (x.sin() * x.sqrt()).exp();
        let one = par_map(ThreadBudget::Fixed(1), &xs, f);
        for t in [2, 3, 4, 9] {
            let many = par_map(ThreadBudget::Fixed(t), &xs, f);
            assert!(one
                .iter()
                .zip(&many)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different cost must all complete and land in
        // their slots.
        let xs: Vec<usize> = (0..97).collect();
        let out = par_map(ThreadBudget::Fixed(5), &xs, |_, &x| {
            let iters = if x % 10 == 0 { 20_000 } else { 10 };
            (0..iters).fold(x as f64, |a, _| a + (a * 1e-9).sin())
        });
        assert_eq!(out.len(), 97);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn budget_resolution() {
        assert_eq!(ThreadBudget::Fixed(0).resolve(), 1);
        assert_eq!(ThreadBudget::Fixed(3).resolve(), 3);
        assert_eq!(ThreadBudget::from(0usize), ThreadBudget::Auto);
        assert_eq!(ThreadBudget::from(2usize), ThreadBudget::Fixed(2));
        assert_eq!(ThreadBudget::from(None), ThreadBudget::Auto);
        assert_eq!(ThreadBudget::from(Some(5)), ThreadBudget::Fixed(5));
        assert!(ThreadBudget::Auto.resolve() >= 1);
        assert!(available_threads() >= 1);
    }

    #[test]
    fn workspace_reuse_is_deterministic() {
        // A scratch buffer reused across points must not change results
        // (f fully overwrites what it reads) and each worker gets its
        // own workspace.
        let xs: Vec<usize> = (0..321).collect();
        let run = |threads: usize| {
            par_map_with(
                ThreadBudget::Fixed(threads),
                &xs,
                Vec::<f64>::new,
                |scratch, i, &x| {
                    scratch.clear();
                    scratch.resize(8, 0.0);
                    for (k, slot) in scratch.iter_mut().enumerate() {
                        *slot = (x as f64 + k as f64).sqrt();
                    }
                    assert_eq!(i, x);
                    scratch.iter().sum::<f64>()
                },
            )
        };
        let one = run(1);
        for t in [2, 5, 8] {
            let many = run(t);
            assert!(one
                .iter()
                .zip(&many)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn chunking_covers_everything() {
        for n in [1usize, 2, 5, 16, 33, 1024] {
            for t in [1usize, 2, 4, 8] {
                let c = chunk_size(n, t);
                assert!(c >= 1);
                // Enough chunks to cover all items.
                assert!(c * n.div_ceil(c) >= n);
            }
        }
    }

    #[test]
    fn cancellable_with_unbounded_deadline_matches_par_map() {
        let xs: Vec<f64> = (1..300).map(|i| i as f64 * 0.41).collect();
        let f = |_: usize, &x: &f64| (x.cos() * x.sqrt()).to_bits();
        let plain = par_map(ThreadBudget::Fixed(3), &xs, f);
        let cancellable = par_map_cancellable(ThreadBudget::Fixed(3), &xs, &Deadline::none(), f);
        assert_eq!(cancellable.len(), xs.len());
        for (a, b) in plain.iter().zip(&cancellable) {
            assert_eq!(
                Some(*a),
                *b,
                "unbounded deadline must not skip or change items"
            );
        }
    }

    #[test]
    fn expired_deadline_skips_everything() {
        let xs: Vec<usize> = (0..50).collect();
        let d = Deadline::token();
        d.cancel();
        for t in [1usize, 4] {
            let out = par_map_cancellable(ThreadBudget::Fixed(t), &xs, &d, |_, &x| x);
            // The threaded path guarantees progress per grabbed chunk but
            // a pre-cancelled budget never grabs one.
            assert!(out.iter().all(|s| s.is_none()), "threads={t}: {out:?}");
        }
    }

    #[test]
    fn partial_results_are_bitwise_identical_to_full_run() {
        let xs: Vec<f64> = (1..200).map(|i| i as f64 * 0.77).collect();
        let f = |_: usize, &x: &f64| (x.sin() * x.ln()).to_bits();
        let full = par_map(ThreadBudget::Fixed(1), &xs, f);
        for t in [1usize, 2, 5] {
            let d = Deadline::after_checks(40);
            let part = par_map_cancellable(ThreadBudget::Fixed(t), &xs, &d, f);
            let completed = part.iter().filter(|s| s.is_some()).count();
            assert!(
                completed < xs.len(),
                "threads={t}: a 40-check budget must expire mid-grid"
            );
            assert!(
                completed > 0,
                "threads={t}: some items must complete before expiry"
            );
            for (i, slot) in part.iter().enumerate() {
                if let Some(bits) = slot {
                    assert_eq!(
                        *bits, full[i],
                        "threads={t} item {i} changed under cancellation"
                    );
                }
            }
        }
    }

    #[test]
    fn trace_timeline_has_worker_and_chunk_events() {
        htmpll_obs::trace_start(1 << 14);
        let xs: Vec<usize> = (0..64).collect();
        let _ = par_map(ThreadBudget::Fixed(2), &xs, |_, &x| x + 1);
        let t = htmpll_obs::trace_stop();
        let par_events: Vec<&htmpll_obs::TraceEvent> =
            t.events.iter().filter(|e| e.cat == "par").collect();
        assert!(
            par_events.iter().any(|e| e.name.starts_with("worker{")),
            "missing worker timeline: {par_events:?}"
        );
        assert!(
            par_events.iter().any(|e| e.name.starts_with("chunk{")),
            "missing chunk timeline: {par_events:?}"
        );
        // Every worker begin has a matching end.
        let begins = par_events
            .iter()
            .filter(|e| e.name.starts_with("worker{") && e.phase == htmpll_obs::TracePhase::Begin)
            .count();
        let ends = par_events
            .iter()
            .filter(|e| e.name.starts_with("worker{") && e.phase == htmpll_obs::TracePhase::End)
            .count();
        assert_eq!(begins, ends);
        assert!(begins >= 1);
    }

    #[test]
    fn telemetry_counts_tasks_and_steals() {
        htmpll_obs::override_filter("par=debug");
        htmpll_obs::reset();
        let xs: Vec<usize> = (0..256).collect();
        let _ = par_map(ThreadBudget::Fixed(4), &xs, |_, &x| x + 1);
        let snap = htmpll_obs::snapshot();
        let get = |name: &str| {
            snap.iter()
                .find(|m| m.key == name)
                .unwrap_or_else(|| panic!("missing metric {name}"))
        };
        assert!(get("par.tasks").count >= 256);
        assert!(get("par.chunks").count >= 1);
        let _ = get("par.worker_busy_ns");
        htmpll_obs::override_filter("off");
    }
}
