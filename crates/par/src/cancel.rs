//! Cooperative deadlines and cancellation for sweep workers.
//!
//! A [`Deadline`] is a cheap, cloneable budget handle checked at
//! per-point granularity by the cancellable map variants
//! ([`crate::par_map_with_cancel`], [`crate::Pool::map_cancellable`])
//! and by `core::sweep`'s grid loops. Expiry is **cooperative**: a
//! worker finishes the point it is on, then stops taking new points, so
//! an expired budget yields a partial result instead of a wedged
//! worker.
//!
//! ## Determinism
//!
//! Cancellation decides *whether* a point is computed, never *what* is
//! computed: a completed point's bits are identical to the same point
//! in an uncancelled run (asserted by the workspace's deadline tests).
//! The *set* of completed points under a wall-clock budget is timing-
//! dependent by nature; [`Deadline::after_checks`] gives tests and CI a
//! fully deterministic expiry (after a fixed number of expiry checks)
//! with the same code path.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// A pure cancellation token with no time budget — expires only via
/// [`Deadline::cancel`] (e.g. by a watchdog).
pub type CancelToken = Deadline;

#[derive(Debug)]
struct DeadlineInner {
    /// Wall-clock budget, when time-based.
    started: Instant,
    budget: Option<Duration>,
    /// Deterministic budget: expire after this many [`Deadline::expired`]
    /// calls, when check-based.
    check_budget: Option<u64>,
    checks: AtomicU64,
    cancelled: AtomicBool,
}

/// A cooperative deadline/cancellation handle. Clones share one budget.
///
/// [`Deadline::none`] (the `Default`) carries no state at all: every
/// check is a single `Option` test, so unbudgeted sweeps pay nothing.
#[derive(Debug, Clone, Default)]
pub struct Deadline {
    inner: Option<Arc<DeadlineInner>>,
}

impl Deadline {
    /// No budget: never expires, cannot be cancelled.
    pub fn none() -> Deadline {
        Deadline { inner: None }
    }

    /// Expires `budget` after creation (checked cooperatively).
    pub fn after(budget: Duration) -> Deadline {
        Deadline {
            inner: Some(Arc::new(DeadlineInner {
                started: Instant::now(),
                budget: Some(budget),
                check_budget: None,
                checks: AtomicU64::new(0),
                cancelled: AtomicBool::new(false),
            })),
        }
    }

    /// Expires after `n` calls to [`Deadline::expired`] — a fully
    /// deterministic budget for tests and CI (no wall clock involved).
    pub fn after_checks(n: u64) -> Deadline {
        Deadline {
            inner: Some(Arc::new(DeadlineInner {
                started: Instant::now(),
                budget: None,
                check_budget: Some(n),
                checks: AtomicU64::new(0),
                cancelled: AtomicBool::new(false),
            })),
        }
    }

    /// A cancellable token with no time budget: expires only when
    /// [`Deadline::cancel`] is called.
    pub fn token() -> CancelToken {
        Deadline {
            inner: Some(Arc::new(DeadlineInner {
                started: Instant::now(),
                budget: None,
                check_budget: None,
                checks: AtomicU64::new(0),
                cancelled: AtomicBool::new(false),
            })),
        }
    }

    /// True for [`Deadline::none`]: no budget, nothing to check.
    pub fn is_unbounded(&self) -> bool {
        self.inner.is_none()
    }

    /// Cancels the budget: every subsequent [`Deadline::expired`] check
    /// (on any clone) returns `true`. No-op on [`Deadline::none`].
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// Whether the budget is spent (or cancelled). Each call counts one
    /// check against an [`Deadline::after_checks`] budget.
    pub fn expired(&self) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        if inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(n) = inner.check_budget {
            // fetch_add returns the pre-increment count: the first n
            // checks pass, the (n+1)-th expires.
            if inner.checks.fetch_add(1, Ordering::Relaxed) >= n {
                return true;
            }
        }
        match inner.budget {
            Some(budget) => inner.started.elapsed() >= budget,
            None => false,
        }
    }

    /// Whether more than `frac` of the budget is consumed — the
    /// degradation ladder's "deadline pressure" signal. `false` for
    /// unbounded and pure-token deadlines; `true` once cancelled or
    /// expired. Unlike [`Deadline::expired`], this does not count a
    /// check.
    pub fn pressed(&self, frac: f64) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        if inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(n) = inner.check_budget {
            return inner.checks.load(Ordering::Relaxed) as f64 >= frac * n as f64;
        }
        match inner.budget {
            Some(budget) => inner.started.elapsed().as_secs_f64() >= frac * budget.as_secs_f64(),
            None => false,
        }
    }

    /// Time left in a wall-clock budget (`None` for unbounded, token,
    /// and check-based deadlines; `Some(0)` once spent).
    pub fn remaining(&self) -> Option<Duration> {
        let inner = self.inner.as_ref()?;
        let budget = inner.budget?;
        Some(budget.saturating_sub(inner.started.elapsed()))
    }

    /// A non-owning handle for watchdog registries: lets an observer
    /// cancel the budget without keeping it alive. `None` for
    /// [`Deadline::none`].
    pub fn downgrade(&self) -> Option<WeakDeadline> {
        self.inner.as_ref().map(|inner| WeakDeadline {
            inner: Arc::downgrade(inner),
        })
    }
}

/// A weak handle to a [`Deadline`], held by watchdog registries.
#[derive(Debug, Clone)]
pub struct WeakDeadline {
    inner: Weak<DeadlineInner>,
}

impl WeakDeadline {
    /// Cancels the deadline if any strong handle is still alive;
    /// returns whether it was.
    pub fn cancel(&self) -> bool {
        match self.inner.upgrade() {
            Some(inner) => {
                inner.cancelled.store(true, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Whether the request owning this deadline is still in flight.
    pub fn is_alive(&self) -> bool {
        self.inner.strong_count() > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        let d = Deadline::none();
        assert!(d.is_unbounded());
        for _ in 0..10 {
            assert!(!d.expired());
        }
        assert!(!d.pressed(0.0));
        d.cancel(); // no-op
        assert!(!d.expired());
        assert!(d.remaining().is_none());
        assert!(d.downgrade().is_none());
    }

    #[test]
    fn check_budget_is_deterministic() {
        let d = Deadline::after_checks(3);
        assert!(!d.expired());
        assert!(!d.expired());
        assert!(!d.expired());
        assert!(d.expired(), "4th check must expire a 3-check budget");
        assert!(d.expired(), "expiry is sticky");
    }

    #[test]
    fn clones_share_the_budget() {
        let d = Deadline::after_checks(2);
        let e = d.clone();
        assert!(!d.expired());
        assert!(!e.expired());
        assert!(d.expired(), "clone's checks count against one budget");
    }

    #[test]
    fn cancel_reaches_every_clone() {
        let d = Deadline::token();
        let e = d.clone();
        assert!(!e.expired());
        d.cancel();
        assert!(e.expired());
        assert!(e.pressed(1.0));
    }

    #[test]
    fn wall_clock_budget_expires() {
        let d = Deadline::after(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
        let far = Deadline::after(Duration::from_secs(3600));
        assert!(!far.expired());
        assert!(!far.pressed(0.5));
        assert!(far.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn pressed_tracks_check_consumption() {
        let d = Deadline::after_checks(10);
        assert!(!d.pressed(0.5));
        for _ in 0..6 {
            let _ = d.expired();
        }
        assert!(d.pressed(0.5), "6/10 checks is past half the budget");
        assert!(!d.pressed(0.9));
    }

    #[test]
    fn weak_handle_cancels_only_while_alive() {
        let d = Deadline::token();
        let w = d.downgrade().unwrap();
        assert!(w.is_alive());
        assert!(w.cancel());
        assert!(d.expired());
        drop(d);
        assert!(!w.is_alive());
        assert!(!w.cancel());
    }
}
