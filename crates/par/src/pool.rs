//! Long-lived worker pool for request-serving workloads.
//!
//! [`par_map`](crate::par_map) spawns scoped threads per call — the
//! right trade for one-shot sweeps, but a serving loop dispatching
//! thousands of small batches would pay thread spawn/join on every
//! batch. [`Pool`] keeps a fixed set of workers alive for the life of
//! the process and feeds them jobs through a condvar queue, so
//! consecutive batches reuse warm threads (and whatever thread-local
//! state the OS keeps warm with them).
//!
//! [`Pool::map`] carries the same determinism contract as
//! [`par_map`](crate::par_map): `f` is called exactly once per item and
//! each result is placed by item index, so for a pure `f` the output is
//! bitwise-identical for every worker count, including 1.

use crate::{cancel::Deadline, chunk_size, ThreadBudget};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Locks a pool mutex, recovering from poisoning: every protected
/// structure is either a job queue (a lost job surfaces as a panicked
/// map, never a torn entry) or completion bookkeeping updated by drop
/// guards, so continuing after a worker panic is safe.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    cv: Condvar,
}

/// A fixed-size set of long-lived worker threads fed through a shared
/// job queue. Workers are spawned at construction and joined on drop;
/// between those points any number of [`Pool::execute`] and
/// [`Pool::map`] calls reuse them.
///
/// A panic inside a job is contained to that job (the worker survives
/// and keeps serving); [`Pool::map`] re-raises it on the calling thread
/// so the contract matches [`par_map`](crate::par_map).
///
/// Do **not** call [`Pool::map`] from inside a pool job of the same
/// pool: the inner map would wait for workers that are all busy running
/// the outer jobs.
pub struct Pool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .finish()
    }
}

fn worker_loop(shared: Arc<PoolShared>) {
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        // Contain job panics so one poisoned request cannot take a
        // worker (and with it the whole service) down. Map jobs carry
        // their own completion guards, so the caller still observes the
        // failure.
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

/// Completion bookkeeping for one [`Pool::map`] call.
struct MapSync {
    remaining: usize,
    panicked: bool,
}

struct MapState<T, R> {
    items: Vec<T>,
    chunk: usize,
    cursor: AtomicUsize,
    slots: Mutex<Vec<Option<R>>>,
    sync: Mutex<MapSync>,
    done: Condvar,
}

/// Decrements the job counter when a map job exits — normally or by
/// panic — so the waiting caller can never hang on a dead worker.
struct JobGuard<'a, T, R> {
    state: &'a MapState<T, R>,
}

impl<T, R> Drop for JobGuard<'_, T, R> {
    fn drop(&mut self) {
        let mut sync = lock(&self.state.sync);
        sync.remaining -= 1;
        if std::thread::panicking() {
            sync.panicked = true;
        }
        drop(sync);
        self.state.done.notify_all();
    }
}

impl Pool {
    /// Spawns `budget.resolve()` workers that live until the pool is
    /// dropped.
    pub fn new(budget: ThreadBudget) -> Pool {
        let threads = budget.resolve();
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();
        htmpll_obs::counter!("par", "pool.workers").add(threads as u64);
        Pool {
            shared,
            workers,
            threads,
        }
    }

    /// The worker count this pool was built with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enqueues one fire-and-forget job.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        htmpll_obs::counter!("par", "pool.jobs").inc();
        lock(&self.shared.state).queue.push_back(Box::new(job));
        self.shared.cv.notify_one();
    }

    /// Maps `f` over `items` on the pool, preserving item order in the
    /// output. Work is pulled in chunks from a shared atomic cursor
    /// (the same self-balancing scheme as
    /// [`par_map`](crate::par_map)); results are placed by item index,
    /// so a pure `f` yields bitwise-identical output for every pool
    /// size.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from `f` on the calling thread after all
    /// workers have left the call.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + Sync + 'static,
        R: Send + 'static,
        F: Fn(usize, &T) -> R + Send + Sync + 'static,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        htmpll_obs::counter!("par", "pool.tasks").add(n as u64);
        let jobs = self.threads.min(n);
        let state = Arc::new(MapState {
            items,
            chunk: chunk_size(n, jobs),
            cursor: AtomicUsize::new(0),
            slots: Mutex::new((0..n).map(|_| None).collect()),
            sync: Mutex::new(MapSync {
                remaining: jobs,
                panicked: false,
            }),
            done: Condvar::new(),
        });
        let f = Arc::new(f);
        // Carry the caller's ambient fault scope into the long-lived
        // workers (thread-locals do not cross the queue).
        let fault_scope = htmpll_fault::current_scope();
        for _ in 0..jobs {
            let state = Arc::clone(&state);
            let f = Arc::clone(&f);
            self.execute(move || {
                let _fault = htmpll_fault::scope_guard(fault_scope);
                let _guard = JobGuard { state: &*state };
                loop {
                    let start = state.cursor.fetch_add(state.chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + state.chunk).min(n);
                    let out: Vec<R> = state.items[start..end]
                        .iter()
                        .enumerate()
                        .map(|(i, t)| f(start + i, t))
                        .collect();
                    let mut slots = lock(&state.slots);
                    for (i, r) in out.into_iter().enumerate() {
                        slots[start + i] = Some(r);
                    }
                }
            });
        }
        let mut sync = lock(&state.sync);
        while sync.remaining > 0 {
            sync = state.done.wait(sync).unwrap_or_else(|e| e.into_inner());
        }
        let panicked = sync.panicked;
        drop(sync);
        assert!(!panicked, "pool map job panicked");
        let mut slots = lock(&state.slots);
        slots
            .iter_mut()
            .map(|slot| slot.take().expect("every map slot filled"))
            .collect()
    }

    /// [`Pool::map`] with a cooperative [`Deadline`]: the budget is
    /// checked before every chunk grab and between items, and once it
    /// expires no further item is started. Returns one slot per item —
    /// `Some(r)` for items computed before expiry, `None` for items
    /// skipped after it.
    ///
    /// A `Some` slot holds exactly the bits [`Pool::map`] would have
    /// produced for that item, for any pool size (cancellation decides
    /// *whether* an item runs, never *what* it computes).
    ///
    /// # Panics
    ///
    /// Re-raises a panic from `f` on the calling thread after all
    /// workers have left the call.
    pub fn map_cancellable<T, R, F>(
        &self,
        items: Vec<T>,
        deadline: &Deadline,
        f: F,
    ) -> Vec<Option<R>>
    where
        T: Send + Sync + 'static,
        R: Send + 'static,
        F: Fn(usize, &T) -> R + Send + Sync + 'static,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        htmpll_obs::counter!("par", "pool.tasks").add(n as u64);
        let jobs = self.threads.min(n);
        let state = Arc::new(MapState {
            items,
            chunk: chunk_size(n, jobs),
            cursor: AtomicUsize::new(0),
            slots: Mutex::new((0..n).map(|_| None).collect()),
            sync: Mutex::new(MapSync {
                remaining: jobs,
                panicked: false,
            }),
            done: Condvar::new(),
        });
        let f = Arc::new(f);
        // Pool workers are long-lived process threads with no ambient
        // fault scope of their own; carry the caller's scope into each
        // job so scope-gated injection sites behave as if inline.
        let fault_scope = htmpll_fault::current_scope();
        for _ in 0..jobs {
            let state = Arc::clone(&state);
            let f = Arc::clone(&f);
            let deadline = deadline.clone();
            self.execute(move || {
                let _fault = htmpll_fault::scope_guard(fault_scope);
                let _guard = JobGuard { state: &*state };
                loop {
                    if deadline.expired() {
                        break;
                    }
                    let start = state.cursor.fetch_add(state.chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + state.chunk).min(n);
                    let mut out: Vec<Option<R>> = Vec::with_capacity(end - start);
                    for (i, t) in state.items[start..end].iter().enumerate() {
                        // Always finish the first item of a grabbed
                        // chunk so every grab makes progress.
                        if !out.is_empty() && deadline.expired() {
                            break;
                        }
                        out.push(Some(f(start + i, t)));
                    }
                    let mut slots = lock(&state.slots);
                    for (i, r) in out.into_iter().enumerate() {
                        slots[start + i] = r;
                    }
                }
            });
        }
        let mut sync = lock(&state.sync);
        while sync.remaining > 0 {
            sync = state.done.wait(sync).unwrap_or_else(|e| e.into_inner());
        }
        let panicked = sync.panicked;
        drop(sync);
        assert!(!panicked, "pool map job panicked");
        let mut slots = lock(&state.slots);
        let done: Vec<Option<R>> = slots.iter_mut().map(|slot| slot.take()).collect();
        let skipped = done.iter().filter(|s| s.is_none()).count();
        if skipped > 0 {
            htmpll_obs::counter!("par", "cancelled_tasks").add(skipped as u64);
        }
        done
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        lock(&self.shared.state).shutdown = true;
        self.shared.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_matches_serial_and_is_pool_size_invariant() {
        let xs: Vec<f64> = (1..400).map(|i| i as f64 * 0.73).collect();
        let expect: Vec<u64> = xs.iter().map(|&x| (x.sin() * x.sqrt()).to_bits()).collect();
        for t in [1usize, 2, 4, 7] {
            let pool = Pool::new(ThreadBudget::Fixed(t));
            let got = pool.map(xs.clone(), |_, &x: &f64| (x.sin() * x.sqrt()).to_bits());
            assert_eq!(got, expect, "pool size {t}");
        }
    }

    #[test]
    fn pool_survives_many_batches() {
        let pool = Pool::new(ThreadBudget::Fixed(3));
        for rep in 0..50 {
            let xs: Vec<usize> = (0..17).collect();
            let got = pool.map(xs, move |i, &x| {
                assert_eq!(i, x);
                x + rep
            });
            assert_eq!(got.len(), 17);
            assert_eq!(got[5], 5 + rep);
        }
    }

    #[test]
    fn empty_and_single() {
        let pool = Pool::new(ThreadBudget::Fixed(2));
        let empty: Vec<u8> = vec![];
        assert!(pool.map(empty, |_, &x: &u8| x).is_empty());
        assert_eq!(pool.map(vec![9u8], |_, &x| x), vec![9]);
    }

    #[test]
    fn execute_runs_jobs() {
        let pool = Pool::new(ThreadBudget::Fixed(2));
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let hits = Arc::clone(&hits);
            pool.execute(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        drop(pool); // joins workers, so all jobs have run
        assert_eq!(hits.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn map_panic_propagates_but_pool_survives() {
        let pool = Pool::new(ThreadBudget::Fixed(2));
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.map(vec![0usize, 1, 2, 3], |_, &x| {
                assert!(x != 2, "boom");
                x
            })
        }));
        assert!(result.is_err());
        // The pool keeps serving after a job panicked.
        let ok = pool.map(vec![1usize, 2, 3], |_, &x| x * 2);
        assert_eq!(ok, vec![2, 4, 6]);
    }

    #[test]
    fn map_cancellable_unbounded_matches_map() {
        let pool = Pool::new(ThreadBudget::Fixed(3));
        let xs: Vec<f64> = (1..150).map(|i| i as f64 * 0.59).collect();
        let f = |_: usize, &x: &f64| (x.sin() + x.cbrt()).to_bits();
        let plain = pool.map(xs.clone(), f);
        let cancellable = pool.map_cancellable(xs, &Deadline::none(), f);
        assert_eq!(cancellable.len(), plain.len());
        for (a, b) in plain.iter().zip(&cancellable) {
            assert_eq!(Some(*a), *b);
        }
    }

    #[test]
    fn map_cancellable_partial_is_bitwise_stable() {
        let xs: Vec<f64> = (1..120).map(|i| i as f64 * 0.31).collect();
        let f = |_: usize, &x: &f64| (x.tan() * x.sqrt()).to_bits();
        let full: Vec<u64> = xs.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        for t in [1usize, 4] {
            let pool = Pool::new(ThreadBudget::Fixed(t));
            let d = Deadline::after_checks(20);
            let part = pool.map_cancellable(xs.clone(), &d, f);
            let completed = part.iter().filter(|s| s.is_some()).count();
            assert!(completed > 0, "pool size {t}");
            assert!(
                completed < xs.len(),
                "pool size {t}: 20 checks must expire mid-map"
            );
            for (i, slot) in part.iter().enumerate() {
                if let Some(bits) = slot {
                    assert_eq!(*bits, full[i], "pool size {t} item {i}");
                }
            }
        }
    }

    #[test]
    fn map_cancellable_cancelled_up_front_skips_all() {
        let pool = Pool::new(ThreadBudget::Fixed(2));
        let d = Deadline::token();
        d.cancel();
        let out = pool.map_cancellable((0..40usize).collect(), &d, |_, &x| x);
        assert!(out.iter().all(|s| s.is_none()));
        // The pool still serves normal maps afterwards.
        assert_eq!(pool.map(vec![1usize, 2], |_, &x| x + 1), vec![2, 3]);
    }

    #[test]
    fn uneven_work_lands_in_slots() {
        let pool = Pool::new(ThreadBudget::Fixed(5));
        let xs: Vec<usize> = (0..97).collect();
        let out = pool.map(xs, |_, &x| {
            let iters = if x % 10 == 0 { 20_000 } else { 10 };
            (0..iters).fold(x as f64, |a, _| a + (a * 1e-9).sin())
        });
        assert_eq!(out.len(), 97);
        assert!(out.iter().all(|v| v.is_finite()));
    }
}
