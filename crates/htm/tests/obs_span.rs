//! Integration check that `Htm::closed_loop` is observable end to end:
//! under an active filter it must record a span with a nonzero duration
//! and a label carrying the truncated matrix dimension.

use htmpll_htm::{Htm, Truncation};
use htmpll_num::Complex;
use htmpll_obs as obs;

#[test]
fn closed_loop_records_labeled_span() {
    obs::override_filter("htm=debug,num=debug");
    obs::reset();

    let trunc = Truncation::new(3); // dim 7
    let omega0 = 10.0;
    // A well-conditioned open-loop HTM: small coupling off the diagonal.
    let g = Htm::from_fn(trunc, omega0, |n, m| {
        if n == m {
            Complex::new(0.5, 0.0)
        } else {
            Complex::new(0.01 / (1.0 + (n - m).abs() as f64), 0.0)
        }
    });
    g.closed_loop().expect("well-conditioned closed loop");

    let snaps = obs::snapshot();
    let span = snaps
        .iter()
        .find(|m| m.key == "htm.closed_loop{dim=7}")
        .unwrap_or_else(|| {
            panic!(
                "span missing; keys: {:?}",
                snaps.iter().map(|m| &m.key).collect::<Vec<_>>()
            )
        });
    assert_eq!(span.kind, obs::MetricKind::Span);
    assert_eq!(span.count, 1);
    assert!(
        span.sum > 0.0,
        "span duration must be nonzero, got {}",
        span.sum
    );

    // The solve inside went through the instrumented LU path at the
    // same dimension.
    let lu_dim = snaps.iter().find(|m| m.key == "num.lu.dim").unwrap();
    assert_eq!(lu_dim.max, Some(7.0));

    // At debug level the backward-error residual is recorded and tiny.
    let resid = snaps
        .iter()
        .find(|m| m.key == "htm.closed_loop.residual")
        .expect("debug residual metric");
    assert!(resid.max.unwrap() < 1e-10, "residual {:?}", resid.max);

    obs::override_filter("off");
}
