//! Nyquist-style encirclement analysis for scalar loop gains.
//!
//! For an open loop whose HTM is rank one, the generalized (HTM) Nyquist
//! criterion of Möllerstedt & Bernhardsson collapses to the scalar locus
//! of the effective open-loop gain `λ(jω)`: closed-loop stability is
//! read off the encirclements of `−1` exactly as in classical control.
//! This module provides the locus sampling and winding-number counting
//! used by that test.
//!
//! The locus is sampled on `ω ∈ [wmin, wmax]` with `wmin > 0`; the
//! negative-frequency half is completed by conjugate symmetry (valid for
//! real impulse responses) and the far ends are joined through the
//! origin-side closure appropriate for strictly proper gains that roll
//! off to zero.
//!
//! ```
//! use htmpll_htm::nyquist::{encirclements_of_minus_one, nyquist_locus};
//! use htmpll_lti::Tf;
//!
//! // Stable unity-feedback loop: G = 1/(s+1) never encircles −1.
//! let g = Tf::from_coeffs(vec![1.0], vec![1.0, 1.0]).unwrap();
//! let locus = nyquist_locus(|w| g.eval_jw(w), 1e-3, 1e3, 4000);
//! assert_eq!(encirclements_of_minus_one(&locus), 0);
//! ```

use htmpll_num::optim::log_grid;
use htmpll_num::Complex;

/// Samples the positive-frequency Nyquist locus `f(jω)` on a log grid.
///
/// # Panics
///
/// Panics when `wmin <= 0`, `wmax <= wmin`, or `n < 2`.
pub fn nyquist_locus<F: FnMut(f64) -> Complex>(
    f: F,
    wmin: f64,
    wmax: f64,
    n: usize,
) -> Vec<Complex> {
    assert!(wmin > 0.0 && wmax > wmin, "need 0 < wmin < wmax");
    log_grid(wmin, wmax, n).into_iter().map(f).collect()
}

/// Counts encirclements of `−1` by the closed curve formed from the
/// positive-frequency locus plus its conjugate mirror, with the standard
/// Nyquist sign convention (**clockwise positive**, i.e. the count equals
/// `Z − P`, closed-loop minus open-loop RHP poles).
///
/// The curve is closed by joining the high-frequency ends (where a
/// strictly proper gain has rolled off near the origin, far from `−1`)
/// and the low-frequency ends through their conjugates. Accuracy
/// requires the locus to be sampled densely enough that consecutive
/// points subtend < 180° as seen from `−1`.
pub fn encirclements_of_minus_one(locus: &[Complex]) -> isize {
    if locus.len() < 2 {
        return 0;
    }
    // Full closed path: ω from −∞ → 0⁻ is the reversed conjugate locus,
    // then 0⁺ → +∞ is the locus itself, then closure back to the start.
    let mut path: Vec<Complex> = locus.iter().rev().map(|z| z.conj()).collect();
    path.extend_from_slice(locus);
    path.push(path[0]);

    let center = -Complex::ONE;
    let mut total = 0.0f64;
    for pair in path.windows(2) {
        let a = pair[0] - center;
        let b = pair[1] - center;
        // Signed angle from a to b in (−π, π].
        let cross = a.re * b.im - a.im * b.re;
        let dot = a.re * b.re + a.im * b.im;
        total += cross.atan2(dot);
    }
    // `total` accumulates counter-clockwise as positive; Nyquist counts
    // clockwise encirclements, so flip the sign.
    -(total / (2.0 * std::f64::consts::PI)).round() as isize
}

/// Counts the zeros of `1 + f(s)` inside the right-half period strip
/// `{Re s > eps, |Im s| < ω₀/2}` of an `ω₀`-periodic loop gain, by the
/// argument principle on the strip boundary.
///
/// This is the correct stability test for effective open-loop gains
/// `λ(s) = Σ_m A(s + jmω₀)`: they are periodic along the imaginary axis
/// (so the classical infinite Nyquist contour winds infinitely often)
/// and have poles **on** the axis at every `jmω₀` (aliased integrators),
/// which the offset `eps > 0` side-steps. Because `f` is periodic, the
/// horizontal strip edges cancel exactly and, for gains that decay as
/// `Re s → ∞`, the right edge contributes nothing: the count reduces to
/// the winding of `1 + f(eps + jω)` traversed **downward** along one
/// period (counter-clockwise boundary orientation of the strip).
///
/// Returns the number of unstable closed-loop poles per period strip —
/// `0` means stable.
///
/// # Panics
///
/// Panics when `omega0 <= 0`, `eps <= 0`, or `n < 8`.
pub fn strip_zero_count<F: FnMut(Complex) -> Complex>(
    mut f: F,
    omega0: f64,
    eps: f64,
    n: usize,
) -> isize {
    let contour = strip_contour(omega0, eps, n);
    let values: Vec<Complex> = contour.into_iter().map(&mut f).collect();
    strip_zero_count_from_values(&values)
}

/// The Laplace points of the [`strip_zero_count`] contour: `n + 1`
/// samples of `eps + jω` with `ω` traversed **downward** from `+ω₀/2`
/// to `−ω₀/2` (the counter-clockwise strip-boundary orientation).
/// Evaluate the loop gain on these points — in any order, e.g. in
/// parallel — and hand the ordered values to
/// [`strip_zero_count_from_values`].
///
/// # Panics
///
/// Panics when `omega0 <= 0`, `eps <= 0`, or `n < 8`.
pub fn strip_contour(omega0: f64, eps: f64, n: usize) -> Vec<Complex> {
    assert!(omega0 > 0.0, "omega0 must be positive");
    assert!(eps > 0.0, "contour offset must be positive");
    assert!(n >= 8, "need at least 8 contour samples");
    (0..=n)
        .map(|k| Complex::new(eps, omega0 * (0.5 - k as f64 / n as f64)))
        .collect()
}

/// Winding-number count of [`strip_zero_count`] over precomputed loop
/// gains `values[k] = f(contour[k])` on the [`strip_contour`] points.
/// The winding depends only on the value *sequence*, so the result is
/// bitwise-identical however `values` was produced.
pub fn strip_zero_count_from_values(values: &[Complex]) -> isize {
    let mut total = 0.0f64;
    let mut prev: Option<Complex> = None;
    for &v in values {
        let z = Complex::ONE + v;
        if let Some(p) = prev {
            let cross = p.re * z.im - p.im * z.re;
            let dot = p.re * z.re + p.im * z.im;
            total += cross.atan2(dot);
        }
        prev = Some(z);
    }
    (total / (2.0 * std::f64::consts::PI)).round() as isize
}

/// Convenience wrapper: true when the scalar loop `1 + f(jω)` has no
/// encirclements of `−1` (the closed loop of an open-loop-stable gain is
/// stable).
///
/// Open-loop poles at the origin (type-1/type-2 loops) are assumed to be
/// handled by the caller starting `wmin` above zero; the standard
/// infinitesimal-indentation closure contributes no encirclement for
/// loops whose low-frequency phase stays above −180° − this is the case
/// for the charge-pump loops in this workspace, whose zero lifts the
/// phase before crossover.
pub fn is_nyquist_stable<F: FnMut(f64) -> Complex>(f: F, wmin: f64, wmax: f64) -> bool {
    let locus = nyquist_locus(f, wmin, wmax, 8192);
    encirclements_of_minus_one(&locus) == 0
}

/// Matrix version of [`strip_zero_count`]: counts the zeros of
/// `det(I + G̃(s))` inside the right-half period strip of an
/// `ω₀`-periodic **matrix** loop gain, by the argument principle on the
/// offset contour. This is the rigorous stability test for LPTV loops
/// that are *not* rank one (multiple detectors, auxiliary continuous
/// feedback paths), where no scalar `λ` exists.
///
/// `g` evaluates the truncated open-loop HTM matrix at a Laplace point.
/// Truncation must be generous enough that the determinant has
/// converged (the winding is integer-quantized, which makes it robust
/// to small truncation error).
///
/// Returns the number of unstable closed-loop poles per period strip.
///
/// # Panics
///
/// Panics when `omega0 <= 0`, `eps <= 0`, or `n < 8`.
pub fn strip_zero_count_matrix<F: FnMut(Complex) -> htmpll_num::CMat>(
    mut g: F,
    omega0: f64,
    eps: f64,
    n: usize,
) -> isize {
    assert!(omega0 > 0.0, "omega0 must be positive");
    assert!(eps > 0.0, "contour offset must be positive");
    assert!(n >= 8, "need at least 8 contour samples");
    let mut total = 0.0f64;
    let mut prev: Option<Complex> = None;
    for k in 0..=n {
        let w = omega0 * (0.5 - k as f64 / n as f64);
        let m = g(Complex::new(eps, w));
        let dim = m.rows();
        let i_plus_g = &htmpll_num::CMat::identity(dim) + &m;
        let det = htmpll_num::Lu::factor(&i_plus_g)
            .map(|lu| lu.det())
            .unwrap_or(Complex::ZERO);
        if let Some(p) = prev {
            let cross = p.re * det.im - p.im * det.re;
            let dot = p.re * det.re + p.im * det.im;
            total += cross.atan2(dot);
        }
        prev = Some(det);
    }
    (total / (2.0 * std::f64::consts::PI)).round() as isize
}

#[cfg(test)]
mod tests {
    use super::*;
    use htmpll_lti::Tf;
    use htmpll_num::Poly;

    #[test]
    fn stable_first_order() {
        let g = Tf::from_coeffs(vec![10.0], vec![1.0, 1.0]).unwrap();
        assert!(is_nyquist_stable(|w| g.eval_jw(w), 1e-4, 1e4));
    }

    #[test]
    fn unstable_third_order_high_gain() {
        // G = k/(s+1)³ crosses −180° at ω = √3 where |G| = k/8: unstable
        // closed loop for k > 8.
        let den = Poly::from_real_roots(&[-1.0, -1.0, -1.0]);
        let g = Tf::new(Poly::constant(20.0), den.clone()).unwrap();
        let locus = nyquist_locus(|w| g.eval_jw(w), 1e-4, 1e4, 8192);
        assert_eq!(encirclements_of_minus_one(&locus), 2);
        assert!(!is_nyquist_stable(|w| g.eval_jw(w), 1e-4, 1e4));
        // Below the critical gain: stable.
        let g_ok = Tf::new(Poly::constant(4.0), den).unwrap();
        assert!(is_nyquist_stable(|w| g_ok.eval_jw(w), 1e-4, 1e4));
    }

    #[test]
    fn critical_gain_boundary() {
        let den = Poly::from_real_roots(&[-1.0, -1.0, -1.0]);
        for (k, stable) in [(7.5, true), (8.5, false)] {
            let g = Tf::new(Poly::constant(k), den.clone()).unwrap();
            assert_eq!(
                is_nyquist_stable(|w| g.eval_jw(w), 1e-4, 1e4),
                stable,
                "gain {k}"
            );
        }
    }

    #[test]
    fn winding_number_of_explicit_circles() {
        // A circle of radius 0.5 centered at −1 encircles −1 once (CCW).
        let n = 256;
        let circ: Vec<Complex> = (0..n)
            .map(|k| {
                let th = std::f64::consts::PI * (k as f64 + 0.5) / n as f64;
                Complex::new(-1.0, 0.0) + Complex::from_polar(0.5, th)
            })
            .collect();
        // Upper half of the circle; the conjugate mirror completes it.
        // The mirrored traversal runs counter-clockwise, i.e. −1 in the
        // clockwise-positive Nyquist convention.
        assert_eq!(encirclements_of_minus_one(&circ), -1);

        // A small circle near the origin does not encircle −1.
        let far: Vec<Complex> = (0..n)
            .map(|k| {
                let th = std::f64::consts::PI * k as f64 / n as f64;
                Complex::from_polar(0.1, th)
            })
            .collect();
        assert_eq!(encirclements_of_minus_one(&far), 0);
    }

    #[test]
    fn matrix_strip_count_matches_scalar_for_rank_one() {
        use crate::blocks::{LtiHtm, SamplerHtm};
        use crate::ops::series;
        use crate::trunc::Truncation;
        use htmpll_lti::ChargePumpFilter2;

        // A charge-pump loop at two speeds: the det-winding of the full
        // matrix must agree with the scalar strip count on 1 + λ.
        // Loop gains chosen so |A(jω)| = 1 lands at ω_UG/ω₀ ≈ 0.08
        // (stable) and ≈ 0.9 (far beyond the sampling limit).
        let t = Truncation::new(12);
        for (gain, expect_unstable) in [(0.1, false), (12.0, true)] {
            let w0 = 5.0;
            let z = ChargePumpFilter2::from_pole_zero(0.25, 4.0, 1.0)
                .unwrap()
                .impedance()
                .scale(gain * 2.0 * std::f64::consts::PI / w0);
            let lf = LtiHtm::new(z, w0);
            let vco = LtiHtm::new(Tf::integrator(), w0);
            let pfd = SamplerHtm::new(w0);
            let count = strip_zero_count_matrix(
                |s| series(&[&pfd, &lf, &vco], s, t).into_matrix(),
                w0,
                1e-4,
                4096,
            );
            assert_eq!(count > 0, expect_unstable, "gain {gain}: count {count}");
        }
    }

    #[test]
    fn matrix_strip_count_handles_non_rank_one_loop() {
        use crate::blocks::{HtmBlock, LtiHtm, SamplerHtm};
        use crate::ops::series;
        use crate::trunc::Truncation;
        use htmpll_lti::ChargePumpFilter2;

        // Hybrid loop: sampled PFD path in parallel with a continuous
        // auxiliary feedback path — genuinely rank > 1, no scalar λ.
        let w0 = 5.0;
        let t = Truncation::new(10);
        let z = ChargePumpFilter2::from_pole_zero(0.25, 4.0, 1.0)
            .unwrap()
            .impedance()
            .scale(0.1 * 2.0 * std::f64::consts::PI / w0);
        let vco = LtiHtm::new(Tf::integrator(), w0);

        let eval = |aux_gain: f64, s: Complex| {
            let lf = LtiHtm::new(z.clone(), w0);
            let pfd = SamplerHtm::new(w0);
            let sampled = series(&[&pfd, &lf], s, t);
            // Continuous path: a broadband first-order detector.
            let aux = LtiHtm::new(Tf::first_order_lowpass(2.0).scale(aux_gain), w0);
            let fwd = parallel_htm(&sampled, &aux.htm(s, t));
            (&vco.htm(s, t) * &fwd).into_matrix()
        };
        fn parallel_htm(a: &crate::matrix::Htm, b: &crate::matrix::Htm) -> crate::matrix::Htm {
            a + b
        }

        // Rank check at one point: two significant singular directions
        // (cheap proxy: a 2×2 minor of the forward matrix is nonzero).
        let probe = eval(0.5, Complex::new(1e-3, 0.3));
        let det2 = probe[(0, 0)] * probe[(1, 1)] - probe[(0, 1)] * probe[(1, 0)];
        assert!(det2.abs() > 1e-9, "loop should not be rank one");

        // A modest auxiliary gain keeps the hybrid loop stable; a large
        // negative (positive-feedback) one destabilizes it — the PLL
        // path splits the pure-aux loop's single real RHP pole into a
        // complex pair, so the count is 2. Dense contour sampling is
        // required: the determinant spikes where the contour passes the
        // aliased integrator poles.
        let stable = strip_zero_count_matrix(|s| eval(0.5, s), w0, 1e-4, 8192);
        assert_eq!(stable, 0);
        let unstable = strip_zero_count_matrix(|s| eval(-40.0, s), w0, 1e-4, 8192);
        assert_eq!(unstable, 2, "count {unstable}");
        // Sanity anchor: with the sampled path removed the aux loop has
        // exactly one RHP pole (s² + 2s − 80 = 0 → s = 8).
        let z_tiny = ChargePumpFilter2::from_pole_zero(0.25, 4.0, 1.0)
            .unwrap()
            .impedance()
            .scale(1e-9);
        let pure_aux = strip_zero_count_matrix(
            |s| {
                let lf = LtiHtm::new(z_tiny.clone(), w0);
                let pfd = SamplerHtm::new(w0);
                let sampled = series(&[&pfd, &lf], s, t);
                let aux = LtiHtm::new(Tf::first_order_lowpass(2.0).scale(-40.0), w0);
                let fwd = parallel_htm(&sampled, &aux.htm(s, t));
                (&vco.htm(s, t) * &fwd).into_matrix()
            },
            w0,
            1e-4,
            8192,
        );
        assert_eq!(pure_aux, 1);
    }

    #[test]
    fn degenerate_locus() {
        assert_eq!(encirclements_of_minus_one(&[]), 0);
        assert_eq!(encirclements_of_minus_one(&[Complex::ONE]), 0);
    }
}
