//! The harmonic transfer matrix value type.
//!
//! An [`Htm`] is one *evaluation* of a (truncated) harmonic transfer
//! matrix `H̃(s)` at a fixed Laplace point `s`: a complex matrix tagged
//! with its truncation and the fundamental `ω₀`, with accessors in
//! harmonic (band) coordinates. Element `(n, m)` describes the transfer
//! of signal content from the input band around `mω₀` to the output band
//! around `nω₀` (paper eq. 5/9 and Fig. 2).
//!
//! Storage is an [`HtmRepr`]: the structured variants (diagonal, banded
//! Toeplitz, rank one) carry O(n) data and compose without densifying;
//! a dense `(2K+1)²` matrix is materialized lazily only when a consumer
//! actually asks for it ([`Htm::as_matrix`]).
//!
//! ```
//! use htmpll_htm::{Htm, Truncation};
//! use htmpll_num::Complex;
//!
//! let t = Truncation::new(1);
//! let id = Htm::identity(t, 1.0);
//! assert_eq!(id.band(0, 0), Complex::ONE);
//! assert_eq!(id.band(1, 0), Complex::ZERO);
//! ```

use crate::factor::{ClosedLoopFactor, SolveScratch};
use crate::repr::HtmRepr;
use crate::trunc::Truncation;
use htmpll_num::{CMat, Complex, Lu, LuError, SolveReport};
use std::fmt;
use std::ops::{Add, Mul, Sub};
use std::sync::OnceLock;

/// A truncated harmonic transfer matrix evaluated at one Laplace point.
#[derive(Debug, Clone)]
pub struct Htm {
    trunc: Truncation,
    omega0: f64,
    repr: HtmRepr,
    /// Lazily materialized dense view of a structured `repr`.
    dense: OnceLock<CMat>,
}

impl Htm {
    /// Wraps an explicit matrix.
    ///
    /// # Panics
    ///
    /// Panics when the matrix dimension does not match the truncation or
    /// `omega0 <= 0`.
    pub fn from_matrix(trunc: Truncation, omega0: f64, mat: CMat) -> Self {
        assert_eq!(
            (mat.rows(), mat.cols()),
            (trunc.dim(), trunc.dim()),
            "matrix does not match truncation dimension {}",
            trunc.dim()
        );
        Htm::from_repr(trunc, omega0, HtmRepr::Dense(mat))
    }

    /// Wraps a structured representation directly.
    ///
    /// # Panics
    ///
    /// Panics when the representation is inconsistent with the
    /// truncation dimension or `omega0 <= 0`.
    pub fn from_repr(trunc: Truncation, omega0: f64, repr: HtmRepr) -> Self {
        assert!(omega0 > 0.0, "fundamental frequency must be positive");
        assert!(
            repr.dim_ok(trunc.dim()),
            "{} repr does not match truncation dimension {}",
            repr.kind_name(),
            trunc.dim()
        );
        Htm {
            trunc,
            omega0,
            repr,
            dense: OnceLock::new(),
        }
    }

    /// Builds an HTM by evaluating `f(n, m)` over harmonic indices.
    pub fn from_fn<F: FnMut(i64, i64) -> Complex>(
        trunc: Truncation,
        omega0: f64,
        mut f: F,
    ) -> Self {
        htmpll_obs::counter!("htm", "from_fn.calls").inc();
        htmpll_obs::record!("htm", "from_fn.dim").record(trunc.dim() as f64);
        let mat = CMat::from_fn(trunc.dim(), trunc.dim(), |i, j| {
            f(trunc.harmonic_at(i), trunc.harmonic_at(j))
        });
        Htm::from_matrix(trunc, omega0, mat)
    }

    /// Builds the HTM directly from **harmonic transfer functions**
    /// `H_k(s)` (paper eq. 2–5): `H_{n,m}(s) = H_{n−m}(s + jmω₀)`.
    /// `harmonic_tfs[i]` holds `H_k` for `k = i − (len−1)/2` (centered,
    /// odd length); missing harmonics are zero.
    ///
    /// # Panics
    ///
    /// Panics when `harmonic_tfs` has even length or `omega0 <= 0`.
    pub fn from_harmonic_tfs(
        trunc: Truncation,
        omega0: f64,
        s: Complex,
        harmonic_tfs: &[htmpll_lti::Tf],
    ) -> Self {
        assert!(
            harmonic_tfs.len() % 2 == 1,
            "centered harmonic transfer functions need odd length, got {}",
            harmonic_tfs.len()
        );
        htmpll_obs::counter!("htm", "from_harmonic_tfs.calls").inc();
        let half = (harmonic_tfs.len() / 2) as i64;
        Htm::from_fn(trunc, omega0, |n, m| {
            let k = n - m;
            if k.abs() <= half {
                harmonic_tfs[(k + half) as usize].eval(s + Complex::from_im(m as f64 * omega0))
            } else {
                Complex::ZERO
            }
        })
    }

    /// The identity HTM (the memoryless unity system).
    pub fn identity(trunc: Truncation, omega0: f64) -> Self {
        Htm::from_repr(
            trunc,
            omega0,
            HtmRepr::Diagonal(vec![Complex::ONE; trunc.dim()]),
        )
    }

    /// The zero HTM.
    pub fn zero(trunc: Truncation, omega0: f64) -> Self {
        Htm::from_repr(
            trunc,
            omega0,
            HtmRepr::Diagonal(vec![Complex::ZERO; trunc.dim()]),
        )
    }

    /// The truncation this HTM was evaluated under.
    pub fn truncation(&self) -> Truncation {
        self.trunc
    }

    /// The fundamental angular frequency `ω₀`.
    pub fn omega0(&self) -> f64 {
        self.omega0
    }

    /// The structured representation backing this HTM.
    pub fn repr(&self) -> &HtmRepr {
        &self.repr
    }

    /// Borrows a dense view of the matrix. For structured
    /// representations the dense matrix is materialized on first call
    /// and cached (an `htm.repr.densify` counter records the
    /// escalation); band accessors ([`Htm::band`], [`Htm::apply`], …)
    /// never trigger this.
    pub fn as_matrix(&self) -> &CMat {
        if let HtmRepr::Dense(m) = &self.repr {
            return m;
        }
        self.dense.get_or_init(|| {
            htmpll_obs::counter!("htm", "repr.densify").inc();
            self.repr.to_dense(self.trunc.dim())
        })
    }

    /// Consumes the HTM and returns the underlying matrix (densifying a
    /// structured representation if needed).
    pub fn into_matrix(self) -> CMat {
        let n = self.trunc.dim();
        match self.repr {
            HtmRepr::Dense(m) => m,
            repr => self.dense.into_inner().unwrap_or_else(|| repr.to_dense(n)),
        }
    }

    /// A copy of this HTM with the representation forced dense — the
    /// escape hatch for callers that explicitly want the unstructured
    /// kernels (cross-checks, benchmarks).
    pub fn densified(&self) -> Htm {
        Htm::from_matrix(self.trunc, self.omega0, self.as_matrix().clone())
    }

    /// True when every entry is finite (no NaN/∞), checked on the
    /// structured storage without densifying.
    pub fn is_finite(&self) -> bool {
        self.repr.is_finite()
    }

    /// Band-transfer element `H_{n,m}`: input band `mω₀` → output band
    /// `nω₀`. Reads through the structured representation — O(1), no
    /// densification.
    ///
    /// # Panics
    ///
    /// Panics when `|n| > K` or `|m| > K`.
    pub fn band(&self, n: i64, m: i64) -> Complex {
        let i = self
            .trunc
            .index_of(n)
            .expect("output harmonic outside truncation");
        let j = self
            .trunc
            .index_of(m)
            .expect("input harmonic outside truncation");
        self.repr.entry(self.trunc.dim(), i, j)
    }

    /// Panic-free variant of [`band`](Htm::band): `None` when either
    /// harmonic index falls outside the truncation. Differential
    /// cross-checks use this to probe arbitrary `(n, m)` pairs without
    /// first validating them against `K`.
    pub fn try_band(&self, n: i64, m: i64) -> Option<Complex> {
        let i = self.trunc.index_of(n)?;
        let j = self.trunc.index_of(m)?;
        Some(self.repr.entry(self.trunc.dim(), i, j))
    }

    /// Sum of all elements, `𝟙ᵀ H̃ 𝟙` — the scalar that becomes the
    /// effective open-loop gain `λ(s)` when applied to
    /// `H̃_VCO·H̃_LF` (paper eq. 33). Computed on the structured
    /// storage (O(n·b) for banded, O(n) for diagonal/rank-one).
    pub fn sum_entries(&self) -> Complex {
        self.repr.sum_entries(self.trunc.dim())
    }

    /// Applies the HTM to a vector of band contents (harmonic order
    /// `−K..K`) — a structured mat-vec, O(n·b) for banded storage.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn apply(&self, bands: &[Complex]) -> Vec<Complex> {
        self.repr.mul_vec(self.trunc.dim(), bands)
    }

    /// Scales every element, preserving the structured representation.
    pub fn scale(&self, k: Complex) -> Htm {
        Htm::from_repr(self.trunc, self.omega0, self.repr.scale(k))
    }

    /// Solves the feedback equation: returns `(I + self)⁻¹ · self`, the
    /// closed-loop HTM of a unity-negative-feedback loop with this
    /// open-loop gain (paper eq. 28), via dense LU.
    ///
    /// # Errors
    ///
    /// Returns the LU error when `I + G` is singular at this `s` — the
    /// loop is on a closed-loop pole.
    pub fn closed_loop(&self) -> Result<Htm, LuError> {
        self.closed_loop_factored().map(|(_, h)| h)
    }

    /// [`closed_loop`](Htm::closed_loop), additionally returning the LU
    /// factorization of `I + G` so callers that solve against further
    /// right-hand sides at the same Laplace point (sweep caches, band
    /// extractions) can reuse it instead of refactoring. Always runs
    /// the dense kernels — the strict reference implementation.
    ///
    /// # Errors
    ///
    /// Returns the LU error when `I + G` is singular at this `s`.
    pub fn closed_loop_factored(&self) -> Result<(Lu, Htm), LuError> {
        let n = self.trunc.dim();
        let _span = htmpll_obs::span_labeled("htm", "closed_loop", || format!("dim={n}"));
        let i_plus_g = &CMat::identity(n) + self.as_matrix();
        let lu = Lu::factor(&i_plus_g)?;
        let solved = lu.solve_mat(self.as_matrix())?;
        // ‖(I+G)X − G‖_max: a telemetry-only backward check on the solve,
        // worth the extra matmul only when someone is looking.
        let residual = htmpll_obs::record!("htm", "closed_loop.residual", htmpll_obs::Level::Debug);
        if residual.is_enabled() {
            let diff = &(&i_plus_g * &solved) - self.as_matrix();
            residual.record(diff.norm_max());
        }
        Ok((lu, Htm::from_matrix(self.trunc, self.omega0, solved)))
    }

    /// [`closed_loop_factored`](Htm::closed_loop_factored) on the
    /// structure-aware escalating solver. The open loop's [`HtmRepr`]
    /// picks the kernel: rank-one Sherman–Morrison or diagonal
    /// reciprocal closed forms (O(n)), a banded O(n·b²) factorization
    /// for banded Toeplitz loops, or the classic dense ladder (refined
    /// partial pivot → complete pivoting → Tikhonov perturbation).
    /// Structured shortcuts are condition-gated and fall back to the
    /// dense ladder rather than return an untrustworthy answer; the
    /// returned [`SolveReport`] grades the point either way. Callers
    /// decide from `report.perturbed` / `report.residual` whether the
    /// point is trustworthy.
    ///
    /// # Errors
    ///
    /// [`LuError::NonFinite`] when the open-loop matrix contains NaN/∞
    /// entries — the only failure the ladder cannot absorb.
    pub fn closed_loop_factored_robust(
        &self,
    ) -> Result<(ClosedLoopFactor, Htm, SolveReport), LuError> {
        let mut scratch = SolveScratch::new();
        self.closed_loop_factored_robust_with(&mut scratch)
    }

    /// [`closed_loop_factored_robust`](Htm::closed_loop_factored_robust)
    /// with caller-owned scratch buffers, so sweep loops can solve
    /// thousands of grid points without per-point staging allocations.
    ///
    /// # Errors
    ///
    /// [`LuError::NonFinite`] when the open-loop matrix contains NaN/∞
    /// entries.
    pub fn closed_loop_factored_robust_with(
        &self,
        scratch: &mut SolveScratch,
    ) -> Result<(ClosedLoopFactor, Htm, SolveReport), LuError> {
        crate::factor::closed_loop_robust(self, scratch)
    }

    /// Eigenvalues of the truncated HTM — the sample points of the
    /// **generalized Nyquist loci**. For a rank-one loop (sampling PFD)
    /// exactly one eigenvalue is nonzero and equals the truncated
    /// effective gain `λ(s)`; general LPTV interconnections produce a
    /// full set of loci whose `−1` encirclements decide stability
    /// (Möllerstedt & Bernhardsson).
    ///
    /// # Errors
    ///
    /// Propagates eigensolver failures.
    pub fn eigenvalues(&self) -> Result<Vec<Complex>, htmpll_num::EigError> {
        let _span =
            htmpll_obs::span_labeled("htm", "eigenvalues", || format!("dim={}", self.trunc.dim()));
        htmpll_num::eigenvalues(self.as_matrix())
    }

    /// Checks shape compatibility for binary operations.
    fn assert_compatible(&self, other: &Htm) {
        assert_eq!(self.trunc, other.trunc, "truncation mismatch");
        assert!(
            (self.omega0 - other.omega0).abs() <= 1e-12 * self.omega0,
            "fundamental frequency mismatch: {} vs {}",
            self.omega0,
            other.omega0
        );
    }
}

impl PartialEq for Htm {
    /// Entry-wise equality — two HTMs are equal when they describe the
    /// same matrix, regardless of which [`HtmRepr`] stores it.
    fn eq(&self, other: &Self) -> bool {
        if self.trunc != other.trunc || self.omega0 != other.omega0 {
            return false;
        }
        let n = self.trunc.dim();
        (0..n).all(|i| (0..n).all(|j| self.repr.entry(n, i, j) == other.repr.entry(n, i, j)))
    }
}

impl fmt::Display for Htm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Htm(K={}, ω₀={}, {}×{})",
            self.trunc.order(),
            self.omega0,
            self.trunc.dim(),
            self.trunc.dim()
        )
    }
}

impl Add for &Htm {
    type Output = Htm;
    /// Parallel connection `y = H₁[u] + H₂[u]` (paper eq. 10) —
    /// structure-propagating (see [`HtmRepr::add`]).
    fn add(self, rhs: &Htm) -> Htm {
        self.assert_compatible(rhs);
        Htm::from_repr(
            self.trunc,
            self.omega0,
            self.repr.add(&rhs.repr, self.trunc.dim()),
        )
    }
}

impl Sub for &Htm {
    type Output = Htm;
    fn sub(self, rhs: &Htm) -> Htm {
        self.assert_compatible(rhs);
        // a − b ≡ a + (−1·b) bitwise in IEEE arithmetic, and the latter
        // rides the structure-propagating add lattice.
        Htm::from_repr(
            self.trunc,
            self.omega0,
            self.repr
                .add(&rhs.repr.scale(-Complex::ONE), self.trunc.dim()),
        )
    }
}

impl Mul for &Htm {
    type Output = Htm;
    /// Series connection: `self * rhs` is the system "`rhs` first, then
    /// `self`" — matrix order matches operator order (paper eq. 11:
    /// `H̃∘ = H̃₂ H̃₁` for `y = H₂[H₁[u]]`). Structure-propagating
    /// (see [`HtmRepr::mul`]): diagonal·banded stays banded,
    /// anything·rank-one stays rank one.
    fn mul(self, rhs: &Htm) -> Htm {
        self.assert_compatible(rhs);
        Htm::from_repr(
            self.trunc,
            self.omega0,
            self.repr.mul(&rhs.repr, self.trunc.dim()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: Truncation) -> Htm {
        Htm::from_fn(t, 2.0, |n, m| Complex::new(n as f64, m as f64))
    }

    #[test]
    fn band_indexing_matches_harmonics() {
        let t = Truncation::new(2);
        let h = sample(t);
        assert_eq!(h.band(-2, 1), Complex::new(-2.0, 1.0));
        assert_eq!(h.band(0, 0), Complex::ZERO);
        assert_eq!(h.band(2, -2), Complex::new(2.0, -2.0));
    }

    #[test]
    fn try_band_mirrors_band_and_rejects_out_of_range() {
        let h = sample(Truncation::new(2));
        assert_eq!(h.try_band(-2, 1), Some(h.band(-2, 1)));
        assert_eq!(h.try_band(3, 0), None);
        assert_eq!(h.try_band(0, -3), None);
    }

    #[test]
    #[should_panic(expected = "outside truncation")]
    fn band_out_of_range() {
        let h = sample(Truncation::new(1));
        let _ = h.band(2, 0);
    }

    #[test]
    fn identity_behaves() {
        let t = Truncation::new(2);
        let id = Htm::identity(t, 2.0);
        let h = sample(t);
        assert_eq!(&id * &h, h);
        assert_eq!(&h * &id, h);
        let z = Htm::zero(t, 2.0);
        assert_eq!(&h + &z, h);
        assert_eq!(&h - &h, z);
    }

    #[test]
    fn structured_identity_is_diagonal() {
        // identity/zero carry O(n) storage now, and equality is
        // representation-independent.
        let t = Truncation::new(3);
        let id = Htm::identity(t, 2.0);
        assert_eq!(id.repr().kind_name(), "diagonal");
        let dense_id = Htm::from_matrix(t, 2.0, CMat::identity(t.dim()));
        assert_eq!(id, dense_id);
        assert_eq!(dense_id, id);
    }

    #[test]
    fn apply_maps_bands() {
        let t = Truncation::new(1);
        // H with only H_{1,0} = 2: content in band 0 appears in band +1.
        let h = Htm::from_fn(t, 1.0, |n, m| {
            if n == 1 && m == 0 {
                Complex::from_re(2.0)
            } else {
                Complex::ZERO
            }
        });
        let input = [Complex::ZERO, Complex::ONE, Complex::ZERO]; // band 0 = 1
        let out = h.apply(&input);
        assert_eq!(
            out,
            vec![Complex::ZERO, Complex::ZERO, Complex::from_re(2.0)]
        );
    }

    #[test]
    fn sum_entries_is_lambda_shape() {
        let t = Truncation::new(1);
        let h = Htm::from_fn(t, 1.0, |_, _| Complex::from_re(0.5));
        assert!(h.sum_entries().approx_eq(Complex::from_re(4.5), 1e-14));
    }

    #[test]
    fn closed_loop_of_scalar_case() {
        // K=0 reduces to a scalar: G/(1+G).
        let t = Truncation::new(0);
        let g = Htm::from_fn(t, 1.0, |_, _| Complex::new(2.0, 1.0));
        let cl = g.closed_loop().unwrap();
        let expect = Complex::new(2.0, 1.0) / Complex::new(3.0, 1.0);
        assert!(cl.band(0, 0).approx_eq(expect, 1e-13));
    }

    #[test]
    fn closed_loop_matches_manual_inverse() {
        let t = Truncation::new(2);
        let g = Htm::from_fn(t, 1.0, |n, m| {
            Complex::new(0.1 * (n + m) as f64, 0.05 * (n - m) as f64)
        });
        let cl = g.closed_loop().unwrap();
        // Verify (I+G)·CL == G.
        let n = t.dim();
        let i_plus_g = &CMat::identity(n) + g.as_matrix();
        let back = &i_plus_g * cl.as_matrix();
        assert!(back.max_diff(g.as_matrix()) < 1e-12);
    }

    #[test]
    fn closed_loop_singular_detected() {
        // G = −I makes I+G singular.
        let t = Truncation::new(1);
        let g = Htm::identity(t, 1.0).scale(-Complex::ONE);
        assert!(g.closed_loop().is_err());
    }

    #[test]
    fn closed_loop_robust_survives_singular() {
        // G = −I: plain closed_loop errors; the robust path perturbs and
        // reports it.
        let t = Truncation::new(1);
        let g = Htm::identity(t, 1.0).scale(-Complex::ONE);
        assert!(g.closed_loop().is_err());
        let (_, cl, report) = g.closed_loop_factored_robust().unwrap();
        assert!(report.perturbed);
        assert!(cl.as_matrix().is_finite());
    }

    #[test]
    fn closed_loop_robust_matches_plain_when_regular() {
        let t = Truncation::new(2);
        let g = Htm::from_fn(t, 1.0, |n, m| {
            Complex::new(0.1 * (n + m) as f64, 0.05 * (n - m) as f64)
        });
        let plain = g.closed_loop().unwrap();
        let (_, robust, report) = g.closed_loop_factored_robust().unwrap();
        assert!(!report.perturbed);
        assert!(report.residual < 1e-12);
        assert!(plain.as_matrix().max_diff(robust.as_matrix()) < 1e-12);
    }

    #[test]
    fn densified_preserves_values() {
        let t = Truncation::new(2);
        let id = Htm::identity(t, 2.0);
        let dense = id.densified();
        assert_eq!(dense.repr().kind_name(), "dense");
        assert_eq!(dense, id);
        assert!(id.is_finite() && dense.is_finite());
    }

    #[test]
    #[should_panic(expected = "truncation mismatch")]
    fn incompatible_truncations_rejected() {
        let a = Htm::identity(Truncation::new(1), 1.0);
        let b = Htm::identity(Truncation::new(2), 1.0);
        let _ = &a + &b;
    }

    #[test]
    #[should_panic(expected = "frequency mismatch")]
    fn incompatible_omega_rejected() {
        let a = Htm::identity(Truncation::new(1), 1.0);
        let b = Htm::identity(Truncation::new(1), 2.0);
        let _ = &a * &b;
    }

    #[test]
    fn from_harmonic_tfs_matches_eq5() {
        use htmpll_lti::Tf;
        // H₀ = 1/(s+1), H_{±1} = constants: check placement and shift.
        let h0 = Tf::from_coeffs(vec![1.0], vec![1.0, 1.0]).unwrap();
        let hp = Tf::constant(0.5);
        let hm = Tf::constant(0.25);
        let t = Truncation::new(2);
        let w0 = 3.0;
        let s = Complex::new(0.1, 0.4);
        let htm = Htm::from_harmonic_tfs(t, w0, s, &[hm.clone(), h0.clone(), hp.clone()]);
        for n in t.harmonics() {
            for m in t.harmonics() {
                let expect = match n - m {
                    0 => h0.eval(s + Complex::from_im(m as f64 * w0)),
                    1 => Complex::from_re(0.5),
                    -1 => Complex::from_re(0.25),
                    _ => Complex::ZERO,
                };
                assert!(
                    (htm.band(n, m) - expect).abs() < 1e-14,
                    "({n},{m}): {} vs {expect}",
                    htm.band(n, m)
                );
            }
        }
        // An LTI system through this path equals the LtiHtm block.
        use crate::blocks::{HtmBlock, LtiHtm};
        let via_tfs = Htm::from_harmonic_tfs(
            t,
            w0,
            s,
            &[Tf::constant(0.0), h0.clone(), Tf::constant(0.0)],
        );
        let via_block = LtiHtm::new(h0, w0).htm(s, t);
        assert!(via_tfs.as_matrix().max_diff(via_block.as_matrix()) < 1e-14);
    }

    #[test]
    fn eigenvalues_of_rank_one_loop_reduce_to_lambda() {
        // G = u·𝟙ᵀ: one eigenvalue = Σu (the truncated λ), rest zero.
        let t = Truncation::new(3);
        let g = Htm::from_fn(t, 1.0, |n, _| Complex::new(0.1 * n as f64 + 0.4, 0.05));
        let evs = g.eigenvalues().unwrap();
        let lambda: Complex = t
            .harmonics()
            .map(|n| Complex::new(0.1 * n as f64 + 0.4, 0.05))
            .sum();
        assert!(
            evs.iter()
                .any(|e| (*e - lambda).abs() < 1e-10 * (1.0 + lambda.abs())),
            "λ {lambda} missing from {evs:?}"
        );
        let zeros = evs.iter().filter(|e| e.abs() < 1e-10).count();
        assert_eq!(zeros, t.dim() - 1);
    }

    #[test]
    fn display() {
        let h = Htm::identity(Truncation::new(2), 3.0);
        let s = format!("{h}");
        assert!(s.contains("K=2") && s.contains("5×5"), "{s}");
    }
}
