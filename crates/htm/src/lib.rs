//! # htmpll-htm — the harmonic transfer matrix formalism
//!
//! Frequency-domain representation of **linear periodically time-varying
//! (LPTV)** systems, following Vanassche, Gielen & Sansen (DATE 2003,
//! §2–3) and the HTM literature they build on (Möllerstedt &
//! Bernhardsson; Vanassche et al., TCAD 2002).
//!
//! An LPTV system `y(t) = ∫h(t,τ)u(t−τ)dτ` with `T`-periodic kernel has
//! harmonic transfer functions `H_k(s)` and an (∞-dimensional) harmonic
//! transfer matrix with elements `H_{n,m}(s) = H_{n−m}(s + jmω₀)`;
//! element `(n, m)` moves signal content from the band around `mω₀` to
//! the band around `nω₀`. This crate provides:
//!
//! * [`Truncation`] — symmetric harmonic truncation bookkeeping.
//! * [`Htm`] — one evaluation of a truncated HTM, with band-indexed
//!   accessors, composition operators and a dense closed-loop solve.
//! * [`blocks`] — the building blocks: LTI (diagonal), periodic
//!   multiplier (Toeplitz), sampling PFD (rank one), and the
//!   ISF-integrator VCO model.
//! * [`ops`] — series/parallel composition and the Sherman–Morrison
//!   rank-one closed-loop shortcut that makes sampled-PFD loops cheap.
//! * [`nyquist`] — encirclement counting for the scalar effective gain,
//!   the HTM-Nyquist stability test in the rank-one case.
//!
//! ```
//! use htmpll_htm::{HtmBlock, SamplerHtm, Truncation, VcoHtm};
//! use htmpll_num::Complex;
//!
//! let w0 = 2.0 * std::f64::consts::PI;
//! let pfd = SamplerHtm::new(w0);
//! let vco = VcoHtm::time_invariant(1.0, w0);
//! let g = &vco.htm(Complex::from_im(0.5), Truncation::new(2))
//!     * &pfd.htm(Complex::from_im(0.5), Truncation::new(2));
//! // The open loop inherits the sampler's rank-one structure.
//! let minor = g.band(0, 0) * g.band(1, 1) - g.band(0, 1) * g.band(1, 0);
//! assert!(minor.abs() < 1e-12);
//! ```

#![warn(missing_docs)]

pub mod blocks;
pub mod factor;
pub mod matrix;
pub mod nyquist;
pub mod ops;
pub mod repr;
pub mod response;
pub mod trunc;

pub use blocks::{
    fourier_coefficients, DelayHtm, HtmBlock, LtiHtm, MultiplierHtm, SamplerHtm, VcoHtm,
};
pub use factor::{ClosedLoopFactor, SolveScratch};
pub use matrix::Htm;
pub use nyquist::{
    is_nyquist_stable, strip_contour, strip_zero_count, strip_zero_count_from_values,
    strip_zero_count_matrix,
};
pub use ops::{closed_loop_rank_one, parallel, series, sherman_morrison_apply, Chain};
pub use repr::HtmRepr;
pub use response::{tone_response, SidebandSpectrum};
pub use trunc::{Truncation, TruncationSpec};
