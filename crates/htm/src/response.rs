//! Steady-state sideband spectra and waveform synthesis.
//!
//! An LPTV system excited by one complex exponential
//! `u(t) = U·e^{j(ω_b + mω₀)t}` responds in steady state with a comb of
//! sidebands: `y(t) = Σ_n H_{n,m}(jω_b)·U·e^{j(ω_b + nω₀)t}` — one line
//! per output band (paper eq. 9 / Fig. 2, read as a synthesis formula).
//! [`tone_response`] extracts that comb from an evaluated [`Htm`], and
//! [`SidebandSpectrum`] turns it back into a time-domain waveform,
//! which lets HTM predictions be compared against raw simulator traces
//! sample by sample.
//!
//! ```
//! use htmpll_htm::{response::tone_response, HtmBlock, SamplerHtm, Truncation};
//! use htmpll_num::Complex;
//!
//! let w0 = 10.0;
//! let pfd = SamplerHtm::new(w0);
//! let h = pfd.htm(Complex::from_im(1.0), Truncation::new(2));
//! let spec = tone_response(&h, 1.0, 0, Complex::ONE);
//! // The sampler replicates the input line into every band.
//! assert_eq!(spec.lines().len(), 5);
//! ```

use crate::matrix::Htm;
use htmpll_num::Complex;

/// A steady-state output spectrum: one complex line per output band.
#[derive(Debug, Clone, PartialEq)]
pub struct SidebandSpectrum {
    /// Baseband frequency `ω_b` (rad/s) of the exciting column.
    base: f64,
    /// Band spacing `ω₀` (rad/s).
    omega0: f64,
    /// `(band index n, complex amplitude)` of each line at
    /// `ω_b + n·ω₀`.
    lines: Vec<(i64, Complex)>,
}

impl SidebandSpectrum {
    /// The baseband frequency `ω_b`.
    pub fn base_frequency(&self) -> f64 {
        self.base
    }

    /// The band spacing `ω₀`.
    pub fn omega0(&self) -> f64 {
        self.omega0
    }

    /// The spectral lines as `(band, amplitude)` pairs.
    pub fn lines(&self) -> &[(i64, Complex)] {
        &self.lines
    }

    /// Absolute frequency of line `n`: `ω_b + n·ω₀`.
    pub fn frequency_of(&self, band: i64) -> f64 {
        self.base + band as f64 * self.omega0
    }

    /// The amplitude in a given band (zero when outside the truncation).
    pub fn amplitude(&self, band: i64) -> Complex {
        self.lines
            .iter()
            .find(|(n, _)| *n == band)
            .map(|(_, a)| *a)
            .unwrap_or(Complex::ZERO)
    }

    /// Synthesizes the **complex** steady-state waveform
    /// `y(t) = Σ_n a_n·e^{j(ω_b + nω₀)t}` at the given times.
    pub fn waveform(&self, ts: &[f64]) -> Vec<Complex> {
        ts.iter()
            .map(|&t| {
                self.lines
                    .iter()
                    .map(|&(n, a)| a * Complex::cis(self.frequency_of(n) * t))
                    .sum()
            })
            .collect()
    }

    /// Synthesizes the **real** steady-state waveform of a real system
    /// driven by the real input whose positive-frequency part produced
    /// this spectrum: `y(t) = 2·Re[Σ_n a_n·e^{j(ω_b+nω₀)t}]`.
    ///
    /// (For a real LPTV kernel the negative-frequency response is the
    /// conjugate mirror, so the full real output is twice the real part
    /// of the analytic half.)
    pub fn waveform_real(&self, ts: &[f64]) -> Vec<f64> {
        self.waveform(ts).into_iter().map(|z| 2.0 * z.re).collect()
    }
}

/// Extracts the steady-state sideband spectrum of an evaluated HTM for
/// a single-band excitation: input `amp·e^{j(base + input_band·ω₀)t}`.
///
/// `htm` must have been evaluated at `s = j·base`; `base` is recorded
/// for frequency bookkeeping.
///
/// # Panics
///
/// Panics when `input_band` lies outside the HTM's truncation.
pub fn tone_response(htm: &Htm, base: f64, input_band: i64, amp: Complex) -> SidebandSpectrum {
    let trunc = htm.truncation();
    assert!(
        trunc.index_of(input_band).is_some(),
        "input band {input_band} outside truncation ±{}",
        trunc.order()
    );
    let lines = trunc
        .harmonics()
        .map(|n| (n, htm.band(n, input_band) * amp))
        .collect();
    SidebandSpectrum {
        base,
        omega0: htm.omega0(),
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::{HtmBlock, LtiHtm, MultiplierHtm};
    use crate::trunc::Truncation;
    use htmpll_lti::Tf;

    #[test]
    fn lti_block_produces_single_line() {
        let blk = LtiHtm::new(Tf::first_order_lowpass(2.0), 8.0);
        let w = 1.0;
        let h = blk.htm(Complex::from_im(w), Truncation::new(2));
        let spec = tone_response(&h, w, 0, Complex::ONE);
        // Only the n = 0 line is nonzero for an LTI system.
        for &(n, a) in spec.lines() {
            if n == 0 {
                let expect = blk.tf().eval_jw(w);
                assert!((a - expect).abs() < 1e-14);
            } else {
                assert_eq!(a, Complex::ZERO);
            }
        }
        assert_eq!(spec.frequency_of(1), w + 8.0);
    }

    #[test]
    fn multiplier_shifts_line() {
        // p(t) = cos(ω₀t): input at ω becomes lines at ω ± ω₀ of half
        // amplitude.
        let blk = MultiplierHtm::from_fourier(
            vec![Complex::from_re(0.5), Complex::ZERO, Complex::from_re(0.5)],
            4.0,
        );
        let h = blk.htm(Complex::from_im(0.3), Truncation::new(2));
        let spec = tone_response(&h, 0.3, 0, Complex::from_re(2.0));
        assert!((spec.amplitude(1) - Complex::ONE).abs() < 1e-14);
        assert!((spec.amplitude(-1) - Complex::ONE).abs() < 1e-14);
        assert_eq!(spec.amplitude(0), Complex::ZERO);
        assert_eq!(spec.amplitude(2), Complex::ZERO);
    }

    #[test]
    fn waveform_synthesis_matches_hand_sum() {
        let blk = MultiplierHtm::from_fourier(
            vec![Complex::from_re(0.5), Complex::ONE, Complex::from_re(0.5)],
            4.0,
        );
        let h = blk.htm(Complex::from_im(0.7), Truncation::new(1));
        let spec = tone_response(&h, 0.7, 0, Complex::new(0.0, 1.0));
        let ts = [0.0, 0.3, 1.1];
        let wave = spec.waveform(&ts);
        for (&t, &w) in ts.iter().zip(&wave) {
            let mut expect = Complex::ZERO;
            for &(n, a) in spec.lines() {
                expect += a * Complex::cis((0.7 + n as f64 * 4.0) * t);
            }
            assert!((w - expect).abs() < 1e-13);
        }
        // Real synthesis = 2·Re of the complex one.
        let real = spec.waveform_real(&ts);
        for (r, w) in real.iter().zip(&wave) {
            assert!((r - 2.0 * w.re).abs() < 1e-14);
        }
    }

    #[test]
    #[should_panic(expected = "outside truncation")]
    fn out_of_range_band_rejected() {
        let blk = LtiHtm::new(Tf::one(), 4.0);
        let h = blk.htm(Complex::from_im(0.1), Truncation::new(1));
        let _ = tone_response(&h, 0.1, 2, Complex::ONE);
    }

    #[test]
    fn amplitude_lookup_outside_truncation_is_zero() {
        let blk = LtiHtm::new(Tf::one(), 4.0);
        let h = blk.htm(Complex::from_im(0.1), Truncation::new(1));
        let spec = tone_response(&h, 0.1, 0, Complex::ONE);
        assert_eq!(spec.amplitude(5), Complex::ZERO);
    }
}
