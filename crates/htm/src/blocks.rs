//! HTM building blocks (paper §2 eq. 12–13 and §3).
//!
//! Each PLL building block is a [`HtmBlock`]: something that can produce
//! its truncated harmonic transfer matrix at any Laplace point `s`.
//!
//! * [`LtiHtm`] — an LTI transfer function; diagonal HTM
//!   `H_{n,n}(s) = H(s + jnω₀)` (eq. 12).
//! * [`MultiplierHtm`] — memoryless multiplication by a `T`-periodic
//!   waveform; Toeplitz HTM `H_{n,m} = P_{n−m}` (eq. 13).
//! * [`SamplerHtm`] — the sampling PFD's impulse-train multiplication;
//!   the **rank-one** HTM `(ω₀/2π)·𝟙𝟙ᵀ` (eq. 19–20).
//! * [`VcoHtm`] — perturbation-phase model of a controlled oscillator
//!   with impulse sensitivity function `v(t)`:
//!   `H_{n,m}(s) = v_{n−m}/(s + jnω₀)` (eq. 25).
//!
//! ```
//! use htmpll_htm::{HtmBlock, LtiHtm, Truncation};
//! use htmpll_lti::Tf;
//! use htmpll_num::Complex;
//!
//! let blk = LtiHtm::new(Tf::integrator(), 10.0);
//! let h = blk.htm(Complex::from_im(1.0), Truncation::new(1));
//! // Diagonal: H_{1,1} = 1/(j1 + j10); off-diagonal zero.
//! assert!((h.band(1, 1) - Complex::from_im(11.0).recip()).abs() < 1e-15);
//! assert_eq!(h.band(1, 0), Complex::ZERO);
//! ```

use crate::matrix::Htm;
use crate::repr::HtmRepr;
use crate::trunc::Truncation;
use htmpll_lti::Tf;
use htmpll_num::Complex;

/// A system block that can evaluate its harmonic transfer matrix.
pub trait HtmBlock {
    /// The fundamental angular frequency `ω₀ = 2π/T` of the periodicity.
    fn omega0(&self) -> f64;

    /// Evaluates the block's HTM at Laplace point `s` under the given
    /// truncation.
    fn htm(&self, s: Complex, trunc: Truncation) -> Htm;
}

/// An LTI system embedded in the LPTV framework: diagonal HTM.
#[derive(Debug, Clone)]
pub struct LtiHtm {
    tf: Tf,
    omega0: f64,
}

impl LtiHtm {
    /// Wraps a transfer function.
    ///
    /// # Panics
    ///
    /// Panics when `omega0 <= 0`.
    pub fn new(tf: Tf, omega0: f64) -> Self {
        assert!(omega0 > 0.0, "fundamental frequency must be positive");
        LtiHtm { tf, omega0 }
    }

    /// The wrapped transfer function.
    pub fn tf(&self) -> &Tf {
        &self.tf
    }
}

impl HtmBlock for LtiHtm {
    fn omega0(&self) -> f64 {
        self.omega0
    }

    fn htm(&self, s: Complex, trunc: Truncation) -> Htm {
        let w0 = self.omega0;
        let d = trunc
            .harmonics()
            .map(|n| self.tf.eval(s + Complex::from_im(n as f64 * w0)))
            .collect();
        Htm::from_repr(trunc, w0, HtmRepr::Diagonal(d))
    }
}

/// Memoryless multiplication `y(t) = p(t)·u(t)` with `T`-periodic `p`.
#[derive(Debug, Clone)]
pub struct MultiplierHtm {
    /// Fourier coefficients `P_{−K_p} … P_{K_p}` (centered, odd length).
    coeffs: Vec<Complex>,
    omega0: f64,
}

impl MultiplierHtm {
    /// Creates a multiplier from centered Fourier coefficients
    /// `[P_{−K}, …, P_0, …, P_K]`.
    ///
    /// # Panics
    ///
    /// Panics when the coefficient list has even length (no center) or
    /// `omega0 <= 0`.
    pub fn from_fourier(coeffs: Vec<Complex>, omega0: f64) -> Self {
        assert!(
            coeffs.len() % 2 == 1,
            "centered Fourier coefficients need odd length, got {}",
            coeffs.len()
        );
        assert!(omega0 > 0.0, "fundamental frequency must be positive");
        MultiplierHtm { coeffs, omega0 }
    }

    /// Multiplication by a constant `c` (only `P₀` nonzero).
    pub fn constant(c: f64, omega0: f64) -> Self {
        MultiplierHtm::from_fourier(vec![Complex::from_re(c)], omega0)
    }

    /// Builds the multiplier from uniform samples of one period of the
    /// real waveform `p(t)`, keeping harmonics `−k_max ..= k_max`
    /// (computed by direct DFT; the handful of coefficients an HTM
    /// truncation needs does not justify an FFT dependency).
    ///
    /// # Panics
    ///
    /// Panics when fewer than `2·k_max + 2` samples are supplied (the
    /// requested harmonics would alias) or `omega0 <= 0`.
    pub fn from_waveform(samples: &[f64], k_max: usize, omega0: f64) -> Self {
        MultiplierHtm::from_fourier(fourier_coefficients(samples, k_max), omega0)
    }

    /// Fourier coefficient `P_k` (zero outside the stored range).
    pub fn coeff(&self, k: i64) -> Complex {
        let half = (self.coeffs.len() / 2) as i64;
        if k.abs() <= half {
            self.coeffs[(k + half) as usize]
        } else {
            Complex::ZERO
        }
    }
}

impl HtmBlock for MultiplierHtm {
    fn omega0(&self) -> f64 {
        self.omega0
    }

    fn htm(&self, _s: Complex, trunc: Truncation) -> Htm {
        // Toeplitz in the harmonic offset: matrix entry (i, j) is
        // `P_{n−m}` with `n−m = i−j`, exactly the banded-Toeplitz repr.
        Htm::from_repr(
            trunc,
            self.omega0,
            HtmRepr::BandedToeplitz {
                coeffs: self.coeffs.clone(),
                row_scale: None,
            },
        )
    }
}

/// The sampling PFD: multiplication by the Dirac comb
/// `Σ_m δ(t − mT)`, whose Fourier coefficients are all `1/T = ω₀/2π`.
///
/// Its truncated HTM is the all-ones rank-one matrix scaled by
/// `ω₀/2π` — sampling aliases every input band onto every output band
/// with equal weight, which is why the matrix has rank one (paper §3.1).
#[derive(Debug, Clone, Copy)]
pub struct SamplerHtm {
    omega0: f64,
}

impl SamplerHtm {
    /// Creates a sampler with reference fundamental `omega0`.
    ///
    /// # Panics
    ///
    /// Panics when `omega0 <= 0`.
    pub fn new(omega0: f64) -> Self {
        assert!(omega0 > 0.0, "fundamental frequency must be positive");
        SamplerHtm { omega0 }
    }

    /// The comb weight `ω₀/2π = 1/T`.
    pub fn weight(&self) -> f64 {
        self.omega0 / (2.0 * std::f64::consts::PI)
    }
}

impl HtmBlock for SamplerHtm {
    fn omega0(&self) -> f64 {
        self.omega0
    }

    fn htm(&self, _s: Complex, trunc: Truncation) -> Htm {
        // Rank one: `(ω₀/2π)·𝟙𝟙ᵀ` stored as its factors, O(n).
        let w = Complex::from_re(self.weight());
        let n = trunc.dim();
        Htm::from_repr(
            trunc,
            self.omega0,
            HtmRepr::RankOnePlus {
                u: vec![w; n],
                v: vec![Complex::ONE; n],
                shift: Complex::ZERO,
            },
        )
    }
}

/// A pure time delay `e^{−sτ}` — an LTI block, so its HTM is diagonal
/// with entries `e^{−(s+jnω₀)τ}`. Unlike the Padé route (which keeps
/// the lattice-sum machinery rational), this block is **exact** and is
/// the reference the Padé-based models are validated against in the
/// dense matrix path.
#[derive(Debug, Clone, Copy)]
pub struct DelayHtm {
    tau: f64,
    omega0: f64,
}

impl DelayHtm {
    /// Creates a delay block.
    ///
    /// # Panics
    ///
    /// Panics when `tau < 0` or `omega0 <= 0`.
    pub fn new(tau: f64, omega0: f64) -> Self {
        assert!(tau >= 0.0 && tau.is_finite(), "delay must be non-negative");
        assert!(omega0 > 0.0, "fundamental frequency must be positive");
        DelayHtm { tau, omega0 }
    }

    /// The delay `τ` in seconds.
    pub fn tau(&self) -> f64 {
        self.tau
    }
}

impl HtmBlock for DelayHtm {
    fn omega0(&self) -> f64 {
        self.omega0
    }

    fn htm(&self, s: Complex, trunc: Truncation) -> Htm {
        let w0 = self.omega0;
        let d = trunc
            .harmonics()
            .map(|n| (-(s + Complex::from_im(n as f64 * w0)).scale(self.tau)).exp())
            .collect();
        Htm::from_repr(trunc, w0, HtmRepr::Diagonal(d))
    }
}

/// Centered Fourier coefficients `[c_{−k}, …, c_0, …, c_{+k}]` of one
/// period of uniformly sampled real data, by direct summation:
/// `c_k = (1/N)·Σ_n x[n]·e^{−j2πkn/N}`.
///
/// # Panics
///
/// Panics when `samples.len() < 2·k_max + 2` (requested harmonics would
/// alias).
pub fn fourier_coefficients(samples: &[f64], k_max: usize) -> Vec<Complex> {
    let n = samples.len();
    assert!(
        n >= 2 * k_max + 2,
        "need at least {} samples for harmonics up to ±{k_max}, got {n}",
        2 * k_max + 2
    );
    let mut out = Vec::with_capacity(2 * k_max + 1);
    for k in -(k_max as i64)..=(k_max as i64) {
        let mut acc = Complex::ZERO;
        for (i, &x) in samples.iter().enumerate() {
            let ang = -2.0 * std::f64::consts::PI * k as f64 * i as f64 / n as f64;
            acc += Complex::cis(ang).scale(x);
        }
        out.push(acc.scale(1.0 / n as f64));
    }
    out
}

/// Perturbation phase model of a (possibly time-varying) VCO:
/// multiplication by the impulse sensitivity function `v(t)` followed by
/// integration, `θ(t) = ∫ v(τ)·Δu(τ) dτ` (paper eq. 24), giving
/// `H_{n,m}(s) = v_{n−m}/(s + jnω₀)` (eq. 25).
#[derive(Debug, Clone)]
pub struct VcoHtm {
    /// Centered ISF Fourier coefficients `v_{−K_v} … v_{K_v}`.
    isf: Vec<Complex>,
    omega0: f64,
}

impl VcoHtm {
    /// Creates a VCO from centered ISF Fourier coefficients.
    ///
    /// # Panics
    ///
    /// Panics when the list has even length or `omega0 <= 0`.
    pub fn new(isf: Vec<Complex>, omega0: f64) -> Self {
        assert!(
            isf.len() % 2 == 1,
            "centered ISF coefficients need odd length, got {}",
            isf.len()
        );
        assert!(omega0 > 0.0, "fundamental frequency must be positive");
        VcoHtm { isf, omega0 }
    }

    /// A time-invariant VCO: `v(t) ≡ K_vco` (only `v₀` nonzero). Its HTM
    /// is diagonal with `K_vco/(s + jnω₀)` — the classical
    /// `K_vco/s` model shifted per band.
    pub fn time_invariant(kvco: f64, omega0: f64) -> Self {
        VcoHtm::new(vec![Complex::from_re(kvco)], omega0)
    }

    /// Builds the VCO from uniform samples of one period of its real
    /// impulse sensitivity function `v(t)`, keeping harmonics
    /// `−k_max ..= k_max`.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `2·k_max + 2` samples are supplied or
    /// `omega0 <= 0`.
    pub fn from_isf_waveform(samples: &[f64], k_max: usize, omega0: f64) -> Self {
        VcoHtm::new(fourier_coefficients(samples, k_max), omega0)
    }

    /// ISF coefficient `v_k` (zero outside the stored range).
    pub fn isf_coeff(&self, k: i64) -> Complex {
        let half = (self.isf.len() / 2) as i64;
        if k.abs() <= half {
            self.isf[(k + half) as usize]
        } else {
            Complex::ZERO
        }
    }

    /// True when only `v₀` is nonzero.
    pub fn is_time_invariant(&self) -> bool {
        let half = (self.isf.len() / 2) as i64;
        (-half..=half).all(|k| k == 0 || self.isf_coeff(k) == Complex::ZERO)
    }
}

impl HtmBlock for VcoHtm {
    fn omega0(&self) -> f64 {
        self.omega0
    }

    fn htm(&self, s: Complex, trunc: Truncation) -> Htm {
        // Banded Toeplitz `v_{n−m}` scaled per row by the integrator
        // pole `1/(s+jnω₀)` (eq. 25) — the bandwidth is set by the
        // stored ISF harmonics, not the truncation.
        let w0 = self.omega0;
        let row_scale = trunc
            .harmonics()
            .map(|n| (s + Complex::from_im(n as f64 * w0)).recip())
            .collect();
        Htm::from_repr(
            trunc,
            w0,
            HtmRepr::BandedToeplitz {
                coeffs: self.isf.clone(),
                row_scale: Some(row_scale),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W0: f64 = 4.0;

    #[test]
    fn lti_block_is_diagonal_and_shifted() {
        let blk = LtiHtm::new(Tf::first_order_lowpass(2.0), W0);
        let t = Truncation::new(2);
        let s = Complex::new(0.1, 0.5);
        let h = blk.htm(s, t);
        for n in t.harmonics() {
            for m in t.harmonics() {
                if n == m {
                    let expect = blk.tf().eval(s + Complex::from_im(n as f64 * W0));
                    assert!(h.band(n, m).approx_eq(expect, 1e-14));
                } else {
                    assert_eq!(h.band(n, m), Complex::ZERO);
                }
            }
        }
    }

    #[test]
    fn multiplier_is_toeplitz() {
        // p(t) = 1 + 2cos(ω₀t) ⇒ P₀ = 1, P_{±1} = 1.
        let blk = MultiplierHtm::from_fourier(vec![Complex::ONE, Complex::ONE, Complex::ONE], W0);
        let t = Truncation::new(2);
        let h = blk.htm(Complex::ZERO, t);
        assert_eq!(h.band(0, 0), Complex::ONE);
        assert_eq!(h.band(1, 0), Complex::ONE);
        assert_eq!(h.band(0, 1), Complex::ONE);
        assert_eq!(h.band(2, 0), Complex::ZERO);
        // Toeplitz structure: constant along diagonals.
        assert_eq!(h.band(2, 1), h.band(1, 0));
        assert_eq!(h.band(-1, -2), h.band(1, 0));
    }

    #[test]
    fn multiplier_constant_is_scaled_identity() {
        let blk = MultiplierHtm::constant(3.0, W0);
        let t = Truncation::new(1);
        let h = blk.htm(Complex::ZERO, t);
        for n in t.harmonics() {
            for m in t.harmonics() {
                let expect = if n == m { 3.0 } else { 0.0 };
                assert_eq!(h.band(n, m), Complex::from_re(expect));
            }
        }
    }

    #[test]
    #[should_panic(expected = "odd length")]
    fn multiplier_even_coeffs_rejected() {
        let _ = MultiplierHtm::from_fourier(vec![Complex::ONE; 2], W0);
    }

    #[test]
    fn sampler_is_rank_one_all_ones() {
        let blk = SamplerHtm::new(W0);
        assert!((blk.weight() - W0 / (2.0 * std::f64::consts::PI)).abs() < 1e-15);
        let t = Truncation::new(2);
        let h = blk.htm(Complex::new(1.0, 1.0), t);
        let w = Complex::from_re(blk.weight());
        for n in t.harmonics() {
            for m in t.harmonics() {
                assert_eq!(h.band(n, m), w);
            }
        }
        // Rank one: every 2×2 minor vanishes.
        let det2 = h.band(0, 0) * h.band(1, 1) - h.band(0, 1) * h.band(1, 0);
        assert!(det2.abs() < 1e-18);
    }

    #[test]
    fn vco_time_invariant_is_diagonal_integrator() {
        let blk = VcoHtm::time_invariant(2.5, W0);
        assert!(blk.is_time_invariant());
        let t = Truncation::new(1);
        let s = Complex::new(0.3, 1.1);
        let h = blk.htm(s, t);
        for n in t.harmonics() {
            let expect = Complex::from_re(2.5) / (s + Complex::from_im(n as f64 * W0));
            assert!(h.band(n, n).approx_eq(expect, 1e-14));
        }
        assert_eq!(h.band(1, 0), Complex::ZERO);
    }

    #[test]
    fn vco_time_varying_structure() {
        // v(t) with v₀ = 1, v_{±1} = 0.3 ∓ 0.1j (conjugate pair for a
        // real waveform).
        let blk = VcoHtm::new(
            vec![
                Complex::new(0.3, 0.1),
                Complex::ONE,
                Complex::new(0.3, -0.1),
            ],
            W0,
        );
        assert!(!blk.is_time_invariant());
        let t = Truncation::new(1);
        let s = Complex::new(0.2, 0.0);
        let h = blk.htm(s, t);
        // Row n = 1 is scaled by 1/(s + jω₀), matching eq. 25.
        let row_pole = (s + Complex::from_im(W0)).recip();
        assert!(h
            .band(1, 0)
            .approx_eq(Complex::new(0.3, -0.1) * row_pole, 1e-14));
        assert!(h.band(1, 1).approx_eq(row_pole, 1e-14));
        // Out-of-range ISF coefficient contributes zero.
        assert_eq!(blk.isf_coeff(5), Complex::ZERO);
    }

    #[test]
    fn fourier_coefficients_of_cosine() {
        // p(t) = 2 + cos(ω₀t): c₀ = 2, c_{±1} = 0.5.
        let n = 64;
        let samples: Vec<f64> = (0..n)
            .map(|i| 2.0 + (2.0 * std::f64::consts::PI * i as f64 / n as f64).cos())
            .collect();
        let c = fourier_coefficients(&samples, 2);
        assert!(c[2].approx_eq(Complex::from_re(2.0), 1e-12)); // c₀
        assert!(c[1].approx_eq(Complex::from_re(0.5), 1e-12)); // c_{−1}
        assert!(c[3].approx_eq(Complex::from_re(0.5), 1e-12)); // c_{+1}
        assert!(c[0].abs() < 1e-12 && c[4].abs() < 1e-12);
    }

    #[test]
    fn from_waveform_builds_expected_toeplitz() {
        let n = 32;
        let samples: Vec<f64> = (0..n)
            .map(|i| 1.0 + 0.8 * (2.0 * std::f64::consts::PI * i as f64 / n as f64).sin())
            .collect();
        let blk = MultiplierHtm::from_waveform(&samples, 1, W0);
        // sin → c_{±1} = ∓0.4j.
        assert!(blk.coeff(0).approx_eq(Complex::ONE, 1e-12));
        assert!(blk.coeff(1).approx_eq(Complex::new(0.0, -0.4), 1e-12));
        assert!(blk.coeff(-1).approx_eq(Complex::new(0.0, 0.4), 1e-12));
    }

    #[test]
    fn from_isf_waveform_real_pairs() {
        let n = 48;
        let samples: Vec<f64> = (0..n)
            .map(|i| {
                let x = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                1.0 + 0.6 * x.cos() + 0.2 * (2.0 * x).cos()
            })
            .collect();
        let vco = VcoHtm::from_isf_waveform(&samples, 2, W0);
        assert!(!vco.is_time_invariant());
        // Real waveform ⇒ conjugate-symmetric coefficients.
        for k in 1..=2 {
            assert!((vco.isf_coeff(k) - vco.isf_coeff(-k).conj()).abs() < 1e-12);
        }
        assert!(vco.isf_coeff(1).approx_eq(Complex::from_re(0.3), 1e-12));
    }

    #[test]
    #[should_panic(expected = "samples")]
    fn from_waveform_undersampled_rejected() {
        let _ = MultiplierHtm::from_waveform(&[1.0, 2.0, 3.0], 1, W0);
    }

    #[test]
    fn delay_block_is_exact_all_pass() {
        let blk = DelayHtm::new(0.3, W0);
        assert_eq!(blk.tau(), 0.3);
        let t = Truncation::new(2);
        let s = Complex::from_im(0.8);
        let h = blk.htm(s, t);
        for n in t.harmonics() {
            let u = s + Complex::from_im(n as f64 * W0);
            let expect = (-u.scale(0.3)).exp();
            assert!((h.band(n, n) - expect).abs() < 1e-15);
            assert!((h.band(n, n).abs() - 1.0).abs() < 1e-14);
        }
        assert_eq!(h.band(1, 0), Complex::ZERO);
        // Zero delay is the identity.
        let id = DelayHtm::new(0.0, W0).htm(s, t);
        assert!(id.as_matrix().max_diff(Htm::identity(t, W0).as_matrix()) < 1e-15);
    }

    #[test]
    fn omega0_reported() {
        assert_eq!(LtiHtm::new(Tf::one(), W0).omega0(), W0);
        assert_eq!(SamplerHtm::new(W0).omega0(), W0);
        assert_eq!(VcoHtm::time_invariant(1.0, W0).omega0(), W0);
        assert_eq!(MultiplierHtm::constant(1.0, W0).omega0(), W0);
    }
}
