//! Structured closed-loop factorizations.
//!
//! [`Htm::closed_loop_factored_robust`](crate::Htm::closed_loop_factored_robust)
//! dispatches on the open loop's [`HtmRepr`]:
//!
//! * **rank one** (`G = u·vᵀ`, the sampling-PFD loop) — Sherman–Morrison
//!   closed form, O(n): `(I+uvᵀ)⁻¹uvᵀ = u·vᵀ/(1+λ)` with `λ = vᵀu`;
//! * **diagonal** — per-band reciprocal `g/(1+g)`, O(n);
//! * **banded Toeplitz** — `I + G̃` assembled directly as a
//!   [`BandMat`](htmpll_num::BandMat) and factored by the banded rung of
//!   the robust ladder, O(n·b²) instead of O(n³);
//! * **dense** — the classic escalating dense ladder, bit-identical to
//!   the previous release.
//!
//! Every structured shortcut is *gated*: a closed form is only accepted
//! when its condition estimate clears the same `COND_GATE` the dense
//! ladder uses; otherwise the point densifies and walks the full ladder,
//! with [`SolveStage::Structured`] prepended to `stages_tried` so the
//! report shows the escalation. A structured answer is therefore never
//! *wrong* — at worst it is slow.

use crate::matrix::Htm;
use crate::repr::HtmRepr;
use htmpll_num::solve::COND_GATE;
use htmpll_num::{BandMat, CMat, Complex, LuError, RobustLu, SolveReport, SolveStage};

/// Reusable scratch buffers for closed-loop solves, so sweep loops can
/// factor thousands of grid points without per-point heap allocation of
/// the right-hand-side and solution staging vectors.
#[derive(Debug, Default, Clone)]
pub struct SolveScratch {
    /// Right-hand-side staging for per-column banded solves.
    rhs: Vec<Complex>,
}

impl SolveScratch {
    /// A fresh (empty) scratch; buffers grow on first use and are
    /// reused afterwards.
    pub fn new() -> Self {
        SolveScratch::default()
    }
}

/// How the feedback operator `I + G̃` was factored, for reuse against
/// further right-hand sides at the same Laplace point.
#[derive(Debug, Clone)]
pub enum ClosedLoopFactor {
    /// Sherman–Morrison closed form for `I + u·vᵀ` with `denom = 1+vᵀu`.
    RankOne {
        /// Column factor of the open loop.
        u: Vec<Complex>,
        /// Row factor of the open loop.
        v: Vec<Complex>,
        /// `1 + λ` — the scalar the update divides by.
        denom: Complex,
    },
    /// Entrywise reciprocals `1/(1+gᵢ)` of a diagonal open loop.
    Diagonal(Vec<Complex>),
    /// A factorization from the escalating robust ladder (banded rung
    /// or dense fallback).
    Robust(RobustLu),
}

impl ClosedLoopFactor {
    /// Short name of the factorization kind, for diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            ClosedLoopFactor::RankOne { .. } => "rank-one",
            ClosedLoopFactor::Diagonal(_) => "diagonal",
            ClosedLoopFactor::Robust(_) => "robust-lu",
        }
    }

    /// Dimension of the factored operator.
    pub fn dim(&self) -> usize {
        match self {
            ClosedLoopFactor::RankOne { u, .. } => u.len(),
            ClosedLoopFactor::Diagonal(inv) => inv.len(),
            ClosedLoopFactor::Robust(lu) => lu.dim(),
        }
    }

    /// Solves `(I + G̃)x = b`.
    ///
    /// # Errors
    ///
    /// [`LuError::DimensionMismatch`] when `b.len()` does not match the
    /// factored dimension; solver errors from the robust ladder.
    pub fn solve(&self, b: &[Complex]) -> Result<Vec<Complex>, LuError> {
        if b.len() != self.dim() {
            return Err(LuError::DimensionMismatch);
        }
        match self {
            ClosedLoopFactor::RankOne { u, v, denom } => {
                let vb: Complex = v.iter().zip(b).map(|(x, y)| *x * *y).sum();
                let k = vb / *denom;
                Ok(b.iter().zip(u).map(|(bi, ui)| *bi - *ui * k).collect())
            }
            ClosedLoopFactor::Diagonal(inv) => {
                Ok(b.iter().zip(inv).map(|(bi, ri)| *bi * *ri).collect())
            }
            ClosedLoopFactor::Robust(lu) => lu.solve(b).map(|r| r.value),
        }
    }
}

type ClosedLoop = (ClosedLoopFactor, Htm, SolveReport);

/// The dispatch behind `Htm::closed_loop_factored_robust`.
pub(crate) fn closed_loop_robust(
    g: &Htm,
    scratch: &mut SolveScratch,
) -> Result<ClosedLoop, LuError> {
    let n = g.truncation().dim();
    // Trace tier: this runs once per sweep point, and the structured
    // closed forms it dispatches to are cheaper than a labeled span.
    let _span = htmpll_obs::span_labeled_at(
        "htm",
        "closed_loop_robust",
        htmpll_obs::Level::Trace,
        || format!("dim={n}"),
    );
    if !g.is_finite() {
        return Err(LuError::NonFinite);
    }
    let path = match g.repr() {
        HtmRepr::RankOnePlus { shift, .. } if *shift == Complex::ZERO => "rank-one",
        HtmRepr::Diagonal(_) => "diagonal",
        HtmRepr::BandedToeplitz { .. } => "banded",
        _ => "dense",
    };
    htmpll_obs::instant_at("htm", htmpll_obs::Level::Trace, || {
        format!("dispatch{{path={path},dim={n}}}")
    });
    match g.repr() {
        HtmRepr::RankOnePlus { u, v, shift } if *shift == Complex::ZERO => rank_one_path(g, u, v),
        HtmRepr::Diagonal(d) => diagonal_path(g, d),
        HtmRepr::BandedToeplitz { .. } => banded_path(g, scratch),
        _ => dense_path(g),
    }
}

fn max_abs(zs: &[Complex]) -> f64 {
    zs.iter().map(|z| z.abs()).fold(0.0, f64::max)
}

/// Sherman–Morrison: `(I+uvᵀ)⁻¹(uvᵀ) = u·vᵀ/(1+λ)`, `λ = vᵀu` (plain
/// transpose — the HTM feedback algebra has no conjugation).
fn rank_one_path(g: &Htm, u: &[Complex], v: &[Complex]) -> Result<ClosedLoop, LuError> {
    let lambda: Complex = v.iter().zip(u).map(|(x, y)| *x * *y).sum();
    let denom = Complex::ONE + lambda;
    let nu = max_abs(u);
    let nv = max_abs(v);
    // ‖A‖·‖A⁻¹‖ proxy for A = I+uvᵀ: A⁻¹ = I − uvᵀ/denom.
    let da = denom.abs();
    let cond_est = if da == 0.0 {
        f64::INFINITY
    } else {
        (1.0 + nu * nv) * (1.0 + nu * nv / da)
    };
    if !cond_est.is_finite() || cond_est > COND_GATE {
        return structured_fallback(g, cond_est);
    }
    htmpll_obs::counter!("htm", "closed_loop.rank_one").inc();
    let scale = Complex::ONE / denom;
    let cl_u: Vec<Complex> = u.iter().map(|x| *x * scale).collect();
    // Honest O(1) backward error on the worst column j* = argmax|vⱼ|:
    // r = b − (I+uvᵀ)x has rᵢ = uᵢ·vⱼ*·(1 − scale·(1+λ)) exactly.
    let err = (Complex::ONE - scale * denom).abs();
    let rn = nv * nu * err;
    let xn = nu * scale.abs() * nv;
    let bn = nu * nv;
    let denom_resid = (1.0 + nu * nv) * xn + bn;
    let residual = if denom_resid == 0.0 {
        0.0
    } else {
        rn / denom_resid
    };
    let report = SolveReport {
        stages_tried: vec![SolveStage::Structured],
        residual,
        cond_estimate: cond_est,
        perturbed: false,
        refinement_kept: false,
        pivot_growth: 1.0,
    };
    let cl = Htm::from_repr(
        g.truncation(),
        g.omega0(),
        HtmRepr::RankOnePlus {
            u: cl_u,
            v: v.to_vec(),
            shift: Complex::ZERO,
        },
    );
    let factor = ClosedLoopFactor::RankOne {
        u: u.to_vec(),
        v: v.to_vec(),
        denom,
    };
    Ok((factor, cl, report))
}

/// Diagonal open loop: per-band scalar feedback `g/(1+g)`.
fn diagonal_path(g: &Htm, d: &[Complex]) -> Result<ClosedLoop, LuError> {
    let denoms: Vec<Complex> = d.iter().map(|x| Complex::ONE + *x).collect();
    let dmax = denoms.iter().map(|z| z.abs()).fold(0.0, f64::max);
    let dmin = denoms.iter().map(|z| z.abs()).fold(f64::INFINITY, f64::min);
    let cond_est = if dmin == 0.0 {
        f64::INFINITY
    } else {
        dmax / dmin
    };
    if !cond_est.is_finite() || cond_est > COND_GATE {
        return structured_fallback(g, cond_est);
    }
    htmpll_obs::counter!("htm", "closed_loop.diagonal").inc();
    let inv: Vec<Complex> = denoms.iter().map(|x| Complex::ONE / *x).collect();
    let cl_d: Vec<Complex> = d.iter().zip(&inv).map(|(gi, ri)| *gi * *ri).collect();
    // Per-entry backward error: |gᵢ − (1+gᵢ)·xᵢ|.
    let gmax = max_abs(d);
    let xmax = max_abs(&cl_d);
    let rn = d
        .iter()
        .zip(&denoms)
        .zip(&cl_d)
        .map(|((gi, di), xi)| (*gi - *di * *xi).abs())
        .fold(0.0, f64::max);
    let denom_resid = dmax * xmax + gmax;
    let residual = if denom_resid == 0.0 {
        0.0
    } else {
        rn / denom_resid
    };
    let report = SolveReport {
        stages_tried: vec![SolveStage::Structured],
        residual,
        cond_estimate: cond_est,
        perturbed: false,
        refinement_kept: false,
        pivot_growth: 1.0,
    };
    let cl = Htm::from_repr(g.truncation(), g.omega0(), HtmRepr::Diagonal(cl_d));
    Ok((ClosedLoopFactor::Diagonal(inv), cl, report))
}

/// Banded Toeplitz open loop: assemble `I + G̃` directly as a banded
/// matrix (never densified) and run the banded rung of the robust
/// ladder — O(n·b²) factor, O(n·b) per solve. The rung's own
/// pivot-growth and condition gates fall back to the dense ladder when
/// the structure breaks numerically.
fn banded_path(g: &Htm, scratch: &mut SolveScratch) -> Result<ClosedLoop, LuError> {
    let n = g.truncation().dim();
    let repr = g.repr();
    let b = repr
        .half_bandwidth()
        .expect("banded path requires a banded repr")
        .min(n.saturating_sub(1));
    htmpll_obs::counter!("htm", "closed_loop.banded").inc();
    let i_plus_g = BandMat::from_fn(n, b, |i, j| {
        let e = repr.entry(n, i, j);
        if i == j {
            e + Complex::ONE
        } else {
            e
        }
    });
    let lu = RobustLu::factor_banded(&i_plus_g)?;
    // Solve (I+G̃)X = G̃ column by column; each RHS has at most 2b+1
    // nonzeros, staged through the reusable scratch buffer.
    let mut cl = CMat::zeros(n, n);
    let mut worst_residual = 0.0f64;
    let mut any_refined = false;
    for j in 0..n {
        scratch.rhs.clear();
        scratch.rhs.resize(n, Complex::ZERO);
        let lo = j.saturating_sub(b);
        let hi = (j + b).min(n - 1);
        for i in lo..=hi {
            scratch.rhs[i] = repr.entry(n, i, j);
        }
        let sol = lu.solve(&scratch.rhs)?;
        worst_residual = worst_residual.max(sol.residual);
        any_refined |= sol.refined;
        for (i, xi) in sol.value.iter().enumerate() {
            cl[(i, j)] = *xi;
        }
    }
    let mut report = lu.report().clone();
    report.residual = worst_residual;
    report.refinement_kept = any_refined;
    let cl = Htm::from_matrix(g.truncation(), g.omega0(), cl);
    Ok((ClosedLoopFactor::Robust(lu), cl, report))
}

/// The classic dense escalating ladder — bit-identical to the path all
/// HTMs took before structured storage existed.
fn dense_path(g: &Htm) -> Result<ClosedLoop, LuError> {
    let n = g.truncation().dim();
    let i_plus_g = &CMat::identity(n) + g.as_matrix();
    let lu = RobustLu::factor(&i_plus_g)?;
    let solved = lu.solve_mat(g.as_matrix())?;
    let mut report = lu.report().clone();
    report.residual = solved.residual;
    report.refinement_kept = solved.refined;
    let cl = Htm::from_matrix(g.truncation(), g.omega0(), solved.value);
    Ok((ClosedLoopFactor::Robust(lu), cl, report))
}

/// A structured closed form whose condition gate tripped: densify, walk
/// the full dense ladder, and record the attempted structured rung at
/// the front of the stage list.
fn structured_fallback(g: &Htm, cond_est: f64) -> Result<ClosedLoop, LuError> {
    htmpll_obs::counter!("htm", "closed_loop.structured_fallback").inc();
    htmpll_obs::instant("htm", || {
        format!(
            "dispatch{{path=structured-fallback,dim={},cond={cond_est:.3e}}}",
            g.truncation().dim()
        )
    });
    let (factor, cl, mut report) = dense_path(g)?;
    report.stages_tried.insert(0, SolveStage::Structured);
    // Keep the more pessimistic of the two condition views: the
    // structured estimate that tripped the gate, or the ladder's own.
    report.cond_estimate = report.cond_estimate.max(cond_est.min(f64::MAX));
    Ok((factor, cl, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trunc::Truncation;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    fn rank_one_g(t: Truncation) -> Htm {
        let n = t.dim();
        Htm::from_repr(
            t,
            2.0,
            HtmRepr::RankOnePlus {
                u: (0..n).map(|i| c(0.2 * i as f64 + 0.1, 0.05)).collect(),
                v: (0..n).map(|i| c(0.6 - 0.1 * i as f64, -0.02)).collect(),
                shift: Complex::ZERO,
            },
        )
    }

    fn banded_g(t: Truncation) -> Htm {
        let n = t.dim();
        Htm::from_repr(
            t,
            2.0,
            HtmRepr::BandedToeplitz {
                coeffs: vec![c(0.1, -0.05), c(0.4, 0.2), c(0.12, 0.03)],
                row_scale: Some((0..n).map(|i| c(0.8, 0.1 * i as f64 - 0.3)).collect()),
            },
        )
    }

    /// Ground truth: the same open loop pushed through the dense ladder.
    fn dense_reference(g: &Htm) -> Htm {
        let dense = g.densified();
        let (_, cl, report) = dense.closed_loop_factored_robust().unwrap();
        assert!(!report.perturbed);
        cl
    }

    #[test]
    fn rank_one_closed_form_matches_dense() {
        let t = Truncation::new(4);
        let g = rank_one_g(t);
        let (factor, cl, report) = g.closed_loop_factored_robust().unwrap();
        assert_eq!(report.stages_tried, vec![SolveStage::Structured]);
        assert!(report.residual < 1e-12, "residual {}", report.residual);
        assert_eq!(factor.kind_name(), "rank-one");
        let reference = dense_reference(&g);
        assert!(cl.as_matrix().max_diff(reference.as_matrix()) < 1e-12);
    }

    #[test]
    fn diagonal_closed_form_matches_dense() {
        let t = Truncation::new(3);
        let n = t.dim();
        let g = Htm::from_repr(
            t,
            1.5,
            HtmRepr::Diagonal((0..n).map(|i| c(0.3 * i as f64, 0.4)).collect()),
        );
        let (factor, cl, report) = g.closed_loop_factored_robust().unwrap();
        assert_eq!(report.stages_tried, vec![SolveStage::Structured]);
        assert!(report.residual < 1e-13);
        assert_eq!(factor.kind_name(), "diagonal");
        let reference = dense_reference(&g);
        assert!(cl.as_matrix().max_diff(reference.as_matrix()) < 1e-12);
    }

    #[test]
    fn banded_path_matches_dense_and_reports_banded_stage() {
        let t = Truncation::new(5);
        let g = banded_g(t);
        let (factor, cl, report) = g.closed_loop_factored_robust().unwrap();
        assert_eq!(report.stages_tried.first(), Some(&SolveStage::Banded));
        assert!(report.residual < 1e-11, "residual {}", report.residual);
        assert_eq!(factor.kind_name(), "robust-lu");
        let reference = dense_reference(&g);
        assert!(cl.as_matrix().max_diff(reference.as_matrix()) < 1e-10);
    }

    #[test]
    fn factor_solves_match_direct_inverse() {
        let t = Truncation::new(3);
        let n = t.dim();
        for g in [rank_one_g(t), banded_g(t)] {
            let (factor, _, _) = g.closed_loop_factored_robust().unwrap();
            let i_plus_g = &CMat::identity(n) + g.as_matrix();
            let b: Vec<Complex> = (0..n).map(|i| c(0.5 - 0.1 * i as f64, 0.2)).collect();
            let x = factor.solve(&b).unwrap();
            let back = i_plus_g.mul_vec(&x);
            for (bb, rb) in b.iter().zip(&back) {
                assert!((*bb - *rb).abs() < 1e-11, "{} factor", factor.kind_name());
            }
        }
    }

    #[test]
    fn factor_rejects_wrong_dimension() {
        let t = Truncation::new(2);
        let (factor, _, _) = rank_one_g(t).closed_loop_factored_robust().unwrap();
        assert!(matches!(
            factor.solve(&[Complex::ONE]),
            Err(LuError::DimensionMismatch)
        ));
    }

    #[test]
    fn singular_rank_one_falls_back_and_reports_structured_first() {
        // λ = vᵀu = −1 makes I + uvᵀ exactly singular: the closed form
        // must refuse and escalate through the dense ladder.
        let t = Truncation::new(1);
        let n = t.dim();
        let u = vec![Complex::ONE; n];
        let mut v = vec![Complex::ZERO; n];
        v[0] = Complex::from_re(-1.0);
        let g = Htm::from_repr(
            t,
            1.0,
            HtmRepr::RankOnePlus {
                u,
                v,
                shift: Complex::ZERO,
            },
        );
        let (_, cl, report) = g.closed_loop_factored_robust().unwrap();
        assert_eq!(report.stages_tried.first(), Some(&SolveStage::Structured));
        assert!(report.stages_tried.len() > 1, "{:?}", report.stages_tried);
        assert!(report.perturbed);
        assert!(cl.as_matrix().is_finite());
    }

    #[test]
    fn singular_banded_falls_back_through_ladder() {
        // G̃ = −I as a (degenerate) banded Toeplitz: the banded rung's
        // gates must trip and the dense ladder must absorb the point.
        let t = Truncation::new(2);
        let g = Htm::from_repr(
            t,
            1.0,
            HtmRepr::BandedToeplitz {
                coeffs: vec![Complex::from_re(-1.0)],
                row_scale: None,
            },
        );
        let (_, cl, report) = g.closed_loop_factored_robust().unwrap();
        assert_eq!(report.stages_tried.first(), Some(&SolveStage::Banded));
        assert!(report.perturbed, "{:?}", report.stages_tried);
        assert!(cl.as_matrix().is_finite());
    }

    #[test]
    fn scratch_reuse_is_deterministic() {
        let t = Truncation::new(4);
        let g = banded_g(t);
        let mut scratch = SolveScratch::new();
        let (_, first, _) = g.closed_loop_factored_robust_with(&mut scratch).unwrap();
        let (_, second, _) = g.closed_loop_factored_robust_with(&mut scratch).unwrap();
        assert_eq!(first, second);
    }
}
