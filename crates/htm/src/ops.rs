//! Composition of HTM blocks and rank-one closed-loop shortcuts.
//!
//! Series/parallel composition follows paper eq. 10–11. For feedback
//! loops whose open-loop HTM is **rank one** — the signature of a
//! sampling PFD — the Sherman–Morrison–Woodbury identity gives the
//! closed loop without any matrix inversion (paper eq. 31–34):
//!
//! ```text
//! (I + u·vᵀ)⁻¹·(u·vᵀ) = u·vᵀ / (1 + vᵀu)
//! ```
//!
//! ```
//! use htmpll_htm::{series, HtmBlock, LtiHtm, SamplerHtm, Truncation};
//! use htmpll_lti::Tf;
//! use htmpll_num::Complex;
//!
//! let w0 = 6.28;
//! let chain: Vec<Box<dyn HtmBlock>> = vec![
//!     Box::new(SamplerHtm::new(w0)),
//!     Box::new(LtiHtm::new(Tf::integrator(), w0)),
//! ];
//! let refs: Vec<&dyn HtmBlock> = chain.iter().map(|b| b.as_ref()).collect();
//! let g = series(&refs, Complex::from_im(1.0), Truncation::new(2));
//! assert_eq!(g.truncation().dim(), 5);
//! ```

use crate::blocks::HtmBlock;
use crate::matrix::Htm;
use crate::repr::HtmRepr;
use crate::trunc::Truncation;
use htmpll_num::Complex;

/// Evaluates the series connection of `blocks` (signal flows through
/// `blocks[0]` first) at Laplace point `s`.
///
/// # Panics
///
/// Panics when `blocks` is empty or the blocks disagree on `ω₀`.
pub fn series(blocks: &[&dyn HtmBlock], s: Complex, trunc: Truncation) -> Htm {
    assert!(!blocks.is_empty(), "series needs at least one block");
    let mut acc = blocks[0].htm(s, trunc);
    for blk in &blocks[1..] {
        // Operator order: later blocks multiply from the left.
        acc = &blk.htm(s, trunc) * &acc;
    }
    acc
}

/// Evaluates the parallel connection of `blocks` at Laplace point `s`.
///
/// # Panics
///
/// Panics when `blocks` is empty or the blocks disagree on `ω₀`.
pub fn parallel(blocks: &[&dyn HtmBlock], s: Complex, trunc: Truncation) -> Htm {
    assert!(!blocks.is_empty(), "parallel needs at least one block");
    let mut acc = blocks[0].htm(s, trunc);
    for blk in &blocks[1..] {
        acc = &acc + &blk.htm(s, trunc);
    }
    acc
}

/// Closed loop of a rank-one open-loop gain `G = u·vᵀ` under unity
/// negative feedback, via Sherman–Morrison–Woodbury:
/// `(I + G)⁻¹G = u·vᵀ/(1 + vᵀu)`.
///
/// Returns the closed loop as a **structured** rank-one
/// representation — O(n) storage, never materialized dense — and the
/// scalar loop gain `λ = vᵀu`. Densify with
/// [`HtmRepr::to_dense`] when an explicit matrix is needed.
///
/// # Panics
///
/// Panics when `u` and `v` differ in length.
pub fn closed_loop_rank_one(u: &[Complex], v: &[Complex]) -> (HtmRepr, Complex) {
    assert_eq!(u.len(), v.len(), "rank-one factors must have equal length");
    let lambda: Complex = u.iter().zip(v).map(|(a, b)| *a * *b).sum();
    let denom = Complex::ONE + lambda;
    let scaled: Vec<Complex> = u.iter().map(|&x| x / denom).collect();
    (
        HtmRepr::RankOnePlus {
            u: scaled,
            v: v.to_vec(),
            shift: Complex::ZERO,
        },
        lambda,
    )
}

/// Applies the Sherman–Morrison inverse `(I + u·vᵀ)⁻¹` to a vector:
/// `x − u·(vᵀx)/(1 + vᵀu)` — O(n) instead of O(n³).
///
/// # Panics
///
/// Panics when the lengths disagree.
pub fn sherman_morrison_apply(u: &[Complex], v: &[Complex], x: &[Complex]) -> Vec<Complex> {
    assert_eq!(u.len(), v.len(), "rank-one factors must have equal length");
    assert_eq!(u.len(), x.len(), "vector length must match");
    let lambda: Complex = u.iter().zip(v).map(|(a, b)| *a * *b).sum();
    let vx: Complex = v.iter().zip(x).map(|(a, b)| *a * *b).sum();
    let k = vx / (Complex::ONE + lambda);
    x.iter().zip(u).map(|(&xi, &ui)| xi - ui * k).collect()
}

/// A series chain of blocks packaged as one [`HtmBlock`]: evaluating it
/// is the same as [`series`] over the parts (signal flows through the
/// first element first). Lets composite subsystems (e.g. filter + delay
/// + VCO) be passed anywhere a single block is expected.
pub struct Chain {
    blocks: Vec<Box<dyn HtmBlock>>,
    omega0: f64,
}

impl Chain {
    /// Builds a chain from its parts.
    ///
    /// # Panics
    ///
    /// Panics when `blocks` is empty or the parts disagree on `ω₀`.
    pub fn new(blocks: Vec<Box<dyn HtmBlock>>) -> Chain {
        assert!(!blocks.is_empty(), "chain needs at least one block");
        let omega0 = blocks[0].omega0();
        for b in &blocks {
            assert!(
                (b.omega0() - omega0).abs() <= 1e-12 * omega0,
                "chain blocks disagree on the fundamental frequency"
            );
        }
        Chain { blocks, omega0 }
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the chain is empty (never true for a constructed chain).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

impl std::fmt::Debug for Chain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Chain({} blocks, ω₀={})", self.blocks.len(), self.omega0)
    }
}

impl HtmBlock for Chain {
    fn omega0(&self) -> f64 {
        self.omega0
    }

    fn htm(&self, s: Complex, trunc: Truncation) -> Htm {
        let refs: Vec<&dyn HtmBlock> = self.blocks.iter().map(|b| b.as_ref()).collect();
        series(&refs, s, trunc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::{LtiHtm, MultiplierHtm, SamplerHtm};
    use htmpll_lti::Tf;
    use htmpll_num::lu::inverse;
    use htmpll_num::CMat;

    const W0: f64 = 3.0;

    #[test]
    fn series_matches_manual_product() {
        let a = LtiHtm::new(Tf::integrator(), W0);
        let b = MultiplierHtm::from_fourier(
            vec![Complex::from_re(0.5), Complex::ONE, Complex::from_re(0.5)],
            W0,
        );
        let t = Truncation::new(2);
        let s = Complex::new(0.2, 0.7);
        let chained = series(&[&a, &b], s, t);
        let manual = &b.htm(s, t) * &a.htm(s, t);
        assert!(chained.as_matrix().max_diff(manual.as_matrix()) < 1e-15);
    }

    #[test]
    fn series_is_order_sensitive() {
        let a = LtiHtm::new(Tf::integrator(), W0);
        let b = MultiplierHtm::from_fourier(
            vec![Complex::from_re(0.5), Complex::ONE, Complex::from_re(0.5)],
            W0,
        );
        let t = Truncation::new(2);
        let s = Complex::new(0.2, 0.7);
        let ab = series(&[&a, &b], s, t);
        let ba = series(&[&b, &a], s, t);
        // An LTI block does not commute with a time-varying multiplier.
        assert!(ab.as_matrix().max_diff(ba.as_matrix()) > 1e-3);
    }

    #[test]
    fn parallel_matches_manual_sum() {
        let a = LtiHtm::new(Tf::first_order_lowpass(1.0), W0);
        let b = LtiHtm::new(Tf::constant(2.0), W0);
        let t = Truncation::new(1);
        let s = Complex::from_im(0.4);
        let p = parallel(&[&a, &b], s, t);
        let manual = &a.htm(s, t) + &b.htm(s, t);
        assert!(p.as_matrix().max_diff(manual.as_matrix()) < 1e-15);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn empty_series_rejected() {
        let _ = series(&[], Complex::ZERO, Truncation::new(1));
    }

    #[test]
    fn smw_matches_dense_inverse() {
        // Build a random-ish rank-one G = u·vᵀ and compare the closed
        // loop against dense LU.
        let n = 7;
        let u: Vec<Complex> = (0..n)
            .map(|i| Complex::new(0.1 * i as f64 + 0.2, 0.05 * i as f64 - 0.1))
            .collect();
        let v: Vec<Complex> = (0..n)
            .map(|i| Complex::new(0.3 - 0.02 * i as f64, 0.01 * i as f64))
            .collect();
        let (cl, lambda) = closed_loop_rank_one(&u, &v);
        assert_eq!(
            cl.kind_name(),
            "rank-one",
            "closed loop must stay structured"
        );
        let g = CMat::outer(&u, &v);
        let i_plus_g = &CMat::identity(n) + &g;
        let dense = &inverse(&i_plus_g).unwrap() * &g;
        assert!(cl.to_dense(n).max_diff(&dense) < 1e-12);
        // λ = vᵀu = sum over elementwise product.
        let expect: Complex = u.iter().zip(&v).map(|(a, b)| *a * *b).sum();
        assert!(lambda.approx_eq(expect, 1e-14));
    }

    #[test]
    fn smw_apply_matches_dense_solve() {
        let n = 5;
        let u: Vec<Complex> = (0..n).map(|i| Complex::new(0.1, 0.02 * i as f64)).collect();
        let v: Vec<Complex> = (0..n).map(|i| Complex::new(0.2 * i as f64, -0.1)).collect();
        let x: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, 1.0)).collect();
        let fast = sherman_morrison_apply(&u, &v, &x);
        let i_plus_g = &CMat::identity(n) + &CMat::outer(&u, &v);
        let slow = htmpll_num::lu::solve(&i_plus_g, &x).unwrap();
        for (a, b) in fast.iter().zip(&slow) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn sampler_loop_closed_form_vs_dense() {
        // The actual PLL shape: G = H_VCO·H_LF·H_PFD with rank-one PFD.
        // Check that factoring G = Ṽ·𝟙ᵀ and applying SMW equals the dense
        // closed loop of the full product.
        let t = Truncation::new(3);
        let s = Complex::new(0.05, 0.3);
        let pfd = SamplerHtm::new(W0);
        let lf = LtiHtm::new(Tf::first_order_lowpass(1.0), W0);
        let vco = LtiHtm::new(Tf::integrator(), W0);
        let g = series(&[&pfd, &lf, &vco], s, t);

        // Factor: Ṽ = (ω₀/2π)·H_VCO·H_LF·𝟙 (column), vᵀ = 𝟙ᵀ.
        let ones = vec![Complex::ONE; t.dim()];
        let hv = &vco.htm(s, t).into_matrix() * &lf.htm(s, t).into_matrix();
        let u: Vec<Complex> = hv
            .mul_vec(&ones)
            .into_iter()
            .map(|x| x * pfd.weight())
            .collect();
        let (cl_fast, _) = closed_loop_rank_one(&u, &ones);
        let cl_dense = g.closed_loop().unwrap();
        assert!(cl_fast.to_dense(t.dim()).max_diff(cl_dense.as_matrix()) < 1e-12);
    }

    #[test]
    fn chain_block_equals_series() {
        let t = Truncation::new(2);
        let s = Complex::new(0.1, 0.5);
        let chain = super::Chain::new(vec![
            Box::new(SamplerHtm::new(W0)),
            Box::new(LtiHtm::new(Tf::first_order_lowpass(1.0), W0)),
            Box::new(LtiHtm::new(Tf::integrator(), W0)),
        ]);
        assert_eq!(chain.len(), 3);
        assert!(!chain.is_empty());
        let pfd = SamplerHtm::new(W0);
        let lf = LtiHtm::new(Tf::first_order_lowpass(1.0), W0);
        let vco = LtiHtm::new(Tf::integrator(), W0);
        let manual = series(&[&pfd, &lf, &vco], s, t);
        assert!(chain.htm(s, t).as_matrix().max_diff(manual.as_matrix()) < 1e-15);
        assert!(format!("{chain:?}").contains("3 blocks"));
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn chain_rejects_mixed_fundamentals() {
        let _ = super::Chain::new(vec![
            Box::new(SamplerHtm::new(1.0)),
            Box::new(SamplerHtm::new(2.0)),
        ]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn smw_length_checked() {
        let _ = closed_loop_rank_one(&[Complex::ONE], &[Complex::ONE, Complex::ONE]);
    }
}
