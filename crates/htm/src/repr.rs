//! Structured storage behind [`Htm`](crate::Htm).
//!
//! Every HTM the paper builds is structured: LTI blocks are diagonal
//! (eq. 13), memoryless periodic multipliers are Toeplitz in the
//! Fourier coefficients `P_{n−m}` (eq. 16), the VCO is a banded
//! Toeplitz scaled per row by `1/(s+jnω₀)` (eq. 25), and the sampling
//! PFD is rank one (eq. 19–20). [`HtmRepr`] keeps that structure
//! explicit so composition (`mul`/`add`/`scale`) can propagate it and
//! the closed-loop solve can dispatch on it:
//!
//! * `Diagonal · BandedToeplitz` stays banded Toeplitz (the row scale
//!   absorbs the diagonal);
//! * anything structured times a rank-one factor stays rank one
//!   (`A·(u·vᵀ) = (A·u)·vᵀ` — one O(n·b) mat-vec);
//! * products that leave the lattice (e.g. two truncated Toeplitz
//!   operators, whose product is *not* Toeplitz at the truncation
//!   boundary) densify, and an obs counter records the escalation.
//!
//! The representable set is deliberately small: it is exactly what the
//! PLL chain `H̃_VCO·H̃_LF·H̃_PFD` and its `I + G̃` feedback operator
//! need to stay O(n·b) instead of O(n²)/O(n³).

use htmpll_num::{simd, BandMat, CMat, Complex};

/// Structured representation of one truncated HTM evaluation.
///
/// All variants describe the same `n×n` complex matrix interface; `n`
/// is owned by the wrapping [`Htm`](crate::Htm) (the truncation
/// dimension) and passed into the methods that need it.
#[derive(Debug, Clone, PartialEq)]
pub enum HtmRepr {
    /// Diagonal matrix `D_{ii} = d[i]` — LTI blocks (paper eq. 13).
    Diagonal(Vec<Complex>),
    /// Banded Toeplitz with optional per-row scale:
    /// `B_{ij} = row_scale[i] · coeffs[(i−j)+b]` for `|i−j| ≤ b`,
    /// where `coeffs` is centered with odd length `2b+1`. Periodic
    /// multipliers (eq. 16, `row_scale = None`) and the VCO (eq. 25,
    /// `row_scale[i] = 1/(s+jn_iω₀)`).
    BandedToeplitz {
        /// Centered diagonal coefficients `[c_{−b}, …, c_0, …, c_{+b}]`.
        coeffs: Vec<Complex>,
        /// Optional per-row scaling (length `n`).
        row_scale: Option<Vec<Complex>>,
    },
    /// Rank-one plus a multiple of the identity: `u·vᵀ + shift·I`.
    /// The sampling PFD (eq. 19–20, `shift = 0`) and feedback operators
    /// `I + u·vᵀ` (`shift = 1`).
    RankOnePlus {
        /// Column factor.
        u: Vec<Complex>,
        /// Row factor (plain transpose, no conjugation).
        v: Vec<Complex>,
        /// Coefficient of the identity term.
        shift: Complex,
    },
    /// Unstructured fallback.
    Dense(CMat),
}

impl HtmRepr {
    /// Whether this representation is consistent with dimension `n`.
    pub fn dim_ok(&self, n: usize) -> bool {
        match self {
            HtmRepr::Diagonal(d) => d.len() == n,
            HtmRepr::BandedToeplitz { coeffs, row_scale } => {
                coeffs.len() % 2 == 1 && row_scale.as_ref().is_none_or(|r| r.len() == n)
            }
            HtmRepr::RankOnePlus { u, v, .. } => u.len() == n && v.len() == n,
            HtmRepr::Dense(m) => m.rows() == n && m.cols() == n,
        }
    }

    /// Short name of the variant, for diagnostics and obs labels.
    pub fn kind_name(&self) -> &'static str {
        match self {
            HtmRepr::Diagonal(_) => "diagonal",
            HtmRepr::BandedToeplitz { .. } => "banded-toeplitz",
            HtmRepr::RankOnePlus { .. } => "rank-one",
            HtmRepr::Dense(_) => "dense",
        }
    }

    /// Half-bandwidth when the representation is banded: 0 for
    /// diagonal, `b` for banded Toeplitz, `None` for rank-one / dense
    /// (structurally full).
    pub fn half_bandwidth(&self) -> Option<usize> {
        match self {
            HtmRepr::Diagonal(_) => Some(0),
            HtmRepr::BandedToeplitz { coeffs, .. } => Some(coeffs.len() / 2),
            _ => None,
        }
    }

    /// Entry `(i, j)` of the represented `n×n` matrix.
    pub fn entry(&self, n: usize, i: usize, j: usize) -> Complex {
        debug_assert!(i < n && j < n);
        match self {
            HtmRepr::Diagonal(d) => {
                if i == j {
                    d[i]
                } else {
                    Complex::ZERO
                }
            }
            HtmRepr::BandedToeplitz { coeffs, row_scale } => {
                let b = (coeffs.len() / 2) as i64;
                let k = i as i64 - j as i64;
                if k.abs() <= b {
                    let c = coeffs[(k + b) as usize];
                    match row_scale {
                        Some(rs) => rs[i] * c,
                        None => c,
                    }
                } else {
                    Complex::ZERO
                }
            }
            HtmRepr::RankOnePlus { u, v, shift } => {
                let mut e = u[i] * v[j];
                if i == j {
                    e += *shift;
                }
                e
            }
            HtmRepr::Dense(m) => m[(i, j)],
        }
    }

    /// Densifies into a [`CMat`].
    pub fn to_dense(&self, n: usize) -> CMat {
        match self {
            HtmRepr::Dense(m) => m.clone(),
            _ => CMat::from_fn(n, n, |i, j| self.entry(n, i, j)),
        }
    }

    /// Extracts a [`BandMat`] when the representation is banded
    /// (diagonal or banded Toeplitz); `None` otherwise.
    pub fn to_band(&self, n: usize) -> Option<BandMat> {
        let b = self.half_bandwidth()?.min(n.saturating_sub(1));
        Some(BandMat::from_fn(n, b, |i, j| self.entry(n, i, j)))
    }

    /// True when every stored value is finite (no NaN/∞).
    pub fn is_finite(&self) -> bool {
        let ok = |zs: &[Complex]| zs.iter().all(|z| z.re.is_finite() && z.im.is_finite());
        match self {
            HtmRepr::Diagonal(d) => ok(d),
            HtmRepr::BandedToeplitz { coeffs, row_scale } => {
                ok(coeffs) && row_scale.as_ref().is_none_or(|rs| ok(rs))
            }
            HtmRepr::RankOnePlus { u, v, shift } => {
                ok(u) && ok(v) && shift.re.is_finite() && shift.im.is_finite()
            }
            HtmRepr::Dense(m) => m.is_finite(),
        }
    }

    /// Scales every entry, preserving the representation.
    pub fn scale(&self, k: Complex) -> HtmRepr {
        match self {
            HtmRepr::Diagonal(d) => HtmRepr::Diagonal(d.iter().map(|x| *x * k).collect()),
            HtmRepr::BandedToeplitz { coeffs, row_scale } => HtmRepr::BandedToeplitz {
                coeffs: coeffs.iter().map(|x| *x * k).collect(),
                row_scale: row_scale.clone(),
            },
            HtmRepr::RankOnePlus { u, v, shift } => HtmRepr::RankOnePlus {
                u: u.iter().map(|x| *x * k).collect(),
                v: v.clone(),
                shift: *shift * k,
            },
            HtmRepr::Dense(m) => HtmRepr::Dense(m.scale(k)),
        }
    }

    /// Matrix–vector product `A x`, O(n·b) for the structured variants.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != n`.
    pub fn mul_vec(&self, n: usize, x: &[Complex]) -> Vec<Complex> {
        assert_eq!(x.len(), n, "band-vector length must match dimension");
        match self {
            HtmRepr::Diagonal(d) => d.iter().zip(x).map(|(di, xi)| *di * *xi).collect(),
            HtmRepr::BandedToeplitz { coeffs, row_scale } => {
                // Diagonal-major: one contiguous SIMD pass per Toeplitz
                // diagonal t = j − i (coefficient `coeffs[b − t]`),
                // taken in ascending t so each row accumulates its
                // terms in the j-ascending order of the historical row
                // scan — bitwise identical, and O(n·b) instead of the
                // old iterator's O(n²) walk. The per-row scale is one
                // elementwise pass at the end, as before.
                let b = coeffs.len() / 2;
                let mut out = vec![Complex::ZERO; n];
                if n == 0 {
                    return out;
                }
                // One AoS→SoA conversion per mat-vec; every diagonal
                // pass then runs on contiguous re/im planes with no
                // per-pass shuffles.
                let xs = simd::SoaVec::from_complex(x);
                let mut acc = simd::SoaVec::zeros(n);
                // The band may be wider than the matrix (b is not
                // clamped here), so restrict to diagonals |t| ≤ n−1.
                for p in b.saturating_sub(n - 1)..=(b + n - 1).min(2 * b) {
                    // Diagonal t = p − b: entries (i, i + t) with
                    // i ∈ [max(0, −t), n−1 − max(0, t)].
                    let i0 = b.saturating_sub(p);
                    let i1 = n - 1 - p.saturating_sub(b);
                    let c = coeffs[2 * b - p];
                    let j0 = i0 + p - b;
                    let len = i1 - i0 + 1;
                    let (o_re, o_im) = acc.planes_mut();
                    simd::cmul_bcast_add(
                        &mut o_re[i0..=i1],
                        &mut o_im[i0..=i1],
                        c,
                        &xs.re()[j0..j0 + len],
                        &xs.im()[j0..j0 + len],
                    );
                }
                acc.copy_to_complex(&mut out);
                if let Some(rs) = row_scale {
                    simd::cmul_pairwise(&mut out, rs);
                }
                out
            }
            HtmRepr::RankOnePlus { u, v, shift } => {
                let vx: Complex = v.iter().zip(x).map(|(a, b)| *a * *b).sum();
                u.iter()
                    .zip(x)
                    .map(|(ui, xi)| *ui * vx + *shift * *xi)
                    .collect()
            }
            HtmRepr::Dense(m) => m.mul_vec(x),
        }
    }

    /// Transposed product `Aᵀ x` (plain transpose, no conjugation) —
    /// the row-factor update for `(u·vᵀ)·A = u·(Aᵀv)ᵀ`.
    fn transpose_mul_vec(&self, n: usize, x: &[Complex]) -> Vec<Complex> {
        match self {
            HtmRepr::Diagonal(d) => d.iter().zip(x).map(|(di, xi)| *di * *xi).collect(),
            HtmRepr::BandedToeplitz { coeffs, row_scale } => match row_scale {
                // Unscaled: diagonal-major SIMD passes, ascending
                // u = i − j so each output column accumulates in the
                // i-ascending order of the historical scan.
                None => {
                    let b = coeffs.len() / 2;
                    let mut out = vec![Complex::ZERO; n];
                    if n == 0 {
                        return out;
                    }
                    let xs = simd::SoaVec::from_complex(x);
                    let mut acc = simd::SoaVec::zeros(n);
                    #[allow(clippy::needless_range_loop)] // p drives the diagonal geometry
                    for p in b.saturating_sub(n - 1)..=(b + n - 1).min(2 * b) {
                        // Diagonal u = p − b: contributions x[j + u] to
                        // out[j] for j ∈ [max(0, −u), n−1 − max(0, u)].
                        let j0 = b.saturating_sub(p);
                        let j1 = n - 1 - p.saturating_sub(b);
                        let c = coeffs[p];
                        let i0 = j0 + p - b;
                        let len = j1 - j0 + 1;
                        let (o_re, o_im) = acc.planes_mut();
                        simd::cmul_bcast_add(
                            &mut o_re[j0..=j1],
                            &mut o_im[j0..=j1],
                            c,
                            &xs.re()[i0..i0 + len],
                            &xs.im()[i0..i0 + len],
                        );
                    }
                    acc.copy_to_complex(&mut out);
                    out
                }
                // Row-scaled: the historical order multiplies
                // (rs[i]·c)·x[i] per element, so keep the scalar scan —
                // but index the band directly instead of walking the
                // full vector through a skip/take iterator.
                Some(rs) => {
                    let b = coeffs.len() / 2;
                    (0..n)
                        .map(|j| {
                            let lo = j.saturating_sub(b);
                            let hi = (j + b).min(n - 1);
                            let mut acc = Complex::ZERO;
                            for i in lo..=hi {
                                let scaled = rs[i] * coeffs[i + b - j];
                                acc += scaled * x[i];
                            }
                            acc
                        })
                        .collect()
                }
            },
            HtmRepr::RankOnePlus { u, v, shift } => {
                let ux: Complex = u.iter().zip(x).map(|(a, b)| *a * *b).sum();
                v.iter()
                    .zip(x)
                    .map(|(vj, xj)| *vj * ux + *shift * *xj)
                    .collect()
            }
            HtmRepr::Dense(m) => (0..n)
                .map(|j| {
                    let mut acc = Complex::ZERO;
                    for (i, xi) in x.iter().enumerate() {
                        acc += m[(i, j)] * *xi;
                    }
                    acc
                })
                .collect(),
        }
    }

    /// Sum of all entries `𝟙ᵀA𝟙` without densifying.
    pub fn sum_entries(&self, n: usize) -> Complex {
        match self {
            HtmRepr::Diagonal(d) => d.iter().copied().sum(),
            HtmRepr::BandedToeplitz { coeffs, row_scale } => {
                let b = coeffs.len() / 2;
                let mut total = Complex::ZERO;
                for i in 0..n {
                    let lo = i.saturating_sub(b);
                    let hi = (i + b).min(n - 1);
                    let mut acc = Complex::ZERO;
                    for j in lo..=hi {
                        acc += coeffs[i + b - j];
                    }
                    total += match row_scale {
                        Some(rs) => rs[i] * acc,
                        None => acc,
                    };
                }
                total
            }
            HtmRepr::RankOnePlus { u, v, shift } => {
                let su: Complex = u.iter().copied().sum();
                let sv: Complex = v.iter().copied().sum();
                su * sv + *shift * Complex::from_re(n as f64)
            }
            HtmRepr::Dense(m) => m.sum_entries(),
        }
    }

    /// Structure-propagating product `self · rhs`. Combinations that
    /// leave the representable lattice densify (recorded on the
    /// `htm.repr.op_densified` counter).
    pub fn mul(&self, rhs: &HtmRepr, n: usize) -> HtmRepr {
        use HtmRepr::*;
        match (self, rhs) {
            (Diagonal(a), Diagonal(b)) => Diagonal(a.iter().zip(b).map(|(x, y)| *x * *y).collect()),
            // D·B: the diagonal folds into the row scale — exact, even
            // at the truncation boundary.
            (Diagonal(d), BandedToeplitz { coeffs, row_scale }) => BandedToeplitz {
                coeffs: coeffs.clone(),
                row_scale: Some(match row_scale {
                    Some(rs) => d.iter().zip(rs).map(|(x, y)| *x * *y).collect(),
                    None => d.clone(),
                }),
            },
            // B·D with a *constant* diagonal: fold into the coefficients.
            (BandedToeplitz { coeffs, row_scale }, Diagonal(d))
                if d.iter().all(|x| *x == d[0]) && !d.is_empty() =>
            {
                BandedToeplitz {
                    coeffs: coeffs.iter().map(|c| *c * d[0]).collect(),
                    row_scale: row_scale.clone(),
                }
            }
            // A·(u·vᵀ) = (A·u)·vᵀ — one structured mat-vec.
            (a, RankOnePlus { u, v, shift }) if *shift == Complex::ZERO => RankOnePlus {
                u: a.mul_vec(n, u),
                v: v.clone(),
                shift: Complex::ZERO,
            },
            // (u·vᵀ)·A = u·(Aᵀv)ᵀ.
            (RankOnePlus { u, v, shift }, a) if *shift == Complex::ZERO => RankOnePlus {
                u: u.clone(),
                v: a.transpose_mul_vec(n, v),
                shift: Complex::ZERO,
            },
            // Cheap dense combinations: row/column scaling by a diagonal.
            (Diagonal(d), Dense(m)) => Dense(CMat::from_fn(n, n, |i, j| d[i] * m[(i, j)])),
            (Dense(m), Diagonal(d)) => Dense(CMat::from_fn(n, n, |i, j| m[(i, j)] * d[j])),
            (Dense(a), Dense(b)) => Dense(a * b),
            // Everything else — notably truncated Toeplitz · Toeplitz,
            // which is NOT Toeplitz at the truncation boundary — falls
            // off the lattice.
            (a, b) => {
                htmpll_obs::counter!("htm", "repr.op_densified").inc();
                Dense(&a.to_dense(n) * &b.to_dense(n))
            }
        }
    }

    /// Structure-propagating sum `self + rhs`; see [`HtmRepr::mul`].
    pub fn add(&self, rhs: &HtmRepr, n: usize) -> HtmRepr {
        use HtmRepr::*;
        let constant_of = |d: &[Complex]| {
            if !d.is_empty() && d.iter().all(|x| *x == d[0]) {
                Some(d[0])
            } else {
                None
            }
        };
        match (self, rhs) {
            (Diagonal(a), Diagonal(b)) => Diagonal(a.iter().zip(b).map(|(x, y)| *x + *y).collect()),
            (
                BandedToeplitz {
                    coeffs: c1,
                    row_scale: r1,
                },
                BandedToeplitz {
                    coeffs: c2,
                    row_scale: r2,
                },
            ) if r1 == r2 => {
                let b = c1.len().max(c2.len()) / 2;
                let pick = |c: &[Complex], k: i64| {
                    let half = (c.len() / 2) as i64;
                    if k.abs() <= half {
                        c[(k + half) as usize]
                    } else {
                        Complex::ZERO
                    }
                };
                let coeffs = (-(b as i64)..=(b as i64))
                    .map(|k| pick(c1, k) + pick(c2, k))
                    .collect();
                BandedToeplitz {
                    coeffs,
                    row_scale: r1.clone(),
                }
            }
            // A constant diagonal shifts the Toeplitz center coefficient
            // (only without a row scale — the shift is not row-scaled).
            (Diagonal(d), BandedToeplitz { coeffs, row_scale })
            | (BandedToeplitz { coeffs, row_scale }, Diagonal(d))
                if row_scale.is_none() && constant_of(d).is_some() =>
            {
                let mut coeffs = coeffs.clone();
                let mid = coeffs.len() / 2;
                coeffs[mid] += d[0];
                BandedToeplitz {
                    coeffs,
                    row_scale: None,
                }
            }
            // A constant diagonal folds into the rank-one shift term.
            (Diagonal(d), RankOnePlus { u, v, shift })
            | (RankOnePlus { u, v, shift }, Diagonal(d))
                if constant_of(d).is_some() =>
            {
                RankOnePlus {
                    u: u.clone(),
                    v: v.clone(),
                    shift: *shift + d[0],
                }
            }
            (
                RankOnePlus {
                    u: u1,
                    v: v1,
                    shift: s1,
                },
                RankOnePlus {
                    u: u2,
                    v: v2,
                    shift: s2,
                },
            ) if v1 == v2 => RankOnePlus {
                u: u1.iter().zip(u2).map(|(x, y)| *x + *y).collect(),
                v: v1.clone(),
                shift: *s1 + *s2,
            },
            (
                RankOnePlus {
                    u: u1,
                    v: v1,
                    shift: s1,
                },
                RankOnePlus {
                    u: u2,
                    v: v2,
                    shift: s2,
                },
            ) if u1 == u2 => RankOnePlus {
                u: u1.clone(),
                v: v1.iter().zip(v2).map(|(x, y)| *x + *y).collect(),
                shift: *s1 + *s2,
            },
            (Dense(a), Dense(b)) => Dense(a + b),
            (a, b) => {
                htmpll_obs::counter!("htm", "repr.op_densified").inc();
                Dense(CMat::from_fn(n, n, |i, j| {
                    a.entry(n, i, j) + b.entry(n, i, j)
                }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    fn diag(n: usize) -> HtmRepr {
        HtmRepr::Diagonal((0..n).map(|i| c(1.0 + i as f64, 0.5)).collect())
    }

    fn toeplitz(n: usize, scaled: bool) -> HtmRepr {
        HtmRepr::BandedToeplitz {
            coeffs: vec![c(0.2, -0.1), c(1.0, 0.0), c(0.3, 0.4)],
            row_scale: scaled.then(|| (0..n).map(|i| c(0.1 * i as f64 + 0.5, -0.2)).collect()),
        }
    }

    fn rank_one(n: usize) -> HtmRepr {
        HtmRepr::RankOnePlus {
            u: (0..n).map(|i| c(0.3 * i as f64 + 0.1, 0.05)).collect(),
            v: (0..n).map(|i| c(0.7 - 0.1 * i as f64, 0.02)).collect(),
            shift: Complex::ZERO,
        }
    }

    /// The ground truth for every structured operation.
    fn check_mul(a: &HtmRepr, b: &HtmRepr, n: usize, must_stay_structured: bool) {
        let fast = a.mul(b, n);
        let slow = &a.to_dense(n) * &b.to_dense(n);
        assert!(
            fast.to_dense(n).max_diff(&slow) < 1e-12,
            "{} · {} mismatch",
            a.kind_name(),
            b.kind_name()
        );
        if must_stay_structured {
            assert_ne!(
                fast.kind_name(),
                "dense",
                "{} · {} unexpectedly densified",
                a.kind_name(),
                b.kind_name()
            );
        }
    }

    fn check_add(a: &HtmRepr, b: &HtmRepr, n: usize, must_stay_structured: bool) {
        let fast = a.add(b, n);
        let slow = &a.to_dense(n) + &b.to_dense(n);
        assert!(
            fast.to_dense(n).max_diff(&slow) < 1e-12,
            "{} + {} mismatch",
            a.kind_name(),
            b.kind_name()
        );
        if must_stay_structured {
            assert_ne!(fast.kind_name(), "dense");
        }
    }

    #[test]
    fn mul_lattice_matches_dense() {
        let n = 7;
        let reprs = [
            diag(n),
            toeplitz(n, false),
            toeplitz(n, true),
            rank_one(n),
            HtmRepr::Dense(CMat::from_fn(n, n, |i, j| {
                c(0.1 * i as f64, 0.2 * j as f64)
            })),
        ];
        for a in &reprs {
            for b in &reprs {
                check_mul(a, b, n, false);
                check_add(a, b, n, false);
            }
        }
    }

    #[test]
    fn hot_path_combinations_stay_structured() {
        let n = 9;
        // The PLL chain: Diag·RankOne, BT·RankOne, Diag·BT.
        check_mul(&diag(n), &rank_one(n), n, true);
        check_mul(&toeplitz(n, true), &rank_one(n), n, true);
        check_mul(&diag(n), &toeplitz(n, true), n, true);
        check_mul(&diag(n), &diag(n), n, true);
        check_mul(&rank_one(n), &diag(n), n, true);
        check_mul(&rank_one(n), &toeplitz(n, false), n, true);
        check_mul(&rank_one(n), &rank_one(n), n, true);
        // Parallel sums that stay cheap.
        check_add(&diag(n), &diag(n), n, true);
        check_add(&toeplitz(n, false), &toeplitz(n, false), n, true);
        check_add(&rank_one(n), &rank_one(n), n, true); // same u and v
    }

    #[test]
    fn truncated_toeplitz_product_densifies() {
        // Truncated Toeplitz · Toeplitz is NOT Toeplitz (boundary
        // clipping) — the lattice must fall back to dense rather than
        // fake a structured result.
        let n = 6;
        let fast = toeplitz(n, false).mul(&toeplitz(n, false), n);
        assert_eq!(fast.kind_name(), "dense");
        let slow = &toeplitz(n, false).to_dense(n) * &toeplitz(n, false).to_dense(n);
        assert!(fast.to_dense(n).max_diff(&slow) < 1e-14);
    }

    #[test]
    fn identity_shift_addition() {
        let n = 5;
        let ones = HtmRepr::Diagonal(vec![Complex::ONE; n]);
        // I + u·vᵀ bumps the shift, exactly.
        let sum = ones.add(&rank_one(n), n);
        match &sum {
            HtmRepr::RankOnePlus { shift, .. } => assert_eq!(*shift, Complex::ONE),
            other => panic!("expected rank-one, got {}", other.kind_name()),
        }
        // I + Toeplitz bumps the center coefficient.
        let sum = ones.add(&toeplitz(n, false), n);
        match &sum {
            HtmRepr::BandedToeplitz { coeffs, .. } => {
                assert_eq!(coeffs[1], c(2.0, 0.0));
            }
            other => panic!("expected banded-toeplitz, got {}", other.kind_name()),
        }
    }

    #[test]
    fn entry_and_aggregates_match_dense() {
        let n = 8;
        for r in [diag(n), toeplitz(n, true), rank_one(n)] {
            let d = r.to_dense(n);
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(r.entry(n, i, j), d[(i, j)]);
                }
            }
            assert!((r.sum_entries(n) - d.sum_entries()).abs() < 1e-12);
            let x: Vec<Complex> = (0..n).map(|i| c(0.2 * i as f64, 1.0)).collect();
            let fast = r.mul_vec(n, &x);
            let slow = d.mul_vec(&x);
            for (f, s) in fast.iter().zip(&slow) {
                assert!((*f - *s).abs() < 1e-13);
            }
            assert!(r.is_finite());
            assert!(r.dim_ok(n));
            assert!(!r.dim_ok(n + 1) || r.half_bandwidth().is_some());
        }
    }

    #[test]
    fn scale_preserves_structure() {
        let n = 6;
        let k = c(2.0, -1.0);
        for r in [diag(n), toeplitz(n, true), rank_one(n)] {
            let fast = r.scale(k);
            assert_eq!(fast.kind_name(), r.kind_name());
            assert!(fast.to_dense(n).max_diff(&r.to_dense(n).scale(k)) < 1e-12);
        }
    }

    #[test]
    fn to_band_covers_banded_variants() {
        let n = 7;
        let band = toeplitz(n, true).to_band(n).unwrap();
        assert_eq!(band.bandwidth(), 1);
        assert!(band.to_dense().max_diff(&toeplitz(n, true).to_dense(n)) < 1e-14);
        assert_eq!(diag(n).to_band(n).unwrap().bandwidth(), 0);
        assert!(rank_one(n).to_band(n).is_none());
    }

    #[test]
    fn non_finite_detected() {
        let r = HtmRepr::Diagonal(vec![Complex::ONE, c(f64::NAN, 0.0)]);
        assert!(!r.is_finite());
        let r = HtmRepr::BandedToeplitz {
            coeffs: vec![c(f64::INFINITY, 0.0)],
            row_scale: None,
        };
        assert!(!r.is_finite());
    }
}
