//! Truncation bookkeeping for harmonic transfer matrices.
//!
//! An HTM is conceptually an ∞-dimensional matrix indexed by harmonic
//! numbers `n, m ∈ ℤ`. Numerically we truncate to `|n| ≤ K`, giving a
//! `(2K+1) × (2K+1)` matrix. [`Truncation`] maps between harmonic
//! indices and array positions so every call site agrees on the layout
//! (row/column 0 ↔ harmonic −K, center ↔ harmonic 0).
//!
//! ```
//! use htmpll_htm::Truncation;
//!
//! let t = Truncation::new(2);
//! assert_eq!(t.dim(), 5);
//! assert_eq!(t.index_of(0), Some(2));
//! assert_eq!(t.harmonic_at(4), 2);
//! ```

/// A symmetric harmonic truncation `−K ..= K`.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Truncation {
    k: usize,
}

impl Truncation {
    /// Creates a truncation keeping harmonics `−k ..= k`.
    pub const fn new(k: usize) -> Self {
        Truncation { k }
    }

    /// A [`TruncationSpec`] asking the consumer to pick the smallest
    /// order whose harmonic-sum tail stays below `tol` (resolved from
    /// the open-loop gain's roll-off, e.g. via
    /// `EffectiveGain::suggest_truncation` in `htmpll-core`).
    pub const fn auto(tol: f64) -> TruncationSpec {
        TruncationSpec::Auto { tol }
    }

    /// The truncation order `K`.
    pub const fn order(self) -> usize {
        self.k
    }

    /// Matrix dimension `2K + 1`.
    pub const fn dim(self) -> usize {
        2 * self.k + 1
    }

    /// Iterates harmonics in array order: `−K, −K+1, …, K`.
    pub fn harmonics(self) -> impl Iterator<Item = i64> {
        let k = self.k as i64;
        -k..=k
    }

    /// Array index of harmonic `m`, or `None` when `|m| > K`.
    pub fn index_of(self, m: i64) -> Option<usize> {
        let k = self.k as i64;
        if m.abs() <= k {
            Some((m + k) as usize)
        } else {
            None
        }
    }

    /// Harmonic number at array index `idx`.
    ///
    /// # Panics
    ///
    /// Panics when `idx >= dim()`.
    pub fn harmonic_at(self, idx: usize) -> i64 {
        assert!(idx < self.dim(), "index {idx} outside truncation");
        idx as i64 - self.k as i64
    }
}

impl Default for Truncation {
    /// `K = 8` keeps 17 harmonics — enough for <0.5 % truncation error on
    /// the loop shapes in this workspace (see the
    /// `lambda_exact_vs_truncated` bench).
    fn default() -> Self {
        Truncation::new(8)
    }
}

/// How a caller asks for a truncation order: either a fixed `K` or a
/// tolerance to be resolved against the model at hand. This is the one
/// defaulting story shared by every truncated evaluation path
/// (`lambda_tv`, `v_column`, `closed_loop_htm`, grid sweeps): APIs take
/// `impl Into<TruncationSpec>` so a plain [`Truncation`] still works,
/// and [`TruncationSpec::default`] (= `Truncation::auto(1e-3)`) is used
/// when the caller passes nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TruncationSpec {
    /// Use exactly this truncation.
    Fixed(Truncation),
    /// Pick the smallest order whose truncation error stays below `tol`.
    Auto {
        /// Tolerance on the neglected harmonic-sum tail.
        tol: f64,
    },
}

impl Default for TruncationSpec {
    /// `Auto { tol: 1e-3 }`: three-digit truncation accuracy.
    fn default() -> Self {
        TruncationSpec::Auto { tol: 1e-3 }
    }
}

impl From<Truncation> for TruncationSpec {
    fn from(t: Truncation) -> Self {
        TruncationSpec::Fixed(t)
    }
}

impl TruncationSpec {
    /// Resolves to a concrete truncation, calling `suggest(tol)` for the
    /// `Auto` variant. `suggest` returns the order `K` (not the matrix
    /// dimension).
    pub fn resolve_with<F: FnOnce(f64) -> usize>(self, suggest: F) -> Truncation {
        match self {
            TruncationSpec::Fixed(t) => t,
            TruncationSpec::Auto { tol } => Truncation::new(suggest(tol)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions() {
        assert_eq!(Truncation::new(0).dim(), 1);
        assert_eq!(Truncation::new(3).dim(), 7);
        assert_eq!(Truncation::new(3).order(), 3);
    }

    #[test]
    fn index_mapping_roundtrip() {
        let t = Truncation::new(4);
        for m in t.harmonics() {
            let idx = t.index_of(m).unwrap();
            assert_eq!(t.harmonic_at(idx), m);
        }
        assert_eq!(t.index_of(-4), Some(0));
        assert_eq!(t.index_of(4), Some(8));
        assert_eq!(t.index_of(5), None);
        assert_eq!(t.index_of(-5), None);
    }

    #[test]
    fn harmonics_order() {
        let t = Truncation::new(2);
        let h: Vec<i64> = t.harmonics().collect();
        assert_eq!(h, vec![-2, -1, 0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "outside truncation")]
    fn harmonic_at_bounds_checked() {
        Truncation::new(1).harmonic_at(3);
    }

    #[test]
    fn default_order() {
        assert_eq!(Truncation::default().order(), 8);
    }

    #[test]
    fn spec_resolution() {
        let fixed: TruncationSpec = Truncation::new(5).into();
        assert_eq!(fixed.resolve_with(|_| panic!("not consulted")).order(), 5);
        let auto = Truncation::auto(1e-4);
        assert_eq!(auto, TruncationSpec::Auto { tol: 1e-4 });
        assert_eq!(
            auto.resolve_with(|tol| (1.0 / tol) as usize).order(),
            10_000
        );
        assert_eq!(
            TruncationSpec::default(),
            TruncationSpec::Auto { tol: 1e-3 }
        );
    }
}
