//! Trace exporters: Chrome Trace Format JSON and folded-stack flamegraph
//! text, plus a minimal JSON parser used to validate exports round-trip
//! (the workspace builds offline, so no serde).
//!
//! * [`chrome_trace_json`] — the JSON Object Format of the Chrome Trace
//!   Event specification: `{"traceEvents": [...]}` with `ph` = `B`/`E`
//!   (span begin/end) or `i` (instant), timestamps in microseconds.
//!   Loadable in `chrome://tracing` and Perfetto.
//! * [`flamegraph_folded`] — one line per unique span stack,
//!   `cat.frame;cat.frame ns`, with **self** time in nanoseconds as the
//!   value; feed straight to `flamegraph.pl` or `inferno-flamegraph`.
//! * [`parse_json`] / [`validate_json`] — recursive-descent parser for
//!   the JSON subset the workspace emits (actually: all of JSON), so
//!   tests and `plltool trace` can prove an export is well-formed.

use crate::events::{Trace, TracePhase};
use crate::export::{escape_json, json_num};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Serializes a drained [`Trace`] as Chrome Trace Format JSON.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(128 + 96 * trace.events.len());
    out.push_str("{\"displayTimeUnit\": \"ns\", \"dropped\": ");
    let _ = write!(out, "{}", trace.dropped);
    out.push_str(", \"traceEvents\": [\n");
    for (i, e) in trace.events.iter().enumerate() {
        out.push_str("  {\"name\": ");
        escape_json(&e.name, &mut out);
        out.push_str(", \"cat\": ");
        escape_json(e.cat, &mut out);
        let ph = match e.phase {
            TracePhase::Begin => "B",
            TracePhase::End => "E",
            TracePhase::Instant => "i",
        };
        let _ = write!(out, ", \"ph\": \"{ph}\", \"ts\": ");
        json_num(e.ts_ns as f64 / 1e3, &mut out);
        let _ = write!(out, ", \"pid\": 1, \"tid\": {}", e.tid);
        if e.phase == TracePhase::Instant {
            out.push_str(", \"s\": \"t\"");
        }
        out.push('}');
        if i + 1 < trace.events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Collapses a [`Trace`] into folded-stack flamegraph lines, sorted
/// lexicographically (deterministic for a fixed event sequence). Value is
/// self time in nanoseconds. Instants and unmatched begin/end events
/// (possible after ring overflow) are skipped.
pub fn flamegraph_folded(trace: &Trace) -> String {
    // Per-thread stacks of (frame, begin_ts, child_inclusive_ns).
    let mut stacks: BTreeMap<u64, Vec<(String, u64, u64)>> = BTreeMap::new();
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for e in &trace.events {
        let stack = stacks.entry(e.tid).or_default();
        match e.phase {
            TracePhase::Instant => {}
            TracePhase::Begin => {
                stack.push((format!("{}.{}", e.cat, e.name), e.ts_ns, 0));
            }
            TracePhase::End => {
                let frame = format!("{}.{}", e.cat, e.name);
                // Only pop a matching frame; an End whose Begin was shed
                // by the ring (or predates the session) is dropped.
                if stack.last().map(|(f, _, _)| f.as_str()) != Some(frame.as_str()) {
                    continue;
                }
                if let Some((frame, begin, child_ns)) = stack.pop() {
                    let incl = e.ts_ns.saturating_sub(begin);
                    let selfns = incl.saturating_sub(child_ns);
                    let mut path = String::new();
                    for (f, _, _) in stack.iter() {
                        path.push_str(f);
                        path.push(';');
                    }
                    path.push_str(&frame);
                    *folded.entry(path).or_insert(0) += selfns;
                    if let Some(parent) = stack.last_mut() {
                        parent.2 += incl;
                    }
                }
            }
        }
    }
    let mut out = String::new();
    for (path, ns) in &folded {
        let _ = writeln!(out, "{path} {ns}");
    }
    out
}

/// A parsed JSON value ([`parse_json`]).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as f64).
    Num(f64),
    /// A string literal, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; key order preserved, duplicate keys kept as-is.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements when this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string when this is a string literal.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number when this is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a JSON document; errors carry a byte offset.
pub fn parse_json(s: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value(0)?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(v)
}

/// Checks a JSON document for well-formedness.
pub fn validate_json(s: &str) -> Result<(), String> {
    parse_json(s).map(|_| ())
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.i)
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.b.get(self.i) {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let v = self.value(depth + 1)?;
            members.push((key, v));
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value(depth + 1)?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pairs; lone surrogates become U+FFFD.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.b.get(self.i..self.i + 2) == Some(b"\\u") {
                                    self.i += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(combined).unwrap_or('\u{fffd}')
                                } else {
                                    '\u{fffd}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{fffd}')
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.i += 1;
                }
                Some(&c) if c < 0x20 => return Err(self.err("control char in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid).
                    let start = self.i;
                    self.i += 1;
                    while self.i < self.b.len() && (self.b[self.i] & 0xc0) == 0x80 {
                        self.i += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.b[start..self.i])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        self.i += 1; // past the 'u'
        let hex = self
            .b
            .get(self.i..self.i + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.i += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let s = std::str::from_utf8(&self.b[start..self.i]).map_err(|_| self.err("bad number"))?;
        s.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number '{s}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::TraceEvent;

    fn ev(ts_ns: u64, tid: u64, phase: TracePhase, name: &str) -> TraceEvent {
        TraceEvent {
            ts_ns,
            tid,
            phase,
            cat: "t",
            name: name.to_string(),
        }
    }

    #[test]
    fn chrome_export_parses_back() {
        let trace = Trace {
            events: vec![
                ev(0, 0, TracePhase::Begin, "outer"),
                ev(500, 0, TracePhase::Instant, "mark \"x\""),
                ev(2000, 0, TracePhase::End, "outer"),
            ],
            dropped: 0,
        };
        let json = chrome_trace_json(&trace);
        let doc = parse_json(&json).expect("well-formed");
        let events = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events[0].get("ph").and_then(|v| v.as_str()),
            Some("B"),
            "{json}"
        );
        assert_eq!(events[1].get("s").and_then(|v| v.as_str()), Some("t"));
        assert_eq!(
            events[1].get("name").and_then(|v| v.as_str()),
            Some("mark \"x\"")
        );
        // ts is microseconds.
        assert_eq!(events[2].get("ts").and_then(|v| v.as_f64()), Some(2.0));
    }

    #[test]
    fn flamegraph_self_time_accounting() {
        // outer [0, 1000] contains inner [200, 700]: self 500 vs 500.
        let trace = Trace {
            events: vec![
                ev(0, 0, TracePhase::Begin, "outer"),
                ev(200, 0, TracePhase::Begin, "inner"),
                ev(700, 0, TracePhase::End, "inner"),
                ev(1000, 0, TracePhase::End, "outer"),
            ],
            dropped: 0,
        };
        let folded = flamegraph_folded(&trace);
        let mut lines: Vec<&str> = folded.lines().collect();
        lines.sort_unstable();
        assert_eq!(lines, vec!["t.outer 500", "t.outer;t.inner 500"]);
    }

    #[test]
    fn flamegraph_skips_unmatched_events() {
        let trace = Trace {
            events: vec![
                ev(100, 0, TracePhase::End, "orphan"),
                ev(200, 0, TracePhase::Begin, "open_forever"),
                ev(300, 0, TracePhase::Begin, "ok"),
                ev(400, 0, TracePhase::End, "ok"),
            ],
            dropped: 1,
        };
        let folded = flamegraph_folded(&trace);
        assert_eq!(folded, "t.open_forever;t.ok 100\n");
    }

    #[test]
    fn parser_handles_the_grammar() {
        let v = parse_json(r#"{"a": [1, -2.5e3, true, null], "b": "xé\n"}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1],
            JsonValue::Num(-2500.0)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("xé\n"));
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("[] trailing").is_err());
        assert!(validate_json("[[[[1]]]]").is_ok());
    }
}
