//! Cached per-call-site handles for counters and histograms.
//!
//! A site is a `static` created by the [`counter!`](crate::counter) /
//! [`record!`](crate::record) macros. It holds its target/name/level and a
//! `OnceLock` to the registry cell, so the steady-state cost of an
//! *enabled* hit is one filter check plus one atomic (counter) or one
//! short mutex section (histogram), and a *disabled* hit is the filter
//! check alone.

use crate::filter::{enabled, Level};
use crate::registry::{cell, Cell, MetricKind};
use std::sync::OnceLock;

/// A named counter call site. Construct through [`counter!`](crate::counter).
#[derive(Debug)]
pub struct SiteCounter {
    target: &'static str,
    name: &'static str,
    level: Level,
    cell: OnceLock<&'static Cell>,
}

impl SiteCounter {
    /// Creates a site (used by the `counter!` macro).
    pub const fn new(target: &'static str, name: &'static str, level: Level) -> SiteCounter {
        SiteCounter {
            target,
            name,
            level,
            cell: OnceLock::new(),
        }
    }

    fn resolve(&self) -> &'static Cell {
        self.cell.get_or_init(|| {
            cell(
                &format!("{}.{}", self.target, self.name),
                MetricKind::Counter,
            )
        })
    }

    /// Adds `n` when the site is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !enabled(self.target, self.level) {
            return;
        }
        self.resolve().add(n);
    }

    /// Adds one when the site is enabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }
}

/// A named histogram call site. Construct through [`record!`](crate::record).
#[derive(Debug)]
pub struct SiteHistogram {
    target: &'static str,
    name: &'static str,
    level: Level,
    cell: OnceLock<&'static Cell>,
}

impl SiteHistogram {
    /// Creates a site (used by the `record!` macro).
    pub const fn new(target: &'static str, name: &'static str, level: Level) -> SiteHistogram {
        SiteHistogram {
            target,
            name,
            level,
            cell: OnceLock::new(),
        }
    }

    /// True when this site would record — use to gate computing an
    /// expensive value (e.g. a solve residual) that exists only for
    /// telemetry.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        enabled(self.target, self.level)
    }

    /// Records one observation when the site is enabled.
    #[inline]
    pub fn record(&self, v: f64) {
        if !self.is_enabled() {
            return;
        }
        self.cell
            .get_or_init(|| {
                cell(
                    &format!("{}.{}", self.target, self.name),
                    MetricKind::Histogram,
                )
            })
            .observe(v);
    }

    /// Records `v` produced lazily — the closure runs only when enabled.
    #[inline]
    pub fn record_with<F: FnOnce() -> f64>(&self, f: F) {
        if self.is_enabled() {
            self.record(f());
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::{snapshot, test_lock};
    use crate::{override_filter, Level};

    fn find(key: &str) -> Option<crate::MetricSnapshot> {
        snapshot().into_iter().find(|m| m.key == key)
    }

    #[test]
    fn counter_counts_only_when_enabled() {
        let _g = test_lock();
        override_filter("off");
        let c = crate::counter!("obstest", "site.counter");
        c.inc();
        assert!(find("obstest.site.counter").is_none());

        override_filter("obstest=info");
        c.inc();
        c.add(4);
        let snap = find("obstest.site.counter").unwrap();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.kind, crate::MetricKind::Counter);
        override_filter("off");
    }

    #[test]
    fn debug_sites_respect_level() {
        let _g = test_lock();
        override_filter("obstest=info");
        let h = crate::record!("obstest", "site.debug_hist", Level::Debug);
        assert!(!h.is_enabled());
        h.record(1.0);
        assert!(find("obstest.site.debug_hist").is_none());

        override_filter("obstest=debug");
        h.record(3.0);
        let snap = find("obstest.site.debug_hist").unwrap();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, 3.0);
        override_filter("off");
    }

    #[test]
    fn record_with_is_lazy() {
        let _g = test_lock();
        override_filter("off");
        let h = crate::record!("obstest", "site.lazy");
        let mut ran = false;
        h.record_with(|| {
            ran = true;
            1.0
        });
        assert!(!ran, "closure must not run while disabled");

        override_filter("obstest=debug");
        let mut ran = false;
        h.record_with(|| {
            ran = true;
            2.5
        });
        assert!(ran);
        assert_eq!(find("obstest.site.lazy").unwrap().max, Some(2.5));
        override_filter("off");
    }
}
