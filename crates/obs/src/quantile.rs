//! Exact streaming quantiles for histogram and span cells.
//!
//! Every [`SiteHistogram`](crate::SiteHistogram) (and span) cell keeps the
//! raw observed values up to a fixed cap ([`SAMPLE_CAP`]) alongside its
//! log₂ buckets. While the cap is not exceeded the reported
//! p50/p95/p99 are **exact** order statistics of everything observed;
//! past the cap the sketch stops retaining values and the quantiles
//! degrade to **upper bounds** derived from the log₂ buckets (which always
//! hold every observation). The `quantiles_exact` flag on
//! [`MetricSnapshot`](crate::MetricSnapshot) says which regime a metric
//! is in.
//!
//! The cap bounds memory at `SAMPLE_CAP × 8` bytes per cell (32 KiB) and
//! keeps the record path allocation-free in steady state (one `Vec` push
//! into pre-grown storage under the cell mutex the caller already holds).

use crate::registry::bucket_upper;

/// Maximum raw samples retained per cell before quantiles degrade to
/// bucket-derived upper bounds.
pub(crate) const SAMPLE_CAP: usize = 4096;

/// Raw-sample reservoir backing exact quantiles.
#[derive(Debug)]
pub(crate) struct QuantileSketch {
    values: Vec<f64>,
    overflow: u64,
}

impl QuantileSketch {
    pub(crate) fn new() -> QuantileSketch {
        QuantileSketch {
            values: Vec::new(),
            overflow: 0,
        }
    }

    /// Records one observation; past [`SAMPLE_CAP`] only counts it.
    pub(crate) fn record(&mut self, v: f64) {
        if self.values.len() < SAMPLE_CAP {
            self.values.push(v);
        } else {
            self.overflow += 1;
        }
    }

    /// Forgets all samples (used by `reset`). Retains allocated capacity
    /// so a hot cell does not re-grow after every reset.
    pub(crate) fn clear(&mut self) {
        self.values.clear();
        self.overflow = 0;
    }

    /// True while every observation is retained verbatim.
    pub(crate) fn is_exact(&self) -> bool {
        self.overflow == 0
    }

    /// Sorted copy of the retained samples (total order; NaNs sort last).
    pub(crate) fn sorted(&self) -> Vec<f64> {
        let mut v = self.values.clone();
        v.sort_by(|a, b| a.total_cmp(b));
        v
    }
}

/// Exact quantile `q ∈ (0, 1]` of an ascending slice: the value at rank
/// `⌈q·n⌉` (1-based), i.e. the smallest sample ≥ the requested fraction
/// of the distribution. Callers guarantee `sorted` is non-empty.
pub(crate) fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let rank = (q * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// Quantile upper bound from log₂ bucket counts when raw samples were
/// shed: the upper edge of the bucket containing rank `⌈q·total⌉`,
/// clamped to the observed maximum. Conservative but thread-count-stable
/// (bucket counts are deterministic even when sample retention is not).
pub(crate) fn bucket_quantile(buckets: &[u64], total: u64, q: f64, observed_max: f64) -> f64 {
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total.max(1));
    let mut cum = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        cum += c;
        if cum >= rank {
            return bucket_upper(i).min(observed_max);
        }
    }
    observed_max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_quantiles_on_small_sets() {
        let one = [7.0];
        assert_eq!(exact_quantile(&one, 0.5), 7.0);
        assert_eq!(exact_quantile(&one, 0.99), 7.0);

        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(exact_quantile(&xs, 0.50), 50.0);
        assert_eq!(exact_quantile(&xs, 0.95), 95.0);
        assert_eq!(exact_quantile(&xs, 0.99), 99.0);
        assert_eq!(exact_quantile(&xs, 1.0), 100.0);
    }

    #[test]
    fn exact_quantiles_are_order_independent() {
        let mut sk = QuantileSketch::new();
        for v in [5.0, 1.0, 9.0, 3.0, 7.0] {
            sk.record(v);
        }
        let sorted = sk.sorted();
        assert_eq!(exact_quantile(&sorted, 0.5), 5.0);
        assert_eq!(exact_quantile(&sorted, 0.99), 9.0);
        assert!(sk.is_exact());
    }

    #[test]
    fn sketch_overflows_gracefully() {
        let mut sk = QuantileSketch::new();
        for i in 0..(SAMPLE_CAP + 10) {
            sk.record(i as f64);
        }
        assert!(!sk.is_exact());
        assert_eq!(sk.sorted().len(), SAMPLE_CAP);
        sk.clear();
        assert!(sk.is_exact());
        assert!(sk.sorted().is_empty());
    }

    #[test]
    fn bucket_quantile_bounds_the_true_value() {
        // 10 values of 1.0 (bucket 64) and 10 of 100.0 (bucket ~70).
        let mut buckets = vec![0u64; crate::registry::BUCKETS];
        buckets[crate::registry::bucket_index(1.0)] = 10;
        buckets[crate::registry::bucket_index(100.0)] = 10;
        let p50 = bucket_quantile(&buckets, 20, 0.50, 100.0);
        let p99 = bucket_quantile(&buckets, 20, 0.99, 100.0);
        assert!((1.0..=2.0).contains(&p50), "p50 bound {p50}");
        assert!((100.0 - 1e-12..=128.0).contains(&p99), "p99 bound {p99}");
        // Clamped to the observed max.
        assert_eq!(p99, 100.0);
    }
}
