//! The global metric registry.
//!
//! Metrics live in a lock-protected `BTreeMap` from key to a leaked
//! [`Cell`]. Cells are `&'static`, so call sites can cache them and update
//! through atomics (counters) or a short per-metric mutex (histograms and
//! spans) without re-taking the registry lock.

use crate::quantile::{bucket_quantile, exact_quantile, QuantileSketch};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of log₂ buckets: index `i` covers `[2^(i-64), 2^(i-63))`, with
/// index 0 also absorbing zero, negative, and non-finite values.
pub(crate) const BUCKETS: usize = 128;
const BUCKET_BIAS: i32 = 64;

/// What a metric cell measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MetricKind {
    /// Monotonic event count.
    Counter,
    /// Distribution of recorded values.
    Histogram,
    /// Distribution of span durations (values are nanoseconds).
    Span,
}

impl MetricKind {
    /// Lower-case name used by the exporters.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Histogram => "histogram",
            MetricKind::Span => "span",
        }
    }
}

#[derive(Debug)]
pub(crate) struct HistState {
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub buckets: Box<[u64; BUCKETS]>,
    pub samples: QuantileSketch,
}

impl HistState {
    fn new() -> HistState {
        HistState {
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: Box::new([0; BUCKETS]),
            samples: QuantileSketch::new(),
        }
    }

    fn zero(&mut self) {
        self.sum = 0.0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
        self.buckets.fill(0);
        self.samples.clear();
    }
}

/// One registered metric. Counter updates touch only `count`; histogram
/// and span updates take the cell's own mutex.
#[derive(Debug)]
pub(crate) struct Cell {
    pub kind: MetricKind,
    pub count: AtomicU64,
    pub state: Mutex<HistState>,
}

/// Index of the log₂ bucket for a value.
pub(crate) fn bucket_index(v: f64) -> usize {
    // NaN, zero, and negatives all land in bucket 0.
    if v <= 0.0 || v.is_nan() || !v.is_finite() {
        return 0;
    }
    let e = v.log2().floor() as i32;
    (e + BUCKET_BIAS).clamp(0, BUCKETS as i32 - 1) as usize
}

/// Upper bound (exclusive) of bucket `i`, as a power of two.
pub(crate) fn bucket_upper(i: usize) -> f64 {
    (2.0f64).powi(i as i32 - BUCKET_BIAS + 1)
}

impl Cell {
    /// Adds to a counter.
    pub fn add(&self, n: u64) {
        self.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one observation into a histogram/span cell.
    pub fn observe(&self, v: f64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.sum += v;
        st.min = st.min.min(v);
        st.max = st.max.max(v);
        st.buckets[bucket_index(v)] += 1;
        st.samples.record(v);
    }
}

type Registry = Mutex<BTreeMap<String, &'static Cell>>;

fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Looks up (or creates) the cell for `key`. If the key exists with a
/// different kind, the existing cell wins — first registration fixes the
/// kind.
pub(crate) fn cell(key: &str, kind: MetricKind) -> &'static Cell {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(c) = reg.get(key) {
        return c;
    }
    let c: &'static Cell = Box::leak(Box::new(Cell {
        kind,
        count: AtomicU64::new(0),
        state: Mutex::new(HistState::new()),
    }));
    reg.insert(key.to_string(), c);
    c
}

/// Point-in-time copy of one metric, as produced by [`snapshot`].
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    /// Metric key, `target.path{label}`.
    pub key: String,
    /// Counter, histogram, or span.
    pub kind: MetricKind,
    /// Event count (counter value, or number of observations).
    pub count: u64,
    /// Sum of observed values (0 for counters). Span values are ns.
    pub sum: f64,
    /// Smallest observation, `None` before the first one.
    pub min: Option<f64>,
    /// Largest observation, `None` before the first one.
    pub max: Option<f64>,
    /// Non-empty log₂ buckets as `(upper_bound, count)` pairs.
    pub buckets: Vec<(f64, u64)>,
    /// Median observation; `None` for empty or counter metrics.
    pub p50: Option<f64>,
    /// 95th-percentile observation.
    pub p95: Option<f64>,
    /// 99th-percentile observation.
    pub p99: Option<f64>,
    /// True while p50/p95/p99 are exact order statistics; false once the
    /// per-cell sample reservoir (4096 raw values) overflowed and they
    /// degraded to log₂-bucket upper bounds.
    pub quantiles_exact: bool,
}

impl MetricSnapshot {
    /// Mean observation, `None` for empty or counter metrics.
    pub fn mean(&self) -> Option<f64> {
        if self.kind == MetricKind::Counter || self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }
}

/// Copies every registered metric, sorted by key.
pub fn snapshot() -> Vec<MetricSnapshot> {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.iter()
        .map(|(key, cell)| {
            let count = cell.count.load(Ordering::Relaxed);
            let st = cell.state.lock().unwrap_or_else(|e| e.into_inner());
            let observed = st.min.is_finite();
            let observations = st.buckets.iter().sum::<u64>();
            let (p50, p95, p99, quantiles_exact) = if observations == 0 {
                (None, None, None, true)
            } else if st.samples.is_exact() {
                let sorted = st.samples.sorted();
                (
                    Some(exact_quantile(&sorted, 0.50)),
                    Some(exact_quantile(&sorted, 0.95)),
                    Some(exact_quantile(&sorted, 0.99)),
                    true,
                )
            } else {
                let q = |p| Some(bucket_quantile(&st.buckets[..], observations, p, st.max));
                (q(0.50), q(0.95), q(0.99), false)
            };
            MetricSnapshot {
                key: key.clone(),
                kind: cell.kind,
                count,
                sum: st.sum,
                min: observed.then_some(st.min),
                max: observed.then_some(st.max),
                buckets: st
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(i, &c)| (bucket_upper(i), c))
                    .collect(),
                p50,
                p95,
                p99,
                quantiles_exact,
            }
        })
        .collect()
}

/// Copies one metric by exact key (`target.path{label}`), or `None` if
/// nothing has registered under it yet. Cheaper than scanning
/// [`snapshot`] when a caller — e.g. the `plltool serve` stats probe —
/// only needs a handful of known keys.
pub fn snapshot_one(key: &str) -> Option<MetricSnapshot> {
    snapshot().into_iter().find(|m| m.key == key)
}

/// Zeroes every metric's value while keeping registrations (cached
/// `&'static Cell` handles in call sites stay valid). Also versions the
/// per-thread span stacks: spans still open when `reset` runs belong to
/// the drained epoch, so they neither record on drop nor contribute
/// parent segments to spans opened afterwards.
pub fn reset() {
    crate::span::bump_epoch();
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    for cell in reg.values() {
        cell.count.store(0, Ordering::Relaxed);
        cell.state.lock().unwrap_or_else(|e| e.into_inner()).zero();
    }
}

/// Removes every registration. Cached site handles re-register on next
/// use. (The leaked cells are not freed; this is bounded by the number of
/// distinct keys ever used.) Versions the span stacks like [`reset`].
pub fn clear() {
    crate::span::bump_epoch();
    registry().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Serializes tests that touch the global registry/filter. The registry is
/// process-global, so concurrent unit tests would otherwise race through
/// `reset`/`override_filter`.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math() {
        // 1.0 has floor(log2) = 0 → bucket BIAS, upper bound 2.
        assert_eq!(bucket_index(1.0), 64);
        assert_eq!(bucket_upper(bucket_index(1.0)), 2.0);
        assert_eq!(bucket_index(1.5), 64);
        assert_eq!(bucket_index(2.0), 65);
        assert_eq!(bucket_index(0.5), 63);
        // Degenerate values collapse into bucket 0.
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        // Extremes clamp.
        assert_eq!(bucket_index(1e300), BUCKETS - 1);
        assert_eq!(bucket_index(1e-300), 0);
        // Every bucket's upper bound is above its lower neighbor's.
        assert!(bucket_upper(10) < bucket_upper(11));
    }

    #[test]
    fn observe_accumulates() {
        let _g = test_lock();
        let c = cell("test.registry.observe", MetricKind::Histogram);
        c.observe(4.0);
        c.observe(1.0);
        c.observe(0.25);
        let snap = snapshot()
            .into_iter()
            .find(|m| m.key == "test.registry.observe")
            .unwrap();
        assert_eq!(snap.count, 3);
        assert!((snap.sum - 5.25).abs() < 1e-12);
        assert_eq!(snap.min, Some(0.25));
        assert_eq!(snap.max, Some(4.0));
        assert_eq!(snap.buckets.iter().map(|&(_, c)| c).sum::<u64>(), 3);
        assert!((snap.mean().unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn kind_is_fixed_by_first_registration() {
        let a = cell("test.registry.kind", MetricKind::Counter);
        let b = cell("test.registry.kind", MetricKind::Span);
        assert!(std::ptr::eq(a, b));
        assert_eq!(b.kind, MetricKind::Counter);
    }

    #[test]
    fn reset_zeroes_but_keeps_cells() {
        let _g = test_lock();
        let c = cell("test.registry.reset", MetricKind::Counter);
        c.add(7);
        reset();
        assert_eq!(c.count.load(Ordering::Relaxed), 0);
        // The same handle keeps working after reset.
        c.add(2);
        assert_eq!(c.count.load(Ordering::Relaxed), 2);
    }
}
