//! Env-filter: which targets record at which level.
//!
//! The filter is parsed once (from `HTMPLL_OBS` on first use, or from
//! [`override_filter`]) into a leaked, immutable directive list published
//! through an atomic pointer. The fast path of [`enabled`] is a relaxed
//! load of the maximum enabled level: when instrumentation is globally
//! off (the default), every site costs one load and one compare.

use std::sync::atomic::{AtomicPtr, AtomicU8, Ordering};

/// Verbosity level of an instrumentation site.
///
/// `Info` sites are cheap (counters, coarse spans); `Debug` sites may do
/// extra work when enabled (residual computations, per-iteration stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Site disabled (only meaningful in filter directives).
    Off = 0,
    /// Cheap, always-reasonable telemetry.
    Info = 1,
    /// Detailed telemetry that may add measurable work when enabled.
    Debug = 2,
    /// Per-event timeline detail: high-frequency instants (cache
    /// hit/miss, kernel dispatch) that fire for every grid point while a
    /// trace session is active. The deepest opt-in — measurably slows
    /// hot sweeps, so it is not implied by `debug`.
    Trace = 3,
}

impl Level {
    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" | "false" => Some(Level::Off),
            "info" | "on" => Some(Level::Info),
            "debug" | "1" | "true" => Some(Level::Debug),
            "trace" | "all" => Some(Level::Trace),
            _ => None,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// One `target=level` directive; `target == None` is the default level.
#[derive(Debug, Clone)]
struct Directive {
    target: Option<String>,
    level: Level,
}

/// Parsed filter specification.
#[derive(Debug, Clone)]
pub(crate) struct Filter {
    directives: Vec<Directive>,
    spec: String,
}

impl Filter {
    pub(crate) fn parse(spec: &str) -> Filter {
        let mut directives = Vec::new();
        for item in spec.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            if let Some((target, level)) = item.split_once('=') {
                let level = Level::parse(level).unwrap_or(Level::Info);
                directives.push(Directive {
                    target: Some(target.trim().to_string()),
                    level,
                });
            } else if let Some(level) = Level::parse(item) {
                directives.push(Directive {
                    target: None,
                    level,
                });
            } else {
                // A bare target name enables that target at full detail.
                directives.push(Directive {
                    target: Some(item.to_string()),
                    level: Level::Debug,
                });
            }
        }
        Filter {
            directives,
            spec: spec.to_string(),
        }
    }

    /// Level for a target: an exact target directive wins over the default;
    /// later directives win over earlier ones.
    pub(crate) fn level_for(&self, target: &str) -> Level {
        let mut level = Level::Off;
        let mut matched_target = false;
        for d in &self.directives {
            match &d.target {
                Some(t) if t == target => {
                    level = d.level;
                    matched_target = true;
                }
                None if !matched_target => level = d.level,
                _ => {}
            }
        }
        level
    }

    pub(crate) fn max_level(&self) -> Level {
        self.directives
            .iter()
            .map(|d| d.level)
            .max()
            .unwrap_or(Level::Off)
    }

    pub(crate) fn spec(&self) -> &str {
        &self.spec
    }
}

const UNINIT: u8 = 0xff;

/// Fast-path gate: the maximum level any directive enables, or `UNINIT`.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(UNINIT);
/// The active filter (leaked; replaced wholesale by `override_filter`).
static FILTER: AtomicPtr<Filter> = AtomicPtr::new(std::ptr::null_mut());

fn install(filter: Filter) {
    let max = filter.max_level() as u8;
    let leaked = Box::leak(Box::new(filter));
    FILTER.store(leaked, Ordering::Release);
    // Publish the gate last so readers that pass it see the new filter.
    MAX_LEVEL.store(max, Ordering::Release);
}

fn active() -> Option<&'static Filter> {
    let p = FILTER.load(Ordering::Acquire);
    // Safety: the pointer is either null or a `Box::leak`ed Filter that is
    // never freed.
    unsafe { p.as_ref() }
}

/// Initializes the filter from the `HTMPLL_OBS` environment variable if it
/// has not been initialized yet. Called automatically by [`enabled`]; call
/// it explicitly only to force early initialization.
pub fn init_from_env() {
    if MAX_LEVEL.load(Ordering::Acquire) != UNINIT {
        return;
    }
    let spec = std::env::var("HTMPLL_OBS").unwrap_or_default();
    install(Filter::parse(&spec));
}

/// Replaces the active filter programmatically (e.g. `plltool metrics`
/// forces `debug` regardless of the environment). Accepts the same syntax
/// as `HTMPLL_OBS`.
pub fn override_filter(spec: &str) {
    install(Filter::parse(spec));
}

/// The spec string of the active filter (after env initialization).
pub(crate) fn active_spec() -> String {
    init_from_env();
    active().map(|f| f.spec().to_string()).unwrap_or_default()
}

/// True when a site with this `target` and `level` should record.
///
/// Cost when globally disabled: one relaxed atomic load and one compare.
#[inline]
pub fn enabled(target: &str, level: Level) -> bool {
    let max = MAX_LEVEL.load(Ordering::Relaxed);
    if max == UNINIT {
        return enabled_cold(target, level);
    }
    if (level as u8) > max || level == Level::Off {
        return false;
    }
    match active() {
        Some(f) => level <= f.level_for(target),
        None => false,
    }
}

#[cold]
fn enabled_cold(target: &str, level: Level) -> bool {
    init_from_env();
    enabled(target, level)
}

/// Renders the level of a target under the active filter (diagnostics).
pub(crate) fn level_name_for(target: &str) -> &'static str {
    init_from_env();
    match active() {
        Some(f) => f.level_for(target).as_str(),
        None => "off",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_levels() {
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse(" INFO "), Some(Level::Info));
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("1"), Some(Level::Debug));
        assert_eq!(Level::parse("trace"), Some(Level::Trace));
        assert_eq!(Level::parse("ALL"), Some(Level::Trace));
        assert_eq!(Level::parse("htm"), None);
        assert!(Level::Trace > Level::Debug);
    }

    #[test]
    fn default_and_target_directives() {
        let f = Filter::parse("info,htm=debug,sim=off");
        assert_eq!(f.level_for("htm"), Level::Debug);
        assert_eq!(f.level_for("sim"), Level::Off);
        assert_eq!(f.level_for("core"), Level::Info);
        assert_eq!(f.max_level(), Level::Debug);
    }

    #[test]
    fn bare_target_means_debug() {
        let f = Filter::parse("spectral");
        assert_eq!(f.level_for("spectral"), Level::Debug);
        assert_eq!(f.level_for("htm"), Level::Off);
    }

    #[test]
    fn later_directive_wins() {
        let f = Filter::parse("htm=debug,htm=info");
        assert_eq!(f.level_for("htm"), Level::Info);
        let f = Filter::parse("debug,off");
        assert_eq!(f.level_for("anything"), Level::Off);
    }

    #[test]
    fn unknown_level_defaults_to_info() {
        let f = Filter::parse("htm=verbose");
        assert_eq!(f.level_for("htm"), Level::Info);
    }

    #[test]
    fn empty_spec_disables_everything() {
        let f = Filter::parse("");
        assert_eq!(f.level_for("htm"), Level::Off);
        assert_eq!(f.max_level(), Level::Off);
        let f = Filter::parse(" , ,");
        assert_eq!(f.max_level(), Level::Off);
    }

    #[test]
    fn whitespace_tolerated() {
        let f = Filter::parse(" htm = debug , sim = info ");
        assert_eq!(f.level_for("htm"), Level::Debug);
        assert_eq!(f.level_for("sim"), Level::Info);
    }
}
