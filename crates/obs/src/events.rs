//! Per-thread event ring buffers for timeline tracing.
//!
//! A trace session ([`trace_start`] … [`trace_stop`]) records a timeline
//! of [`TraceEvent`]s: span begin/end pairs (emitted automatically by the
//! RAII [`Span`](crate::Span) guards while a session is active), explicit
//! trace-only spans ([`trace_span`]), and point-in-time attribution
//! markers ([`instant`]) at hot decision sites (solver-ladder escalation,
//! cache hit/miss/eviction, kernel dispatch, worker scheduling).
//!
//! ## Buffering
//!
//! Each thread appends to its **own** ring buffer: the hot path touches a
//! thread-cached handle and never contends on a shared lock — the global
//! session registry is locked only once per thread per session (to
//! register the buffer) and once at [`trace_stop`] (to drain). When a
//! ring fills, the **oldest** events are shed and counted in
//! [`Trace::dropped`]; the exporters tolerate the resulting unmatched
//! begin/end events.
//!
//! ## Cost
//!
//! With no session active every entry point is one `Relaxed` atomic load
//! and a branch — same contract as the metric sites. Name closures are
//! not invoked while inactive.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default per-thread ring capacity (events) for a trace session.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// A span opened.
    Begin,
    /// A span closed.
    End,
    /// A point-in-time attribution marker.
    Instant,
}

/// One timeline event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Monotonic nanoseconds since the session started.
    pub ts_ns: u64,
    /// Stable per-thread id (assigned in order of first event).
    pub tid: u64,
    /// Begin / end / instant.
    pub phase: TracePhase,
    /// Instrumentation target (crate short name), the Chrome `cat`.
    pub cat: &'static str,
    /// Event name, including any `{label}` suffix.
    pub name: String,
}

/// A drained trace session, ordered by `(ts_ns, tid)`.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Events from all threads, merged and time-ordered.
    pub events: Vec<TraceEvent>,
    /// Events shed because a per-thread ring overflowed.
    pub dropped: u64,
}

#[derive(Debug, Default)]
struct ThreadBuffer {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

#[derive(Debug)]
struct Session {
    id: u64,
    start: Instant,
    capacity: usize,
    buffers: Mutex<Vec<Arc<Mutex<ThreadBuffer>>>>,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static CURRENT_ID: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

fn session_slot() -> &'static Mutex<Option<Arc<Session>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<Session>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

struct LocalBuf {
    session_id: u64,
    tid: u64,
    start: Instant,
    capacity: usize,
    buf: Arc<Mutex<ThreadBuffer>>,
}

thread_local! {
    static LOCAL: RefCell<Option<LocalBuf>> = const { RefCell::new(None) };
    static TID: std::cell::Cell<Option<u64>> = const { std::cell::Cell::new(None) };
}

fn thread_tid() -> u64 {
    TID.with(|t| match t.get() {
        Some(id) => id,
        None => {
            let id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(Some(id));
            id
        }
    })
}

/// True while a trace session is recording. One relaxed atomic load.
#[inline]
pub fn trace_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Starts a trace session with the given per-thread ring capacity.
/// Replaces (and discards) any session already active.
pub fn trace_start(capacity: usize) {
    let mut slot = session_slot().lock().unwrap_or_else(|e| e.into_inner());
    let id = CURRENT_ID.fetch_add(1, Ordering::Relaxed) + 1;
    *slot = Some(Arc::new(Session {
        id,
        start: Instant::now(),
        capacity: capacity.max(16),
        buffers: Mutex::new(Vec::new()),
    }));
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Stops the active session and returns its merged, time-ordered events.
/// Returns an empty [`Trace`] when no session was active.
pub fn trace_stop() -> Trace {
    ACTIVE.store(false, Ordering::SeqCst);
    let sess = session_slot()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take();
    let Some(sess) = sess else {
        return Trace::default();
    };
    let buffers = sess.buffers.lock().unwrap_or_else(|e| e.into_inner());
    let mut events = Vec::new();
    let mut dropped = 0;
    for b in buffers.iter() {
        let mut tb = b.lock().unwrap_or_else(|e| e.into_inner());
        dropped += tb.dropped;
        events.extend(tb.events.drain(..));
    }
    events.sort_by_key(|a| (a.ts_ns, a.tid));
    Trace { events, dropped }
}

/// Records one event into this thread's ring. `name` runs only when a
/// session is active.
pub(crate) fn record_event<F: FnOnce() -> String>(phase: TracePhase, cat: &'static str, name: F) {
    if !trace_active() {
        return;
    }
    record_event_named(phase, cat, name());
}

/// Like [`record_event`] but with the name already built (span drops
/// reuse the name captured at open).
pub(crate) fn record_event_named(phase: TracePhase, cat: &'static str, name: String) {
    if !trace_active() {
        return;
    }
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let cur = CURRENT_ID.load(Ordering::Relaxed);
        let stale = match l.as_ref() {
            Some(lb) => lb.session_id != cur,
            None => true,
        };
        if stale {
            let sess = session_slot()
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone();
            let Some(sess) = sess else { return };
            if sess.id != cur {
                return; // raced a concurrent stop/start; skip this event
            }
            let buf = Arc::new(Mutex::new(ThreadBuffer::default()));
            sess.buffers
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::clone(&buf));
            *l = Some(LocalBuf {
                session_id: sess.id,
                tid: thread_tid(),
                start: sess.start,
                capacity: sess.capacity,
                buf,
            });
        }
        if let Some(lb) = l.as_ref() {
            let ts_ns = lb.start.elapsed().as_nanos() as u64;
            let mut tb = lb.buf.lock().unwrap_or_else(|e| e.into_inner());
            if tb.events.len() >= lb.capacity {
                tb.events.pop_front();
                tb.dropped += 1;
            }
            tb.events.push_back(TraceEvent {
                ts_ns,
                tid: lb.tid,
                phase,
                cat,
                name,
            });
        }
    });
}

/// Emits a point-in-time attribution marker. The name closure runs only
/// while a session is active.
///
/// Use this for **rare** events (ladder escalations, cache evictions,
/// degraded verdicts): it fires whenever a session is recording,
/// regardless of the obs filter. High-frequency per-point markers must go
/// through [`instant_at`] with [`Level::Trace`](crate::Level::Trace) so
/// default (`debug`) tracing stays within the overhead budget.
#[inline]
pub fn instant<F: FnOnce() -> String>(cat: &'static str, name: F) {
    record_event(TracePhase::Instant, cat, name);
}

/// [`instant`] gated on the obs filter: records only while a session is
/// active **and** `cat` is enabled at `level`. Hot per-point attribution
/// markers (cache hit/miss, kernel dispatch) use
/// [`Level::Trace`](crate::Level::Trace) here, making them a deeper
/// opt-in (`HTMPLL_OBS=trace`) than span timelines.
#[inline]
pub fn instant_at<F: FnOnce() -> String>(cat: &'static str, level: crate::Level, name: F) {
    if !trace_active() || !crate::enabled(cat, level) {
        return;
    }
    record_event_named(TracePhase::Instant, cat, name());
}

/// RAII guard for a trace-only span: begin/end events on the timeline,
/// nothing in the metric registry. Used for high-cardinality timeline
/// detail (per-worker, per-chunk) that would pollute registry keys.
#[derive(Debug)]
#[must_use = "a trace span marks the time until it is dropped; bind it to a variable"]
pub struct TraceSpan {
    live: Option<(&'static str, String)>,
}

/// Opens a trace-only span; inert (closure not invoked) when no session
/// is active.
pub fn trace_span<F: FnOnce() -> String>(cat: &'static str, name: F) -> TraceSpan {
    if !trace_active() {
        return TraceSpan { live: None };
    }
    let n = name();
    record_event_named(TracePhase::Begin, cat, n.clone());
    TraceSpan {
        live: Some((cat, n)),
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if let Some((cat, n)) = self.live.take() {
            record_event_named(TracePhase::End, cat, n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::test_lock;

    #[test]
    fn inactive_session_is_inert() {
        let _g = test_lock();
        let _ = trace_stop(); // ensure no session
        let mut ran = false;
        instant("evtest", || {
            ran = true;
            "x".into()
        });
        assert!(!ran, "name closure must not run without a session");
        let t = trace_stop();
        assert!(t.events.is_empty());
    }

    #[test]
    fn events_are_recorded_and_ordered() {
        let _g = test_lock();
        trace_start(64);
        {
            let _s = trace_span("evtest", || "outer".into());
            instant("evtest", || "marker".into());
        }
        let t = trace_stop();
        let names: Vec<(&str, TracePhase)> = t
            .events
            .iter()
            .map(|e| (e.name.as_str(), e.phase))
            .collect();
        assert_eq!(
            names,
            vec![
                ("outer", TracePhase::Begin),
                ("marker", TracePhase::Instant),
                ("outer", TracePhase::End),
            ]
        );
        assert!(t.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        assert_eq!(t.dropped, 0);
    }

    #[test]
    fn ring_sheds_oldest_on_overflow() {
        let _g = test_lock();
        trace_start(16);
        for i in 0..40 {
            instant("evtest", || format!("e{i}"));
        }
        let t = trace_stop();
        assert_eq!(t.events.len(), 16);
        assert_eq!(t.dropped, 24);
        // The newest events survive.
        assert_eq!(t.events.last().map(|e| e.name.as_str()), Some("e39"));
    }

    #[test]
    fn multi_thread_events_merge_by_timestamp() {
        let _g = test_lock();
        trace_start(1024);
        let hs: Vec<_> = (0..2)
            .map(|w| {
                std::thread::spawn(move || {
                    for i in 0..10 {
                        instant("evtest", || format!("w{w}_{i}"));
                    }
                })
            })
            .collect();
        for h in hs {
            let _ = h.join();
        }
        let t = trace_stop();
        assert_eq!(t.events.len(), 20);
        assert!(t.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        // Two distinct thread ids present.
        let tids: std::collections::BTreeSet<u64> = t.events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 2);
    }
}
