//! JSON and human-table exporters over a registry snapshot.
//!
//! The JSON shape (see README "Observability" for the schema):
//!
//! ```json
//! {
//!   "version": 1,
//!   "filter": "htm=debug,sim=info",
//!   "metrics": {
//!     "sim.engine.steps":  {"kind": "counter", "value": 12800},
//!     "core.lambda.suggest_k": {"kind": "histogram", "count": 3,
//!        "sum": 42.0, "min": 6.0, "max": 24.0, "mean": 14.0,
//!        "p50": 12.0, "p95": 24.0, "p99": 24.0,
//!        "buckets": [{"le": 8.0, "count": 2}, {"le": 32.0, "count": 1}]},
//!     "htm.closed_loop{dim=21}": {"kind": "span", "count": 5,
//!        "total_ns": 83210.0, "min_ns": 9000.0, "max_ns": 31000.0,
//!        "mean_ns": 16642.0, "p50_ns": 14000.0, "p95_ns": 31000.0,
//!        "p99_ns": 31000.0}
//!   }
//! }
//! ```

use crate::filter::{active_spec, level_name_for};
use crate::registry::{snapshot, MetricKind, MetricSnapshot};
use std::fmt::Write as _;

/// Escapes a string for inclusion in a JSON string literal.
pub(crate) fn escape_json(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an f64 as a JSON number (never NaN/Infinity, which are not
/// valid JSON — they become null).
pub(crate) fn json_num(v: f64, out: &mut String) {
    if v.is_finite() {
        // `{:?}` gives a shortest round-trip representation that always
        // contains a '.' or 'e', i.e. a valid JSON number.
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

fn metric_json(m: &MetricSnapshot, out: &mut String) {
    escape_json(&m.key, out);
    out.push_str(": {\"kind\": \"");
    out.push_str(m.kind.as_str());
    out.push('"');
    match m.kind {
        MetricKind::Counter => {
            let _ = write!(out, ", \"value\": {}", m.count);
        }
        MetricKind::Histogram | MetricKind::Span => {
            let (sum, min, max, mean) = if m.kind == MetricKind::Span {
                ("total_ns", "min_ns", "max_ns", "mean_ns")
            } else {
                ("sum", "min", "max", "mean")
            };
            let _ = write!(out, ", \"count\": {}", m.count);
            out.push_str(&format!(", \"{sum}\": "));
            json_num(m.sum, out);
            if let (Some(lo), Some(hi)) = (m.min, m.max) {
                out.push_str(&format!(", \"{min}\": "));
                json_num(lo, out);
                out.push_str(&format!(", \"{max}\": "));
                json_num(hi, out);
            }
            if let Some(avg) = m.mean() {
                out.push_str(&format!(", \"{mean}\": "));
                json_num(avg, out);
            }
            let suffix = if m.kind == MetricKind::Span {
                "_ns"
            } else {
                ""
            };
            if let (Some(p50), Some(p95), Some(p99)) = (m.p50, m.p95, m.p99) {
                for (tag, v) in [("p50", p50), ("p95", p95), ("p99", p99)] {
                    out.push_str(&format!(", \"{tag}{suffix}\": "));
                    json_num(v, out);
                }
                if !m.quantiles_exact {
                    out.push_str(", \"quantiles_exact\": false");
                }
            }
            if m.kind == MetricKind::Histogram && !m.buckets.is_empty() {
                out.push_str(", \"buckets\": [");
                for (i, (le, count)) in m.buckets.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str("{\"le\": ");
                    json_num(*le, out);
                    let _ = write!(out, ", \"count\": {count}}}");
                }
                out.push(']');
            }
        }
    }
    out.push('}');
}

/// Serializes the current registry contents as a JSON document.
pub fn export_json() -> String {
    let metrics = snapshot();
    let mut out = String::with_capacity(256 + 160 * metrics.len());
    out.push_str("{\n  \"version\": 1,\n  \"filter\": ");
    escape_json(&active_spec(), &mut out);
    out.push_str(",\n  \"metrics\": {\n");
    for (i, m) in metrics.iter().enumerate() {
        out.push_str("    ");
        metric_json(m, &mut out);
        if i + 1 < metrics.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  }\n}\n");
    out
}

fn human_duration(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn human_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e5 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else if v.fract() == 0.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.4}")
    }
}

/// Renders the current registry contents as an aligned text table, one
/// metric per row, sorted by key. Returns an explanatory line when no
/// metrics have been registered.
pub fn export_table() -> String {
    let metrics = snapshot();
    if metrics.is_empty() {
        return "no metrics recorded (set HTMPLL_OBS, e.g. HTMPLL_OBS=debug)\n".to_string();
    }
    let key_w = metrics
        .iter()
        .map(|m| m.key.len())
        .max()
        .unwrap_or(0)
        .max(6);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<key_w$}  {:<9}  {:>10}  {:>12}  {:>12}  {:>12}  {:>12}  {:>12}",
        "metric", "kind", "count", "mean", "p50", "p95", "p99", "max"
    );
    let _ = writeln!(out, "{}", "-".repeat(key_w + 9 + 10 + 12 * 5 + 2 * 7));
    for m in &metrics {
        let fmt: fn(f64) -> String = match m.kind {
            MetricKind::Span => human_duration,
            _ => human_value,
        };
        let col = |v: Option<f64>| -> String {
            match (m.kind, v) {
                (MetricKind::Counter, _) | (_, None) => "-".to_string(),
                (_, Some(v)) => fmt(v),
            }
        };
        // Bucket-bound (inexact) quantiles are marked with a '≤'.
        let qcol = |v: Option<f64>| -> String {
            let s = col(v);
            if s != "-" && !m.quantiles_exact {
                format!("≤{s}")
            } else {
                s
            }
        };
        let _ = writeln!(
            out,
            "{:<key_w$}  {:<9}  {:>10}  {:>12}  {:>12}  {:>12}  {:>12}  {:>12}",
            m.key,
            m.kind.as_str(),
            m.count,
            col(m.mean()),
            qcol(m.p50),
            qcol(m.p95),
            qcol(m.p99),
            col(m.max),
        );
    }
    out
}

/// One line per target summarizing the active filter, for diagnostics
/// (`"htm=debug,sim=info,core=off"`).
pub fn describe_targets(targets: &[&str]) -> String {
    targets
        .iter()
        .map(|t| format!("{t}={}", level_name_for(t)))
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::test_lock;
    use crate::{override_filter, Level};

    #[test]
    fn json_escaping() {
        let mut s = String::new();
        escape_json("a\"b\\c\nd\u{1}", &mut s);
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn json_numbers_are_valid() {
        for (v, expect_null) in [(1.5, false), (0.0, false), (f64::NAN, true)] {
            let mut s = String::new();
            json_num(v, &mut s);
            assert_eq!(s == "null", expect_null, "{v} -> {s}");
        }
        // Round numbers still carry a decimal marker.
        let mut s = String::new();
        json_num(3.0, &mut s);
        assert_eq!(s, "3.0");
    }

    #[test]
    fn exporters_cover_all_kinds() {
        let _g = test_lock();
        override_filter("exptest=debug");
        crate::counter!("exptest", "events").add(3);
        crate::record!("exptest", "orders").record(12.0);
        {
            let _s = crate::span("exptest", "work");
        }
        let json = export_json();
        assert!(json.contains("\"exptest.events\": {\"kind\": \"counter\", \"value\": 3"));
        assert!(json.contains("\"exptest.orders\": {\"kind\": \"histogram\""));
        assert!(json.contains("\"buckets\": [{\"le\": 16.0, \"count\": 1}]"));
        assert!(json.contains("\"exptest.work\": {\"kind\": \"span\""));
        assert!(json.contains("\"total_ns\""));

        let table = export_table();
        assert!(table.contains("exptest.events"));
        assert!(table.contains("counter"));
        assert!(table.contains("exptest.work"));
        override_filter("off");
    }

    #[test]
    fn empty_table_is_explanatory() {
        // Not under the test lock: even with other metrics registered the
        // table path is exercised by the all-kinds test; here just check
        // the formatting helpers.
        assert_eq!(human_value(0.0), "0");
        assert_eq!(human_value(5.0), "5");
        assert!(human_duration(2.5e9).ends_with('s'));
        assert!(human_duration(1.0).ends_with("ns"));
    }

    #[test]
    fn describe_targets_lists_levels() {
        let _g = test_lock();
        override_filter("a=debug,b=info");
        let d = describe_targets(&["a", "b", "c"]);
        assert_eq!(d, "a=debug,b=info,c=off");
        override_filter("off");
    }

    #[test]
    fn quantiles_reach_json_and_table() {
        let _g = test_lock();
        override_filter("exptest=debug");
        crate::registry::reset();
        let h = crate::record!("exptest", "qdist");
        for i in 1..=100 {
            h.record(i as f64);
        }
        let json = export_json();
        assert!(
            json.contains("\"exptest.qdist\": {\"kind\": \"histogram\", \"count\": 100"),
            "{json}"
        );
        assert!(json.contains("\"p50\": 50.0"), "{json}");
        assert!(json.contains("\"p95\": 95.0"), "{json}");
        assert!(json.contains("\"p99\": 99.0"), "{json}");
        // Exact quantiles carry no degradation marker.
        assert!(!json.contains("\"quantiles_exact\""), "{json}");

        let table = export_table();
        let row = table
            .lines()
            .find(|l| l.starts_with("exptest.qdist"))
            .unwrap();
        assert!(row.contains("50"), "{row}");
        assert!(row.contains("95"), "{row}");
        assert!(row.contains("99"), "{row}");
        let header = table.lines().next().unwrap();
        for colname in ["p50", "p95", "p99"] {
            assert!(header.contains(colname), "{header}");
        }
        override_filter("off");
    }

    #[test]
    fn debug_level_site_reaches_json() {
        let _g = test_lock();
        override_filter("exptest=debug");
        crate::record!("exptest", "resid", Level::Debug).record(1e-14);
        let json = export_json();
        assert!(json.contains("exptest.resid"), "{json}");
        override_filter("off");
    }
}
