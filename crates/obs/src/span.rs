//! RAII timing spans with parent/child nesting.
//!
//! A [`Span`] measures the wall-clock time between its creation and drop
//! on the monotonic clock, and records it under a key built from the
//! per-thread stack of active span names:
//!
//! ```text
//! span("core", "analyze")                → core.analyze
//!   span("htm", "closed_loop")           → htm.analyze/closed_loop
//!     span_labeled("num", "lu", ||"n=5") → num.analyze/closed_loop/lu{n=5}
//! ```
//!
//! so solver time can be attributed to the pipeline stage that asked for
//! it. When the site is disabled the constructor returns an inert guard
//! without touching the clock, the thread-local stack, or the registry.

use crate::filter::{enabled, Level};
use crate::registry::{cell, MetricKind};
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    /// Names (with labels) of the spans currently open on this thread.
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// An RAII span guard; records its duration when dropped.
#[derive(Debug)]
#[must_use = "a span measures the time until it is dropped; bind it to a variable"]
pub struct Span {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    key: String,
    start: Instant,
}

fn open(target: &str, name: &str, label: Option<String>, level: Level) -> Span {
    if !enabled(target, level) {
        return Span { inner: None };
    }
    let segment = match label {
        Some(l) if !l.is_empty() => format!("{name}{{{l}}}"),
        _ => name.to_string(),
    };
    let key = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let mut path = String::with_capacity(target.len() + 1 + 16 * (stack.len() + 1));
        path.push_str(target);
        path.push('.');
        for parent in stack.iter() {
            path.push_str(parent);
            path.push('/');
        }
        path.push_str(&segment);
        stack.push(segment);
        path
    });
    Span {
        inner: Some(SpanInner {
            key,
            start: Instant::now(),
        }),
    }
}

impl Span {
    /// True when this span is live (its site was enabled at entry).
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let ns = inner.start.elapsed().as_secs_f64() * 1e9;
            STACK.with(|stack| {
                stack.borrow_mut().pop();
            });
            cell(&inner.key, MetricKind::Span).observe(ns);
        }
    }
}

/// Opens an `Info`-level span.
pub fn span(target: &'static str, name: &'static str) -> Span {
    open(target, name, None, Level::Info)
}

/// Opens a span at an explicit level.
pub fn span_at(target: &'static str, name: &'static str, level: Level) -> Span {
    open(target, name, None, level)
}

/// Opens an `Info`-level span with a label (e.g. `dim=21`). The label
/// closure runs only when the site is enabled.
pub fn span_labeled<F: FnOnce() -> String>(
    target: &'static str,
    name: &'static str,
    label: F,
) -> Span {
    if !enabled(target, Level::Info) {
        return Span { inner: None };
    }
    open(target, name, Some(label()), Level::Info)
}

/// Opens a labeled span at an explicit level.
pub fn span_labeled_at<F: FnOnce() -> String>(
    target: &'static str,
    name: &'static str,
    level: Level,
    label: F,
) -> Span {
    if !enabled(target, level) {
        return Span { inner: None };
    }
    open(target, name, Some(label()), level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::override_filter;
    use crate::registry::{snapshot, test_lock};

    fn keys_with_prefix(prefix: &str) -> Vec<String> {
        snapshot()
            .into_iter()
            .map(|m| m.key)
            .filter(|k| k.starts_with(prefix))
            .collect()
    }

    #[test]
    fn nesting_builds_paths() {
        let _g = test_lock();
        override_filter("spantest=debug");
        {
            let _a = span("spantest", "outer");
            {
                let _b = span("spantest", "mid");
                let _c = span_labeled("spantest", "leaf", || "k=3".to_string());
            }
            let _d = span("spantest", "sibling");
        }
        let keys = keys_with_prefix("spantest.");
        assert!(keys.contains(&"spantest.outer".to_string()), "{keys:?}");
        assert!(keys.contains(&"spantest.outer/mid".to_string()), "{keys:?}");
        assert!(
            keys.contains(&"spantest.outer/mid/leaf{k=3}".to_string()),
            "{keys:?}"
        );
        assert!(
            keys.contains(&"spantest.outer/sibling".to_string()),
            "{keys:?}"
        );
        override_filter("off");
    }

    #[test]
    fn durations_are_positive_and_ordered() {
        let _g = test_lock();
        override_filter("spantest=debug");
        {
            let _a = span("spantest", "timed_outer");
            let _b = span("spantest", "timed_inner");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snaps = snapshot();
        let outer = snaps
            .iter()
            .find(|m| m.key == "spantest.timed_outer")
            .unwrap();
        let inner = snaps
            .iter()
            .find(|m| m.key == "spantest.timed_outer/timed_inner")
            .unwrap();
        assert_eq!(outer.kind, crate::MetricKind::Span);
        assert!(outer.sum > 0.0 && inner.sum > 0.0);
        // The outer span closes after the inner one.
        assert!(outer.sum >= inner.sum, "{} < {}", outer.sum, inner.sum);
        override_filter("off");
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _g = test_lock();
        override_filter("off");
        let before = snapshot().len();
        {
            let s = span("spantest", "inert");
            assert!(!s.is_recording());
            let mut ran = false;
            let _l = span_labeled("spantest", "inert_labeled", || {
                ran = true;
                "x=1".to_string()
            });
            assert!(!ran, "label closure must not run while disabled");
        }
        assert_eq!(snapshot().len(), before);
    }

    #[test]
    fn stack_unwinds_across_disabled_parents() {
        let _g = test_lock();
        // A disabled parent contributes nothing to the path of an enabled
        // child of a *different* target.
        override_filter("spanchild=info");
        {
            let _p = span("spanparent", "off_parent"); // disabled target
            let _c = span("spanchild", "on_child");
        }
        let keys = keys_with_prefix("spanchild.");
        assert!(keys.contains(&"spanchild.on_child".to_string()), "{keys:?}");
        override_filter("off");
    }
}
