//! RAII timing spans with parent/child nesting.
//!
//! A [`Span`] measures the wall-clock time between its creation and drop
//! on the monotonic clock, and records it under a key built from the
//! per-thread stack of active span names:
//!
//! ```text
//! span("core", "analyze")                → core.analyze
//!   span("htm", "closed_loop")           → htm.analyze/closed_loop
//!     span_labeled("num", "lu", ||"n=5") → num.analyze/closed_loop/lu{n=5}
//! ```
//!
//! so solver time can be attributed to the pipeline stage that asked for
//! it. When the site is disabled the constructor returns an inert guard
//! without touching the clock, the thread-local stack, or the registry.
//!
//! While a trace session is active ([`crate::trace_start`]) every live
//! span additionally emits begin/end events onto the thread's timeline.
//!
//! ## Reset epochs
//!
//! [`crate::reset`]/[`crate::clear`] bump a global epoch. A per-thread
//! stack whose epoch is stale is drained before the next span opens, so
//! spans opened *after* a reset never inherit parent segments from spans
//! that were already open *before* it (stale parent linkage). A span that
//! itself straddles a reset records nothing on drop: its start time
//! belongs to the epoch the reset discarded.

use crate::events::{record_event_named, trace_active, TracePhase};
use crate::filter::{enabled, Level};
use crate::registry::{cell, MetricKind};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Bumped by `reset`/`clear`; stacks and spans from older epochs are
/// stale.
static EPOCH: AtomicU64 = AtomicU64::new(0);

pub(crate) fn bump_epoch() {
    EPOCH.fetch_add(1, Ordering::Relaxed);
}

fn current_epoch() -> u64 {
    EPOCH.load(Ordering::Relaxed)
}

#[derive(Debug)]
struct SpanStack {
    epoch: u64,
    names: Vec<String>,
}

thread_local! {
    /// Names (with labels) of the spans currently open on this thread.
    static STACK: RefCell<SpanStack> = const {
        RefCell::new(SpanStack { epoch: 0, names: Vec::new() })
    };
}

/// An RAII span guard; records its duration when dropped.
#[derive(Debug)]
#[must_use = "a span measures the time until it is dropped; bind it to a variable"]
pub struct Span {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    key: String,
    start: Instant,
    epoch: u64,
    target: &'static str,
    /// Leaf segment, kept only when a trace session saw the begin event
    /// (the end event must carry the same name).
    trace_name: Option<String>,
}

fn open(target: &'static str, name: &str, label: Option<String>, level: Level) -> Span {
    if !enabled(target, level) {
        return Span { inner: None };
    }
    let segment = match label {
        Some(l) if !l.is_empty() => format!("{name}{{{l}}}"),
        _ => name.to_string(),
    };
    let epoch = current_epoch();
    let trace_name = trace_active().then(|| segment.clone());
    let key = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        if stack.epoch != epoch {
            // A reset happened since this thread last opened a span: any
            // names still on the stack belong to spans from the drained
            // epoch and must not become parents in the new one.
            stack.names.clear();
            stack.epoch = epoch;
        }
        let mut path = String::with_capacity(target.len() + 1 + 16 * (stack.names.len() + 1));
        path.push_str(target);
        path.push('.');
        for parent in stack.names.iter() {
            path.push_str(parent);
            path.push('/');
        }
        path.push_str(&segment);
        stack.names.push(segment);
        path
    });
    if let Some(leaf) = &trace_name {
        // The timeline carries leaf names; nesting reconstructs the path.
        record_event_named(TracePhase::Begin, target, leaf.clone());
    }
    Span {
        inner: Some(SpanInner {
            key,
            start: Instant::now(),
            epoch,
            target,
            trace_name,
        }),
    }
}

impl Span {
    /// True when this span is live (its site was enabled at entry).
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let ns = inner.start.elapsed().as_secs_f64() * 1e9;
            STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                // Only unwind a stack from our own epoch; a reset already
                // drained stale entries (or will, on the next open).
                if stack.epoch == inner.epoch {
                    stack.names.pop();
                }
            });
            if let Some(name) = inner.trace_name {
                record_event_named(TracePhase::End, inner.target, name);
            }
            if current_epoch() == inner.epoch {
                cell(&inner.key, MetricKind::Span).observe(ns);
            }
        }
    }
}

/// Opens an `Info`-level span.
pub fn span(target: &'static str, name: &'static str) -> Span {
    open(target, name, None, Level::Info)
}

/// Opens a span at an explicit level.
pub fn span_at(target: &'static str, name: &'static str, level: Level) -> Span {
    open(target, name, None, level)
}

/// Opens an `Info`-level span with a label (e.g. `dim=21`). The label
/// closure runs only when the site is enabled.
pub fn span_labeled<F: FnOnce() -> String>(
    target: &'static str,
    name: &'static str,
    label: F,
) -> Span {
    if !enabled(target, Level::Info) {
        return Span { inner: None };
    }
    open(target, name, Some(label()), Level::Info)
}

/// Opens a labeled span at an explicit level.
pub fn span_labeled_at<F: FnOnce() -> String>(
    target: &'static str,
    name: &'static str,
    level: Level,
    label: F,
) -> Span {
    if !enabled(target, level) {
        return Span { inner: None };
    }
    open(target, name, Some(label()), level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::override_filter;
    use crate::registry::{reset, snapshot, test_lock};

    fn keys_with_prefix(prefix: &str) -> Vec<String> {
        snapshot()
            .into_iter()
            .map(|m| m.key)
            .filter(|k| k.starts_with(prefix))
            .collect()
    }

    #[test]
    fn nesting_builds_paths() {
        let _g = test_lock();
        override_filter("spantest=debug");
        {
            let _a = span("spantest", "outer");
            {
                let _b = span("spantest", "mid");
                let _c = span_labeled("spantest", "leaf", || "k=3".to_string());
            }
            let _d = span("spantest", "sibling");
        }
        let keys = keys_with_prefix("spantest.");
        assert!(keys.contains(&"spantest.outer".to_string()), "{keys:?}");
        assert!(keys.contains(&"spantest.outer/mid".to_string()), "{keys:?}");
        assert!(
            keys.contains(&"spantest.outer/mid/leaf{k=3}".to_string()),
            "{keys:?}"
        );
        assert!(
            keys.contains(&"spantest.outer/sibling".to_string()),
            "{keys:?}"
        );
        override_filter("off");
    }

    #[test]
    fn durations_are_positive_and_ordered() {
        let _g = test_lock();
        override_filter("spantest=debug");
        {
            let _a = span("spantest", "timed_outer");
            let _b = span("spantest", "timed_inner");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snaps = snapshot();
        let outer = snaps
            .iter()
            .find(|m| m.key == "spantest.timed_outer")
            .unwrap();
        let inner = snaps
            .iter()
            .find(|m| m.key == "spantest.timed_outer/timed_inner")
            .unwrap();
        assert_eq!(outer.kind, crate::MetricKind::Span);
        assert!(outer.sum > 0.0 && inner.sum > 0.0);
        // The outer span closes after the inner one.
        assert!(outer.sum >= inner.sum, "{} < {}", outer.sum, inner.sum);
        override_filter("off");
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _g = test_lock();
        override_filter("off");
        let before = snapshot().len();
        {
            let s = span("spantest", "inert");
            assert!(!s.is_recording());
            let mut ran = false;
            let _l = span_labeled("spantest", "inert_labeled", || {
                ran = true;
                "x=1".to_string()
            });
            assert!(!ran, "label closure must not run while disabled");
        }
        assert_eq!(snapshot().len(), before);
    }

    #[test]
    fn stack_unwinds_across_disabled_parents() {
        let _g = test_lock();
        // A disabled parent contributes nothing to the path of an enabled
        // child of a *different* target.
        override_filter("spanchild=info");
        {
            let _p = span("spanparent", "off_parent"); // disabled target
            let _c = span("spanchild", "on_child");
        }
        let keys = keys_with_prefix("spanchild.");
        assert!(keys.contains(&"spanchild.on_child".to_string()), "{keys:?}");
        override_filter("off");
    }

    #[test]
    fn reset_drains_live_span_parentage() {
        // Regression: a Span alive across `reset()` used to stay on the
        // thread stack, so spans opened after the reset were filed under
        // a parent from the drained epoch.
        let _g = test_lock();
        override_filter("spanepoch=debug");
        let straddler = span("spanepoch", "straddler");
        reset();
        {
            let _fresh = span("spanepoch", "fresh");
        }
        let keys = keys_with_prefix("spanepoch.");
        assert!(
            keys.contains(&"spanepoch.fresh".to_string()),
            "post-reset span must have no stale parent: {keys:?}"
        );
        assert!(
            !keys.iter().any(|k| k.contains("straddler/")),
            "stale parent linkage survived reset: {keys:?}"
        );
        drop(straddler);
        // The straddling span itself records nothing: its start time
        // belongs to the epoch the reset discarded.
        let keys = keys_with_prefix("spanepoch.");
        assert!(
            !keys.contains(&"spanepoch.straddler".to_string()),
            "straddling span leaked into the fresh epoch: {keys:?}"
        );
        override_filter("off");
    }

    #[test]
    fn reset_mid_nest_keeps_stack_balanced() {
        let _g = test_lock();
        override_filter("spanepoch2=debug");
        {
            let _outer = span("spanepoch2", "outer");
            reset();
            let _post = span("spanepoch2", "post"); // clears stale stack
            let _child = span("spanepoch2", "child");
            // outer drops last; it must not pop the new epoch's stack.
        }
        {
            let _after = span("spanepoch2", "after");
        }
        let keys = keys_with_prefix("spanepoch2.");
        assert!(keys.contains(&"spanepoch2.post".to_string()), "{keys:?}");
        assert!(
            keys.contains(&"spanepoch2.post/child".to_string()),
            "{keys:?}"
        );
        assert!(
            keys.contains(&"spanepoch2.after".to_string()),
            "unbalanced stack after straddling drop: {keys:?}"
        );
        override_filter("off");
    }

    #[test]
    fn spans_emit_trace_events_when_session_active() {
        let _g = test_lock();
        override_filter("spantrace=debug");
        crate::events::trace_start(256);
        {
            let _a = span("spantrace", "outer");
            let _b = span_labeled("spantrace", "inner", || "k=2".into());
        }
        let trace = crate::events::trace_stop();
        let seq: Vec<(&str, TracePhase)> = trace
            .events
            .iter()
            .filter(|e| e.cat == "spantrace")
            .map(|e| (e.name.as_str(), e.phase))
            .collect();
        assert_eq!(
            seq,
            vec![
                ("outer", TracePhase::Begin),
                ("inner{k=2}", TracePhase::Begin),
                ("inner{k=2}", TracePhase::End),
                ("outer", TracePhase::End),
            ]
        );
        override_filter("off");
    }
}
