//! # htmpll-obs — dependency-free instrumentation for the htmpll workspace
//!
//! The HTM/λ(s)/simulation pipeline is quantitative infrastructure: its
//! value is *cheapness relative to* full harmonic-transfer-matrix
//! truncation and inversion, and that claim is unverifiable without a
//! measurement substrate. This crate provides one with **zero external
//! dependencies** (the workspace builds offline, so `tracing`/`log` are
//! not options):
//!
//! * named **counters** ([`counter!`]) — monotonic event counts,
//! * **histograms** ([`record!`]) — log₂-bucketed value distributions
//!   (truncation orders, pivot growth, iteration counts, residuals),
//! * RAII **spans** ([`span`], [`span_labeled`]) — monotonic wall-clock
//!   timers with parent/child nesting via a per-thread span stack,
//! * an **env filter** (`HTMPLL_OBS=htm=debug,sim=info`) so that disabled
//!   instrumentation costs one relaxed atomic load and a branch,
//! * **JSON** and human-table **exporters** ([`export_json`],
//!   [`export_table`]) over a global registry snapshot, including exact
//!   streaming **p50/p95/p99** on every histogram and span,
//! * **timeline tracing** ([`trace_start`]/[`trace_stop`]): per-thread
//!   event ring buffers capturing span begin/end and [`instant`]
//!   attribution markers, exported as Chrome Trace Format JSON
//!   ([`chrome_trace_json`], loadable in `chrome://tracing`/Perfetto) or
//!   folded-stack flamegraph text ([`flamegraph_folded`]).
//!
//! ## Enabling
//!
//! Instrumentation is **off by default**. Enable it with the `HTMPLL_OBS`
//! environment variable or programmatically with [`override_filter`]:
//!
//! ```text
//! HTMPLL_OBS=trace              # everything incl. per-point spans/markers
//! HTMPLL_OBS=debug              # counters, per-sweep spans, quantiles
//! HTMPLL_OBS=info               # everything, cheap sites only
//! HTMPLL_OBS=htm=debug,sim=info # per-target levels; unlisted targets off
//! HTMPLL_OBS=sim                # bare target ⇒ debug for that target
//! ```
//!
//! Targets are the short crate names used at the instrumentation sites:
//! `num`, `htm`, `core`, `sim`, `spectral` (plus any the application adds).
//!
//! ## Zero-cost-when-disabled contract
//!
//! Every instrumentation entry point first calls [`enabled`], which is a
//! single `Relaxed` atomic load and an integer compare when the filter
//! leaves the site disabled. No allocation, no locking, no `Instant::now()`
//! happens on a disabled path; label closures passed to [`span_labeled`]
//! are not invoked. This is what keeps λ-evaluation and simulator stepping
//! at their uninstrumented speed when `HTMPLL_OBS` is unset.
//!
//! ```
//! use htmpll_obs as obs;
//!
//! obs::override_filter("demo=debug");
//! {
//!     let _outer = obs::span("demo", "outer");
//!     let _inner = obs::span_labeled("demo", "inner", || "dim=5".to_string());
//!     obs::counter!("demo", "events").inc();
//!     obs::record!("demo", "order").record(12.0);
//! }
//! let json = obs::export_json();
//! assert!(json.contains("demo.outer"));
//! assert!(json.contains("demo.outer/inner{dim=5}"));
//! obs::override_filter("off");
//! ```

#![warn(missing_docs)]

mod events;
mod export;
mod filter;
mod quantile;
mod registry;
mod site;
mod span;
mod trace_export;

pub use events::{
    instant, instant_at, trace_active, trace_span, trace_start, trace_stop, Trace, TraceEvent,
    TracePhase, TraceSpan, DEFAULT_TRACE_CAPACITY,
};
pub use export::{describe_targets, export_json, export_table};
pub use filter::{enabled, init_from_env, override_filter, Level};
pub use registry::{clear, reset, snapshot, snapshot_one, MetricKind, MetricSnapshot};
pub use site::{SiteCounter, SiteHistogram};
pub use span::{span, span_at, span_labeled, span_labeled_at, Span};
pub use trace_export::{
    chrome_trace_json, flamegraph_folded, parse_json, validate_json, JsonValue,
};

/// Declares a per-call-site counter and returns a `&'static SiteCounter`.
///
/// The site caches its registry cell after the first enabled hit, so a hot
/// loop pays one atomic load (the filter check) plus one atomic add when
/// enabled and only the filter check when disabled.
///
/// ```
/// use htmpll_obs as obs;
/// obs::counter!("demo", "calls").inc();                       // Info level
/// obs::counter!("demo", "deep.calls", obs::Level::Debug).add(3);
/// ```
#[macro_export]
macro_rules! counter {
    ($target:literal, $name:literal) => {{
        static SITE: $crate::SiteCounter =
            $crate::SiteCounter::new($target, $name, $crate::Level::Info);
        &SITE
    }};
    ($target:literal, $name:literal, $level:expr) => {{
        static SITE: $crate::SiteCounter = $crate::SiteCounter::new($target, $name, $level);
        &SITE
    }};
}

/// Declares a per-call-site histogram and returns a `&'static SiteHistogram`.
///
/// Values are accumulated into log₂ buckets together with count/sum/min/max,
/// which is enough to see both the magnitude distribution and the mean of
/// solver iteration counts, truncation orders, residuals, and durations.
///
/// ```
/// use htmpll_obs as obs;
/// obs::record!("demo", "iters").record(17.0);
/// obs::record!("demo", "residual", obs::Level::Debug).record(1e-12);
/// ```
#[macro_export]
macro_rules! record {
    ($target:literal, $name:literal) => {{
        static SITE: $crate::SiteHistogram =
            $crate::SiteHistogram::new($target, $name, $crate::Level::Info);
        &SITE
    }};
    ($target:literal, $name:literal, $level:expr) => {{
        static SITE: $crate::SiteHistogram = $crate::SiteHistogram::new($target, $name, $level);
        &SITE
    }};
}
