//! Figure-regeneration harness: prints the data series behind every
//! reproduced figure of the DATE-2003 paper.
//!
//! ```text
//! cargo run --release -p htmpll-bench --bin figures -- all
//! cargo run --release -p htmpll-bench --bin figures -- fig6
//! ```

use htmpll_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    match which {
        "fig2" => fig2(),
        "fig4" => fig4(),
        "fig5" => fig5(),
        "fig6" => fig6(),
        "fig7" => fig7(),
        "timing" => timing(),
        "shape" => shape(),
        "pfd" => pfd(),
        "spur" => spur(),
        "poles" => poles(),
        "lock" => lock(),
        "trunc" => trunc(),
        "all" => {
            fig5();
            fig2();
            fig4();
            fig6();
            fig7();
            timing();
            shape();
            pfd();
            spur();
            poles();
            lock();
            trunc();
        }
        other => {
            eprintln!(
                "unknown experiment `{other}`; use fig2|fig4|fig5|fig6|fig7|timing|shape|pfd|spur|poles|lock|trunc|all"
            );
            std::process::exit(2);
        }
    }
}

fn header(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

fn fig5() {
    header("FIG 5 — open-loop gain A(jω) of the reference loop (3 poles, 2 at DC, 1 zero)");
    let (wug, pm) = reference_lti_margins();
    println!("# LTI: ω_UG = {wug:.4} rad/s, phase margin = {pm:.2}°");
    println!("{:>12} {:>12} {:>12}", "w/w_UG", "mag_dB", "phase_deg");
    for row in fig5_open_loop_bode(41) {
        println!(
            "{:12.4} {:12.3} {:12.2}",
            row.w_over_wug, row.mag_db, row.phase_deg
        );
    }
}

fn fig2() {
    header("FIG 2 — signal transfer between frequency bands: |H_{n,m}(jω)| map");
    let map = fig2_band_transfers(0.2, 0.3, 2);
    println!("# closed loop at ω = {:.2} rad/s, ω_UG/ω₀ = 0.2", map.omega);
    println!("# rows: output band n; columns: input band m");
    print!("{:>8}", "n\\m");
    for m in &map.bands {
        print!("{m:>10}");
    }
    println!();
    for (n, row) in map.bands.iter().zip(&map.magnitudes) {
        print!("{n:>8}");
        for v in row {
            print!("{v:>10.4}");
        }
        println!();
    }
    println!("# all columns equal: the sampling PFD aliases every input band identically (rank-one loop)");
}

fn fig4() {
    header("FIG 4 — pulse-train vs impulse-train PFD: model error vs pulse width");
    println!("# reference loop at ω_UG/ω₀ = 0.2, probed at ω = 2 rad/s (band edge region)");
    println!("{:>18} {:>14}", "pulse_width/T", "rel_error");
    let amps = [2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2];
    for row in fig4_pulse_width_error(0.2, 2.0, &amps) {
        println!("{:18.5} {:14.5}", row.pulse_width_frac, row.rel_error);
    }
    println!("# error ∝ width: narrow pulses act as impulses (paper Fig. 4 equivalence)");
}

fn fig6() {
    header("FIG 6 — closed-loop |H00(jω)| (dB): HTM (eq. 38) vs LTI vs time simulation");
    for curve in fig6_closed_loop(&[0.1, 0.2, 0.25], 25, 14) {
        println!("\n## ω_UG/ω₀ = {}", curve.ratio);
        println!(
            "{:>10} {:>10} {:>10} {:>10} {:>12}",
            "w/w_UG", "HTM_dB", "LTI_dB", "sim_dB", "sim_vs_htm"
        );
        let mut worst: f64 = 0.0;
        for p in &curve.points {
            let sim = p
                .sim_db
                .map(|v| format!("{v:10.3}"))
                .unwrap_or_else(|| format!("{:>10}", "-"));
            let err = p
                .sim_vs_htm_err
                .map(|v| {
                    worst = worst.max(v);
                    format!("{:11.2}%", 100.0 * v)
                })
                .unwrap_or_else(|| format!("{:>12}", "-"));
            println!(
                "{:10.4} {:10.3} {:10.3} {sim} {err}",
                p.w_over_wug, p.htm_db, p.lti_db
            );
        }
        println!("# worst sim-vs-HTM deviation on this curve: {:.2} %", 100.0 * worst);
    }
}

fn fig7() {
    header("FIG 7 — effective unity-gain frequency and phase margin vs ω_UG/ω₀");
    println!(
        "{:>8} {:>16} {:>12} {:>12} {:>8}",
        "ratio", "wUG_eff/wUG", "PM_eff_deg", "PM_LTI_deg", "limit?"
    );
    for row in fig7_margin_sweep(0.02, 0.34, 17) {
        println!(
            "{:8.3} {:16.4} {:12.2} {:12.2} {:>8}",
            row.ratio,
            row.wug_eff_over_wug,
            row.pm_eff_deg,
            row.pm_lti_deg,
            if row.beyond_limit { "YES" } else { "" }
        );
    }
    println!("# PM_LTI is the horizontal line of the paper's Fig. 7 (lower plot)");
}

fn shape() {
    header("EXT: LOOP SHAPE — sampling stability limit vs designed LTI phase margin");
    println!(
        "{:>8} {:>12} {:>16}",
        "spread", "PM_LTI_deg", "(wUG/w0)_max"
    );
    for row in shape_ablation(&[2.0, 3.0, 4.0, 6.0, 8.0]) {
        println!(
            "{:8.1} {:12.2} {:16.4}",
            row.spread, row.pm_lti_deg, row.limit_ratio
        );
    }
    println!("# measured finding: the limit is remarkably INSENSITIVE to the designed");
    println!("# LTI margin (0.27–0.29 across 37°–76°) — it is set by the aliased gain");
    println!("# magnitude, not the phase shape: a constraint continuous-time analysis");
    println!("# cannot even express");
}

fn pfd() {
    header("EXT: ARBITRARY PFDs — impulse charge pump vs sample-and-hold detector");
    println!(
        "{:>8} {:>16} {:>18}",
        "ratio", "PM_impulse_deg", "PM_sample_hold_deg"
    );
    for row in pfd_comparison(&[0.02, 0.05, 0.1, 0.15, 0.2]) {
        println!(
            "{:8.2} {:16.2} {:18.2}",
            row.ratio, row.pm_impulse_deg, row.pm_sample_hold_deg
        );
    }
    println!("# the hold's −ωT/2 delay costs extra margin on top of aliasing");
}

fn spur() {
    header("EXT: CHARGE-PUMP LEAKAGE — static offset and reference spur (simulated)");
    println!(
        "{:>14} {:>14} {:>14} {:>12} {:>12} {:>10}",
        "I_leak/I_cp", "offset/T", "predicted", "spur_rel_dB", "analytic_dB", "sim/pred"
    );
    for row in leakage_spur_study(0.1, &[1e-4, 3e-4, 1e-3, 3e-3]) {
        println!(
            "{:14.1e} {:14.2e} {:14.2e} {:12.2} {:12.2} {:10.3}",
            row.leakage_frac,
            row.static_offset_frac,
            row.predicted_offset_frac,
            row.spur_rel_db,
            row.spur_rel_db_predicted,
            row.sim_over_predicted
        );
    }
    println!("# spur power rises 20 dB/decade; the closed form θ̃₁ = −A(jω₀)·θ_static");
    println!("# predicts the absolute line power to ~1 % (sim/pred column)");
}

fn poles() {
    header("EXT: CLOSED-LOOP POLES — the subharmonic mode's march to instability");
    println!("# strip poles of 1 + λ(s) = 0 (Newton, exact dλ/ds); Im normalized to ω₀/2");
    println!("{:>8}   poles (Re, Im/(ω₀/2))", "ratio");
    for row in pole_locus(&[0.1, 0.15, 0.18, 0.2, 0.22, 0.25, 0.27, 0.29]) {
        print!("{:8.2}  ", row.ratio);
        for (re, imn) in &row.poles {
            print!(" ({re:+.4}, {imn:.3})");
        }
        println!();
    }
    println!("# around ratio ≈ 0.19 two real poles collide and lock onto Im = ω₀/2:");
    println!("# the loop rings at HALF THE REFERENCE RATE; that subharmonic pole");
    println!("# crosses into the RHP at the stability limit ≈ 0.276 — Gardner's");
    println!("# granularity instability, recovered from the continuous-time HTM model");
}

fn lock() {
    header("EXT: LOCK ACQUISITION — pull-in vs initial VCO detuning (simulated)");
    println!("{:>12} {:>8} {:>14}", "detune", "locked", "lock_periods");
    for row in lock_study(0.1, &[1e-3, 5e-3, 1e-2, 3e-2, 1e-1]) {
        println!(
            "{:12.0e} {:>8} {:>14.1}",
            row.detune_frac,
            row.locked,
            row.lock_periods
        );
    }
    println!("# the tri-state PFD's frequency detection pulls the loop in even from");
    println!("# detunings far beyond the small-signal capture range");
}

fn trunc() {
    header("EXT: TRUNCATION — convergence of the truncated HTM machinery");
    println!("# reference loop at ω_UG/ω₀ = 0.2, probed at ω = 0.8 rad/s");
    println!("{:>6} {:>14} {:>14}", "K", "lambda_err", "htm_err");
    for row in truncation_study(0.2, 0.8, &[2, 4, 8, 16, 32, 64, 128]) {
        println!("{:>6} {:14.3e} {:14.3e}", row.k, row.lambda_err, row.htm_err);
    }
    println!("# both errors fall like 1/K (the simple-pole alias tail); the exact");
    println!("# coth lattice sums sidestep the truncation entirely");
}

fn timing() {
    header("TIMING — §5 claim: HTM evaluation vs time-marching simulation");
    let r = timing_comparison(0.1, 12);
    println!(
        "{} frequency points: HTM {:.4} s, simulation {:.2} s  → speedup {:.0}×",
        r.points,
        r.htm_seconds,
        r.sim_seconds,
        r.speedup()
    );
}
