//! Figure-regeneration drivers (paper: Vanassche/Gielen/Sansen, DATE'03).
//!
//! | driver | paper artifact |
//! |---|---|
//! | [`fig5_open_loop_bode`] | Fig. 5 — typical `A(jω)` characteristic |
//! | [`fig6_closed_loop`] | Fig. 6 — `H₀,₀(jω)` curves + simulation marks |
//! | [`fig7_margin_sweep`] | Fig. 7 — `ω_UG,eff/ω_UG` and phase margin vs `ω_UG/ω₀` |
//! | [`fig2_band_transfers`] | Fig. 2 — signal transfer between frequency bands |
//! | [`fig4_pulse_width_error`] | Fig. 4 — pulse-train vs impulse-train PFD model |
//! | [`timing_comparison`] | §5 — "seconds vs minutes" HTM vs time-marching |

use htmpll_core::{analyze, PllDesign, PllModel};
use htmpll_lti::{bode_tf, stability_margins};
use htmpll_num::optim::{lin_grid, log_grid};
use htmpll_num::Complex;
use htmpll_sim::{measure_h00, measure_h00_multitone, MeasureOptions, SimConfig, SimParams};
use std::time::Instant;

/// One row of the Fig.-5 Bode table.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Row {
    /// Normalized frequency `ω/ω_UG`.
    pub w_over_wug: f64,
    /// `|A(jω)|` in dB.
    pub mag_db: f64,
    /// Unwrapped phase of `A(jω)` in degrees.
    pub phase_deg: f64,
}

/// Fig. 5: the reference loop's open-loop gain over `ω/ω_UG ∈ [1e−2, 1e2]`.
pub fn fig5_open_loop_bode(points: usize) -> Vec<Fig5Row> {
    let design = PllDesign::reference_design(0.1).expect("reference design");
    let a = design.open_loop_gain();
    let wug = design.omega_ug_nominal();
    bode_tf(&a, &log_grid(1e-2 * wug, 1e2 * wug, points))
        .into_iter()
        .map(|p| Fig5Row {
            w_over_wug: p.omega / wug,
            mag_db: p.mag_db,
            phase_deg: p.phase_deg,
        })
        .collect()
}

/// One point of a Fig.-6 curve.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Point {
    /// Normalized frequency `ω/ω_UG`.
    pub w_over_wug: f64,
    /// HTM prediction `|H₀,₀(jω)|` in dB (eq. 38, exact `λ`).
    pub htm_db: f64,
    /// Classical LTI prediction `|A/(1+A)|` in dB.
    pub lti_db: f64,
    /// Time-marching measurement in dB (the paper's "marks"), when run.
    pub sim_db: Option<f64>,
    /// Relative |error| between simulation and HTM prediction, when run.
    pub sim_vs_htm_err: Option<f64>,
}

/// One Fig.-6 curve (one `ω_UG/ω₀` ratio).
#[derive(Debug, Clone)]
pub struct Fig6Curve {
    /// The loop-speed ratio `ω_UG/ω₀`.
    pub ratio: f64,
    /// The sampled curve.
    pub points: Vec<Fig6Point>,
}

/// Fig. 6: closed-loop baseband transfer for several `ω_UG/ω₀`, with
/// optional time-domain verification marks at `sim_marks` frequencies
/// per curve.
pub fn fig6_closed_loop(ratios: &[f64], points: usize, sim_marks: usize) -> Vec<Fig6Curve> {
    ratios
        .iter()
        .map(|&ratio| {
            let design = PllDesign::reference_design(ratio).expect("reference design");
            let model = PllModel::builder(design.clone()).build().expect("model");
            let wug = design.omega_ug_nominal();
            let grid = log_grid(0.1 * wug, 10.0 * wug, points);
            // Single-tone measurements are degenerate at multiples of
            // ω₀/2: the image of the real tone (at −ω + kω₀) folds onto
            // the probe frequency and interferes with the direct
            // response. Keep the verification marks away from those
            // points.
            let w0 = design.omega_ref();
            let mark_grid: Vec<f64> = if sim_marks > 0 {
                log_grid(0.2 * wug, 5.0 * wug, sim_marks)
                    .into_iter()
                    .filter(|&w| {
                        let frac = (w / (0.5 * w0)).fract();
                        frac.min(1.0 - frac) > 0.08
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let params = SimParams::from_design(&design);
            let cfg = SimConfig::default();
            // Small amplitude keeps the finite-pulse-width products (the
            // Fig.-4 effect) below the curve in the deep-stopband region;
            // extra cycles buy back the SNR.
            let opts = MeasureOptions {
                amplitude_frac: 2e-4,
                settle_cycles: 16,
                measure_cycles: 32,
            };

            let mut pts: Vec<Fig6Point> = grid
                .iter()
                .map(|&w| Fig6Point {
                    w_over_wug: w / wug,
                    htm_db: 20.0 * model.h00(w).abs().log10(),
                    lti_db: 20.0 * model.h00_lti(w).abs().log10(),
                    sim_db: None,
                    sim_vs_htm_err: None,
                })
                .collect();
            // All in-band marks come from ONE multitone run; out-of-band
            // marks (ω > ω₀/2 would alias multitone images) run
            // individually.
            let (in_band, out_band): (Vec<f64>, Vec<f64>) = mark_grid
                .into_iter()
                .partition(|&w| w < 0.44 * w0);
            let mut measured = if in_band.is_empty() {
                Vec::new()
            } else {
                measure_h00_multitone(&params, &cfg, &in_band, &opts)
            };
            for &w in &out_band {
                measured.push(measure_h00(&params, &cfg, w, &opts));
            }
            for m in measured {
                let predict = model.h00(m.omega);
                let err = (m.h - predict).abs() / predict.abs();
                pts.push(Fig6Point {
                    w_over_wug: m.omega / wug,
                    htm_db: 20.0 * predict.abs().log10(),
                    lti_db: 20.0 * model.h00_lti(m.omega).abs().log10(),
                    sim_db: Some(20.0 * m.h.abs().log10()),
                    sim_vs_htm_err: Some(err),
                });
            }
            pts.sort_by(|a, b| a.w_over_wug.partial_cmp(&b.w_over_wug).unwrap());
            Fig6Curve { ratio, points: pts }
        })
        .collect()
}

/// One row of the Fig.-7 sweep.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Row {
    /// Loop-speed ratio `ω_UG/ω₀`.
    pub ratio: f64,
    /// Effective unity-gain frequency normalized to the LTI one.
    pub wug_eff_over_wug: f64,
    /// Phase margin of the effective gain `λ(jω)` (degrees).
    pub pm_eff_deg: f64,
    /// LTI phase margin (the horizontal line).
    pub pm_lti_deg: f64,
    /// True when `|λ|` never crossed 0 dB inside the band (at/beyond the
    /// sampling stability limit).
    pub beyond_limit: bool,
}

/// Fig. 7: sweep of `ω_UG,eff/ω_UG` and the effective phase margin over
/// `ω_UG/ω₀ ∈ [lo, hi]`.
pub fn fig7_margin_sweep(lo: f64, hi: f64, points: usize) -> Vec<Fig7Row> {
    lin_grid(lo, hi, points)
        .into_iter()
        .map(|ratio| {
            let model =
                PllModel::builder(PllDesign::reference_design(ratio).expect("design")).build().expect("model");
            let r = analyze(&model).expect("analysis");
            Fig7Row {
                ratio,
                wug_eff_over_wug: r.omega_ug_eff / r.omega_ug_lti,
                pm_eff_deg: r.phase_margin_eff_deg,
                pm_lti_deg: r.phase_margin_lti_deg,
                beyond_limit: r.beyond_sampling_limit,
            }
        })
        .collect()
}

/// The Fig.-2 band-transfer map: `|H_{n,m}(jω)|` of the closed loop.
#[derive(Debug, Clone)]
pub struct Fig2Map {
    /// Probe frequency (rad/s, inside the baseband).
    pub omega: f64,
    /// Band indices covered (−K..K).
    pub bands: Vec<i64>,
    /// `|H_{n,m}|` with rows = output band `n`, columns = input band `m`.
    pub magnitudes: Vec<Vec<f64>>,
}

/// Fig. 2: how signal content moves between frequency bands, shown as
/// the magnitude map of the closed-loop HTM at one in-band frequency.
pub fn fig2_band_transfers(ratio: f64, omega: f64, k: usize) -> Fig2Map {
    let model = PllModel::builder(PllDesign::reference_design(ratio).expect("design")).build().expect("model");
    let trunc = htmpll_htm::Truncation::new(k);
    let htm = model.closed_loop_htm(Complex::from_im(omega), trunc);
    let bands: Vec<i64> = trunc.harmonics().collect();
    let magnitudes = bands
        .iter()
        .map(|&n| bands.iter().map(|&m| htm.band(n, m).abs()).collect())
        .collect();
    Fig2Map {
        omega,
        bands,
        magnitudes,
    }
}

/// One row of the Fig.-4 pulse-width study.
#[derive(Debug, Clone, Copy)]
pub struct Fig4Row {
    /// Modulation amplitude (≈ peak pulse width) as a fraction of `T`.
    pub pulse_width_frac: f64,
    /// Relative error between the simulated response (finite-width
    /// pulses) and the HTM impulse-train prediction.
    pub rel_error: f64,
}

/// Fig. 4 (quantified): the impulse-train approximation error grows
/// with the width of the charge-pump pulses. Probes `H₀,₀` at `omega`
/// for increasing modulation amplitudes.
pub fn fig4_pulse_width_error(ratio: f64, omega: f64, amps: &[f64]) -> Vec<Fig4Row> {
    let design = PllDesign::reference_design(ratio).expect("design");
    let model = PllModel::builder(design.clone()).build().expect("model");
    let params = SimParams::from_design(&design);
    let cfg = SimConfig::default();
    amps.iter()
        .map(|&amp| {
            let opts = MeasureOptions {
                amplitude_frac: amp,
                ..MeasureOptions::default()
            };
            let m = measure_h00(&params, &cfg, omega, &opts);
            let predict = model.h00(m.omega);
            Fig4Row {
                pulse_width_frac: amp,
                rel_error: (m.h - predict).abs() / predict.abs(),
            }
        })
        .collect()
}

/// Result of the §5 timing comparison.
#[derive(Debug, Clone, Copy)]
pub struct TimingResult {
    /// Frequency points evaluated.
    pub points: usize,
    /// Wall-clock seconds for the HTM (eq. 38) curve.
    pub htm_seconds: f64,
    /// Wall-clock seconds for the time-marching curve.
    pub sim_seconds: f64,
}

impl TimingResult {
    /// Speedup factor of the HTM evaluation.
    pub fn speedup(&self) -> f64 {
        self.sim_seconds / self.htm_seconds
    }
}

/// §5 timing claim: evaluating one Fig.-6 curve through the closed-form
/// HTM expression vs. measuring it by time-marching simulation.
pub fn timing_comparison(ratio: f64, points: usize) -> TimingResult {
    let design = PllDesign::reference_design(ratio).expect("design");
    let model = PllModel::builder(design.clone()).build().expect("model");
    let wug = design.omega_ug_nominal();
    let grid = log_grid(0.2 * wug, 5.0 * wug, points);

    let t0 = Instant::now();
    let mut acc = 0.0f64;
    for &w in &grid {
        acc += model.h00(w).abs();
    }
    let htm_seconds = t0.elapsed().as_secs_f64().max(1e-9);
    std::hint::black_box(acc);

    let params = SimParams::from_design(&design);
    let cfg = SimConfig::default();
    let opts = MeasureOptions::default();
    let t1 = Instant::now();
    for &w in &grid {
        std::hint::black_box(measure_h00(&params, &cfg, w, &opts));
    }
    let sim_seconds = t1.elapsed().as_secs_f64();

    TimingResult {
        points,
        htm_seconds,
        sim_seconds,
    }
}

/// Convenience: the classical LTI margins of the reference loop (used
/// by the harness header).
pub fn reference_lti_margins() -> (f64, f64) {
    let design = PllDesign::reference_design(0.1).expect("design");
    let a = design.open_loop_gain();
    let m = stability_margins(|w| a.eval_jw(w), 1e-4, 1e3).expect("margins");
    (m.omega_ug, m.phase_margin_deg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_has_expected_shape() {
        let rows = fig5_open_loop_bode(41);
        assert_eq!(rows.len(), 41);
        // Magnitude decreases overall; 0 dB near ω/ω_UG = 1.
        let at_unity = rows
            .iter()
            .min_by(|a, b| {
                (a.w_over_wug - 1.0)
                    .abs()
                    .partial_cmp(&(b.w_over_wug - 1.0).abs())
                    .unwrap()
            })
            .unwrap();
        assert!(at_unity.mag_db.abs() < 0.5, "{}", at_unity.mag_db);
        // −40 dB/dec at the low end (double integrator).
        assert!(rows[0].mag_db > 60.0);
    }

    #[test]
    fn fig7_rows_cover_limit() {
        let rows = fig7_margin_sweep(0.05, 0.35, 7);
        assert!(rows.first().unwrap().pm_eff_deg > 50.0);
        assert!(rows.last().unwrap().beyond_limit);
        // Monotone degradation.
        for pair in rows.windows(2) {
            assert!(pair[1].pm_eff_deg <= pair[0].pm_eff_deg + 1e-9);
        }
    }

    #[test]
    fn fig2_map_is_rank_one_in_columns() {
        let map = fig2_band_transfers(0.2, 0.3, 2);
        assert_eq!(map.bands, vec![-2, -1, 0, 1, 2]);
        // Rank one: all columns identical (m-independence).
        for row in &map.magnitudes {
            for pair in row.windows(2) {
                assert!((pair[0] - pair[1]).abs() < 1e-10 * (1.0 + pair[0]));
            }
        }
    }

    #[test]
    fn fig6_curves_without_sim_marks() {
        let curves = fig6_closed_loop(&[0.1], 11, 0);
        assert_eq!(curves.len(), 1);
        assert_eq!(curves[0].points.len(), 11);
        assert!(curves[0].points.iter().all(|p| p.sim_db.is_none()));
    }
}

/// One row of the loop-shape ablation.
#[derive(Debug, Clone, Copy)]
pub struct ShapeRow {
    /// Zero/pole spread factor (zero at `ω_UG/spread`, pole at
    /// `spread·ω_UG`).
    pub spread: f64,
    /// LTI phase margin of the shape (degrees).
    pub pm_lti_deg: f64,
    /// Sampling stability limit `(ω_UG/ω₀)_max` from the HTM
    /// period-strip criterion.
    pub limit_ratio: f64,
}

/// Loop-shape ablation: how much LTI phase margin must a design carry
/// to survive a given loop speed? Sweeps the zero/pole spread of the
/// reference family and bisects each shape's sampling stability limit.
pub fn shape_ablation(spreads: &[f64]) -> Vec<ShapeRow> {
    use htmpll_htm::nyquist::strip_zero_count;
    spreads
        .iter()
        .map(|&spread| {
            let pm = spread.atan().to_degrees() - (1.0 / spread).atan().to_degrees();
            let stable_at = |ratio: f64| {
                let d = PllDesign::reference_design_shaped(ratio, spread).expect("design");
                let m = PllModel::builder(d.clone()).build().expect("model");
                strip_zero_count(|s| m.lambda().eval(s), d.omega_ref(), 1e-4, 4096) == 0
            };
            let (mut lo, mut hi) = (0.01, 0.6);
            assert!(stable_at(lo), "spread {spread}: low bracket unstable");
            if stable_at(hi) {
                // Extremely robust shape: report the bracket edge.
                return ShapeRow {
                    spread,
                    pm_lti_deg: pm,
                    limit_ratio: hi,
                };
            }
            while hi - lo > 1e-3 {
                let mid = 0.5 * (lo + hi);
                if stable_at(mid) {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            ShapeRow {
                spread,
                pm_lti_deg: pm,
                limit_ratio: 0.5 * (lo + hi),
            }
        })
        .collect()
}

/// One row of the PFD-architecture comparison.
#[derive(Debug, Clone, Copy)]
pub struct PfdRow {
    /// Loop-speed ratio `ω_UG/ω₀`.
    pub ratio: f64,
    /// Effective phase margin with the impulse-sampling charge pump.
    pub pm_impulse_deg: f64,
    /// Effective phase margin with the sample-and-hold PFD.
    pub pm_sample_hold_deg: f64,
}

/// "Extension to arbitrary PFDs": impulse-sampling charge pump vs
/// sample-and-hold detector — the hold's half-period delay costs margin
/// on top of the aliasing.
pub fn pfd_comparison(ratios: &[f64]) -> Vec<PfdRow> {
    use htmpll_core::SampleHoldModel;
    ratios
        .iter()
        .map(|&ratio| {
            let design = PllDesign::reference_design(ratio).expect("design");
            let imp = analyze(&PllModel::builder(design.clone()).build().expect("model")).expect("analysis");
            let sh = SampleHoldModel::new(design).expect("s&h model");
            let pm_sh = sh
                .margins()
                .map(|m| m.phase_margin_deg)
                .unwrap_or(0.0);
            PfdRow {
                ratio,
                pm_impulse_deg: imp.phase_margin_eff_deg,
                pm_sample_hold_deg: pm_sh,
            }
        })
        .collect()
}

/// One row of the leakage-spur study.
#[derive(Debug, Clone, Copy)]
pub struct SpurRow {
    /// Leakage current as a fraction of `I_cp`.
    pub leakage_frac: f64,
    /// Static phase offset measured in simulation, in fractions of `T`.
    pub static_offset_frac: f64,
    /// First-order prediction `I_leak/I_cp`.
    pub predicted_offset_frac: f64,
    /// Reference-spur level from the simulated phase PSD, dB relative
    /// to the spur at the smallest leakage in the sweep.
    pub spur_rel_db: f64,
    /// Analytic spur line power from `core::spurs`
    /// (`θ̃₁ = −A(jω₀)·θ_static`), same relative dB scale.
    pub spur_rel_db_predicted: f64,
    /// Absolute ratio simulated/predicted line power.
    pub sim_over_predicted: f64,
}

/// Charge-pump leakage study: static phase offset (vs the first-order
/// prediction `θ/T = I_leak/I_cp`) and the reference spur it creates,
/// which scales 20 dB/decade with leakage.
pub fn leakage_spur_study(ratio: f64, leakage_fracs: &[f64]) -> Vec<SpurRow> {
    use htmpll_core::LeakageSpurs;
    use htmpll_sim::PllSim;
    use htmpll_spectral::{band_power, periodogram, Window};
    let design = PllDesign::reference_design(ratio).expect("design");
    let model = PllModel::builder(design.clone()).build().expect("model");
    let mut spur_abs = Vec::new();
    let mut pred_abs = Vec::new();
    let mut rows = Vec::new();
    for &frac in leakage_fracs {
        let mut params = SimParams::from_design(&design);
        params.leakage = frac * params.i_cp;
        let t_ref = params.t_ref;
        let mut sim = PllSim::new(params.clone(), SimConfig::default());
        let _ = sim.run(500.0 * t_ref, &|_| 0.0);
        let trace = sim.run(1024.0 * t_ref, &|_| 0.0);
        let mean = trace.theta_vco.iter().sum::<f64>() / trace.theta_vco.len() as f64;
        let centered: Vec<f64> = trace.theta_vco.iter().map(|v| v - mean).collect();
        let psd = periodogram(&centered, 1.0 / trace.dt, Window::Hann).expect("psd");
        let f_ref = 1.0 / t_ref;
        let spur = band_power(&psd, 0.97 * f_ref, 1.03 * f_ref);
        let predicted = LeakageSpurs::new(&model, params.leakage).line_power(1);
        spur_abs.push(spur);
        pred_abs.push(predicted);
        rows.push(SpurRow {
            leakage_frac: frac,
            static_offset_frac: mean / t_ref,
            predicted_offset_frac: frac,
            spur_rel_db: 0.0,
            spur_rel_db_predicted: 0.0,
            sim_over_predicted: spur / predicted,
        });
    }
    let base = spur_abs[0];
    let pbase = pred_abs[0];
    for ((row, s), p) in rows.iter_mut().zip(&spur_abs).zip(&pred_abs) {
        row.spur_rel_db = 10.0 * (s / base).log10();
        row.spur_rel_db_predicted = 10.0 * (p / pbase).log10();
    }
    rows
}

/// One row of the closed-loop pole locus.
#[derive(Debug, Clone)]
pub struct PoleRow {
    /// Loop-speed ratio `ω_UG/ω₀`.
    pub ratio: f64,
    /// Strip poles `(Re, Im/(ω₀/2))`, least damped first.
    pub poles: Vec<(f64, f64)>,
}

/// Closed-loop pole locus of the time-varying loop vs `ω_UG/ω₀`:
/// Newton on `1 + λ(s) = 0` with exact derivatives. Shows the
/// subharmonic (Im = ω₀/2) pole pair being born from colliding real
/// poles and marching into the right half plane at the stability limit.
pub fn pole_locus(ratios: &[f64]) -> Vec<PoleRow> {
    use htmpll_core::dominant_poles;
    ratios
        .iter()
        .map(|&ratio| {
            let model =
                PllModel::builder(PllDesign::reference_design(ratio).expect("design")).build().expect("model");
            let w0 = model.design().omega_ref();
            let poles = dominant_poles(&model)
                .expect("poles")
                .into_iter()
                .map(|p| (p.re, p.im / (0.5 * w0)))
                .collect();
            PoleRow { ratio, poles }
        })
        .collect()
}

/// One row of the lock-acquisition study.
#[derive(Debug, Clone, Copy)]
pub struct LockRow {
    /// Fractional VCO detuning at t = 0.
    pub detune_frac: f64,
    /// Whether lock was declared within the horizon.
    pub locked: bool,
    /// Lock time in reference periods (NaN when not locked).
    pub lock_periods: f64,
}

/// Lock acquisition vs initial frequency detuning — the large-signal
/// behavior (PFD frequency detection) the small-signal HTM analysis
/// deliberately leaves out, covered by the behavioral simulator.
pub fn lock_study(ratio: f64, detunings: &[f64]) -> Vec<LockRow> {
    use htmpll_sim::{acquire_lock, LockOptions};
    let design = PllDesign::reference_design(ratio).expect("design");
    let params = SimParams::from_design(&design);
    let cfg = SimConfig::default();
    let opts = LockOptions::default();
    detunings
        .iter()
        .map(|&detune| {
            let r = acquire_lock(&params, &cfg, detune, &opts);
            LockRow {
                detune_frac: detune,
                locked: r.locked,
                lock_periods: r.lock_time * design.f_ref(),
            }
        })
        .collect()
}

/// One row of the truncation-convergence study.
#[derive(Debug, Clone, Copy)]
pub struct TruncRow {
    /// Truncation order `K` (matrix dimension `2K+1`).
    pub k: usize,
    /// Relative error of the truncated λ against the exact lattice sum.
    pub lambda_err: f64,
    /// Max-element relative error of the truncated closed-loop HTM
    /// against the exact-λ rank-one form.
    pub htm_err: f64,
}

/// Truncation ablation: how fast the truncated harmonic machinery
/// converges to the exact (lattice-sum) results — the data behind the
/// `Truncation::default()` choice.
pub fn truncation_study(ratio: f64, omega: f64, ks: &[usize]) -> Vec<TruncRow> {
    use htmpll_htm::Truncation;
    let model = PllModel::builder(PllDesign::reference_design(ratio).expect("design")).build().expect("model");
    let s = Complex::from_im(omega);
    let lam_exact = model.lambda().eval(s);
    let h_exact = model.h00(omega);
    ks.iter()
        .map(|&k| {
            let t = Truncation::new(k);
            let lam_k: Complex = model.v_column(s, t).iter().copied().sum();
            let htm = model.closed_loop_htm(s, t);
            TruncRow {
                k,
                lambda_err: (lam_k - lam_exact).abs() / lam_exact.abs(),
                htm_err: (htm.band(0, 0) - h_exact).abs() / h_exact.abs(),
            }
        })
        .collect()
}
