//! Experiment drivers shared by the `figures` binary and the Criterion
//! benches: one function per reproduced figure of the DATE-2003 paper.
//!
//! Each driver returns plain data (vectors of rows) so the binary can
//! print it, benches can time it, and tests can assert on its shape.

#![warn(missing_docs)]

pub mod experiments;

pub use experiments::*;
