//! Ablation: the rank-one Sherman–Morrison–Woodbury closed form
//! (paper eq. 31–34) vs dense LU inversion of `(I + G̃)` (eq. 28),
//! across truncation sizes — the scaling argument for exploiting the
//! sampling PFD's rank-one structure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htmpll_core::{PllDesign, PllModel};
use htmpll_htm::Truncation;
use htmpll_num::Complex;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model =
        PllModel::builder(PllDesign::reference_design(0.2).expect("design")).build().expect("model");
    let s = Complex::from_im(0.6);

    let mut group = c.benchmark_group("closed_loop_htm");
    for k in [4usize, 8, 16, 32] {
        let t = Truncation::new(k);
        group.bench_with_input(BenchmarkId::new("sherman_morrison", 2 * k + 1), &t, |b, &t| {
            b.iter(|| black_box(model.closed_loop_htm(black_box(s), t)))
        });
        group.bench_with_input(BenchmarkId::new("dense_lu", 2 * k + 1), &t, |b, &t| {
            b.iter(|| black_box(model.closed_loop_htm_dense(black_box(s), t).unwrap()))
        });
    }
    group.finish();
}

fn bench_eigen(c: &mut Criterion) {
    use htmpll_htm::{HtmBlock, LtiHtm, SamplerHtm, VcoHtm};

    let design = PllDesign::reference_design(0.2).expect("design");
    let w0 = design.omega_ref();
    let s = Complex::from_im(0.6);
    let pfd = SamplerHtm::new(w0);
    let lf = LtiHtm::new(design.loop_filter_tf(), w0);
    let vco = VcoHtm::time_invariant(design.v0(), w0);

    let mut group = c.benchmark_group("htm_eigenvalues");
    for k in [4usize, 8, 16] {
        let t = Truncation::new(k);
        let g = &(&vco.htm(s, t) * &lf.htm(s, t)) * &pfd.htm(s, t);
        group.bench_with_input(BenchmarkId::new("qr", 2 * k + 1), &g, |b, g| {
            b.iter(|| black_box(g.eigenvalues().unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench, bench_eigen);
criterion_main!(benches);
