//! Ablation: exact coth-lattice-sum evaluation of the effective
//! open-loop gain λ(s) vs brute-force truncated summation at several
//! truncation lengths (accuracy data lives in EXPERIMENTS.md; this
//! bench measures cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htmpll_core::{EffectiveGain, PllDesign};
use htmpll_num::Complex;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let design = PllDesign::reference_design(0.2).expect("design");
    let lam = EffectiveGain::new(&design.open_loop_gain(), design.omega_ref()).expect("lambda");
    let s = Complex::from_im(0.8);

    let mut group = c.benchmark_group("lambda");
    group.bench_function("exact_lattice_sum", |b| {
        b.iter(|| black_box(lam.eval(black_box(s))))
    });
    for terms in [10usize, 100, 1000] {
        group.bench_with_input(BenchmarkId::new("truncated", terms), &terms, |b, &m| {
            b.iter(|| black_box(lam.eval_truncated(black_box(s), m)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
