//! §5 timing claim as a Criterion benchmark: one closed-loop frequency
//! point via the HTM closed form (eq. 38) vs via time-marching
//! simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use htmpll_core::{PllDesign, PllModel};
use htmpll_sim::{measure_h00, MeasureOptions, SimConfig, SimParams};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let design = PllDesign::reference_design(0.1).expect("design");
    let model = PllModel::builder(design.clone()).build().expect("model");
    let params = SimParams::from_design(&design);
    let cfg = SimConfig::default();

    let mut group = c.benchmark_group("h00_one_point");
    group.bench_function("htm_closed_form", |b| {
        b.iter(|| black_box(model.h00(black_box(1.0))))
    });
    group.sample_size(10);
    group.bench_function("time_marching", |b| {
        b.iter(|| {
            black_box(measure_h00(
                &params,
                &cfg,
                black_box(1.0),
                &MeasureOptions {
                    settle_cycles: 6,
                    measure_cycles: 8,
                    ..MeasureOptions::default()
                },
            ))
        })
    });
    group.finish();
}

fn bench_engines(c: &mut Criterion) {
    use htmpll_sim::{PeriodMap, PllSim, PulseLaw};

    let design = PllDesign::reference_design(0.1).expect("design");
    let params = SimParams::from_design(&design);
    let t_ref = params.t_ref;

    let mut group = c.benchmark_group("simulate_500_periods");
    group.sample_size(20);
    group.bench_function("rk4_event_engine", |b| {
        b.iter(|| {
            let mut sim = PllSim::new(params.clone(), SimConfig::default());
            black_box(sim.run(500.0 * t_ref, &|t| 1e-4 * (0.5 * t).sin()))
        })
    });
    group.bench_function("period_map", |b| {
        b.iter(|| {
            let mut map = PeriodMap::new(&params, PulseLaw::Linear);
            black_box(map.run(500, |k| 1e-4 * (0.5 * k as f64 * t_ref).sin()))
        })
    });
    group.finish();
}

criterion_group!(benches, bench, bench_engines);
criterion_main!(benches);
