//! Ablation: radix-2 FFT vs Bluestein chirp-z (arbitrary length) vs the
//! naive DFT, plus Goertzel for single-bin extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use htmpll_num::Complex;
use htmpll_spectral::fft::{dft_naive, fft};
use htmpll_spectral::{fft_any, goertzel};
use std::hint::black_box;

fn signal(n: usize) -> Vec<Complex> {
    (0..n)
        .map(|i| Complex::new((0.13 * i as f64).sin(), (0.07 * i as f64).cos()))
        .collect()
}

fn bench(c: &mut Criterion) {
    let pow2 = signal(1024);
    let awkward = signal(1000);
    let real: Vec<f64> = (0..1024).map(|i| (0.21 * i as f64).sin()).collect();

    let mut group = c.benchmark_group("spectral");
    group.bench_function("radix2_1024", |b| {
        b.iter(|| {
            let mut x = pow2.clone();
            fft(&mut x).unwrap();
            black_box(x)
        })
    });
    group.bench_function("bluestein_1000", |b| {
        b.iter(|| black_box(fft_any(black_box(&awkward))))
    });
    group.bench_function("naive_dft_256", |b| {
        let small = signal(256);
        b.iter(|| black_box(dft_naive(black_box(&small))))
    });
    group.bench_function("goertzel_single_bin_1024", |b| {
        b.iter(|| black_box(goertzel(black_box(&real), 0.3)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
