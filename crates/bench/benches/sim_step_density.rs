//! Ablation: simulator cost vs integration step density (samples per
//! reference period × RK4 substeps). Accuracy at each density is
//! recorded in EXPERIMENTS.md; events are bisection-located so accuracy
//! is dominated by the filter-ODE step, not the edge timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htmpll_core::PllDesign;
use htmpll_sim::{PllSim, SimConfig, SimParams};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let design = PllDesign::reference_design(0.1).expect("design");
    let params = SimParams::from_design(&design);

    let mut group = c.benchmark_group("sim_100_periods");
    group.sample_size(10);
    for spr in [8usize, 32, 128] {
        let cfg = SimConfig {
            samples_per_ref: spr,
            ..SimConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("samples_per_ref", spr), &cfg, |b, cfg| {
            b.iter(|| {
                let mut sim = PllSim::new(params.clone(), *cfg);
                let t = 100.0 * sim.params().t_ref;
                black_box(sim.run(t, &|t| 1e-4 * (0.5 * t).sin()))
            })
        });
    }
    group.finish();
}

fn bench_multitone(c: &mut Criterion) {
    use htmpll_sim::{measure_h00, measure_h00_multitone, MeasureOptions};
    let design = PllDesign::reference_design(0.1).expect("design");
    let params = SimParams::from_design(&design);
    let cfg = SimConfig::default();
    let opts = MeasureOptions {
        settle_cycles: 6,
        measure_cycles: 8,
        ..MeasureOptions::default()
    };
    let omegas = [0.3, 0.8, 1.7, 3.1];

    let mut group = c.benchmark_group("h00_four_points");
    group.sample_size(10);
    group.bench_function("sequential_single_tones", |b| {
        b.iter(|| {
            for &w in &omegas {
                black_box(measure_h00(&params, &cfg, w, &opts));
            }
        })
    });
    group.bench_function("one_multitone_run", |b| {
        b.iter(|| black_box(measure_h00_multitone(&params, &cfg, &omegas, &opts)))
    });
    group.finish();
}

criterion_group!(benches, bench, bench_multitone);
criterion_main!(benches);
