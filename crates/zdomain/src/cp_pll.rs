//! Discrete-time charge-pump PLL model (Hein & Scott, 1988).
//!
//! The z-domain baseline the paper compares its HTM method against:
//! because the sampling PFD emits one (approximately impulsive)
//! correction per reference period, the loop seen **at the sampling
//! instants** is exactly a discrete-time system. Its pulse transfer
//! function is the impulse-invariant transform of the continuous plant
//! `P(s) = T·A(s)` (the impulse weight is the phase error itself; the
//! `1/T` of the paper's frequency-domain sampler moves into the
//! transform), and stability is a Jury test on `1 + G(z)`.
//!
//! This model predicts the **same stability boundary** as the HTM
//! effective-gain analysis — both describe the same linear sampled
//! system — but, unlike the HTM model, it says nothing about
//! inter-sample (continuous-time) behavior or band-to-band transfers.
//! The workspace uses that equivalence as a cross-check and the
//! difference as a teaching comparison.
//!
//! ```
//! use htmpll_core::PllDesign;
//! use htmpll_zdomain::cp_pll::CpPllZModel;
//!
//! let slow = CpPllZModel::from_design(&PllDesign::reference_design(0.05).unwrap()).unwrap();
//! assert!(slow.is_stable().unwrap());
//! let fast = CpPllZModel::from_design(&PllDesign::reference_design(0.45).unwrap()).unwrap();
//! assert!(!fast.is_stable().unwrap());
//! ```

use crate::jury::jury_stable;
use crate::ztf::{Zf, ZfError};
use htmpll_core::PllDesign;
use htmpll_lti::{Pfe, Tf};
use htmpll_num::{Complex, Poly};
use std::fmt;

/// Error produced by discrete-model construction.
#[derive(Debug, Clone, PartialEq)]
pub enum ZModelError {
    /// The continuous plant is not strictly proper.
    NotStrictlyProper,
    /// A pole multiplicity above 3 is not supported by the closed-form
    /// impulse-invariant tables.
    UnsupportedMultiplicity(usize),
    /// Transfer-function algebra failed.
    Algebra(String),
}

impl fmt::Display for ZModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZModelError::NotStrictlyProper => {
                write!(
                    f,
                    "impulse-invariant transform requires a strictly proper plant"
                )
            }
            ZModelError::UnsupportedMultiplicity(m) => {
                write!(f, "pole multiplicity {m} exceeds the supported order 3")
            }
            ZModelError::Algebra(s) => write!(f, "z-domain algebra failed: {s}"),
        }
    }
}

impl std::error::Error for ZModelError {}

/// Complex polynomial helpers (ascending coefficients) used to assemble
/// the transform before realification.
fn cmul(a: &[Complex], b: &[Complex]) -> Vec<Complex> {
    let mut out = vec![Complex::ZERO; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

fn cadd(a: &[Complex], b: &[Complex]) -> Vec<Complex> {
    let n = a.len().max(b.len());
    (0..n)
        .map(|k| {
            a.get(k).copied().unwrap_or(Complex::ZERO) + b.get(k).copied().unwrap_or(Complex::ZERO)
        })
        .collect()
}

fn realify(c: &[Complex], scale_hint: f64) -> Result<Poly, ZModelError> {
    let tol = 1e-7 * scale_hint.max(1e-300);
    for z in c {
        if z.im.abs() > tol {
            return Err(ZModelError::Algebra(format!(
                "residual imaginary coefficient {}",
                z.im
            )));
        }
    }
    Ok(Poly::new(c.iter().map(|z| z.re).collect()))
}

/// Impulse-invariant transform: given a strictly proper continuous plant
/// `P(s)` and sampling period `T`, returns
/// `G(z) = Σ_{k≥0} p(kT)·z^{−k}` expressed as a rational function of
/// `z`, via partial fractions and the closed-form transforms
/// `Z{q^k} = z/(z−q)`, `Z{k·q^k} = qz/(z−q)²`,
/// `Z{k²·q^k} = qz(z+q)/(z−q)³`.
///
/// # Errors
///
/// Rejects non-strictly-proper plants and pole multiplicities above 3.
pub fn impulse_invariant(p: &Tf, t_sample: f64) -> Result<Zf, ZModelError> {
    if !p.is_strictly_proper() {
        return Err(ZModelError::NotStrictlyProper);
    }
    let pfe = Pfe::expand(p, 1e-6).map_err(|e| ZModelError::Algebra(e.to_string()))?;
    if pfe.max_order() > 3 {
        return Err(ZModelError::UnsupportedMultiplicity(pfe.max_order()));
    }
    // Distinct pole images q_i = e^{p_i T} with their max multiplicities.
    let mut clusters: Vec<(Complex, usize)> = Vec::new();
    for term in &pfe.terms {
        let q = (term.pole.scale(t_sample)).exp();
        match clusters
            .iter_mut()
            .find(|(qq, _)| (*qq - q).abs() < 1e-12 * (1.0 + q.abs()))
        {
            Some((_, m)) => *m = (*m).max(term.order),
            None => clusters.push((q, term.order)),
        }
    }
    // Common denominator Π (z − q_i)^{m_i}.
    let mut den = vec![Complex::ONE];
    for &(q, m) in &clusters {
        for _ in 0..m {
            den = cmul(&den, &[-q, Complex::ONE]);
        }
    }
    // Numerator: each PFE term contributes term_num · den/(z−q)^order.
    let mut num = vec![Complex::ZERO];
    for term in &pfe.terms {
        let q = (term.pole.scale(t_sample)).exp();
        let c = term.coeff;
        // h(kT) = c·(kT)^{r−1}/(r−1)!·q^k.
        let term_num: Vec<Complex> = match term.order {
            1 => vec![Complex::ZERO, c],                // c·z
            2 => vec![Complex::ZERO, c * q * t_sample], // c·T·q·z
            3 => {
                let k = c * (t_sample * t_sample / 2.0);
                // k·q·z·(z + q) = k·q²·z + k·q·z²
                vec![Complex::ZERO, k * q * q, k * q]
            }
            m => return Err(ZModelError::UnsupportedMultiplicity(m)),
        };
        // Cofactor: den with (z−q)^order divided out.
        let mut cof = vec![Complex::ONE];
        for &(qq, mm) in &clusters {
            let reduce = if (qq - q).abs() < 1e-12 * (1.0 + q.abs()) {
                term.order
            } else {
                0
            };
            for _ in 0..(mm - reduce) {
                cof = cmul(&cof, &[-qq, Complex::ONE]);
            }
        }
        num = cadd(&num, &cmul(&term_num, &cof));
    }
    let scale = num.iter().map(|z| z.abs()).fold(0.0, f64::max);
    let num = realify(&num, scale)?;
    let den_scale = den.iter().map(|z| z.abs()).fold(0.0, f64::max);
    let den = realify(&den, den_scale)?;
    Zf::new(num, den).map_err(|e| ZModelError::Algebra(e.to_string()))
}

/// The Hein–Scott discrete-time model of a charge-pump PLL.
#[derive(Debug, Clone)]
pub struct CpPllZModel {
    g: Zf,
    t_sample: f64,
}

impl CpPllZModel {
    /// Builds the discrete model from a design: the sampled plant is
    /// `P(s) = T·A(s)` (error-impulse weight → phase).
    ///
    /// # Errors
    ///
    /// Propagates transform failures.
    pub fn from_design(d: &PllDesign) -> Result<CpPllZModel, ZModelError> {
        let t_sample = 1.0 / d.f_ref();
        let plant = d.open_loop_gain().scale(t_sample);
        let g = impulse_invariant(&plant, t_sample)?;
        Ok(CpPllZModel { g, t_sample })
    }

    /// The open-loop pulse transfer function `G(z)`.
    pub fn open_loop(&self) -> &Zf {
        &self.g
    }

    /// Sampling period `T`.
    pub fn t_sample(&self) -> f64 {
        self.t_sample
    }

    /// Jury stability verdict on the closed loop.
    ///
    /// # Errors
    ///
    /// Propagates a degenerate characteristic polynomial.
    pub fn is_stable(&self) -> Result<bool, crate::jury::JuryError> {
        jury_stable(&self.g.characteristic())
    }

    /// Closed-loop pulse transfer function `G/(1+G)`.
    ///
    /// # Errors
    ///
    /// Propagates degenerate-loop errors.
    pub fn closed_loop(&self) -> Result<Zf, ZfError> {
        self.g.feedback_unity()
    }

    /// Closed-loop frequency response at `ω` (rad/s), i.e. at
    /// `z = e^{jωT}` — the sample-instant analogue of the HTM `H₀,₀(jω)`.
    ///
    /// # Errors
    ///
    /// Propagates degenerate-loop errors.
    pub fn h_sampled(&self, omega: f64) -> Result<Complex, ZfError> {
        Ok(self.closed_loop()?.eval_jw(omega, self.t_sample))
    }
}

/// Finds the sampling stability limit of an arbitrary design family:
/// the largest parameter value in `[lo, hi]` for which the Jury test on
/// the family's discrete model still reports a stable loop, located by
/// bisection.
///
/// # Panics
///
/// Panics when `lo` is unstable or `hi` is stable (the bracket must
/// straddle the boundary), or when a design in the family fails to
/// build.
pub fn stability_limit<F: Fn(f64) -> PllDesign>(family: F, lo: f64, hi: f64, tol: f64) -> f64 {
    let stable_at = |r: f64| {
        CpPllZModel::from_design(&family(r))
            .expect("model builds")
            .is_stable()
            .expect("jury verdict")
    };
    assert!(stable_at(lo), "lower bracket must be stable");
    assert!(!stable_at(hi), "upper bracket must be unstable");
    let (mut lo, mut hi) = (lo, hi);
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if stable_at(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// [`stability_limit`] specialized to the paper's reference design
/// family, parameterized by `ω_UG/ω₀`.
pub fn reference_design_stability_limit(lo: f64, hi: f64, tol: f64) -> f64 {
    stability_limit(
        |r| PllDesign::reference_design(r).expect("valid ratio"),
        lo,
        hi,
        tol,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impulse_invariant_first_order() {
        // P = 1/(s+a) → p(kT) = e^{−akT} → G = z/(z − e^{−aT}).
        let a = 2.0;
        let t = 0.3;
        let p = Tf::from_coeffs(vec![1.0], vec![a, 1.0]).unwrap();
        let g = impulse_invariant(&p, t).unwrap();
        let q = (-a * t).exp();
        let z = Complex::new(1.3, 0.4);
        let expect = z / (z - q);
        assert!((g.eval(z) - expect).abs() < 1e-10);
    }

    #[test]
    fn impulse_invariant_double_integrator() {
        // P = 1/s² → p(kT) = kT → G = T·z/(z−1)².
        let p = Tf::from_coeffs(vec![1.0], vec![0.0, 0.0, 1.0]).unwrap();
        let t = 0.5;
        let g = impulse_invariant(&p, t).unwrap();
        let z = Complex::new(0.7, 0.2);
        let expect = t * z / (z - 1.0).sqr();
        assert!((g.eval(z) - expect).abs() < 1e-10);
    }

    #[test]
    fn impulse_invariant_matches_sampled_impulse_response() {
        // Full charge-pump plant: check G(z) power series against p(kT)
        // from the exact PFE time response.
        let d = PllDesign::reference_design(0.15).unwrap();
        let t = 1.0 / d.f_ref();
        let plant = d.open_loop_gain().scale(t);
        let g = impulse_invariant(&plant, t).unwrap();
        let series = g.impulse_response(12);
        let pfe = Pfe::expand(&plant, 1e-6).unwrap();
        for (k, v) in series.iter().enumerate() {
            let expect = htmpll_lti::response::eval_pfe_time(&pfe, k as f64 * t);
            assert!(
                (v - expect).abs() < 1e-9 * (1.0 + expect.abs()),
                "k={k}: {v} vs {expect}"
            );
        }
    }

    #[test]
    fn rejects_improper() {
        let p = Tf::from_coeffs(vec![1.0, 1.0], vec![2.0, 1.0]).unwrap();
        assert!(matches!(
            impulse_invariant(&p, 1.0),
            Err(ZModelError::NotStrictlyProper)
        ));
    }

    #[test]
    fn stability_limit_exists_and_is_sane() {
        let limit = reference_design_stability_limit(0.05, 0.6, 1e-3);
        // The fast-loop instability the paper warns about: the boundary
        // sits well below the Nyquist ratio 0.5 for this loop shape.
        assert!(limit > 0.1 && limit < 0.45, "limit {limit}");
        // Monotone: below stable, above unstable.
        let below =
            CpPllZModel::from_design(&PllDesign::reference_design(limit - 0.02).unwrap()).unwrap();
        assert!(below.is_stable().unwrap());
        let above =
            CpPllZModel::from_design(&PllDesign::reference_design(limit + 0.02).unwrap()).unwrap();
        assert!(!above.is_stable().unwrap());
    }

    #[test]
    fn generalized_limit_matches_htm_shape_ablation() {
        // Jury on the shaped family must agree with the HTM strip count
        // (same linear sampled system): spot-check spread = 2.
        let limit = stability_limit(
            |r| PllDesign::reference_design_shaped(r, 2.0).expect("design"),
            0.05,
            0.6,
            1e-3,
        );
        assert!(limit > 0.2 && limit < 0.35, "{limit}");
    }

    #[test]
    fn sampled_response_tracks_dc() {
        let m = CpPllZModel::from_design(&PllDesign::reference_design(0.1).unwrap()).unwrap();
        let h = m.h_sampled(1e-4).unwrap();
        assert!((h - Complex::ONE).abs() < 1e-2, "{h}");
    }

    #[test]
    fn error_display() {
        assert!(ZModelError::NotStrictlyProper
            .to_string()
            .contains("strictly proper"));
        assert!(ZModelError::UnsupportedMultiplicity(4)
            .to_string()
            .contains('4'));
        assert!(ZModelError::Algebra("x".into()).to_string().contains('x'));
    }
}
