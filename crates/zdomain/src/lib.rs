//! # htmpll-zdomain — discrete-time charge-pump PLL baselines
//!
//! The z-domain modeling tradition the paper positions itself against
//! (Gardner 1980; Hein & Scott 1988): treat the sampled PLL as a
//! discrete-time system at the reference instants.
//!
//! * [`ztf`] — rational functions of `z` with frequency responses,
//!   feedback closure and power-series impulse responses.
//! * [`jury`] — the Jury/Schur–Cohn unit-circle stability test.
//! * [`cp_pll`] — the impulse-invariant Hein–Scott model of the
//!   charge-pump loop, its closed-loop response at the sampling
//!   instants, and the numerically located sampling stability limit of
//!   the reference design family (Gardner's boundary for this loop
//!   shape).
//!
//! The discrete model and the HTM effective-gain analysis describe the
//! *same* linear sampled system, so their stability boundaries agree —
//! a cross-validation the integration tests exploit. What the z-domain
//! model cannot provide is the continuous-time, multi-band picture
//! (inter-sample behavior, aliasing transfers, spur shaping) that the
//! HTM formalism exposes; see `htmpll-core`.
//!
//! ```
//! use htmpll_core::PllDesign;
//! use htmpll_zdomain::CpPllZModel;
//!
//! let m = CpPllZModel::from_design(&PllDesign::reference_design(0.1).unwrap()).unwrap();
//! assert!(m.is_stable().unwrap());
//! ```

#![warn(missing_docs)]

pub mod cp_pll;
pub mod jury;
pub mod ztf;

pub use cp_pll::{
    impulse_invariant, reference_design_stability_limit, stability_limit, CpPllZModel, ZModelError,
};
pub use jury::{jury_stable, JuryError};
pub use ztf::{Zf, ZfError};
