//! Jury stability test for discrete-time characteristic polynomials.
//!
//! The z-domain analogue of Routh–Hurwitz: decides whether all roots of
//! a real polynomial lie strictly inside the unit circle without
//! computing them. Used to find the sampling stability limit of the
//! Hein–Scott charge-pump PLL model.
//!
//! ```
//! use htmpll_zdomain::jury::jury_stable;
//! use htmpll_num::Poly;
//!
//! // z² − 0.5z + 0.06 has roots 0.2 and 0.3: stable.
//! assert!(jury_stable(&Poly::new(vec![0.06, -0.5, 1.0])).unwrap());
//! // z − 2 is not.
//! assert!(!jury_stable(&Poly::new(vec![-2.0, 1.0])).unwrap());
//! ```

use htmpll_num::Poly;
use std::fmt;

/// Error returned by the Jury test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JuryError {
    /// The zero polynomial has no verdict.
    ZeroPolynomial,
}

impl fmt::Display for JuryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JuryError::ZeroPolynomial => write!(f, "zero polynomial has no stability verdict"),
        }
    }
}

impl std::error::Error for JuryError {}

/// Runs the Jury stability test: returns `Ok(true)` when all roots of
/// `p` are strictly inside the unit circle.
///
/// The implementation uses the recursive Schur–Cohn/Jury reduction: with
/// `p` monic-normalized, stability requires `|p(0)| < 1` (product of
/// roots) and stability of the reduced polynomial
/// `q(z) = (a_n·p(z) − a_0·p*(z))/z` where `p*` has reversed
/// coefficients, plus the necessary conditions `p(1) > 0` and
/// `(−1)^n·p(−1) > 0`.
///
/// # Errors
///
/// Rejects the zero polynomial.
pub fn jury_stable(p: &Poly) -> Result<bool, JuryError> {
    if p.is_zero() {
        return Err(JuryError::ZeroPolynomial);
    }
    let n = p.degree();
    if n == 0 {
        return Ok(true);
    }
    // Normalize so the leading coefficient is positive.
    let coeffs: Vec<f64> = if p.leading() < 0.0 {
        p.coeffs().iter().map(|c| -c).collect()
    } else {
        p.coeffs().to_vec()
    };
    // Necessary conditions.
    let at_one: f64 = coeffs.iter().sum();
    if at_one <= 0.0 {
        return Ok(false);
    }
    let at_minus_one: f64 = coeffs
        .iter()
        .enumerate()
        .map(|(k, &c)| if k % 2 == 0 { c } else { -c })
        .sum();
    let signed = if n.is_multiple_of(2) {
        at_minus_one
    } else {
        -at_minus_one
    };
    if signed <= 0.0 {
        return Ok(false);
    }
    // Schur–Cohn reduction.
    let mut a = coeffs;
    while a.len() > 2 {
        let m = a.len();
        let a0 = a[0];
        let an = a[m - 1];
        if a0.abs() >= an.abs() {
            return Ok(false);
        }
        let mut b = vec![0.0; m - 1];
        for (k, bk) in b.iter_mut().enumerate() {
            *bk = an * a[k + 1] - a0 * a[m - 2 - k];
        }
        a = b;
    }
    // Degree-1 remainder: a0 + a1 z stable iff |a0| < |a1|.
    Ok(a[0].abs() < a[1].abs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use htmpll_num::roots::find_roots;

    fn stable_by_roots(p: &Poly) -> bool {
        find_roots(p).unwrap().iter().all(|z| z.abs() < 1.0 - 1e-12)
    }

    #[test]
    fn first_order() {
        assert!(jury_stable(&Poly::new(vec![0.5, 1.0])).unwrap()); // z + 0.5
        assert!(!jury_stable(&Poly::new(vec![1.5, 1.0])).unwrap()); // z + 1.5
        assert!(!jury_stable(&Poly::new(vec![-1.0, 1.0])).unwrap()); // z − 1 marginal
    }

    #[test]
    fn second_order_triangle() {
        // z² + a1 z + a0 stable iff |a0| < 1, |a1| < 1 + a0.
        let cases = [
            (0.5, 0.3, true),
            (0.5, 1.6, false),
            (1.2, 0.1, false),
            (-0.5, 0.2, true),
            (0.99, 1.98, true),
            (0.99, 2.01, false),
        ];
        for (a0, a1, expect) in cases {
            let p = Poly::new(vec![a0, a1, 1.0]);
            assert_eq!(jury_stable(&p).unwrap(), expect, "a0={a0} a1={a1}");
            assert_eq!(jury_stable(&p).unwrap(), stable_by_roots(&p));
        }
    }

    #[test]
    fn agrees_with_root_finder_on_random_cubics_and_quartics() {
        let cases: Vec<Vec<f64>> = vec![
            vec![0.1, -0.2, 0.3, 1.0],
            vec![0.9, 0.9, 0.9, 1.0],
            vec![-0.7, 0.5, -0.1, 1.0],
            vec![0.2, 0.0, 0.0, 0.1, 1.0],
            vec![0.5, -1.2, 1.4, -0.8, 1.0],
            vec![1.1, 0.2, 0.1, 0.0, 1.0],
        ];
        for c in cases {
            let p = Poly::new(c.clone());
            assert_eq!(
                jury_stable(&p).unwrap(),
                stable_by_roots(&p),
                "coeffs {c:?}"
            );
        }
    }

    #[test]
    fn negative_leading_coefficient() {
        // −(z − 0.5): same roots, still stable.
        let p = Poly::new(vec![0.5, -1.0]);
        assert!(jury_stable(&p).unwrap());
    }

    #[test]
    fn constant_is_stable() {
        assert!(jury_stable(&Poly::constant(3.0)).unwrap());
    }

    #[test]
    fn zero_rejected() {
        assert_eq!(
            jury_stable(&Poly::zero()).unwrap_err(),
            JuryError::ZeroPolynomial
        );
    }
}
