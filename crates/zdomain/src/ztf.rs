//! Discrete-time (z-domain) transfer functions.
//!
//! The baseline comparator models (Hein & Scott 1988) describe the
//! sampled PLL as a pulse transfer function `G(z)`. [`Zf`] is a rational
//! function in `z` with real coefficients (ascending powers of `z`),
//! with evaluation on the unit circle for frequency responses.
//!
//! ```
//! use htmpll_zdomain::ztf::Zf;
//! use htmpll_num::{Complex, Poly};
//!
//! // One-pole smoother H(z) = 0.5·z/(z − 0.5).
//! let h = Zf::new(Poly::new(vec![0.0, 0.5]), Poly::new(vec![-0.5, 1.0])).unwrap();
//! assert!((h.dc_gain() - 1.0).abs() < 1e-12);
//! assert!(h.eval(Complex::from_re(2.0)).re - 2.0 / 3.0 < 1e-12);
//! ```

use htmpll_num::roots::find_roots;
use htmpll_num::{Complex, Poly};
use std::fmt;
use std::ops::{Add, Mul};

/// Error produced by z-domain constructions.
#[derive(Debug, Clone, PartialEq)]
pub enum ZfError {
    /// The denominator is identically zero.
    ZeroDenominator,
    /// Root extraction failed.
    Roots,
}

impl fmt::Display for ZfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZfError::ZeroDenominator => write!(f, "z-domain denominator is zero"),
            ZfError::Roots => write!(f, "z-domain root extraction failed"),
        }
    }
}

impl std::error::Error for ZfError {}

/// A rational function of `z` with real coefficients.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct Zf {
    num: Poly,
    den: Poly,
}

impl Zf {
    /// Creates `num(z)/den(z)`.
    ///
    /// # Errors
    ///
    /// Rejects a zero denominator.
    pub fn new(num: Poly, den: Poly) -> Result<Zf, ZfError> {
        if den.is_zero() {
            return Err(ZfError::ZeroDenominator);
        }
        Ok(Zf { num, den })
    }

    /// The constant (memoryless) gain.
    pub fn constant(k: f64) -> Zf {
        Zf {
            num: Poly::constant(k),
            den: Poly::constant(1.0),
        }
    }

    /// A pure delay `z^{-k}` expressed as `1/z^k`.
    pub fn delay(k: usize) -> Zf {
        Zf {
            num: Poly::constant(1.0),
            den: Poly::constant(1.0).mul_xk(k),
        }
    }

    /// Numerator polynomial (ascending powers of `z`).
    pub fn num(&self) -> &Poly {
        &self.num
    }

    /// Denominator polynomial.
    pub fn den(&self) -> &Poly {
        &self.den
    }

    /// Evaluates at a complex `z`.
    pub fn eval(&self, z: Complex) -> Complex {
        self.num.eval_complex(z) / self.den.eval_complex(z)
    }

    /// Frequency response at `z = e^{jωT}`.
    pub fn eval_jw(&self, omega: f64, t_sample: f64) -> Complex {
        self.eval(Complex::cis(omega * t_sample))
    }

    /// DC gain `H(1)` (infinite for poles at `z = 1`).
    pub fn dc_gain(&self) -> f64 {
        self.eval(Complex::ONE).re
    }

    /// All poles (denominator roots).
    ///
    /// # Errors
    ///
    /// Propagates root-finder failures.
    pub fn poles(&self) -> Result<Vec<Complex>, ZfError> {
        find_roots(&self.den).map_err(|_| ZfError::Roots)
    }

    /// True when every pole lies strictly inside the unit circle.
    ///
    /// # Errors
    ///
    /// Propagates root-finder failures.
    pub fn is_stable(&self) -> Result<bool, ZfError> {
        Ok(self.poles()?.iter().all(|p| p.abs() < 1.0 - 1e-12))
    }

    /// Unity-negative-feedback closed loop `G/(1+G)`.
    ///
    /// # Errors
    ///
    /// Rejects a degenerate loop (`1 + G ≡ 0`).
    pub fn feedback_unity(&self) -> Result<Zf, ZfError> {
        let den = &self.den + &self.num;
        Zf::new(self.num.clone(), den)
    }

    /// The characteristic polynomial `den + num` of the unity feedback
    /// loop — the input to the Jury stability test.
    pub fn characteristic(&self) -> Poly {
        &self.den + &self.num
    }

    /// Samples the unit-step response for `n` steps: the cumulative sum
    /// of the impulse response.
    pub fn step_response(&self, n: usize) -> Vec<f64> {
        let mut acc = 0.0;
        self.impulse_response(n)
            .into_iter()
            .map(|h| {
                acc += h;
                acc
            })
            .collect()
    }

    /// Samples the unit-impulse response for `n` steps by long division
    /// (power-series expansion in `z^{-1}`).
    pub fn impulse_response(&self, n: usize) -> Vec<f64> {
        // H(z) = N(z)/D(z); expand in z^{-1}: write both in descending
        // powers and divide.
        let nd = self.den.degree();
        let nn = self.num.degree().min(nd);
        // Coefficients in descending powers, denominator normalized.
        let lead = self.den.coeff(nd);
        let den_desc: Vec<f64> = (0..=nd).rev().map(|k| self.den.coeff(k) / lead).collect();
        let mut num_desc: Vec<f64> = (0..=nd)
            .rev()
            .map(|k| {
                if k <= nn {
                    self.num.coeff(k) / lead
                } else {
                    0.0
                }
            })
            .collect();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let h = num_desc[0];
            out.push(h);
            // Subtract h·den and shift.
            for (nd, dd) in num_desc.iter_mut().zip(&den_desc) {
                *nd -= h * dd;
            }
            num_desc.remove(0);
            num_desc.push(0.0);
        }
        out
    }
}

impl Mul for &Zf {
    type Output = Zf;
    fn mul(self, rhs: &Zf) -> Zf {
        Zf {
            num: &self.num * &rhs.num,
            den: &self.den * &rhs.den,
        }
    }
}

impl Add for &Zf {
    type Output = Zf;
    fn add(self, rhs: &Zf) -> Zf {
        Zf {
            num: &(&self.num * &rhs.den) + &(&rhs.num * &self.den),
            den: &self.den * &rhs.den,
        }
    }
}

impl fmt::Display for Zf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}) / ({})  [in z]", self.num, self.den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_eval() {
        let h = Zf::new(Poly::new(vec![1.0]), Poly::new(vec![-0.5, 1.0])).unwrap();
        // H(z) = 1/(z − 0.5) at z = 1: 2.
        assert!((h.dc_gain() - 2.0).abs() < 1e-13);
        assert!(Zf::new(Poly::constant(1.0), Poly::zero()).is_err());
    }

    #[test]
    fn stability_detection() {
        let stable = Zf::new(Poly::constant(1.0), Poly::new(vec![-0.5, 1.0])).unwrap();
        assert!(stable.is_stable().unwrap());
        let unstable = Zf::new(Poly::constant(1.0), Poly::new(vec![-1.5, 1.0])).unwrap();
        assert!(!unstable.is_stable().unwrap());
        let marginal = Zf::new(Poly::constant(1.0), Poly::new(vec![-1.0, 1.0])).unwrap();
        assert!(!marginal.is_stable().unwrap());
    }

    #[test]
    fn impulse_response_of_one_pole() {
        // H(z) = z/(z − a) → h[k] = a^k.
        let a = 0.7;
        let h = Zf::new(Poly::new(vec![0.0, 1.0]), Poly::new(vec![-a, 1.0])).unwrap();
        let resp = h.impulse_response(8);
        for (k, v) in resp.iter().enumerate() {
            assert!((v - a.powi(k as i32)).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn impulse_response_of_strictly_proper() {
        // H(z) = 1/(z − a) → h[0] = 0, h[k] = a^{k−1}.
        let a = 0.6;
        let h = Zf::new(Poly::constant(1.0), Poly::new(vec![-a, 1.0])).unwrap();
        let resp = h.impulse_response(6);
        assert_eq!(resp[0], 0.0);
        for (k, v) in resp.iter().enumerate().skip(1) {
            assert!((v - a.powi(k as i32 - 1)).abs() < 1e-12);
        }
    }

    #[test]
    fn step_response_settles_to_dc_gain() {
        // H(z) = 0.3·z/(z − 0.7): DC gain 1, first-order settling.
        let h = Zf::new(Poly::new(vec![0.0, 0.3]), Poly::new(vec![-0.7, 1.0])).unwrap();
        let y = h.step_response(60);
        assert!((y[0] - 0.3).abs() < 1e-12);
        assert!((y.last().unwrap() - 1.0).abs() < 1e-8);
        // Monotone first-order rise.
        for w in y.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn feedback_and_characteristic() {
        let g = Zf::new(Poly::constant(0.5), Poly::new(vec![-1.0, 1.0])).unwrap();
        let cl = g.feedback_unity().unwrap();
        // G/(1+G) = 0.5/(z − 0.5).
        assert!((cl.eval(Complex::from_re(2.0)).re - (0.5 / 1.5)).abs() < 1e-13);
        assert_eq!(g.characteristic().coeffs(), &[-0.5, 1.0]);
    }

    #[test]
    fn algebra() {
        let a = Zf::new(Poly::new(vec![1.0]), Poly::new(vec![-0.5, 1.0])).unwrap();
        let b = Zf::constant(2.0);
        let z = Complex::new(0.3, 0.4);
        assert!(((&a * &b).eval(z) - a.eval(z) * 2.0).abs() < 1e-13);
        assert!(((&a + &b).eval(z) - (a.eval(z) + 2.0)).abs() < 1e-13);
    }

    #[test]
    fn frequency_response_on_unit_circle() {
        let h = Zf::new(Poly::new(vec![0.0, 1.0]), Poly::new(vec![-0.5, 1.0])).unwrap();
        let t = 0.1;
        let v = h.eval_jw(std::f64::consts::PI / t, t); // Nyquist: z = −1
        assert!((v.re - (-1.0 / -1.5)).abs() < 1e-12);
    }

    #[test]
    fn delay_element() {
        let d = Zf::delay(2);
        let z = Complex::from_re(2.0);
        assert!((d.eval(z) - Complex::from_re(0.25)).abs() < 1e-14);
    }
}
