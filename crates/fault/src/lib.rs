//! # htmpll-fault — deterministic fault injection
//!
//! Seeded, named injection sites for chaos testing the analysis
//! pipeline. A **fault plan** names sites (`lu.pivot_fail`,
//! `sweep.nan`, `sweep.panic`, `sweep.slow`, `cache.evict`,
//! `serve.malformed`, …) and gives each a deterministic firing rule.
//! Production code queries [`fires`]/[`fire_arg`] at its injection
//! points; with no plan installed every query is a single relaxed
//! atomic load and a branch, following the `htmpll-obs` enablement
//! pattern, so instrumented builds pay nothing in normal operation.
//!
//! ## Determinism contract
//!
//! A firing decision is a pure function of
//! `(plan seed, site name, ambient scope, caller key)` — never of
//! wall-clock time, thread identity, or call order. Running the same
//! workload under the same plan with 1 or N worker threads therefore
//! injects the *same* faults at the *same* points, which is what lets
//! `plltool chaos` assert bitwise-identical non-faulted responses and
//! a thread-count-invariant report digest.
//!
//! ## Scopes
//!
//! Injection is **scope-gated**: [`fires`] returns `false` unless the
//! calling thread (or a parallel worker it spawned — `htmpll-par`
//! re-establishes the caller's scope inside its workers) is inside a
//! [`scope_guard`]. The serve worker sets the scope to a hash of the
//! request's canonical JSON, so a plan can select a deterministic
//! *fraction of requests* (`scope:F`) to fault while the rest of the
//! traffic must stay byte-identical — the invariant the chaos harness
//! checks. Code that never establishes a scope (ordinary unit tests,
//! library callers) is immune to an installed plan. The one escape
//! hatch is [`fires_global`] for sites that key themselves (the serve
//! dispatcher's per-line sequence number).
//!
//! ## Plan grammar (`HTMPLL_FAULT`)
//!
//! ```text
//! seed=42;lu.pivot_fail=prob:0.1,scope:0.4;sweep.slow=every:7@3;sweep.nan=every:9,scope:0.3
//! ```
//!
//! `;`-separated entries; `seed=N` sets the plan seed (default 0);
//! every other entry is `site=mode[,scope:F]` where mode is one of
//! `always`, `every:N` (a deterministic 1-in-N of keys), `prob:P`
//! (a deterministic fraction P of keys), or `key:K` (exactly the key
//! `K`). A mode may carry a `u64` payload after `@` (e.g. a slowdown
//! in milliseconds) surfaced through [`fire_arg`]. `scope:F` activates
//! the rule only inside the deterministic fraction `F` of scopes —
//! [`FaultPlan::scope_selected`] exposes the same selection so a chaos
//! harness can compute the expected faulted set up front.

#![warn(missing_docs)]

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Environment variable holding the fault plan spec.
pub const ENV: &str = "HTMPLL_FAULT";

/// How a rule decides whether a given key fires.
#[derive(Debug, Clone, PartialEq)]
enum Mode {
    /// Every key fires.
    Always,
    /// A deterministic 1-in-N selection of keys fires.
    Every(u64),
    /// A deterministic fraction P of keys fires.
    Prob(f64),
    /// Exactly the named key fires.
    Key(u64),
}

/// One site's firing rule.
#[derive(Debug, Clone, PartialEq)]
struct Rule {
    site: String,
    mode: Mode,
    /// Optional payload (`@arg`), e.g. a slowdown in milliseconds.
    arg: Option<u64>,
    /// Optional scope gate: the rule is active only in this fraction
    /// of scopes.
    scope_frac: Option<f64>,
}

/// A parsed, installable fault plan: a seed plus per-site rules.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<Rule>,
}

impl FaultPlan {
    /// Parses the `HTMPLL_FAULT` grammar (see the crate docs).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for entry in spec.split(';') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("fault plan: `{entry}` is not `key=value`"))?;
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                plan.seed = value
                    .parse::<u64>()
                    .map_err(|_| format!("fault plan: seed `{value}` is not a u64"))?;
                continue;
            }
            let mut rule = Rule {
                site: key.to_string(),
                mode: Mode::Always,
                arg: None,
                scope_frac: None,
            };
            for token in value.split(',') {
                let token = token.trim();
                if let Some(frac) = token.strip_prefix("scope:") {
                    let f = frac
                        .parse::<f64>()
                        .ok()
                        .filter(|f| (0.0..=1.0).contains(f))
                        .ok_or_else(|| {
                            format!("fault plan: `{key}` scope fraction `{frac}` not in [0,1]")
                        })?;
                    rule.scope_frac = Some(f);
                    continue;
                }
                let (mode, arg) = match token.split_once('@') {
                    Some((m, a)) => {
                        let arg = a
                            .parse::<u64>()
                            .map_err(|_| format!("fault plan: `{key}` arg `{a}` is not a u64"))?;
                        (m, Some(arg))
                    }
                    None => (token, None),
                };
                rule.mode = if mode == "always" {
                    Mode::Always
                } else if let Some(n) = mode.strip_prefix("every:") {
                    Mode::Every(n.parse::<u64>().ok().filter(|n| *n > 0).ok_or_else(|| {
                        format!("fault plan: `{key}` period `{n}` is not a positive u64")
                    })?)
                } else if let Some(p) = mode.strip_prefix("prob:") {
                    Mode::Prob(
                        p.parse::<f64>()
                            .ok()
                            .filter(|p| (0.0..=1.0).contains(p))
                            .ok_or_else(|| {
                                format!("fault plan: `{key}` probability `{p}` not in [0,1]")
                            })?,
                    )
                } else if let Some(k) = mode.strip_prefix("key:") {
                    Mode::Key(
                        k.parse::<u64>()
                            .map_err(|_| format!("fault plan: `{key}` key `{k}` is not a u64"))?,
                    )
                } else {
                    return Err(format!(
                        "fault plan: `{key}` mode `{mode}` is not always|every:N|prob:P|key:K"
                    ));
                };
                rule.arg = arg;
            }
            plan.rules.push(rule);
        }
        Ok(plan)
    }

    /// The plan seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when the plan has no rules (installing it disables
    /// injection).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Site names with at least one rule, in plan order.
    pub fn sites(&self) -> Vec<&str> {
        self.rules.iter().map(|r| r.site.as_str()).collect()
    }

    /// The deterministic firing decision for `(site, scope, key)`:
    /// `Some(arg)` when a rule fires (`arg` is the `@` payload, 0 when
    /// absent), `None` otherwise. Pure — never touches global state.
    pub fn decide(&self, site: &str, scope: Option<u64>, key: u64) -> Option<u64> {
        for rule in self.rules.iter().filter(|r| r.site == site) {
            if let Some(frac) = rule.scope_frac {
                match scope {
                    // A scope-gated rule cannot fire without a scope.
                    None => continue,
                    Some(sc) => {
                        if !self.scope_hash_selected(site, sc, frac) {
                            continue;
                        }
                    }
                }
            }
            let h = mix(
                mix(
                    mix(self.seed, fnv64(site.as_bytes())),
                    scope.unwrap_or(SCOPE_NONE),
                ),
                key,
            );
            let fired = match rule.mode {
                Mode::Always => true,
                Mode::Every(n) => h.is_multiple_of(n),
                Mode::Prob(p) => unit(h) < p,
                Mode::Key(k) => key == k,
            };
            if fired {
                return Some(rule.arg.unwrap_or(0));
            }
        }
        None
    }

    /// Whether any rule for `site` is active in `scope` — i.e. whether
    /// a response computed under that scope *could* be altered by this
    /// plan (it still depends on per-key mode decisions whether any
    /// particular key fires). This is the over-approximation a chaos
    /// harness uses to compute the expected faulted set.
    pub fn scope_selected(&self, site: &str, scope: u64) -> bool {
        self.rules.iter().filter(|r| r.site == site).any(|r| {
            r.scope_frac
                .is_none_or(|f| self.scope_hash_selected(site, scope, f))
        })
    }

    fn scope_hash_selected(&self, site: &str, scope: u64, frac: f64) -> bool {
        unit(mix(mix(self.seed, fnv64(site.as_bytes())), scope)) < frac
    }
}

/// Sentinel mixed in for "no ambient scope" so scoped and unscoped
/// decisions for the same key stay independent.
const SCOPE_NONE: u64 = 0x9e37_79b9_7f4a_7c15;

/// SplitMix64-style finalizer: avalanche `a ^ rotated b` into a
/// uniformly scrambled word. Deterministic and platform-independent.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.rotate_left(31) ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(b | 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a hash to [0, 1) with 53 uniform mantissa bits.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// FNV-1a over bytes — the canonical way to derive scopes and keys
/// from strings (request canonical JSON, matrix content) so every
/// layer hashes identically.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Global state: enablement flag, installed plan, fire counts, ambient
// scope. `ENABLED` is the only thing touched on the disabled fast path.
// ---------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<Arc<FaultPlan>>> = Mutex::new(None);
static FIRES: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());

thread_local! {
    static SCOPE: Cell<Option<u64>> = const { Cell::new(None) };
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// True when a non-empty plan is installed. One relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs a plan process-wide and resets the fire counts. An empty
/// plan disables injection (same as [`clear`]).
pub fn install(plan: FaultPlan) {
    let on = !plan.is_empty();
    *lock(&PLAN) = on.then(|| Arc::new(plan));
    lock(&FIRES).clear();
    ENABLED.store(on, Ordering::Relaxed);
}

/// Removes any installed plan and resets the fire counts.
pub fn clear() {
    ENABLED.store(false, Ordering::Relaxed);
    *lock(&PLAN) = None;
    lock(&FIRES).clear();
}

/// Installs the plan named by `HTMPLL_FAULT`, if set; clears otherwise.
/// A malformed spec clears the plan and reports the parse error.
pub fn init_from_env() -> Result<(), String> {
    match std::env::var(ENV) {
        Ok(spec) if !spec.trim().is_empty() => match FaultPlan::parse(&spec) {
            Ok(plan) => {
                install(plan);
                Ok(())
            }
            Err(e) => {
                clear();
                Err(e)
            }
        },
        _ => {
            clear();
            Ok(())
        }
    }
}

/// The currently installed plan, if any.
pub fn active_plan() -> Option<Arc<FaultPlan>> {
    if !enabled() {
        return None;
    }
    lock(&PLAN).clone()
}

/// RAII ambient-scope marker; restores the previous scope on drop.
#[must_use = "the scope is cleared when the guard drops"]
pub struct ScopeGuard {
    prev: Option<u64>,
}

/// Establishes `scope` as the calling thread's ambient fault scope for
/// the guard's lifetime (`None` clears it). Nesting restores outward.
pub fn scope_guard(scope: Option<u64>) -> ScopeGuard {
    ScopeGuard {
        prev: SCOPE.with(|c| c.replace(scope)),
    }
}

/// The calling thread's ambient fault scope, if any.
pub fn current_scope() -> Option<u64> {
    SCOPE.with(|c| c.get())
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPE.with(|c| c.set(self.prev));
    }
}

fn count_fire(site: &str) {
    *lock(&FIRES).entry(site.to_string()).or_insert(0) += 1;
}

/// Whether `site` fires for `key` under the installed plan and the
/// ambient scope. Without an ambient scope this is always `false`
/// (injection is scope-gated; see the crate docs), so code outside an
/// explicit fault scope is immune to an installed plan.
#[inline]
pub fn fires(site: &str, key: u64) -> bool {
    fire_arg(site, key).is_some()
}

/// Like [`fires`], but surfaces the rule's `@` payload (0 when the
/// rule has none).
#[inline]
pub fn fire_arg(site: &str, key: u64) -> Option<u64> {
    if !enabled() {
        return None;
    }
    let scope = current_scope()?;
    let arg = active_plan()?.decide(site, Some(scope), key)?;
    count_fire(site);
    Some(arg)
}

/// Scope-free firing decision for sites that key themselves (e.g. the
/// serve dispatcher keying on the per-line sequence number). Prefer
/// [`fires`] everywhere a request scope exists.
#[inline]
pub fn fires_global(site: &str, key: u64) -> bool {
    if !enabled() {
        return false;
    }
    let fired = active_plan()
        .and_then(|p| p.decide(site, None, key))
        .is_some();
    if fired {
        count_fire(site);
    }
    fired
}

/// Panics iff `site` fires for `key` — the `sweep.panic`-style sites.
/// The panic unwinds like any worker panic and must be contained by
/// the caller's `catch_unwind` layer; that containment is exactly what
/// the site exists to exercise.
#[inline]
pub fn panic_if(site: &str, key: u64) {
    if fires(site, key) {
        panic!("fault injection: site `{site}` fired for key {key}");
    }
}

/// Sleeps for the rule's `@` payload in milliseconds iff `site` fires
/// for `key` — the `sweep.slow`-style sites.
#[inline]
pub fn slow_if(site: &str, key: u64) {
    if let Some(ms) = fire_arg(site, key) {
        if ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
    }
}

/// Fire counts per site since the last [`install`]/[`clear`], sorted
/// by site name.
pub fn report() -> Vec<(String, u64)> {
    lock(&FIRES).iter().map(|(k, v)| (k.clone(), *v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex as TestMutex, MutexGuard as TestMutexGuard};

    /// Serializes tests that install process-global plans.
    fn plan_lock() -> TestMutexGuard<'static, ()> {
        static LOCK: TestMutex<()> = TestMutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn parses_the_full_grammar() {
        let plan = FaultPlan::parse(
            "seed=42; lu.pivot_fail=prob:0.5,scope:0.25; sweep.slow=every:4@25; \
             sweep.panic=key:7; serve.malformed=always",
        )
        .unwrap();
        assert_eq!(plan.seed(), 42);
        assert_eq!(
            plan.sites(),
            vec![
                "lu.pivot_fail",
                "sweep.slow",
                "sweep.panic",
                "serve.malformed"
            ]
        );
        assert_eq!(plan.decide("serve.malformed", None, 3), Some(0));
        assert_eq!(plan.decide("sweep.panic", None, 7), Some(0));
        assert_eq!(plan.decide("sweep.panic", None, 8), None);
        // The @arg payload rides on every firing decision.
        let fired: Vec<u64> = (0..64)
            .filter_map(|k| plan.decide("sweep.slow", None, k))
            .collect();
        assert!(!fired.is_empty());
        assert!(fired.iter().all(|&a| a == 25));
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(FaultPlan::parse("seed=abc").is_err());
        assert!(FaultPlan::parse("site").is_err());
        assert!(FaultPlan::parse("s=frob:1").is_err());
        assert!(FaultPlan::parse("s=every:0").is_err());
        assert!(FaultPlan::parse("s=prob:1.5").is_err());
        assert!(FaultPlan::parse("s=always,scope:2").is_err());
        assert!(FaultPlan::parse("s=every:4@x").is_err());
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::parse("seed=1;x=prob:0.5").unwrap();
        let b = FaultPlan::parse("seed=2;x=prob:0.5").unwrap();
        let da: Vec<bool> = (0..256)
            .map(|k| a.decide("x", Some(9), k).is_some())
            .collect();
        let db: Vec<bool> = (0..256)
            .map(|k| b.decide("x", Some(9), k).is_some())
            .collect();
        assert_eq!(
            da,
            (0..256)
                .map(|k| a.decide("x", Some(9), k).is_some())
                .collect::<Vec<_>>(),
            "same plan, same decisions"
        );
        assert_ne!(da, db, "different seeds must differ somewhere");
        let hits = da.iter().filter(|&&f| f).count();
        assert!(
            (64..192).contains(&hits),
            "prob:0.5 ≈ half the keys, got {hits}"
        );
    }

    #[test]
    fn every_n_selects_roughly_one_in_n() {
        let plan = FaultPlan::parse("seed=3;x=every:8").unwrap();
        let hits = (0..800u64)
            .filter(|&k| plan.decide("x", Some(1), k).is_some())
            .count();
        assert!(
            (50..150).contains(&hits),
            "every:8 over 800 keys ≈ 100, got {hits}"
        );
    }

    #[test]
    fn scope_gate_partitions_scopes_deterministically() {
        let plan = FaultPlan::parse("seed=11;x=always,scope:0.4").unwrap();
        let selected: Vec<u64> = (0..100).filter(|&s| plan.scope_selected("x", s)).collect();
        assert!(!selected.is_empty() && selected.len() < 100);
        for s in 0..100u64 {
            let fires = plan.decide("x", Some(s), 0).is_some();
            assert_eq!(
                fires,
                selected.contains(&s),
                "decide and scope_selected must agree for scope {s}"
            );
        }
        // Scope-gated rules never fire without an ambient scope.
        assert_eq!(plan.decide("x", None, 0), None);
    }

    #[test]
    fn global_state_gates_on_scope_and_counts_fires() {
        let _guard = plan_lock();
        install(FaultPlan::parse("seed=5;x=always").unwrap());
        assert!(enabled());
        assert!(!fires("x", 1), "no ambient scope → no injection");
        {
            let _scope = scope_guard(Some(77));
            assert_eq!(current_scope(), Some(77));
            assert!(fires("x", 1));
            assert_eq!(fire_arg("x", 2), Some(0));
            {
                let _inner = scope_guard(None);
                assert!(!fires("x", 1), "inner guard cleared the scope");
            }
            assert!(fires("x", 3), "outer scope restored");
        }
        assert_eq!(current_scope(), None);
        let report = report();
        assert_eq!(report, vec![("x".to_string(), 3)]);
        clear();
        assert!(!enabled());
        let _scope = scope_guard(Some(77));
        assert!(!fires("x", 1), "cleared plan never fires");
    }

    #[test]
    fn fires_global_ignores_scope() {
        let _guard = plan_lock();
        install(FaultPlan::parse("seed=5;m=key:4").unwrap());
        assert!(fires_global("m", 4));
        assert!(!fires_global("m", 5));
        clear();
    }

    #[test]
    fn panic_if_unwinds_only_when_fired() {
        let _guard = plan_lock();
        install(FaultPlan::parse("seed=5;p=key:9").unwrap());
        let _scope = scope_guard(Some(1));
        panic_if("p", 8); // must not panic
        let caught = std::panic::catch_unwind(|| panic_if("p", 9));
        assert!(caught.is_err());
        clear();
    }

    #[test]
    fn empty_and_env_style_specs() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" ; ; ").unwrap().is_empty());
        let _guard = plan_lock();
        install(FaultPlan::parse("").unwrap());
        assert!(!enabled(), "empty plan disables injection");
        clear();
    }

    #[test]
    fn fnv64_matches_reference_vectors() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
