//! Sample-and-hold PFD: the paper's "extension to arbitrary PFDs".
//!
//! The paper analyzes the impulse-sampling PFD (narrow charge-pump
//! pulses → Dirac train) and notes that "extension to arbitrary PFDs is
//! possible". This module carries that out for the next most common
//! detector: a **sample-and-hold** PFD whose output holds the sampled
//! phase error for a full reference period (e.g. a sampled phase
//! detector driving a continuous transconductor).
//!
//! The S&H PFD is the impulse sampler followed by the LTI zero-order
//! hold `h(s) = (1 − e^{−sT})/s`, so its HTM is
//! `diag(h(s + jnω₀)) · (ω₀/2π)·𝟙𝟙ᵀ` — **still rank one**, and the
//! whole Sherman–Morrison machinery goes through. Normalizing the hold
//! to unity DC gain (`h/T`) so the low-frequency loop gain matches the
//! impulse design, and using `e^{−(s+jnω₀)T} = e^{−sT}`:
//!
//! ```text
//! Ṽ_n(s) = (1 − e^{−sT})/T · A(u)/u,   u = s + jnω₀
//! λ_sh(s) = (1 − e^{−sT})/T · Σ_m A(u)/u
//! ```
//!
//! The inner sum is the harmonic lattice sum of the rational function
//! `A(s)/s`, so the **exact** `coth` evaluation applies unchanged.
//!
//! Engineering consequence (see the `pfd` experiment): the hold behaves
//! like `sinc(ωT/2)·e^{−jωT/2}` — it attenuates the aliases (good) but
//! adds a half-period delay (bad); for fast loops the delay wins and
//! the sample-and-hold detector loses *more* phase margin than the
//! impulse charge pump.
//!
//! ```
//! use htmpll_core::{hold::SampleHoldModel, PllDesign};
//!
//! let model = SampleHoldModel::new(PllDesign::reference_design(0.1).unwrap()).unwrap();
//! // In-band the S&H loop still tracks the reference.
//! assert!((model.h00(0.05).abs() - 1.0).abs() < 0.05);
//! ```

use crate::design::PllDesign;
use crate::error::CoreError;
use crate::lambda::EffectiveGain;
use htmpll_lti::{stability_margins, Margins, Tf};
use htmpll_num::Complex;

/// PLL small-signal model with a sample-and-hold PFD (unity-DC-gain
/// zero-order hold after the sampler).
#[derive(Debug, Clone)]
pub struct SampleHoldModel {
    design: PllDesign,
    /// Exact evaluator of `L(s) = Σ_m A(u)/u`.
    inner: EffectiveGain,
}

impl SampleHoldModel {
    /// Builds the model (time-invariant VCO).
    ///
    /// # Errors
    ///
    /// Propagates effective-gain construction failures. `A(s)/s` has a
    /// triple pole at DC for charge-pump loops — within the supported
    /// lattice order.
    pub fn new(design: PllDesign) -> Result<SampleHoldModel, CoreError> {
        let a_over_s = &design.open_loop_gain() * &Tf::integrator();
        let inner = EffectiveGain::new(&a_over_s, design.omega_ref())?;
        Ok(SampleHoldModel { design, inner })
    }

    /// The underlying design.
    pub fn design(&self) -> &PllDesign {
        &self.design
    }

    /// The reference period `T`.
    pub fn t_ref(&self) -> f64 {
        1.0 / self.design.f_ref()
    }

    /// The normalized hold factor `(1 − e^{−sT})/T` (note: *not*
    /// divided by `s`; that `1/s` lives inside the lattice sum).
    fn hold_factor(&self, s: Complex) -> Complex {
        let t = self.t_ref();
        (Complex::ONE - (-s.scale(t)).exp()).scale(1.0 / t)
    }

    /// Effective open-loop gain of the sample-and-hold loop,
    /// `λ_sh(s) = (1 − e^{−sT})/T · Σ_m A(s+jmω₀)/(s+jmω₀)`, exact.
    pub fn lambda(&self, s: Complex) -> Complex {
        self.hold_factor(s) * self.inner.eval(s)
    }

    /// `λ_sh(jω)`.
    pub fn lambda_jw(&self, omega: f64) -> Complex {
        self.lambda(Complex::from_im(omega))
    }

    /// Closed-loop baseband transfer
    /// `H₀,₀(jω) = Ṽ₀/(1 + λ_sh) = [(1−e^{−sT})/T]·[A(s)/s]/(1 + λ_sh(s))`.
    pub fn h00(&self, omega: f64) -> Complex {
        self.h_band(0, omega)
    }

    /// Closed-loop band transfer from any input band to output band `n`.
    pub fn h_band(&self, n: i64, omega: f64) -> Complex {
        let s = Complex::from_im(omega);
        let u = s + Complex::from_im(n as f64 * self.design.omega_ref());
        let v_n = self.hold_factor(s) * self.inner.open_loop().eval(u);
        v_n / (Complex::ONE + self.lambda(s))
    }

    /// Stability margins of `λ_sh(jω)` inside the first Nyquist band.
    ///
    /// # Errors
    ///
    /// Propagates margin-extraction failures (`|λ_sh|` may never cross
    /// 0 dB once the loop is beyond its stability limit).
    pub fn margins(&self) -> Result<Margins, CoreError> {
        let w0 = self.design.omega_ref();
        Ok(stability_margins(
            |w| self.lambda_jw(w),
            1e-5 * w0,
            0.499_999 * w0,
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::closed_loop::PllModel;

    fn sh(ratio: f64) -> SampleHoldModel {
        SampleHoldModel::new(PllDesign::reference_design(ratio).unwrap()).unwrap()
    }

    #[test]
    fn slow_loop_limit_matches_lti_and_impulse() {
        // ω ≪ ω₀: the hold is transparent and λ_sh → A.
        let m = sh(0.01);
        let imp = PllModel::builder(PllDesign::reference_design(0.01).unwrap())
            .build()
            .unwrap();
        for w in [0.05, 0.3, 1.0] {
            let a = imp.open_loop().eval_jw(w);
            let l = m.lambda_jw(w);
            assert!((l - a).abs() < 0.05 * a.abs(), "w={w}: {l} vs {a}");
            assert!((m.h00(w) - imp.h00(w)).abs() < 0.05 * imp.h00(w).abs());
        }
    }

    #[test]
    fn hold_adds_half_period_delay_phase() {
        // At moderate ω the hold factor ≈ sinc(ωT/2)·e^{−jωT/2}: compare
        // the phase of λ_sh against λ_impulse + the delay term.
        let ratio = 0.1;
        let m = sh(ratio);
        let imp = PllModel::builder(PllDesign::reference_design(ratio).unwrap())
            .build()
            .unwrap();
        let w = 1.0;
        let t = m.t_ref();
        let extra = m.lambda_jw(w).arg() - imp.lambda().eval_jw(w).arg();
        // The impulse-loop λ and the S&H λ differ mainly by the hold's
        // −ωT/2 phase (plus smaller alias reshaping).
        let expect = -w * t / 2.0;
        assert!(
            (extra - expect).abs() < 0.35 * expect.abs(),
            "extra phase {extra} vs hold delay {expect}"
        );
    }

    #[test]
    fn sample_hold_degrades_margin_more_than_impulse() {
        for ratio in [0.1, 0.2] {
            let m = sh(ratio);
            let imp = analyze(
                &PllModel::builder(PllDesign::reference_design(ratio).unwrap())
                    .build()
                    .unwrap(),
            )
            .unwrap();
            let sh_margin = m.margins().unwrap();
            assert!(
                sh_margin.phase_margin_deg < imp.phase_margin_eff_deg,
                "ratio {ratio}: S&H {} vs impulse {}",
                sh_margin.phase_margin_deg,
                imp.phase_margin_eff_deg
            );
        }
    }

    #[test]
    fn dc_tracking() {
        let m = sh(0.15);
        let h = m.h00(1e-4);
        assert!((h - Complex::ONE).abs() < 1e-2, "{h}");
    }

    #[test]
    fn band_transfer_consistent_with_h00() {
        let m = sh(0.15);
        assert_eq!(m.h00(0.4), m.h_band(0, 0.4));
        // Off-baseband transfers exist (aliasing) but are smaller in-band.
        assert!(m.h_band(1, 0.05).abs() < m.h00(0.05).abs());
    }

    #[test]
    fn lambda_is_band_periodic() {
        // Both factors are ω₀-periodic along the axis: the hold carries
        // e^{−sT} and the inner sum is invariant under a one-band shift.
        let m = sh(0.2);
        let w0 = m.design().omega_ref();
        let a = m.lambda(Complex::new(0.05, 0.3));
        let b = m.lambda(Complex::new(0.05, 0.3 + w0));
        assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
    }
}
