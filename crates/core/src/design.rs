//! PLL design description.
//!
//! [`PllDesign`] captures the architecture of Fig. 1/Fig. 3 of the paper:
//! a reference at `f_ref`, a sampling (tri-state, charge-pump) PFD, a
//! passive loop filter `Z_LF(s)`, and a VCO with gain `K_vco` behind an
//! optional `÷N` prescaler (the paper folds the prescaler into the VCO
//! model; so do we — the effective integrator gain is `K_vco/N`).
//!
//! The continuous-time LTI open-loop gain is (paper eq. 35)
//!
//! ```text
//! A(s) = (ω₀/2π) · I_cp · Z_LF(s) · (K_vco/N) / s
//! ```
//!
//! with the `ω₀/2π = 1/T` factor contributed by the sampling PFD model.
//!
//! ```
//! use htmpll_core::PllDesign;
//!
//! // The paper's "typical" Fig.-5 loop with ω_UG/ω₀ = 0.1.
//! let d = PllDesign::reference_design(0.1).unwrap();
//! let a = d.open_loop_gain();
//! // Unity gain lands at the normalized ω_UG = 1 rad/s.
//! assert!((a.eval_jw(d.omega_ug_nominal()).abs() - 1.0).abs() < 1e-9);
//! ```

use crate::error::{positive, CoreError};
use htmpll_lti::{ChargePumpFilter2, ChargePumpFilter3, Tf};
use std::fmt;

/// The loop-filter network of a design.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub enum LoopFilter {
    /// Second-order passive charge-pump filter (series RC ∥ shunt C).
    SecondOrder(ChargePumpFilter2),
    /// Third-order filter with an extra smoothing section.
    ThirdOrder(ChargePumpFilter3),
    /// Arbitrary transimpedance `Z(s)` in V/A (advanced use).
    Custom(Tf),
}

impl LoopFilter {
    /// The transimpedance `Z(s)` seen by the charge pump.
    pub fn impedance(&self) -> Tf {
        match self {
            LoopFilter::SecondOrder(f) => f.impedance(),
            LoopFilter::ThirdOrder(f) => f.transimpedance(),
            LoopFilter::Custom(tf) => tf.clone(),
        }
    }
}

/// A complete charge-pump PLL design.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct PllDesign {
    f_ref: f64,
    icp: f64,
    kvco: f64,
    divider: f64,
    filter: LoopFilter,
    /// Design-target unity-gain frequency (NaN when not a reference
    /// design).
    nominal_wug: f64,
}

impl PllDesign {
    /// Starts a builder.
    pub fn builder() -> PllDesignBuilder {
        PllDesignBuilder::default()
    }

    /// Reference frequency in Hz.
    pub fn f_ref(&self) -> f64 {
        self.f_ref
    }

    /// Reference angular frequency `ω₀ = 2π·f_ref` in rad/s — the
    /// fundamental of every HTM in the loop.
    pub fn omega_ref(&self) -> f64 {
        2.0 * std::f64::consts::PI * self.f_ref
    }

    /// Charge-pump current in A.
    pub fn icp(&self) -> f64 {
        self.icp
    }

    /// VCO gain in rad/s per V (before the divider).
    pub fn kvco(&self) -> f64 {
        self.kvco
    }

    /// Feedback divider ratio `N`.
    pub fn divider(&self) -> f64 {
        self.divider
    }

    /// The loop filter.
    pub fn filter(&self) -> &LoopFilter {
        &self.filter
    }

    /// Effective VCO integrator gain in the paper's time-unit phase
    /// convention: `v₀ = K_vco/(N·ω₀)` (prescaler folded in). With this
    /// `v₀`, the open-loop gain reduces to the textbook charge-pump form
    /// `A(s) = I_cp·K_vco·Z(s)/(2πNs)` — the sampler's `ω₀/2π` factor
    /// cancels the reference period hidden in `v₀`.
    pub fn v0(&self) -> f64 {
        self.kvco / (self.divider * self.omega_ref())
    }

    /// Loop-filter transfer function `H_LF(s) = I_cp·Z_LF(s)` (eq. 21).
    pub fn loop_filter_tf(&self) -> Tf {
        self.filter.impedance().scale(self.icp)
    }

    /// Continuous-time LTI open-loop gain
    /// `A(s) = (ω₀/2π)·H_LF(s)·v₀/s` (eq. 35).
    pub fn open_loop_gain(&self) -> Tf {
        let factor = self.omega_ref() / (2.0 * std::f64::consts::PI) * self.v0();
        &self.loop_filter_tf().scale(factor) * &Tf::integrator()
    }

    /// Nominal (design-target) unity-gain frequency of `A(jω)`. This is
    /// the value recorded at construction for reference designs; for
    /// builder-made designs it is measured from `A` lazily by the
    /// analysis layer instead, so here it is simply 1 for reference
    /// designs and unset (NaN) otherwise — use
    /// `analysis::analyze` for the measured value.
    pub fn omega_ug_nominal(&self) -> f64 {
        self.nominal_wug
    }

    /// Synthesizes a complete physical design for a target loop: given
    /// the reference, divider, VCO gain and desired crossover `ω_UG`
    /// (rad/s), places the stabilizing zero at `ω_UG/spread` and the
    /// high-frequency pole at `spread·ω_UG` (LTI phase margin
    /// `atan(spread) − atan(1/spread)`), sizes the filter around
    /// `c_total`, and solves the charge-pump current for
    /// `|A(jω_UG)| = 1` — the procedure a designer walks by hand.
    ///
    /// # Errors
    ///
    /// Rejects non-positive parameters or `spread <= 1`.
    pub fn synthesize(
        f_ref: f64,
        divider: f64,
        kvco: f64,
        omega_ug: f64,
        spread: f64,
        c_total: f64,
    ) -> Result<PllDesign, CoreError> {
        positive("f_ref", f_ref)?;
        positive("divider", divider)?;
        positive("kvco", kvco)?;
        positive("omega_ug", omega_ug)?;
        positive("c_total", c_total)?;
        if !(spread > 1.0 && spread.is_finite()) {
            return Err(CoreError::InvalidParameter {
                name: "spread",
                value: spread,
            });
        }
        let wz = omega_ug / spread;
        let wp = spread * omega_ug;
        let filter = ChargePumpFilter2::from_pole_zero(wz, wp, c_total)?;
        // |A(jω)| = Icp·Kvco·|Z(jω)|/(2πN·ω); solve Icp at ω_UG.
        let z_mag = filter.impedance().eval_jw(omega_ug).abs();
        let icp = 2.0 * std::f64::consts::PI * divider * omega_ug / (kvco * z_mag);
        Ok(PllDesign {
            f_ref,
            icp,
            kvco,
            divider,
            filter: LoopFilter::SecondOrder(filter),
            nominal_wug: omega_ug,
        })
    }

    /// The paper's "typical loop design" (Fig. 5): open-loop gain with
    /// three poles (two at DC) and one zero, normalized so that the LTI
    /// unity-gain frequency is `ω_UG = 1 rad/s`, with the zero at
    /// `ω_UG/4` and the high-frequency pole at `4·ω_UG` (≈ 62° LTI phase
    /// margin). `omega_ug_ratio = ω_UG/ω₀` sets how fast the loop is
    /// relative to the reference — the paper sweeps this knob in
    /// Figs. 6–7.
    ///
    /// # Errors
    ///
    /// Rejects non-positive or non-finite `omega_ug_ratio`.
    pub fn reference_design(omega_ug_ratio: f64) -> Result<PllDesign, CoreError> {
        PllDesign::reference_design_shaped(omega_ug_ratio, 4.0)
    }

    /// A generalized reference loop with adjustable zero/pole spread:
    /// the stabilizing zero sits at `ω_UG/spread` and the
    /// high-frequency pole at `spread·ω_UG`, so the LTI phase margin is
    /// `atan(spread) − atan(1/spread)` (e.g. spread 4 → 61.9°,
    /// spread 8 → 75.7°, spread 2 → 26.6°). Used by the loop-shape
    /// ablation: how the sampling stability limit moves with the design
    /// margin.
    ///
    /// # Errors
    ///
    /// Rejects non-positive/non-finite inputs or `spread <= 1`.
    pub fn reference_design_shaped(
        omega_ug_ratio: f64,
        spread: f64,
    ) -> Result<PllDesign, CoreError> {
        positive("omega_ug_ratio", omega_ug_ratio)?;
        positive("spread", spread)?;
        if spread <= 1.0 {
            return Err(CoreError::InvalidParameter {
                name: "spread",
                value: spread,
            });
        }
        let wug = 1.0; // normalized unity-gain frequency, rad/s
        let wz = wug / spread;
        let wp = spread * wug;
        let omega0 = wug / omega_ug_ratio;
        let f_ref = omega0 / (2.0 * std::f64::consts::PI);

        // Z(s) ≈ (1 + s/ωz)/(s·C_t·(1 + s/ωp)); choose C_t = 1 F
        // (normalized units) and solve the remaining gain with I_cp so
        // |A(jω_UG)| = 1.
        let c_total = 1.0;
        let filter = ChargePumpFilter2::from_pole_zero(wz, wp, c_total)?;
        let kvco = 1.0;
        let divider = 1.0;

        // |A(jw)| = K·√(1+(w/ωz)²) / (w²·√(1+(w/ωp)²)) with
        // K = Icp·Kvco/(2π·N·C_t) (independent of ω₀ — sweeping the
        // ratio changes only the reference frequency, not the loop).
        let mag_shape =
            (1.0 + (wug / wz).powi(2)).sqrt() / (wug * wug * (1.0 + (wug / wp).powi(2)).sqrt());
        let k_needed = 1.0 / mag_shape;
        let icp = k_needed * 2.0 * std::f64::consts::PI * divider * c_total / kvco;

        Ok(PllDesign {
            f_ref,
            icp,
            kvco,
            divider,
            filter: LoopFilter::SecondOrder(filter),
            nominal_wug: wug,
        })
    }
}

impl fmt::Display for PllDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PllDesign(f_ref={:.3e} Hz, Icp={:.3e} A, Kvco={:.3e} rad/s/V, N={})",
            self.f_ref, self.icp, self.kvco, self.divider
        )
    }
}

/// Builder for [`PllDesign`].
#[derive(Debug, Clone, Default)]
pub struct PllDesignBuilder {
    f_ref: Option<f64>,
    icp: Option<f64>,
    kvco: Option<f64>,
    divider: Option<f64>,
    filter: Option<LoopFilter>,
}

impl PllDesignBuilder {
    /// Sets the reference frequency in Hz.
    pub fn f_ref(mut self, hz: f64) -> Self {
        self.f_ref = Some(hz);
        self
    }

    /// Sets the charge-pump current in A.
    pub fn icp(mut self, amps: f64) -> Self {
        self.icp = Some(amps);
        self
    }

    /// Sets the VCO gain in rad/s per V.
    pub fn kvco(mut self, rad_per_s_per_v: f64) -> Self {
        self.kvco = Some(rad_per_s_per_v);
        self
    }

    /// Sets the feedback divider ratio (defaults to 1).
    pub fn divider(mut self, n: f64) -> Self {
        self.divider = Some(n);
        self
    }

    /// Sets the loop filter.
    pub fn filter(mut self, filter: LoopFilter) -> Self {
        self.filter = Some(filter);
        self
    }

    /// Builds the design.
    ///
    /// # Errors
    ///
    /// Rejects missing or non-positive parameters.
    pub fn build(self) -> Result<PllDesign, CoreError> {
        let f_ref = positive("f_ref", self.f_ref.unwrap_or(0.0))?;
        let icp = positive("icp", self.icp.unwrap_or(0.0))?;
        let kvco = positive("kvco", self.kvco.unwrap_or(0.0))?;
        let divider = positive("divider", self.divider.unwrap_or(1.0))?;
        let filter = self.filter.ok_or(CoreError::InvalidParameter {
            name: "filter",
            value: f64::NAN,
        })?;
        Ok(PllDesign {
            f_ref,
            icp,
            kvco,
            divider,
            filter,
            nominal_wug: f64::NAN,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htmpll_lti::stability_margins;

    #[test]
    fn reference_design_hits_unity_gain() {
        for ratio in [0.05, 0.1, 0.3, 0.5] {
            let d = PllDesign::reference_design(ratio).unwrap();
            let a = d.open_loop_gain();
            let m = stability_margins(|w| a.eval_jw(w), 1e-4, 1e3).unwrap();
            assert!(
                (m.omega_ug - 1.0).abs() < 1e-6,
                "ratio {ratio}: {}",
                m.omega_ug
            );
            // LTI phase margin of the ωz = ωug/4, ωp = 4ωug shape:
            // 180 − 180 + atan(4) − atan(1/4) ≈ 61.93°.
            let expect = 4.0f64.atan().to_degrees() - 0.25f64.atan().to_degrees();
            assert!((m.phase_margin_deg - expect).abs() < 1e-6);
            // ω₀ relates to the ratio.
            assert!((d.omega_ref() - 1.0 / ratio).abs() < 1e-9);
        }
    }

    #[test]
    fn open_loop_pole_structure_matches_fig5() {
        let d = PllDesign::reference_design(0.1).unwrap();
        let a = d.open_loop_gain();
        // 3 poles, two at DC; 1 zero.
        let poles = a.poles().unwrap();
        assert_eq!(poles.len(), 3);
        assert_eq!(poles.iter().filter(|p| p.abs() < 1e-9).count(), 2);
        let zeros = a.zeros().unwrap();
        assert_eq!(zeros.len(), 1);
        assert!((zeros[0].re + 0.25).abs() < 1e-9);
        assert!(a.is_strictly_proper());
        assert_eq!(a.relative_degree(), 2);
    }

    #[test]
    fn builder_roundtrip() {
        let filt = ChargePumpFilter2::new(1e3, 1e-9, 1e-10).unwrap();
        let d = PllDesign::builder()
            .f_ref(10e6)
            .icp(100e-6)
            .kvco(2.0 * std::f64::consts::PI * 50e6)
            .divider(64.0)
            .filter(LoopFilter::SecondOrder(filt))
            .build()
            .unwrap();
        assert_eq!(d.f_ref(), 10e6);
        assert_eq!(d.divider(), 64.0);
        assert!((d.omega_ref() - 2.0 * std::f64::consts::PI * 10e6).abs() < 1.0);
        assert!((d.v0() - d.kvco() / (64.0 * d.omega_ref())).abs() < 1e-9 * d.v0());
        // A(s) carries the 1/T factor.
        let a = d.open_loop_gain();
        assert!(a.is_strictly_proper());
    }

    #[test]
    fn builder_validation() {
        assert!(PllDesign::builder().build().is_err());
        let filt = ChargePumpFilter2::new(1e3, 1e-9, 1e-10).unwrap();
        let r = PllDesign::builder()
            .f_ref(-1.0)
            .icp(1e-6)
            .kvco(1e6)
            .filter(LoopFilter::SecondOrder(filt))
            .build();
        assert!(matches!(
            r,
            Err(CoreError::InvalidParameter { name: "f_ref", .. })
        ));
    }

    #[test]
    fn custom_filter_path() {
        let z = Tf::from_coeffs(vec![1.0, 2.0], vec![0.0, 1.0, 0.5]).unwrap();
        let d = PllDesign::builder()
            .f_ref(1e6)
            .icp(1e-4)
            .kvco(1e7)
            .filter(LoopFilter::Custom(z.clone()))
            .build()
            .unwrap();
        let hlf = d.loop_filter_tf();
        let s = htmpll_num::Complex::new(0.1, 2.0);
        assert!((hlf.eval(s) - z.eval(s) * 1e-4).abs() < 1e-12 * hlf.eval(s).abs());
    }

    #[test]
    fn display() {
        let d = PllDesign::reference_design(0.1).unwrap();
        assert!(format!("{d}").contains("f_ref"));
    }

    #[test]
    fn synthesize_hits_crossover_and_margin() {
        let wug = 2.0 * std::f64::consts::PI * 500e3;
        let d = PllDesign::synthesize(
            10e6,
            64.0,
            2.0 * std::f64::consts::PI * 100e6,
            wug,
            4.0,
            1e-9,
        )
        .unwrap();
        let a = d.open_loop_gain();
        let m = stability_margins(|w| a.eval_jw(w), 1e-3 * wug, 1e3 * wug).unwrap();
        assert!((m.omega_ug / wug - 1.0).abs() < 1e-6, "{}", m.omega_ug);
        let expect = 4.0f64.atan().to_degrees() - 0.25f64.atan().to_degrees();
        assert!((m.phase_margin_deg - expect).abs() < 1e-6);
        assert_eq!(d.omega_ug_nominal(), wug);
        // Sanity on component values.
        if let LoopFilter::SecondOrder(f) = d.filter() {
            assert!((f.c1() + f.c2() - 1e-9).abs() < 1e-21);
        } else {
            panic!("expected second-order filter");
        }
        assert!(PllDesign::synthesize(10e6, 64.0, 1e8, wug, 1.0, 1e-9).is_err());
        assert!(PllDesign::synthesize(-1.0, 64.0, 1e8, wug, 4.0, 1e-9).is_err());
    }

    #[test]
    fn shaped_design_controls_phase_margin() {
        for spread in [2.0, 4.0, 8.0] {
            let d = PllDesign::reference_design_shaped(0.1, spread).unwrap();
            let a = d.open_loop_gain();
            let m = stability_margins(|w| a.eval_jw(w), 1e-4, 1e3).unwrap();
            let expect = spread.atan().to_degrees() - (1.0 / spread).atan().to_degrees();
            assert!((m.omega_ug - 1.0).abs() < 1e-6, "spread {spread}");
            assert!(
                (m.phase_margin_deg - expect).abs() < 1e-6,
                "spread {spread}: {} vs {expect}",
                m.phase_margin_deg
            );
        }
        assert!(PllDesign::reference_design_shaped(0.1, 1.0).is_err());
        assert!(PllDesign::reference_design_shaped(0.1, -3.0).is_err());
    }
}
