//! Phase-noise propagation through the time-varying loop.
//!
//! The HTM view makes noise folding explicit: the sampling PFD aliases
//! noise from **every** band `ω + mω₀` into the baseband output. For the
//! rank-one loop:
//!
//! * Reference noise entering band `m` reaches baseband through
//!   `H_{0,m}(jω) = A(jω)/(1 + λ(jω))` — identical for every `m`, so the
//!   folded reference noise is `|H₀₀|²·Σ_m S_ref(ω + mω₀)`.
//! * VCO self-noise passes through the *error* operator
//!   `(I + G̃)⁻¹ = I − Ṽ𝟙ᵀ/(1+λ)`: baseband-to-baseband gain
//!   `1 − A(jω)/(1+λ)` plus folded terms `−A(jω)/(1+λ)` from `m ≠ 0`.
//!
//! PSDs are one-sided, in rad²/Hz, given as functions of the *absolute*
//! offset frequency in rad/s.
//!
//! ```
//! use htmpll_core::{NoiseModel, PllDesign, PllModel};
//!
//! let m = PllModel::builder(PllDesign::reference_design(0.1).unwrap()).build().unwrap();
//! let noise = NoiseModel::new(&m, 8);
//! // Flat reference noise: in-band output follows it (|H00|² ≈ 1).
//! let s_out = noise.output_psd(0.05, &|_| 1e-12, &|_| 0.0);
//! assert!(s_out > 0.5e-12);
//! ```

use crate::closed_loop::PllModel;
use htmpll_num::quad::integrate_log;
use htmpll_num::Complex;

/// Noise propagation through a PLL model, with aliasing folding taken to
/// `±fold_bands` reference harmonics.
#[derive(Debug, Clone, Copy)]
pub struct NoiseModel<'a> {
    model: &'a PllModel,
    fold_bands: usize,
}

impl<'a> NoiseModel<'a> {
    /// Creates the noise model. `fold_bands` controls how many aliases
    /// are summed on each side (8 captures >99 % of folded white noise
    /// for the loop shapes in this workspace).
    pub fn new(model: &'a PllModel, fold_bands: usize) -> Self {
        NoiseModel { model, fold_bands }
    }

    /// Baseband transfer from any reference band to the output,
    /// `A(jω)/(1 + λ(jω))`.
    pub fn reference_gain(&self, omega: f64) -> Complex {
        self.model.h00(omega)
    }

    /// Baseband-to-baseband VCO noise gain `1 − A(jω)/(1 + λ(jω))`.
    pub fn vco_gain_baseband(&self, omega: f64) -> Complex {
        Complex::ONE - self.model.h00(omega)
    }

    /// Folded VCO noise gain from band `m ≠ 0`: `−A(jω)/(1 + λ(jω))`.
    pub fn vco_gain_folded(&self, omega: f64) -> Complex {
        -self.model.h00(omega)
    }

    /// Output phase PSD at offset `omega` (rad/s) given one-sided input
    /// PSDs for the reference and the free-running VCO.
    ///
    /// Folding: both sources are summed over bands `|m| ≤ fold_bands`
    /// with the band-`m` input evaluated at `|ω + mω₀|`.
    pub fn output_psd(
        &self,
        omega: f64,
        ref_psd: &dyn Fn(f64) -> f64,
        vco_psd: &dyn Fn(f64) -> f64,
    ) -> f64 {
        let w0 = self.model.design().omega_ref();
        let h00_sq = self.reference_gain(omega).norm_sqr();
        let vco_bb_sq = self.vco_gain_baseband(omega).norm_sqr();
        let vco_fold_sq = self.vco_gain_folded(omega).norm_sqr();

        let mut acc = h00_sq * ref_psd(omega.abs()) + vco_bb_sq * vco_psd(omega.abs());
        for m in 1..=self.fold_bands as i64 {
            for sign in [-1.0, 1.0] {
                let shifted = (omega + sign * m as f64 * w0).abs();
                acc += h00_sq * ref_psd(shifted);
                acc += vco_fold_sq * vco_psd(shifted);
            }
        }
        acc
    }

    /// LTI-approximation output PSD (no folding, `λ ≈ A`): what a
    /// textbook analysis would predict.
    pub fn output_psd_lti(
        &self,
        omega: f64,
        ref_psd: &dyn Fn(f64) -> f64,
        vco_psd: &dyn Fn(f64) -> f64,
    ) -> f64 {
        let h = self.model.h00_lti(omega);
        let e = Complex::ONE - h;
        h.norm_sqr() * ref_psd(omega.abs()) + e.norm_sqr() * vco_psd(omega.abs())
    }

    /// Integrated phase noise (rad², one-sided) over `[w_lo, w_hi]`
    /// rad/s; take `sqrt` for RMS phase jitter in radians.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < w_lo < w_hi`.
    pub fn integrated_phase_noise(
        &self,
        w_lo: f64,
        w_hi: f64,
        ref_psd: &dyn Fn(f64) -> f64,
        vco_psd: &dyn Fn(f64) -> f64,
    ) -> f64 {
        // PSDs are per Hz; integrate over Hz = rad/s / 2π.
        integrate_log(
            |w| self.output_psd(w, ref_psd, vco_psd) / (2.0 * std::f64::consts::PI),
            w_lo,
            w_hi,
            1e-12,
        )
    }
}

/// Standard one-sided phase-noise PSD shapes (rad²/Hz as a function of
/// offset frequency in rad/s), composable into source models for
/// [`NoiseModel`].
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub enum NoiseShape {
    /// Flat noise floor.
    White {
        /// PSD level (rad²/Hz).
        level: f64,
    },
    /// Power law `level·(w_ref/ω)^exponent` — exponent 2 is white FM
    /// (free-running oscillator), 3 is flicker FM.
    PowerLaw {
        /// PSD at the reference offset (rad²/Hz).
        level_at_ref: f64,
        /// Reference offset (rad/s).
        w_ref: f64,
        /// Slope exponent (−10·exponent dB/decade).
        exponent: i32,
    },
    /// Leeson oscillator model:
    /// `floor·(1 + flicker_corner/ω)·(1 + (half_bw/ω)²)` — a thermal
    /// floor with a 1/f corner, shaped by the resonator half-bandwidth.
    Leeson {
        /// Far-out thermal floor (rad²/Hz).
        floor: f64,
        /// Flicker corner (rad/s).
        flicker_corner: f64,
        /// Resonator half-bandwidth `ω₀/(2Q)` (rad/s).
        half_bw: f64,
    },
    /// Sum of component shapes.
    Sum(Vec<NoiseShape>),
}

impl NoiseShape {
    /// Evaluates the one-sided PSD at offset `omega` (rad/s). A small
    /// floor on `|omega|` guards the 1/ω^k shapes against the DC bin.
    pub fn psd(&self, omega: f64) -> f64 {
        let w = omega.abs().max(1e-12);
        match self {
            NoiseShape::White { level } => *level,
            NoiseShape::PowerLaw {
                level_at_ref,
                w_ref,
                exponent,
            } => level_at_ref * (w_ref / w).powi(*exponent),
            NoiseShape::Leeson {
                floor,
                flicker_corner,
                half_bw,
            } => floor * (1.0 + flicker_corner / w) * (1.0 + (half_bw / w).powi(2)),
            NoiseShape::Sum(parts) => parts.iter().map(|p| p.psd(w)).sum(),
        }
    }
}

#[cfg(test)]
mod shape_tests {
    use super::*;
    use crate::closed_loop::PllModel;
    use crate::design::PllDesign;

    #[test]
    fn white_is_flat() {
        let s = NoiseShape::White { level: 3.0 };
        assert_eq!(s.psd(0.1), 3.0);
        assert_eq!(s.psd(100.0), 3.0);
    }

    #[test]
    fn power_law_slope() {
        let s = NoiseShape::PowerLaw {
            level_at_ref: 1e-10,
            w_ref: 1.0,
            exponent: 2,
        };
        assert!((s.psd(1.0) - 1e-10).abs() < 1e-22);
        // −20 dB/decade in PSD.
        assert!((s.psd(10.0) / s.psd(1.0) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn leeson_asymptotes() {
        let s = NoiseShape::Leeson {
            floor: 1e-12,
            flicker_corner: 0.01,
            half_bw: 1.0,
        };
        // Far out: the floor.
        assert!((s.psd(1e4) / 1e-12 - 1.0).abs() < 1e-3);
        // Inside the resonator bandwidth: ∝ 1/ω² above the flicker corner.
        let ratio = s.psd(0.05) / s.psd(0.1);
        assert!((ratio - 4.0).abs() < 0.5, "{ratio}");
    }

    #[test]
    fn sum_composes() {
        let s = NoiseShape::Sum(vec![
            NoiseShape::White { level: 1.0 },
            NoiseShape::White { level: 2.0 },
        ]);
        assert_eq!(s.psd(5.0), 3.0);
    }

    #[test]
    fn shapes_drive_noise_model() {
        let model = PllModel::builder(PllDesign::reference_design(0.1).unwrap())
            .build()
            .unwrap();
        let noise = NoiseModel::new(&model, 4);
        let ref_shape = NoiseShape::White { level: 1e-12 };
        let vco_shape = NoiseShape::PowerLaw {
            level_at_ref: 1e-12,
            w_ref: 1.0,
            exponent: 2,
        };
        let s = noise.output_psd(0.2, &|w| ref_shape.psd(w), &|w| vco_shape.psd(w));
        assert!(s.is_finite() && s > 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::PllDesign;

    fn noise_fixture(ratio: f64) -> PllModel {
        PllModel::builder(PllDesign::reference_design(ratio).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn in_band_tracks_reference_noise() {
        let m = noise_fixture(0.1);
        let n = NoiseModel::new(&m, 8);
        // Well inside the loop bandwidth, reference noise passes ≈ 1:1
        // (H00 ≈ 1) and VCO noise is suppressed.
        let w = 0.01;
        let ref_only = n.output_psd(w, &|_| 1.0, &|_| 0.0);
        assert!(ref_only > 0.9, "{ref_only}");
        let vco_only = n.output_psd(w, &|_| 0.0, &|_| 1.0);
        // The baseband VCO term is tiny; folded terms contribute
        // |H00|²·(2·fold_bands)·S which is NOT small for flat VCO noise —
        // use a rolled-off VCO PSD shape for the suppression check.
        let vco_shaped = n.output_psd(w, &|_| 0.0, &|f| 1.0 / (1.0 + f * f));
        assert!(vco_shaped < 0.2, "{vco_shaped}");
        let _ = vco_only;
    }

    #[test]
    fn out_of_band_vco_noise_passes() {
        let m = noise_fixture(0.1);
        let n = NoiseModel::new(&m, 8);
        // Far above the loop bandwidth (but inside the first band):
        // H00 → 0, so VCO noise passes and reference noise is rejected.
        let w = 4.5;
        let vco_only = n.output_psd(w, &|_| 0.0, &|f| {
            if (f - w).abs() < 1e-6 {
                1.0
            } else {
                0.0
            }
        });
        assert!((vco_only - n.vco_gain_baseband(w).norm_sqr()).abs() < 1e-9);
        assert!(vco_only > 0.5, "{vco_only}");
    }

    #[test]
    fn folding_adds_reference_noise_power() {
        let m = noise_fixture(0.3);
        let n0 = NoiseModel::new(&m, 0);
        let n8 = NoiseModel::new(&m, 8);
        let w = 0.05;
        let flat = |_: f64| 1.0;
        let without = n0.output_psd(w, &flat, &|_| 0.0);
        let with = n8.output_psd(w, &flat, &|_| 0.0);
        // Folding multiplies flat reference noise by (1 + 2·fold_bands).
        assert!((with / without - 17.0).abs() < 1e-9, "{}", with / without);
    }

    #[test]
    fn lti_underestimates_folded_noise() {
        let m = noise_fixture(0.3);
        let n = NoiseModel::new(&m, 8);
        let w = 0.05;
        let flat = |_: f64| 1e-12;
        let tv = n.output_psd(w, &flat, &|_| 0.0);
        let lti = n.output_psd_lti(w, &flat, &|_| 0.0);
        assert!(tv > 5.0 * lti, "tv {tv} vs lti {lti}");
    }

    #[test]
    fn integrated_noise_positive_and_finite() {
        let m = noise_fixture(0.2);
        let n = NoiseModel::new(&m, 4);
        let j = n.integrated_phase_noise(1e-3, 2.0, &|_| 1e-9, &|f| 1e-9 / (f * f + 1e-6));
        assert!(j.is_finite() && j > 0.0, "{j}");
    }
}
