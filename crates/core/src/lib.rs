//! # htmpll-core — time-varying frequency-domain PLL analysis
//!
//! Rust implementation of *"Time-Varying, Frequency-Domain Modeling and
//! Analysis of Phase-Locked Loops with Sampling Phase-Frequency
//! Detectors"* (P. Vanassche, G. Gielen, W. Sansen — DATE 2003).
//!
//! A charge-pump PLL samples its phase error once per reference period,
//! making the small-signal loop **linear periodically time-varying**.
//! This crate models the loop with harmonic transfer matrices
//! (`htmpll-htm`) and exploits the rank-one structure of the sampling
//! PFD to collapse the closed loop to scalar closed forms:
//!
//! * [`PllDesign`] — the architecture: reference, charge pump, passive
//!   loop filter, VCO/divider; includes the paper's Fig.-5
//!   [`reference_design`](PllDesign::reference_design).
//! * [`EffectiveGain`] — `λ(s) = Σ_m A(s + jmω₀)`, evaluated **exactly**
//!   through partial fractions and `coth` lattice sums, or by truncated
//!   summation.
//! * [`PllModel`] — closed-loop transfers: the Fig.-6 baseband element
//!   `H₀,₀(jω) = A(jω)/(1+λ(jω))`, arbitrary band transfers, full
//!   closed-loop HTMs (Sherman–Morrison fast path and dense reference
//!   path), and time-varying-VCO support via ISF harmonics.
//! * [`analyze`] — the Fig.-7 quantities: `ω_UG,eff` and the phase
//!   margin of `λ`, against their LTI counterparts.
//! * [`NoiseModel`] — phase-noise propagation with explicit aliasing
//!   folding.
//!
//! ```
//! use htmpll_core::{analyze, PllDesign, PllModel};
//!
//! // A fast loop: crossover at 30 % of the reference frequency.
//! let design = PllDesign::reference_design(0.3).unwrap();
//! let model = PllModel::builder(design).build().unwrap();
//! let report = analyze(&model).unwrap();
//! // LTI analysis is oblivious to the ratio; the true margin is not.
//! assert!(report.phase_margin_degradation_deg() > 5.0);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod closed_loop;
pub mod design;
pub mod error;
pub mod explore;
pub mod hold;
pub mod lambda;
pub mod noise;
pub mod optimize;
pub mod poles;
pub mod quality;
pub mod spurs;
pub mod sweep;
pub mod transient;

pub use analysis::{analyze, analyze_cached, analyze_deadline, analyze_with, AnalysisReport};
pub use closed_loop::{PllModel, PllModelBuilder};
pub use design::{LoopFilter, PllDesign, PllDesignBuilder};
pub use error::CoreError;
pub use explore::{
    candidate_params, explore, explore_deadline, DesignParams, DesignPoint, ExploreReport,
    ExploreSpec, ParetoFront, EXPLORE_BLOCK, EXPLORE_F_REF,
};
pub use hold::SampleHoldModel;
pub use lambda::EffectiveGain;
pub use noise::{NoiseModel, NoiseShape};
pub use optimize::{optimize_loop, Candidate, NoiseSpec, OptimizeSpec};
pub use poles::{damping_ratio, dominant_poles};
pub use quality::{GridOutcome, PointOutcome, PointQuality, QualitySummary, DEADLINE_REASON};
pub use spurs::LeakageSpurs;
pub use sweep::{
    bode_grid, CacheStats, DenseSolve, KernelPolicy, SpurLine, SweepCache, SweepSpec,
    SweepWorkspace, CACHE_CAP_ENV, DEFAULT_CACHE_CAP, MAX_AUTO_TRUNCATION,
};
