//! Streaming design-space exploration: seeded Monte-Carlo / Halton
//! candidate generation, a cheap closed-form screening cascade, and
//! deterministic streaming Pareto-front extraction.
//!
//! [`optimize_loop`](crate::optimize::optimize_loop) tunes one design;
//! [`explore`] sweeps 10⁵–10⁶ of them. Each candidate is a point in the
//! four-axis box (ω_UG/ω₀, zero/pole spread, charge-pump scale,
//! divider N); the explorer synthesizes the loop filter for every
//! point, screens it with a coarse closed-form λ(jω) margin scan, runs
//! the full [`analyze`](crate::analysis::analyze_cached) stage only on
//! survivors, and streams the results through a bounded Pareto front
//! over **(phase margin × bandwidth × peaking × spur level × lock
//! time)**. Memory stays flat: nothing is retained per candidate
//! beyond the front itself and per-worker scratch.
//!
//! # Determinism contract
//!
//! The front is **bitwise identical for any thread count and any block
//! size** (as long as the front capacity is not exceeded — see
//! [`ExploreReport::pruned`]):
//!
//! * candidate `i`'s parameters are a pure function of `(seed, i)`
//!   ([`candidate_params`] — one [`Rng::for_stream`] stream per index,
//!   or a seed-rotated Halton point in quasi mode);
//! * evaluation happens in fixed-size blocks of [`EXPLORE_BLOCK`]
//!   consecutive candidates, dispatched through
//!   [`par_map_with_cancel`] which places results by block index;
//! * each block keeps its own bounded front (capacity ≥ block size, so
//!   per-block pruning never occurs) and the blocks merge
//!   **sequentially in index order**, which makes the global insertion
//!   sequence "ascending candidate index" regardless of which worker
//!   evaluated which block.
//!
//! A point dropped inside a block was dominated by another point of
//! the same block and would have been rejected (or later removed) by
//! the identical global insertion sequence, so per-block filtering
//! never changes the merged outcome.
//!
//! ```
//! use htmpll_core::explore::{explore, ExploreSpec};
//! use htmpll_core::SweepCache;
//!
//! let spec = ExploreSpec {
//!     candidates: 64,
//!     seed: 1,
//!     refine_rounds: 0,
//!     ..ExploreSpec::default()
//! };
//! let report = explore(&spec, &SweepCache::new()).unwrap();
//! assert!(!report.front.is_empty());
//! // Every front member is feasible and non-dominated.
//! assert!(report.front.iter().all(|p| p.pm_eff_deg >= spec.min_pm_deg));
//! ```

use crate::analysis::analyze_deadline;
use crate::closed_loop::PllModel;
use crate::design::PllDesign;
use crate::error::CoreError;
use crate::quality::QualitySummary;
use crate::spurs::LeakageSpurs;
use crate::sweep::SweepCache;
use htmpll_num::rng::{radical_inverse, Rng};
use htmpll_par::{par_map_with_cancel, Deadline, ThreadBudget};

/// Reference frequency shared by every candidate (Hz). The explorer
/// varies loop *shape*, not the reference: 10 MHz is the workhorse
/// crystal frequency of integer-N synthesizers.
pub const EXPLORE_F_REF: f64 = 10.0e6;

/// VCO gain shared by every candidate (rad/s per V): 100 MHz/V.
const KVCO: f64 = 2.0 * std::f64::consts::PI * 100.0e6;

/// Total loop-filter capacitance budget (F) handed to
/// [`PllDesign::synthesize`] — fixes the impedance level so the
/// synthesized charge-pump current stays in a realistic range.
const C_TOTAL: f64 = 1.0e-9;

/// Leakage current driving the reference-spur objective (A). Constant
/// **absolute** leakage, so designs that synthesize a small charge-pump
/// current pay a genuinely larger static phase offset (spurs trade
/// against the other objectives instead of cancelling out). 100 nA is
/// a pessimistic (leaky-switch) corner: it pushes first spurs into the
/// −60…−90 dBc band where a spur ceiling actually discriminates.
const I_LEAK: f64 = 1.0e-7;

/// Candidates per evaluation block. Fixed — never derived from the
/// thread count — so the block partition (and therefore the merge
/// order) is identical for 1 and N workers.
pub const EXPLORE_BLOCK: usize = 256;

/// Points in the coarse screening scan of `|λ(jω)|`.
const SCREEN_POINTS: usize = 32;

/// Phase-margin slack (degrees) below `min_pm_deg` that the coarse
/// screen still lets through to the full stage — the 32-point scan is
/// an estimate, and a false reject silently loses a feasible design
/// while a false accept merely costs one full analysis.
const SCREEN_SLACK_DEG: f64 = 6.0;

/// Candidate parameter ranges: ω_UG/ω₀ (log-uniform), zero/pole spread
/// (uniform), charge-pump scale (log-uniform), divider (log-uniform,
/// rounded to an integer). The box is deliberately wide — spreads down
/// to 1.5 (≈23° LTI margin) and charge pumps detuned ±4× from the
/// synthesized value — because exploration earns its keep exactly
/// where most of the space is junk and the screen discards it cheaply.
const RATIO_RANGE: (f64, f64) = (0.02, 0.45);
const SPREAD_RANGE: (f64, f64) = (1.5, 8.0);
const ICP_SCALE_RANGE: (f64, f64) = (0.25, 4.0);
const DIVIDER_RANGE: (f64, f64) = (8.0, 512.0);

/// One point in the four-axis candidate space.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignParams {
    /// Target crossover as a fraction of the reference: `ω_UG/ω₀`.
    pub ratio: f64,
    /// Zero/pole spread of the synthesized filter (zero at
    /// `ω_UG/spread`, pole at `spread·ω_UG`).
    pub spread: f64,
    /// Multiplier on the synthesized charge-pump current — detunes the
    /// loop away from its designed crossover.
    pub icp_scale: f64,
    /// Feedback divider N (integer-valued, stored as `f64`).
    pub divider: f64,
}

impl DesignParams {
    /// Canonical identity of the point: the IEEE-754 bit patterns of
    /// its four coordinates. Used for deduplication, canonical front
    /// ordering, and the report digest.
    pub fn key(&self) -> [u64; 4] {
        [
            self.ratio.to_bits(),
            self.spread.to_bits(),
            self.icp_scale.to_bits(),
            self.divider.to_bits(),
        ]
    }
}

/// A feasible design together with its five Pareto objectives.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// Where in the candidate space this design lives.
    pub params: DesignParams,
    /// Effective (time-varying) phase margin in degrees — maximize.
    pub pm_eff_deg: f64,
    /// Closed-loop −3 dB bandwidth in rad/s (0 when no −3 dB point was
    /// found in the scan window) — maximize.
    pub bandwidth_3db: f64,
    /// Closed-loop passband peaking in dB — minimize.
    pub peaking_db: f64,
    /// First reference spur in dBc at the synthesizer output under the
    /// fixed leakage current — minimize.
    pub spur_dbc: f64,
    /// Second-order settling estimate `4/(ζ·ω_UG,eff)` with
    /// `ζ ≈ PM°/100`, in seconds — minimize.
    pub lock_time_s: f64,
}

impl DesignPoint {
    /// `true` when `self` is at least as good as `other` in every
    /// objective and strictly better in at least one.
    pub fn dominates(&self, other: &DesignPoint) -> bool {
        let ge = self.pm_eff_deg >= other.pm_eff_deg
            && self.bandwidth_3db >= other.bandwidth_3db
            && self.peaking_db <= other.peaking_db
            && self.spur_dbc <= other.spur_dbc
            && self.lock_time_s <= other.lock_time_s;
        let strict = self.pm_eff_deg > other.pm_eff_deg
            || self.bandwidth_3db > other.bandwidth_3db
            || self.peaking_db < other.peaking_db
            || self.spur_dbc < other.spur_dbc
            || self.lock_time_s < other.lock_time_s;
        ge && strict
    }

    /// Fixed scalarization used **only** to pick a victim when the
    /// front exceeds its capacity: a weighted sum over the five
    /// objectives that depends on nothing but the point itself, so the
    /// pruning decision is reproducible. Not a quality metric.
    fn prune_score(&self) -> f64 {
        self.pm_eff_deg / 60.0 + (self.bandwidth_3db.max(1.0)).log10() / 8.0
            - self.peaking_db / 12.0
            - (self.spur_dbc + 120.0) / 120.0
            - (self.lock_time_s.max(1e-12)).log10() / 8.0
    }
}

/// A bounded streaming Pareto front.
///
/// Insertion keeps the set mutually non-dominated; when the capacity
/// is exceeded the point with the lowest fixed
/// [`prune_score`](DesignPoint::prune_score) is evicted (counted in
/// [`ParetoFront::pruned`]). With pruning never triggered, the final
/// *set* is invariant to insertion order; the stored order is the
/// insertion order of the surviving points.
#[derive(Debug, Clone)]
pub struct ParetoFront {
    cap: usize,
    points: Vec<DesignPoint>,
    /// Non-dominated points evicted because the front was full.
    pub pruned: usize,
}

impl ParetoFront {
    /// An empty front holding at most `cap` points (`cap ≥ 1`).
    pub fn new(cap: usize) -> ParetoFront {
        ParetoFront {
            cap: cap.max(1),
            points: Vec::new(),
            pruned: 0,
        }
    }

    /// Offers a point; returns `true` when it joined the front.
    pub fn insert(&mut self, p: DesignPoint) -> bool {
        if self
            .points
            .iter()
            .any(|q| q.dominates(&p) || q.params.key() == p.params.key())
        {
            return false;
        }
        self.points.retain(|q| !p.dominates(q));
        self.points.push(p);
        if self.points.len() > self.cap {
            // Deterministic eviction: worst fixed scalar score, ties
            // broken by the canonical parameter key.
            let victim = self
                .points
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.prune_score()
                        .total_cmp(&b.prune_score())
                        .then_with(|| a.params.key().cmp(&b.params.key()))
                })
                .map(|(i, _)| i)
                .unwrap_or(0);
            self.points.remove(victim);
            self.pruned += 1;
        }
        true
    }

    /// Merges `other` into `self`, preserving `other`'s stored order.
    pub fn merge(&mut self, other: &ParetoFront) {
        for p in &other.points {
            self.insert(*p);
        }
        self.pruned += other.pruned;
    }

    /// The current front members, in insertion order.
    pub fn points(&self) -> &[DesignPoint] {
        &self.points
    }

    /// Consumes the front into a canonically ordered vector (sorted by
    /// the parameter bit patterns), the order every report exposes.
    pub fn into_sorted(mut self) -> Vec<DesignPoint> {
        self.points.sort_by_key(|p| p.params.key());
        self.points
    }
}

/// What to explore and how hard.
#[derive(Debug, Clone)]
pub struct ExploreSpec {
    /// Monte-Carlo / Halton candidates in the initial round.
    pub candidates: usize,
    /// Seed of the deterministic candidate stream.
    pub seed: u64,
    /// Feasibility floor: designs with an effective phase margin below
    /// this (degrees) never enter the front.
    pub min_pm_deg: f64,
    /// Feasibility ceiling on the first reference spur (dBc): designs
    /// above it never enter the front. The spur is closed-form, so the
    /// screen enforces this **exactly** (no slack) at the cost of a
    /// single open-loop evaluation.
    pub max_spur_dbc: f64,
    /// Capacity of the merged front.
    pub front_cap: usize,
    /// Adaptive grid-refinement rounds around the front (0 disables).
    pub refine_rounds: usize,
    /// Run the coarse λ screen before the full analysis stage. `false`
    /// sends every candidate through the full stage (the baseline the
    /// screening speedup is measured against).
    pub screen: bool,
    /// Draw candidates from a seed-rotated Halton sequence instead of
    /// independent xoshiro streams: better space coverage at the same
    /// determinism.
    pub quasi: bool,
    /// Worker budget for the block dispatch.
    pub threads: ThreadBudget,
}

impl Default for ExploreSpec {
    fn default() -> ExploreSpec {
        ExploreSpec {
            candidates: 5000,
            seed: 1,
            min_pm_deg: 50.0,
            max_spur_dbc: -65.0,
            front_cap: 256,
            refine_rounds: 1,
            screen: true,
            quasi: false,
            threads: ThreadBudget::Auto,
        }
    }
}

/// Everything a finished exploration reports.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// The Pareto front, canonically ordered by parameter bits.
    pub front: Vec<DesignPoint>,
    /// Candidates requested in the Monte-Carlo round.
    pub candidates: usize,
    /// Candidates actually evaluated (MC round; less than `candidates`
    /// only under deadline pressure).
    pub evaluated: usize,
    /// Refinement candidates evaluated on top of the MC round.
    pub refined: usize,
    /// Candidates rejected by the coarse closed-form screen.
    pub screened_out: usize,
    /// Candidates that reached the full analysis stage.
    pub full_analyses: usize,
    /// Full-stage candidates rejected as infeasible (unstable, beyond
    /// the sampling limit, or below the phase-margin floor).
    pub infeasible: usize,
    /// Candidates whose synthesis or analysis failed outright.
    pub failed: usize,
    /// Candidates skipped because the deadline expired.
    pub skipped: usize,
    /// Non-dominated points evicted by the front capacity; `0` means
    /// the front is exactly the non-dominated set of everything
    /// evaluated, invariant to evaluation order.
    pub pruned: usize,
    /// Numerical-quality roll-up of every full analysis that ran.
    pub quality: QualitySummary,
    /// Degradation steps taken under deadline pressure (empty on an
    /// unconstrained run).
    pub degradation: Vec<String>,
    /// FNV-1a digest over the canonical front (parameter and objective
    /// bits) — the determinism fingerprint CI pins.
    pub digest: String,
    /// Wall-clock time of the run in nanoseconds (not part of the
    /// digest).
    pub elapsed_ns: u64,
    /// Evaluated candidates per second of wall clock.
    pub designs_per_sec: f64,
}

/// The deterministic parameters of candidate `index` under `seed`.
///
/// Monte-Carlo mode keys one [`Rng::for_stream`] stream per index;
/// quasi mode uses a 4-D Halton point (bases 2/3/5/7) under a
/// seed-derived Cranley–Patterson rotation. Either way the result is a
/// pure function of `(seed, index, quasi)`.
pub fn candidate_params(seed: u64, index: u64, quasi: bool) -> DesignParams {
    let u = if quasi {
        let mut rot = Rng::for_stream(seed, u64::MAX);
        let mut u = [0.0; 4];
        for (dim, base) in [2u64, 3, 5, 7].into_iter().enumerate() {
            let v = radical_inverse(index + 1, base) + rot.uniform();
            u[dim] = v - v.floor();
        }
        u
    } else {
        let mut rng = Rng::for_stream(seed, index);
        [rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform()]
    };
    let log_span = |u: f64, (lo, hi): (f64, f64)| (lo.ln() + u * (hi / lo).ln()).exp();
    DesignParams {
        ratio: log_span(u[0], RATIO_RANGE),
        spread: SPREAD_RANGE.0 + u[1] * (SPREAD_RANGE.1 - SPREAD_RANGE.0),
        icp_scale: log_span(u[2], ICP_SCALE_RANGE),
        divider: log_span(u[3], DIVIDER_RANGE).round(),
    }
}

/// Builds the physical design for a candidate point: synthesize the
/// loop filter for the target crossover, then rebuild with the scaled
/// charge-pump current (keeping the synthesized filter), which detunes
/// the true crossover and margin away from the design target.
fn build_design(p: &DesignParams) -> Result<PllDesign, CoreError> {
    let omega_ug = p.ratio * 2.0 * std::f64::consts::PI * EXPLORE_F_REF;
    let base = PllDesign::synthesize(EXPLORE_F_REF, p.divider, KVCO, omega_ug, p.spread, C_TOTAL)?;
    if p.icp_scale == 1.0 {
        return Ok(base);
    }
    PllDesign::builder()
        .f_ref(EXPLORE_F_REF)
        .icp(base.icp() * p.icp_scale)
        .kvco(KVCO)
        .divider(p.divider)
        .filter(base.filter().clone())
        .build()
}

/// Per-worker scratch: the screening scan reuses these buffers across
/// every candidate a worker evaluates (contents never carry
/// information between candidates — each screen overwrites them).
#[derive(Debug, Default)]
pub struct ExploreWorkspace {
    mag: Vec<f64>,
    phase: Vec<f64>,
}

/// Coarse closed-form screen: scan `|λ(jω)|` on [`SCREEN_POINTS`] log
/// points across the first Nyquist band, estimate the unity crossing
/// and its phase margin by interpolation. Returns `false` (reject)
/// when the loop is beyond the sampling limit (no crossing), the
/// estimated margin is below the floor minus [`SCREEN_SLACK_DEG`], or
/// the gain goes non-finite.
fn screen_passes(
    model: &PllModel,
    p: &DesignParams,
    min_pm: f64,
    ws: &mut ExploreWorkspace,
) -> bool {
    let w0 = model.design().omega_ref();
    let wug = p.ratio * w0;
    let lo = wug / 16.0;
    let hi = 0.499_999 * w0;
    // NaN-safe rejection of a degenerate or inverted scan band.
    if !lo.is_finite() || !hi.is_finite() || lo >= hi {
        return false;
    }
    let lam = model.lambda();
    ws.mag.clear();
    ws.phase.clear();
    let step = (hi / lo).ln() / (SCREEN_POINTS - 1) as f64;
    for i in 0..SCREEN_POINTS {
        let w = (lo.ln() + i as f64 * step).exp();
        let v = lam.eval_jw(w);
        if !(v.re.is_finite() && v.im.is_finite()) {
            return false;
        }
        ws.mag.push(v.abs());
        ws.phase.push(v.arg().to_degrees());
    }
    // First magnitude crossing of unity, scanning upward.
    let mut pm = None;
    if ws.mag[0] < 1.0 {
        // Already below unity at the bottom of the band: treat the
        // first point as the crossover estimate (very detuned loop —
        // let the full stage decide).
        pm = Some(180.0 + ws.phase[0]);
    } else {
        for i in 1..SCREEN_POINTS {
            if ws.mag[i] < 1.0 {
                // Interpolate the phase at the crossing in log-|λ|.
                let (m0, m1) = (ws.mag[i - 1].ln(), ws.mag[i].ln());
                let t = if m1 < m0 { m0 / (m0 - m1) } else { 0.5 };
                pm = Some(180.0 + ws.phase[i - 1] + t * (ws.phase[i] - ws.phase[i - 1]));
                break;
            }
        }
    }
    match pm {
        // |λ| ≥ 1 across the whole band: at/beyond the sampling limit.
        None => false,
        Some(pm) => pm.is_finite() && pm >= min_pm - SCREEN_SLACK_DEG,
    }
}

/// What one candidate contributed to a block.
enum Outcome {
    Point(DesignPoint),
    ScreenedOut,
    Infeasible,
    Failed,
    Deadline,
}

/// Full evaluation of one candidate: build, screen, analyze, reduce to
/// the five objectives.
fn evaluate(
    p: &DesignParams,
    spec: &ExploreSpec,
    cache: &SweepCache,
    deadline: &Deadline,
    ws: &mut ExploreWorkspace,
    quality: &mut QualitySummary,
) -> Outcome {
    let design = match build_design(p) {
        Ok(d) => d,
        Err(_) => return Outcome::Failed,
    };
    let model = match PllModel::builder(design).build() {
        Ok(m) => m,
        Err(_) => return Outcome::Failed,
    };
    // The spur ceiling is closed-form — one open-loop evaluation — so
    // the cascade checks it first and exactly: the full stage below
    // applies the identical test, which is what keeps the front
    // independent of whether the screen ran.
    let spur_dbc = LeakageSpurs::new(&model, I_LEAK).level_dbc(1);
    if !spur_dbc.is_finite() {
        return Outcome::Failed;
    }
    if spec.screen {
        if spur_dbc > spec.max_spur_dbc {
            return Outcome::ScreenedOut;
        }
        if !screen_passes(&model, p, spec.min_pm_deg, ws) {
            return Outcome::ScreenedOut;
        }
    }
    // Inner analysis always runs single-threaded: parallelism lives at
    // the block level, and a fixed inner budget keeps the per-candidate
    // arithmetic identical no matter how blocks land on workers.
    let report = match analyze_deadline(&model, ThreadBudget::Fixed(1), cache, deadline) {
        Ok(r) => r,
        Err(CoreError::DeadlineExceeded { .. }) => return Outcome::Deadline,
        Err(_) => return Outcome::Failed,
    };
    quality.merge(&report.quality);
    if report.beyond_sampling_limit
        || !report.nyquist_stable
        || report.phase_margin_eff_deg < spec.min_pm_deg
        || spur_dbc > spec.max_spur_dbc
    {
        return Outcome::Infeasible;
    }
    let zeta = (report.phase_margin_eff_deg / 100.0).clamp(0.05, 1.2);
    let lock_time_s = 4.0 / (zeta * report.omega_ug_eff);
    let point = DesignPoint {
        params: *p,
        pm_eff_deg: report.phase_margin_eff_deg,
        bandwidth_3db: report.bandwidth_3db.unwrap_or(0.0),
        peaking_db: report.peaking_db,
        spur_dbc,
        lock_time_s,
    };
    let finite = point.pm_eff_deg.is_finite()
        && point.bandwidth_3db.is_finite()
        && point.peaking_db.is_finite()
        && point.spur_dbc.is_finite()
        && point.lock_time_s.is_finite();
    if finite {
        Outcome::Point(point)
    } else {
        Outcome::Failed
    }
}

/// One evaluated block: a bounded front plus counters. The per-block
/// front capacity always covers the whole block, so blocks never
/// prune — all capacity pressure is resolved in the deterministic
/// sequential merge.
struct BlockOut {
    front: ParetoFront,
    evaluated: usize,
    screened_out: usize,
    full: usize,
    infeasible: usize,
    failed: usize,
    skipped: usize,
    quality: QualitySummary,
}

fn eval_block(
    params: impl ExactSizeIterator<Item = DesignParams>,
    spec: &ExploreSpec,
    cache: &SweepCache,
    deadline: &Deadline,
    ws: &mut ExploreWorkspace,
) -> BlockOut {
    let n = params.len();
    let mut out = BlockOut {
        front: ParetoFront::new(n.max(1)),
        evaluated: 0,
        screened_out: 0,
        full: 0,
        infeasible: 0,
        failed: 0,
        skipped: 0,
        quality: QualitySummary::default(),
    };
    for p in params {
        if deadline.expired() {
            out.skipped += 1;
            continue;
        }
        match evaluate(&p, spec, cache, deadline, ws, &mut out.quality) {
            Outcome::Deadline => {
                out.skipped += 1;
                continue;
            }
            Outcome::ScreenedOut => out.screened_out += 1,
            Outcome::Infeasible => {
                out.full += 1;
                out.infeasible += 1;
            }
            Outcome::Failed => out.failed += 1,
            Outcome::Point(pt) => {
                out.full += 1;
                out.front.insert(pt);
            }
        }
        out.evaluated += 1;
    }
    out
}

/// Accumulates completed blocks (in index order) into the global state.
struct Fold {
    front: ParetoFront,
    evaluated: usize,
    screened_out: usize,
    full: usize,
    infeasible: usize,
    failed: usize,
    skipped: usize,
    quality: QualitySummary,
}

impl Fold {
    fn new(cap: usize) -> Fold {
        Fold {
            front: ParetoFront::new(cap),
            evaluated: 0,
            screened_out: 0,
            full: 0,
            infeasible: 0,
            failed: 0,
            skipped: 0,
            quality: QualitySummary::default(),
        }
    }

    /// `total` is the number of candidates the (possibly skipped) block
    /// covered.
    fn absorb(&mut self, block: Option<BlockOut>, total: usize) {
        match block {
            None => self.skipped += total,
            Some(b) => {
                self.front.merge(&b.front);
                self.evaluated += b.evaluated;
                self.screened_out += b.screened_out;
                self.full += b.full;
                self.infeasible += b.infeasible;
                self.failed += b.failed;
                self.skipped += b.skipped;
                self.quality.merge(&b.quality);
            }
        }
    }
}

/// Runs `count` candidates `base_index..base_index + count` of the
/// seeded stream through the block pipeline and folds them in order.
fn run_stream_round(
    fold: &mut Fold,
    base_index: u64,
    count: usize,
    spec: &ExploreSpec,
    cache: &SweepCache,
    deadline: &Deadline,
) {
    if count == 0 {
        return;
    }
    let blocks: Vec<usize> = (0..count).step_by(EXPLORE_BLOCK).collect();
    let slots = par_map_with_cancel(
        spec.threads,
        &blocks,
        deadline,
        ExploreWorkspace::default,
        |ws, _, &start| {
            let len = EXPLORE_BLOCK.min(count - start);
            let params = (0..len)
                .map(|j| candidate_params(spec.seed, base_index + (start + j) as u64, spec.quasi));
            eval_block(params, spec, cache, deadline, ws)
        },
    );
    for (slot, &start) in slots.into_iter().zip(&blocks) {
        fold.absorb(slot, EXPLORE_BLOCK.min(count - start));
    }
}

/// Runs an explicit candidate list (refinement rounds) through the
/// same block pipeline.
fn run_list_round(
    fold: &mut Fold,
    params: &[DesignParams],
    spec: &ExploreSpec,
    cache: &SweepCache,
    deadline: &Deadline,
) {
    if params.is_empty() {
        return;
    }
    let blocks: Vec<usize> = (0..params.len()).step_by(EXPLORE_BLOCK).collect();
    let slots = par_map_with_cancel(
        spec.threads,
        &blocks,
        deadline,
        ExploreWorkspace::default,
        |ws, _, &start| {
            let end = (start + EXPLORE_BLOCK).min(params.len());
            eval_block(
                params[start..end].iter().copied(),
                spec,
                cache,
                deadline,
                ws,
            )
        },
    );
    for (slot, &start) in slots.into_iter().zip(&blocks) {
        fold.absorb(slot, EXPLORE_BLOCK.min(params.len() - start));
    }
}

/// The refinement stencil around one front point for round `round`:
/// one step down and one step up per axis, with the step shrinking
/// geometrically each round.
fn stencil(p: &DesignParams, round: usize) -> [DesignParams; 8] {
    let rel = 0.15 / (1 << round) as f64;
    let clampr = |v: f64, (lo, hi): (f64, f64)| v.clamp(lo, hi);
    let mut out = [*p; 8];
    for (slot, dir) in [(0usize, 1.0 - rel), (1, 1.0 + rel)] {
        out[slot].ratio = clampr(p.ratio * dir, RATIO_RANGE);
        out[2 + slot].spread = clampr(
            p.spread + (dir - 1.0) * (SPREAD_RANGE.1 - SPREAD_RANGE.0),
            SPREAD_RANGE,
        );
        out[4 + slot].icp_scale = clampr(p.icp_scale * dir, ICP_SCALE_RANGE);
        out[6 + slot].divider = clampr((p.divider * dir).round(), DIVIDER_RANGE);
    }
    out
}

/// FNV-1a over the canonical front: every point contributes its four
/// parameter and five objective bit patterns.
fn front_digest(front: &[DesignPoint]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |word: u64| {
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for p in front {
        for w in p.params.key() {
            eat(w);
        }
        eat(p.pm_eff_deg.to_bits());
        eat(p.bandwidth_3db.to_bits());
        eat(p.peaking_db.to_bits());
        eat(p.spur_dbc.to_bits());
        eat(p.lock_time_s.to_bits());
    }
    format!("{h:016x}")
}

/// [`explore_deadline`] without a deadline.
///
/// # Errors
///
/// Propagates an invalid spec (`candidates == 0`).
pub fn explore(spec: &ExploreSpec, cache: &SweepCache) -> Result<ExploreReport, CoreError> {
    explore_deadline(spec, cache, &Deadline::none())
}

/// Runs the exploration under a cooperative [`Deadline`].
///
/// Deadline pressure degrades, never corrupts: blocks that miss the
/// budget are skipped whole (counted in [`ExploreReport::skipped`] and
/// noted in [`ExploreReport::degradation`]) and the front is built
/// from completed blocks only. When not a single block completed the
/// run fails with [`CoreError::DeadlineExceeded`] so callers can
/// surface a retryable error instead of an empty front.
///
/// # Errors
///
/// `candidates == 0` is rejected as an invalid parameter; a fully
/// exhausted budget surfaces as [`CoreError::DeadlineExceeded`].
pub fn explore_deadline(
    spec: &ExploreSpec,
    cache: &SweepCache,
    deadline: &Deadline,
) -> Result<ExploreReport, CoreError> {
    if spec.candidates == 0 {
        return Err(CoreError::InvalidParameter {
            name: "candidates",
            value: 0.0,
        });
    }
    let _span = htmpll_obs::span_labeled("core", "explore", || {
        format!("candidates={},seed={}", spec.candidates, spec.seed)
    });
    let t0 = std::time::Instant::now();
    let mut degradation = Vec::new();
    let mut fold = Fold::new(spec.front_cap);

    run_stream_round(&mut fold, 0, spec.candidates, spec, cache, deadline);
    if fold.skipped > 0 {
        degradation.push(format!(
            "deadline pressure: evaluated {} of {} candidates; front reflects completed blocks only",
            fold.evaluated, spec.candidates
        ));
    }
    if fold.evaluated == 0 {
        return Err(CoreError::DeadlineExceeded { phase: "explore" });
    }

    // Adaptive refinement: probe a shrinking stencil around the
    // current front. The stencil is generated from the canonically
    // sorted front, so the probe list (and everything downstream) is
    // deterministic.
    let mc_evaluated = fold.evaluated;
    for round in 0..spec.refine_rounds {
        if deadline.expired() || deadline.pressed(0.8) {
            degradation.push(format!(
                "deadline pressure: skipped refinement round {} of {}",
                round + 1,
                spec.refine_rounds
            ));
            break;
        }
        let mut snapshot = fold.front.clone().into_sorted();
        snapshot.truncate(spec.front_cap);
        let mut seen: std::collections::BTreeSet<[u64; 4]> =
            snapshot.iter().map(|p| p.params.key()).collect();
        let mut probes = Vec::new();
        for p in &snapshot {
            for q in stencil(&p.params, round) {
                if seen.insert(q.key()) {
                    probes.push(q);
                }
            }
        }
        if probes.is_empty() {
            break;
        }
        let before = fold.evaluated;
        run_list_round(&mut fold, &probes, spec, cache, deadline);
        if fold.evaluated == before {
            break;
        }
    }

    let elapsed_ns = t0.elapsed().as_nanos() as u64;
    let front = fold.front.clone().into_sorted();
    let digest = front_digest(&front);
    let designs_per_sec = if elapsed_ns == 0 {
        0.0
    } else {
        fold.evaluated as f64 / (elapsed_ns as f64 / 1e9)
    };
    htmpll_obs::counter!("core", "explore.candidates").add(fold.evaluated as u64);
    htmpll_obs::counter!("core", "explore.screened_out").add(fold.screened_out as u64);
    htmpll_obs::counter!("core", "explore.full_analyses").add(fold.full as u64);
    htmpll_obs::counter!("core", "explore.front_size").add(front.len() as u64);
    htmpll_obs::counter!("core", "explore.designs_per_sec").add(designs_per_sec as u64);

    Ok(ExploreReport {
        front,
        candidates: spec.candidates,
        evaluated: fold.evaluated,
        refined: fold.evaluated - mc_evaluated,
        screened_out: fold.screened_out,
        full_analyses: fold.full,
        infeasible: fold.infeasible,
        failed: fold.failed,
        skipped: fold.skipped,
        pruned: fold.front.pruned,
        quality: fold.quality,
        degradation,
        digest,
        elapsed_ns,
        designs_per_sec,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::DEADLINE_REASON;

    fn quick_spec(candidates: usize) -> ExploreSpec {
        ExploreSpec {
            candidates,
            seed: 7,
            refine_rounds: 0,
            ..ExploreSpec::default()
        }
    }

    #[test]
    fn candidate_params_are_pure_and_in_range() {
        for quasi in [false, true] {
            for i in 0..200u64 {
                let a = candidate_params(3, i, quasi);
                let b = candidate_params(3, i, quasi);
                assert_eq!(a.key(), b.key());
                assert!((RATIO_RANGE.0..=RATIO_RANGE.1).contains(&a.ratio));
                assert!((SPREAD_RANGE.0..=SPREAD_RANGE.1).contains(&a.spread));
                assert!((ICP_SCALE_RANGE.0..=ICP_SCALE_RANGE.1).contains(&a.icp_scale));
                assert!((DIVIDER_RANGE.0..=DIVIDER_RANGE.1).contains(&a.divider));
                assert_eq!(a.divider, a.divider.round());
            }
        }
    }

    #[test]
    fn seeds_and_modes_give_distinct_corpora() {
        let a = candidate_params(1, 5, false);
        let b = candidate_params(2, 5, false);
        assert_ne!(a.key(), b.key());
        let q1 = candidate_params(1, 5, true);
        let q2 = candidate_params(2, 5, true);
        assert_ne!(q1.key(), q2.key());
        assert_ne!(a.key(), q1.key());
    }

    #[test]
    fn dominance_is_irreflexive_and_directional() {
        let base = DesignPoint {
            params: candidate_params(1, 0, false),
            pm_eff_deg: 50.0,
            bandwidth_3db: 1e6,
            peaking_db: 2.0,
            spur_dbc: -60.0,
            lock_time_s: 1e-5,
        };
        assert!(!base.dominates(&base));
        let mut better = base;
        better.pm_eff_deg = 55.0;
        assert!(better.dominates(&base));
        assert!(!base.dominates(&better));
        let mut tradeoff = base;
        tradeoff.pm_eff_deg = 55.0;
        tradeoff.peaking_db = 3.0;
        assert!(!tradeoff.dominates(&base));
        assert!(!base.dominates(&tradeoff));
    }

    #[test]
    fn front_keeps_only_non_dominated() {
        let mk = |pm: f64, pk: f64| DesignPoint {
            params: DesignParams {
                ratio: pm / 1000.0,
                spread: 4.0,
                icp_scale: 1.0,
                divider: 64.0,
            },
            pm_eff_deg: pm,
            bandwidth_3db: 1e6,
            peaking_db: pk,
            spur_dbc: -60.0,
            lock_time_s: 1e-5,
        };
        let mut f = ParetoFront::new(16);
        assert!(f.insert(mk(50.0, 2.0)));
        assert!(f.insert(mk(60.0, 1.0))); // dominates the first
        assert_eq!(f.points().len(), 1);
        assert!(!f.insert(mk(55.0, 1.5))); // dominated
        assert!(f.insert(mk(70.0, 3.0))); // trade-off: joins
        assert_eq!(f.points().len(), 2);
        assert_eq!(f.pruned, 0);
    }

    #[test]
    fn front_capacity_prunes_deterministically() {
        let mk = |i: usize| DesignPoint {
            params: DesignParams {
                ratio: 0.02 + i as f64 * 1e-3,
                spread: 4.0,
                icp_scale: 1.0,
                divider: 64.0,
            },
            pm_eff_deg: 30.0 + i as f64,
            bandwidth_3db: 1e6,
            peaking_db: 1.0 + i as f64, // trade-off chain: all non-dominated
            spur_dbc: -60.0,
            lock_time_s: 1e-5,
        };
        let mut f = ParetoFront::new(4);
        for i in 0..8 {
            f.insert(mk(i));
        }
        assert_eq!(f.points().len(), 4);
        assert_eq!(f.pruned, 4);
        let mut g = ParetoFront::new(4);
        for i in 0..8 {
            g.insert(mk(i));
        }
        assert_eq!(
            f.clone().into_sorted(),
            g.into_sorted(),
            "same insertion sequence must prune identically"
        );
    }

    #[test]
    fn explore_smoke_produces_feasible_front() {
        let spec = quick_spec(96);
        let report = explore(&spec, &SweepCache::new()).unwrap();
        assert_eq!(report.evaluated, 96);
        assert_eq!(report.skipped, 0);
        assert!(report.degradation.is_empty());
        assert!(!report.front.is_empty());
        assert_eq!(
            report.evaluated,
            report.screened_out + report.full_analyses + report.failed
        );
        for p in &report.front {
            assert!(p.pm_eff_deg >= spec.min_pm_deg);
            assert!(p.spur_dbc.is_finite());
            assert!(p.lock_time_s > 0.0);
        }
        // Mutually non-dominated.
        for a in &report.front {
            for b in &report.front {
                assert!(!a.dominates(b), "front contains a dominated point");
            }
        }
    }

    #[test]
    fn screening_rejects_only_infeasible_designs() {
        // Everything the screen rejects must be something the full
        // stage would also reject — compare front digests with the
        // screen on and off.
        let mut spec = quick_spec(96);
        let with_screen = explore(&spec, &SweepCache::new()).unwrap();
        spec.screen = false;
        let without = explore(&spec, &SweepCache::new()).unwrap();
        assert_eq!(
            with_screen.digest, without.digest,
            "screen must not change the front"
        );
        assert!(with_screen.screened_out > 0, "screen should reject some");
        assert!(with_screen.full_analyses < without.full_analyses);
    }

    #[test]
    fn thread_count_does_not_change_the_front() {
        let mut spec = quick_spec(128);
        spec.threads = ThreadBudget::Fixed(1);
        let one = explore(&spec, &SweepCache::new()).unwrap();
        spec.threads = ThreadBudget::Fixed(4);
        let four = explore(&spec, &SweepCache::new()).unwrap();
        assert_eq!(one.digest, four.digest);
        assert_eq!(one.front.len(), four.front.len());
        for (a, b) in one.front.iter().zip(&four.front) {
            assert_eq!(a.params.key(), b.params.key());
            assert_eq!(a.pm_eff_deg.to_bits(), b.pm_eff_deg.to_bits());
            assert_eq!(a.bandwidth_3db.to_bits(), b.bandwidth_3db.to_bits());
            assert_eq!(a.peaking_db.to_bits(), b.peaking_db.to_bits());
            assert_eq!(a.spur_dbc.to_bits(), b.spur_dbc.to_bits());
            assert_eq!(a.lock_time_s.to_bits(), b.lock_time_s.to_bits());
        }
    }

    #[test]
    fn refinement_only_improves_the_front() {
        let mut spec = quick_spec(64);
        let base = explore(&spec, &SweepCache::new()).unwrap();
        spec.refine_rounds = 1;
        let refined = explore(&spec, &SweepCache::new()).unwrap();
        assert!(refined.refined > 0, "refinement should evaluate probes");
        // Every refined front point is feasible and the front is still
        // mutually non-dominated.
        for a in &refined.front {
            assert!(a.pm_eff_deg >= spec.min_pm_deg);
            for b in &refined.front {
                assert!(!a.dominates(b));
            }
        }
        // No base front member dominates any refined front member —
        // the refined front is at least as good everywhere.
        for old in &base.front {
            assert!(
                !refined.front.iter().any(|new| old.dominates(new)),
                "refinement must never regress the front"
            );
        }
    }

    #[test]
    fn deadline_degrades_without_corrupting() {
        let spec = quick_spec(64);
        // A checks-budget deadline large enough to finish some blocks
        // deterministically but not all of them.
        let deadline = Deadline::after_checks(40_000);
        match explore_deadline(&spec, &SweepCache::new(), &deadline) {
            Ok(report) => {
                assert!(report.skipped > 0, "tight budget should skip blocks");
                assert!(!report.degradation.is_empty());
                for a in &report.front {
                    assert!(a.pm_eff_deg >= spec.min_pm_deg);
                    for b in &report.front {
                        assert!(!a.dominates(b));
                    }
                }
            }
            Err(CoreError::DeadlineExceeded { .. }) => {} // zero blocks fit
            Err(e) => panic!("unexpected error: {e}"),
        }
        // An immediately-expired budget is a clean retryable error.
        let err =
            explore_deadline(&spec, &SweepCache::new(), &Deadline::after_checks(1)).unwrap_err();
        assert!(err.to_string().starts_with(DEADLINE_REASON), "{err}");
    }

    #[test]
    fn zero_candidates_is_invalid() {
        let spec = ExploreSpec {
            candidates: 0,
            ..ExploreSpec::default()
        };
        assert!(explore(&spec, &SweepCache::new()).is_err());
    }
}
